#!/usr/bin/env python3
"""Docs drift checker: broken links and stale API references.

Scans README.md and every ``docs/*.md`` page for

- **relative markdown links** (``[text](path)``) — the target file must
  exist relative to the page (external ``http(s)://`` and anchor-only
  links are skipped);
- **dotted API references** (inline code spans like
  ``repro.core.tracing.write_chrome_trace`` or
  ``repro.metrics.RunReport``) — the module must import and every
  trailing attribute must resolve, so a rename in ``src/`` that leaves
  a doc page behind fails CI instead of rotting silently.

Exit code 0 when clean, 1 with one line per finding otherwise.  Run as
``python tools/check_docs.py`` from the repo root (``src/`` is added
to ``sys.path`` automatically); ``tests/test_docs.py`` runs the same
checks in the test suite, and the CI docs job runs this script.
"""

from __future__ import annotations

import importlib
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: pages that must exist — deleting one fails CI instead of silently
#: shrinking the doc set (docs/index.md is the architecture map)
REQUIRED_PAGES = (
    "index.md",
    "programming_model.md",
    "runtime.md",
    "simulation.md",
    "analysis.md",
    "observability.md",
    "resilience.md",
    "testing.md",
    "gateway.md",
    "durability.md",
)

#: API symbols the docs *must* be able to name — the gray-failure
#: surface (docs/gateway.md, docs/observability.md) is load-bearing
#: for operators, so a rename breaks CI here even if every page that
#: mentioned the old name was edited in the same commit
REQUIRED_API = (
    "repro.gateway.health.WorkerHealth",
    "repro.gateway.health.HealthConfig",
    "repro.gateway.health.HEALTH_STATES",
    "repro.gateway.chaos.ChaosProfile",
    "repro.gateway.Gateway.health_snapshot",
    "repro.gateway.Gateway.inject_chaos",
    "repro.resilience.CircuitBreaker",
    "repro.resilience.RetryBudget",
    "repro.resilience.RetryDelay",
    # the durability surface (docs/durability.md): journal, fsck, the
    # recovery entry point, and the crash soak harness
    "repro.durability.Journal",
    "repro.durability.fsck",
    "repro.durability.FaultyOs",
    "repro.durability.run_gateway_crash_soak",
    "repro.gateway.Gateway.recover",
    "repro.gateway.RecoveryReport",
)

#: [text](target) — target captured up to the closing paren
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: `repro.something.more` inside an inline code span; a trailing call
#: spelling like `repro.x.y(...)` is matched without the parens
_API_RE = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)(?:\([^`]*\))?`")


def iter_pages():
    yield os.path.join(ROOT, "README.md")
    docs = os.path.join(ROOT, "docs")
    for fname in sorted(os.listdir(docs)):
        if fname.endswith(".md"):
            yield os.path.join(docs, fname)


def check_links(path: str, text: str) -> list:
    problems = []
    base = os.path.dirname(path)
    for m in _LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#")[0]
        if not rel:
            continue
        if not os.path.exists(os.path.join(base, rel)):
            problems.append(
                f"{os.path.relpath(path, ROOT)}: broken link -> {target}"
            )
    return problems


def check_api_refs(path: str, text: str) -> list:
    problems = []
    for m in _API_RE.finditer(text):
        dotted = m.group(1)
        if not _resolves(dotted):
            problems.append(
                f"{os.path.relpath(path, ROOT)}: stale API reference "
                f"`{dotted}`"
            )
    return problems


def _resolves(dotted: str) -> bool:
    parts = dotted.split(".")
    # longest importable module prefix, then attribute-walk the rest
    for cut in range(len(parts), 0, -1):
        modname = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(modname)
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def main() -> int:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    problems = []
    for required in REQUIRED_PAGES:
        if not os.path.exists(os.path.join(ROOT, "docs", required)):
            problems.append(f"docs/{required}: required page is missing")
    for dotted in REQUIRED_API:
        if not _resolves(dotted):
            problems.append(f"required API symbol missing: `{dotted}`")
    for page in iter_pages():
        with open(page) as fh:
            text = fh.read()
        problems.extend(check_links(page, text))
        problems.extend(check_api_refs(page, text))
    for p in problems:
        print(p)
    print(
        f"check_docs: {len(problems)} problem(s) across "
        f"{sum(1 for _ in iter_pages())} page(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
