"""EXT-CPPR — heterogeneous CPPR (paper ref [31]).

HeteroCPPR accelerates common-path-pessimism-removal by batching the
per-endpoint LCA/credit computation onto GPUs.  This bench measures
the reproduced version: the vectorized batch kernel against a scalar
per-pair loop (the CPU baseline), plus the end-to-end flow on the
threaded runtime.
"""

import numpy as np
import pytest

from repro.apps.timing import build_sequential_design, generate_netlist
from repro.apps.timing.cppr import cppr_credit, generate_clock_tree
from repro.apps.timing.cppr_flow import (
    build_cppr_flow,
    cppr_batch_kernel,
    flatten_tree,
    reference_credits,
)
from repro.core import Executor

from conftest import record_table

N_SINKS = 2000
N_PAIRS = 20000


@pytest.fixture(scope="module")
def tree():
    return generate_clock_tree(list(range(N_SINKS)), seed=3)


@pytest.fixture(scope="module")
def pairs(tree):
    rng = np.random.default_rng(3)
    return rng.integers(0, N_SINKS, size=(N_PAIRS, 2))


def test_ext_cppr_batch_kernel(tree, pairs, benchmark):
    parent, depth, acc = flatten_tree(tree)
    a = np.asarray([tree.leaf_of[int(x)] for x, _ in pairs], dtype=np.int64)
    b = np.asarray([tree.leaf_of[int(y)] for _, y in pairs], dtype=np.int64)
    credits = np.zeros(N_PAIRS)

    def run():
        cppr_batch_kernel(None, N_PAIRS, 0.1, parent, depth, acc, a, b, credits)
        return credits

    benchmark(run)
    assert np.all(credits >= 0)


def test_ext_cppr_scalar_loop(tree, pairs, benchmark):
    sub = pairs[:500]  # the scalar loop is slow; sample and extrapolate

    def run():
        return [
            cppr_credit(tree, int(x), int(y), early_derate=1.0, late_derate=1.1)
            for x, y in sub
        ]

    out = benchmark(run)
    assert len(out) == 500


def test_ext_cppr_comparison_table(tree, pairs, benchmark):
    import time

    parent, depth, acc = flatten_tree(tree)
    a = np.asarray([tree.leaf_of[int(x)] for x, _ in pairs], dtype=np.int64)
    b = np.asarray([tree.leaf_of[int(y)] for _, y in pairs], dtype=np.int64)
    credits = np.zeros(N_PAIRS)

    def measure():
        t0 = time.perf_counter()
        cppr_batch_kernel(None, N_PAIRS, 0.1, parent, depth, acc, a, b, credits)
        batch_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        scalar = [
            cppr_credit(tree, int(x), int(y), early_derate=1.0, late_derate=1.1)
            for x, y in pairs[:500]
        ]
        scalar_s = (time.perf_counter() - t0) * (N_PAIRS / 500)
        assert np.allclose(credits[:500], scalar)
        return batch_s, scalar_s

    batch_s, scalar_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_table(
        f"EXT-CPPR: batched vs scalar CPPR credits ({N_PAIRS} pairs, "
        f"{N_SINKS}-sink clock tree)",
        ["method", "seconds", "pairs/s"],
        [
            ("batched-kernel", batch_s, N_PAIRS / batch_s),
            ("scalar-loop", scalar_s, N_PAIRS / scalar_s),
        ],
        notes="the HeteroCPPR [31] pattern: per-endpoint LCA walks batch "
        "into vectorized device rounds",
    )
    assert batch_s < scalar_s


def test_ext_cppr_flow_end_to_end(benchmark):
    design = build_sequential_design(generate_netlist(200, seed=4), seed=4)
    state = build_cppr_flow(design, 800.0)
    with Executor(2, 1) as ex:
        benchmark.pedantic(
            lambda: ex.run(state.graph).result(), rounds=3, iterations=1
        )
    assert np.allclose(state.credits, reference_credits(state))
