"""FIG4 — required analysis views vs technology node.

Regenerates the motivation figure: the number of (corner × mode)
analysis views grows near-exponentially as the technology node
advances (paper Fig. 4).
"""

import math

from repro.apps.timing.views import FIG4_NODES, enumerate_views, views_for_node

from conftest import record_table


def test_fig4_view_growth(benchmark):
    def compute():
        return {node: views_for_node(node) for node in sorted(FIG4_NODES, reverse=True)}

    counts = benchmark(compute)

    rows = []
    prev = None
    for node, views in counts.items():
        growth = "-" if prev is None else f"{views / prev:.2f}x"
        spec = FIG4_NODES[node]
        rows.append((f"{node}nm", spec["corners"], spec["modes"], views, growth))
        prev = views
    record_table(
        "FIG4: analysis views vs technology node",
        ["node", "corners", "modes", "views", "growth"],
        rows,
        notes="paper: views grow exponentially toward advanced nodes; "
        "1024 views at the 2 most advanced nodes motivates the Fig.6 workload",
    )

    # exponential shape: log(views) grows roughly linearly in node index
    series = list(counts.values())
    assert all(b >= a for a, b in zip(series, series[1:]))
    assert series[-1] >= 1024  # the workload size used in Fig. 6
    ratios = [b / a for a, b in zip(series, series[1:])]
    assert math.prod(ratios) ** (1 / len(ratios)) > 1.5  # ~2x per node


def test_fig4_views_are_materializable(benchmark):
    """The view generator scales to the counts the figure claims."""
    views = benchmark(enumerate_views, views_for_node(7))
    assert len(views) == views_for_node(7)
    assert len({v.name for v in views}) == len(views)
