"""TAB-OVERHEAD — per-task scheduling overhead of the real runtime.

The classic tasking-library microbenchmarks (Taskflow reports these):
tasks-per-second throughput on empty host tasks across graph shapes,
and the per-GPU-op overhead of the simulated substrate.  Run on real
threads — on this 1-core/GIL box the absolute numbers characterize the
Python runtime, not the paper's C++ one; the point is tracking
regressions and documenting honest overheads.
"""

import numpy as np
import pytest

from repro.core import Executor, Heteroflow

N_TASKS = 2000


def build_wide():
    hf = Heteroflow("wide")
    for _ in range(N_TASKS):
        hf.host(lambda: None)
    return hf


def build_chain():
    hf = Heteroflow("chain")
    prev = None
    for _ in range(N_TASKS):
        t = hf.host(lambda: None)
        if prev is not None:
            prev.precede(t)
        prev = t
    return hf


def build_diamonds():
    hf = Heteroflow("diamonds")
    for _ in range(N_TASKS // 4):
        a = hf.host(lambda: None)
        b = hf.host(lambda: None)
        c = hf.host(lambda: None)
        d = hf.host(lambda: None)
        a.precede(b, c)
        d.succeed(b, c)
    return hf


@pytest.mark.parametrize(
    "builder", [build_wide, build_chain, build_diamonds], ids=["wide", "chain", "diamond"]
)
def test_overhead_host_tasks(builder, benchmark):
    hf = builder()
    with Executor(2, 0) as ex:
        result = benchmark.pedantic(
            lambda: ex.run(hf).result(), rounds=3, iterations=1
        )
    assert result == 1


def test_overhead_gpu_roundtrip(benchmark):
    """Pull + kernel + push round-trip cost for a tiny payload."""
    hf = Heteroflow()
    data = np.zeros(16)
    p = hf.pull(data)
    k = hf.kernel(lambda a: None, p)
    s = hf.push(p, data)
    p.precede(k)
    k.precede(s)
    with Executor(1, 1) as ex:
        benchmark.pedantic(lambda: ex.run(hf).result(), rounds=5, iterations=1)


def test_overhead_counter_record():
    """Structured record: throughput per shape + executor counters."""
    import time

    from conftest import record_table

    rows = []
    meta = {}
    for name, builder in [
        ("wide", build_wide), ("chain", build_chain), ("diamond", build_diamonds)
    ]:
        hf = builder()
        with Executor(2, 0) as ex:
            t0 = time.perf_counter()
            ex.run(hf).result()
            wall = time.perf_counter() - t0
            snap = ex.metrics.snapshot()
        rows.append([name, N_TASKS, wall * 1e3, N_TASKS / wall])
        meta[name] = {
            "wall_seconds": wall,
            "tasks_executed": snap["executor.tasks_executed"],
            "local_pops": snap["executor.local_pops"],
            "shared_pops": snap["executor.shared_pops"],
            "steals_succeeded": snap["executor.steals_succeeded"],
            "sleeps": snap["executor.sleeps"],
            "queue_high_water": snap["executor.queue_high_water"],
        }
    record_table(
        "TAB-OVERHEAD: host-task throughput (2 workers, real threads)",
        ["shape", "tasks", "wall_ms", "tasks per s"],
        rows,
        notes="per-shape executor counter snapshots ride in the meta payload "
              "(docs/observability.md)",
        meta=meta,
    )


def test_overhead_graph_construction(benchmark):
    """Task-creation throughput (nodes + edges per second)."""
    hf = benchmark(build_diamonds)
    assert hf.num_nodes == N_TASKS
