"""EXT-INC — incremental vs full STA (OpenTimer-2.0 capability).

Not a paper figure, but the timing substrate's parent tool (OpenTimer
2.0, paper refs [24]/[25]) is defined by incremental timing; this
bench records the node-evaluation and wall-clock savings of cone
repropagation over full recomputation under local edits.
"""

import time

import numpy as np
import pytest

from repro.apps.timing import TimingGraph, generate_netlist, run_sta
from repro.apps.timing.incremental import IncrementalTimer

from conftest import record_table

N_GATES = 3000
N_EDITS = 20


@pytest.fixture(scope="module")
def tg():
    return TimingGraph.from_netlist(generate_netlist(N_GATES, seed=13))


@pytest.fixture(scope="module")
def edits(tg):
    rng = np.random.default_rng(13)
    arcs = rng.choice(tg.num_arcs, size=N_EDITS, replace=False)
    factors = rng.uniform(0.5, 2.0, size=N_EDITS)
    return [(int(a), float(f)) for a, f in zip(arcs, factors)]


def test_ext_incremental_vs_full(tg, edits, benchmark):
    def measure():
        # incremental: one timer, edit -> query
        timer = IncrementalTimer(tg)
        t0 = time.perf_counter()
        for arc, factor in edits:
            timer.scale_arc_delay(arc, factor)
            timer.update_timing()
        inc_s = time.perf_counter() - t0
        inc_nodes = timer.total_propagations

        # full: recompute after every edit
        delays = tg.arc_delay.copy()
        t0 = time.perf_counter()
        for arc, factor in edits:
            delays[arc] *= factor
            edited = TimingGraph(
                num_nodes=tg.num_nodes,
                num_inputs=tg.num_inputs,
                arc_src=tg.arc_src,
                arc_dst=tg.arc_dst,
                arc_delay=delays,
                level_of=tg.level_of,
                level_arcs=tg.level_arcs,
                outputs=tg.outputs,
            )
            full = run_sta(edited, clock_period=timer.clock_period)
        full_s = time.perf_counter() - t0
        full_nodes = N_EDITS * tg.num_nodes

        # consistency: final states agree
        assert np.allclose(timer.arrival, full.arrival)
        assert np.allclose(timer.required, full.required)
        return inc_s, inc_nodes, full_s, full_nodes

    inc_s, inc_nodes, full_s, full_nodes = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    record_table(
        f"EXT-INC: incremental vs full STA ({N_GATES} gates, {N_EDITS} edits)",
        ["method", "node_evals", "seconds"],
        [
            ("incremental", inc_nodes, inc_s),
            ("full-recompute", full_nodes, full_s),
        ],
        notes=f"node-evaluation savings {full_nodes / max(inc_nodes, 1):.1f}x; "
        "cone repropagation is the OpenTimer-2.0 capability the paper's "
        "timing experiment builds on",
    )
    assert inc_nodes < full_nodes / 3  # cone << graph


def test_ext_incremental_query_latency(tg, benchmark):
    """Single edit + query latency on a warm timer."""
    timer = IncrementalTimer(tg)
    timer.update_timing()
    arc = tg.num_arcs // 2
    state = {"flip": False}

    def edit_and_query():
        state["flip"] = not state["flip"]
        timer.scale_arc_delay(arc, 2.0 if state["flip"] else 0.5)
        return timer.wns

    benchmark(edit_and_query)
