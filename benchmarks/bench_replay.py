"""TAB-REPLAY — frozen-topology replay throughput vs fresh submission.

Measures the payoff of ``Heteroflow.freeze()`` + the executor's
compiled-plan cache (docs/runtime.md, "Freeze and replay") on the same
empty-host-task shapes TAB-OVERHEAD uses: each shape runs fresh
(``run(graph)``, per-submission validation + per-node scheduling) and
frozen (``run(frozen)``, slot-based fast path), and the table reports
both throughputs plus the speedup ratio.  The replay target from the
issue roadmap is >=5x over the fresh-path baseline.
"""

import time

from repro.core import Executor, Heteroflow

N_TASKS = 2000
ROUNDS = 5


def build_wide():
    hf = Heteroflow("wide")
    for _ in range(N_TASKS):
        hf.host(lambda: None)
    return hf


def build_chain():
    hf = Heteroflow("chain")
    prev = None
    for _ in range(N_TASKS):
        t = hf.host(lambda: None)
        if prev is not None:
            prev.precede(t)
        prev = t
    return hf


def build_diamonds():
    hf = Heteroflow("diamonds")
    for _ in range(N_TASKS // 4):
        a = hf.host(lambda: None)
        b = hf.host(lambda: None)
        c = hf.host(lambda: None)
        d = hf.host(lambda: None)
        a.precede(b, c)
        d.succeed(b, c)
    return hf


def _throughput(ex, target, rounds=ROUNDS):
    """Median tasks/s over *rounds* single-pass submissions."""
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        ex.run(target).result()
        samples.append(N_TASKS / (time.perf_counter() - t0))
    samples.sort()
    return samples[len(samples) // 2]


def test_replay_throughput_record():
    """Structured record: fresh vs frozen throughput per shape."""
    from conftest import record_table

    rows = []
    meta = {}
    for name, builder in [
        ("wide", build_wide),
        ("chain", build_chain),
        ("diamond", build_diamonds),
    ]:
        fresh_graph = builder()
        frozen = builder().freeze()
        with Executor(2, 0) as ex:
            # warm both paths (thread spin-up, plan compilation)
            ex.run(fresh_graph).result()
            ex.run(frozen).result()
            fresh = _throughput(ex, fresh_graph)
            replay = _throughput(ex, frozen)
            snap = ex.metrics.snapshot()
        speedup = replay / fresh
        rows.append([name, N_TASKS, fresh, replay, speedup])
        meta[name] = {
            "fresh_tasks_per_s": fresh,
            "frozen_tasks_per_s": replay,
            "speedup": speedup,
            "replay_cache_hits": snap["replay.cache_hits"],
            "replay_cache_misses": snap["replay.cache_misses"],
            "replay_plan_reuses": snap["replay.plan_reuses"],
            "replay_fast_path": snap["replay.fast_path"],
        }
        # regression guard only — the committed results JSON documents
        # the measured ratio against the >=5x issue target
        assert speedup > 1.0, f"{name}: frozen replay slower than fresh"
    record_table(
        "TAB-REPLAY: frozen replay vs fresh submission (2 workers)",
        ["shape", "tasks", "fresh tasks per s", "frozen tasks per s", "speedup"],
        rows,
        notes="frozen = Heteroflow.freeze() + Executor.run(frozen) slot "
              "replay; per-shape replay.* counters ride in the meta "
              "payload (docs/observability.md)",
        meta=meta,
    )


def test_replay_latency_histogram_record():
    """The replay.latency_seconds histogram covers every replay."""
    frozen = build_diamonds().freeze()
    with Executor(2, 0) as ex:
        for _ in range(10):
            ex.run(frozen).result()
        snap = ex.metrics.snapshot()
    hist = snap["replay.latency_seconds"]
    assert hist["count"] == 10
    assert hist["min"] > 0.0
