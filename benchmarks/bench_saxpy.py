"""TAB-LST1 — the Listing-1 saxpy program on the real threaded runtime.

Wall-clock benchmarks of the actual executor (not the virtual-time
model): graph construction cost, single-run latency, and repeated
execution throughput via ``run_n``.
"""

import numpy as np
import pytest

from repro.core import Executor, Heteroflow

N = 65536


def saxpy(ctx, n, a, x, y):
    i = ctx.flat_indices()
    i = i[i < n]
    y[i] = a * x[i] + y[i]


def build_graph(x, y):
    hf = Heteroflow("saxpy")
    host_x = hf.host(lambda: x.__setitem__(slice(None), 1.0))
    host_y = hf.host(lambda: y.__setitem__(slice(None), 2.0))
    pull_x = hf.pull(x)
    pull_y = hf.pull(y)
    kernel = (
        hf.kernel(saxpy, N, 2.0, pull_x, pull_y).block_x(256).grid_x((N + 255) // 256)
    )
    push_x = hf.push(pull_x, x)
    push_y = hf.push(pull_y, y)
    host_x.precede(pull_x)
    host_y.precede(pull_y)
    kernel.succeed(pull_x, pull_y).precede(push_x, push_y)
    return hf


def test_saxpy_graph_construction(benchmark):
    x = np.zeros(N, dtype=np.float64)
    y = np.zeros(N, dtype=np.float64)
    hf = benchmark(build_graph, x, y)
    assert hf.num_nodes == 7


def test_saxpy_single_run(benchmark):
    x = np.zeros(N, dtype=np.float64)
    y = np.zeros(N, dtype=np.float64)
    hf = build_graph(x, y)
    with Executor(2, 1) as ex:
        benchmark(lambda: ex.run(hf).result())
    assert set(y) == {4.0}


def test_saxpy_run_n_throughput(benchmark):
    """Amortized per-pass cost over 10 chained passes."""
    x = np.zeros(N, dtype=np.float64)
    y = np.zeros(N, dtype=np.float64)
    hf = build_graph(x, y)
    with Executor(2, 1) as ex:
        benchmark(lambda: ex.run_n(hf, 10).result())
    assert set(y) == {4.0}  # host tasks re-seed each pass


def test_saxpy_profiled_record():
    """One metrics-enabled run, exported as a structured BENCH record.

    Exercises the ``run(metrics=True)`` API end-to-end and commits the
    resulting schema-v1 RunReport (docs/observability.md) into
    ``results/BENCH_tab-lst1-profile.json``.
    """
    from conftest import record_table

    x = np.zeros(N, dtype=np.float64)
    y = np.zeros(N, dtype=np.float64)
    hf = build_graph(x, y)
    with Executor(2, 1) as ex:
        fut = ex.run(hf, metrics=True)
        fut.result()
    rep = fut.run_report
    rep.workload = "saxpy"
    record_table(
        "TAB-LST1-PROFILE: saxpy profiled single run (2 workers / 1 GPU)",
        ["metric", "value"],
        [
            ["wall_ms", rep.wall_time * 1e3],
            ["critical_path_ms", rep.critical_path_length * 1e3],
            ["records", rep.num_records],
            ["steals_attempted", sum(rep.steals_attempted)],
            ["steals_succeeded", sum(rep.steals_succeeded)],
        ],
        notes="wall-clock run; absolute numbers vary by machine — the meta "
              "payload holds the full schema-v1 RunReport",
        meta={"run_report": rep.to_dict()},
    )
    assert set(y) == {4.0}
    assert rep.critical_path_length <= rep.wall_time


def test_saxpy_sequential_baseline(benchmark):
    """The single-threaded oracle as a latency baseline."""
    from repro.baselines import SequentialExecutor

    x = np.zeros(N, dtype=np.float64)
    y = np.zeros(N, dtype=np.float64)
    hf = build_graph(x, y)
    with SequentialExecutor(num_gpus=1) as seq:
        benchmark(lambda: seq.run(hf))
    assert set(y) == {4.0}
