"""ABL-DEDIC — uniform workers vs dedicated-per-GPU workers.

"Unlike existing works, we do not dedicate a worker to manage a
target GPU" (paper §III-C).  This ablation runs both evaluation
workloads under the uniform discipline and under the StarPU-style
dedicated discipline at several core counts.  Dedicated workers lose
on CPU-heavy phases (the pinned cores idle) — exactly the effect the
paper's design avoids.
"""

import pytest

from repro.apps.placement import build_placement_flow
from repro.apps.timing import build_timing_flow
from repro.baselines import dedicated_sim_executor
from repro.sim import SimExecutor, paper_testbed

from conftest import record_table


@pytest.fixture(scope="module")
def tflow():
    return build_timing_flow(num_views=128, num_gates=40, paths_per_view=4)


@pytest.fixture(scope="module")
def pflow():
    return build_placement_flow(num_cells=40, iterations=20, num_matchers=32, window_size=1)


def test_ablation_dedicated_workers(tflow, pflow, benchmark):
    def measure():
        out = {}
        for name, flow in (("timing", tflow), ("placement", pflow)):
            for cores in (8, 16, 40):
                m = paper_testbed(cores, 4)
                out[(name, cores, "uniform")] = (
                    SimExecutor(m, flow.cost_model).run(flow.graph).makespan
                )
                out[(name, cores, "dedicated")] = (
                    dedicated_sim_executor(m, flow.cost_model).run(flow.graph).makespan
                )
        return out

    res = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for name in ("timing", "placement"):
        for cores in (8, 16, 40):
            uni = res[(name, cores, "uniform")]
            ded = res[(name, cores, "dedicated")]
            rows.append((name, cores, uni, ded, ded / uni))
    record_table(
        "ABL-DEDIC: uniform vs dedicated GPU workers (4 GPUs)",
        ["workload", "cores", "uniform_s", "dedicated_s", "ded/uni"],
        rows,
        notes="dedicated mode reserves 4 of the cores for GPU dispatch only; "
        "the paper's uniform-worker design never idles them",
    )

    # the paper's argument: pinning workers wastes cores whenever CPU
    # work dominates.  Placement is CPU-heavy (sequential partition +
    # parallel matching), so dedicated mode must lose there, and lose
    # hardest when cores are scarce.
    for cores in (8, 16, 40):
        assert res[("placement", cores, "dedicated")] >= res[("placement", cores, "uniform")] - 1e-9
    assert res[("placement", 8, "dedicated")] / res[("placement", 8, "uniform")] > 1.2
    # on the GPU-bound timing workload the penalty shrinks (and the
    # always-ready dispatchers can even edge ahead at mid core counts);
    # the point is it never helps where CPU work is the bottleneck
    assert (
        res[("timing", 40, "dedicated")] / res[("timing", 40, "uniform")]
        < res[("placement", 8, "dedicated")] / res[("placement", 8, "uniform")]
    )
