"""EXT-DIST — distributed scheduler scaling (future-work extension).

Not a paper figure: §VI states "future work will focus on distributing
our scheduler based on [46]" (DtCraft).  This bench records how the
two evaluation workloads behave when their task graphs are partitioned
across cluster nodes: the view-parallel timing workload scales
near-linearly, the iteration-chained placement workload does not —
distribution has the same structural limits as intra-node scaling.
"""

import pytest

from repro.apps.placement import build_placement_flow
from repro.apps.timing import build_timing_flow
from repro.dist import ClusterSpec, DistSimExecutor
from repro.sim import paper_testbed

from conftest import record_table

NODES = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def tflow():
    return build_timing_flow(num_views=256, num_gates=40, paths_per_view=4)


@pytest.fixture(scope="module")
def pflow():
    return build_placement_flow(num_cells=30, iterations=20, num_matchers=32, window_size=1)


def test_ext_dist_scaling(tflow, pflow, benchmark):
    def sweep():
        out = {}
        for name, flow in (("timing", tflow), ("placement", pflow)):
            for nn in NODES:
                cl = ClusterSpec(nn, paper_testbed(10, 1))
                rep = DistSimExecutor(cl, flow.cost_model).run(flow.graph)
                out[(name, nn)] = rep
        return out

    res = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name in ("timing", "placement"):
        base = res[(name, 1)].makespan
        for nn in NODES:
            r = res[(name, nn)]
            rows.append(
                (
                    name,
                    nn,
                    r.makespan,
                    base / r.makespan,
                    r.messages,
                    r.partition.cut_fraction,
                )
            )
    record_table(
        "EXT-DIST: distributed scheduling over N nodes (10 cores + 1 GPU each)",
        ["workload", "nodes", "sim_s", "speedup", "messages", "cut_frac"],
        rows,
        notes="extension of paper SVI future work (DtCraft-based distribution); "
        "view-parallel timing scales, iteration-chained placement does not",
    )

    # 1 node: no messages, matches the local simulator exactly
    assert res[("timing", 1)].messages == 0
    # timing scales: >= 2.8x at 4 nodes, >= 4.5x at 8
    t = {nn: res[("timing", nn)].makespan for nn in NODES}
    assert t[1] / t[4] > 2.8
    assert t[1] / t[8] > 4.5
    # placement is chain-bound: < 1.5x at 8 nodes
    p = {nn: res[("placement", nn)].makespan for nn in NODES}
    assert p[1] / p[8] < 1.5
    # partitioner keeps cuts modest on the parallel workload
    assert res[("timing", 8)].partition.cut_fraction < 0.25


def test_ext_dist_network_sensitivity(tflow, benchmark):
    """Makespan degrades gracefully as the fabric slows down."""

    def sweep():
        out = {}
        for bw in (25e9, 3.1e9, 0.125e9):  # 200GbE, 25GbE, 1GbE
            cl = ClusterSpec(4, paper_testbed(10, 1), net_bandwidth=bw)
            out[bw] = DistSimExecutor(cl, tflow.cost_model).run(tflow.graph).makespan
        return out

    res = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "EXT-DIST-NET: 4-node timing makespan vs fabric bandwidth",
        ["bandwidth_GBps", "sim_s"],
        [(bw / 1e9, s) for bw, s in sorted(res.items(), reverse=True)],
    )
    ordered = [res[bw] for bw in sorted(res, reverse=True)]
    assert ordered[0] <= ordered[1] <= ordered[2]
