"""ABL-PLACE — Algorithm 1 vs round-robin device placement.

The paper packs each kernel+pull group onto the GPU bin with minimum
load.  This ablation builds a skewed workload (a few heavy groups,
many light ones) and compares load imbalance and simulated makespan
against naive round-robin packing.
"""

import numpy as np
import pytest

from repro.baselines import RoundRobinPlacement
from repro.core import Heteroflow
from repro.core.placement import DevicePlacement
from repro.sim import CostModel, MachineSpec, SimExecutor

from conftest import record_table

#: group kernel costs: heavy-tailed, the regime where balance matters.
#: The two heavy groups sit 4 apart so creation-order round-robin over
#: 4 GPUs stacks them on the same bin — the failure mode balanced
#: packing is immune to (it packs heaviest-first onto the least-loaded
#: bin regardless of arrival order).
GROUP_COSTS = [8.0, 1.0, 1.0, 1.0, 8.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5]


def build_flow():
    hf = Heteroflow("skewed")
    cm = CostModel()
    for cost in GROUP_COSTS:
        p = hf.pull(np.zeros(int(cost * 1000)))
        k = hf.kernel(lambda a: None, p)
        p.precede(k)
        cm.annotate_copy(p, cost * 1e6)
        cm.annotate_kernel(k, cost)
    return hf, cm


def run_with(placement):
    hf, cm = build_flow()
    machine = MachineSpec(8, 4, kernel_slots=1)
    sim = SimExecutor(machine, cm, placement=placement.place)
    report = sim.run(hf)
    return report


def test_ablation_placement(benchmark):
    def measure():
        balanced = run_with(DevicePlacement())
        rr = run_with(RoundRobinPlacement())
        return balanced, rr

    balanced, rr = benchmark.pedantic(measure, rounds=1, iterations=1)

    record_table(
        "ABL-PLACE: Algorithm 1 vs round-robin placement (skewed groups)",
        ["policy", "makespan_s", "load_imbalance", "max_gpu_load"],
        [
            (
                "algorithm-1",
                balanced.makespan,
                balanced.placement.load_imbalance,
                max(balanced.placement.loads),
            ),
            (
                "round-robin",
                rr.makespan,
                rr.placement.load_imbalance,
                max(rr.placement.loads),
            ),
        ],
        notes="balanced bin packing keeps the heavy groups apart; round-robin "
        "stacks them by arrival order",
    )

    assert balanced.placement.load_imbalance <= rr.placement.load_imbalance
    assert balanced.makespan <= rr.makespan + 1e-9
    # with this skew the gap is structural, not noise
    assert rr.makespan / balanced.makespan > 1.3


def test_ablation_placement_pass_cost(benchmark):
    """Placement itself is cheap: microbenchmark of Algorithm 1 over a
    thousand-group graph."""
    hf = Heteroflow()
    for _ in range(1000):
        p = hf.pull([0])
        hf.kernel(lambda a: None, p)
    placement = DevicePlacement()
    result = benchmark(lambda: placement.place(hf.nodes, 4))
    assert result.num_groups == 1000
