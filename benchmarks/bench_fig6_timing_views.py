"""FIG6b — timing-analysis runtime vs problem size (number of views).

The lower half of Fig. 6: runtime against 32/64/128/256/512/1024
views at fixed hardware points.  The paper's claim: "at any point,
increasing the number of CPUs or GPUs can all reduce the runtime",
and runtime grows with the view count.
"""

import pytest

from repro.apps.timing import build_timing_flow
from repro.sim import SimExecutor, paper_testbed

from conftest import record_table

VIEW_COUNTS = (32, 64, 128, 256, 512, 1024)
HW_POINTS = ((8, 1), (8, 4), (40, 1), (40, 4))


@pytest.fixture(scope="module")
def flows():
    return {
        v: build_timing_flow(num_views=v, num_gates=60, paths_per_view=8)
        for v in VIEW_COUNTS
    }


def test_fig6_views_sweep(flows, benchmark):
    def sweep():
        out = {}
        for v, flow in flows.items():
            for c, g in HW_POINTS:
                out[(v, c, g)] = (
                    SimExecutor(paper_testbed(c, g), flow.cost_model)
                    .run(flow.graph)
                    .makespan_minutes
                )
        return out

    res = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (v, c, g, res[(v, c, g)]) for v in VIEW_COUNTS for (c, g) in HW_POINTS
    ]
    record_table(
        "FIG6b: timing runtime (minutes) vs number of views",
        ["views", "cores", "gpus", "sim_min"],
        rows,
        notes="paper claim: runtime grows with views; at any size, more CPUs "
        "or GPUs reduce runtime",
    )

    # runtime grows with the view count at every hardware point
    for c, g in HW_POINTS:
        series = [res[(v, c, g)] for v in VIEW_COUNTS]
        assert all(b > a for a, b in zip(series, series[1:]))
    # near-linear growth at the largest machine (pipelined throughput)
    big = [res[(v, 40, 4)] for v in VIEW_COUNTS]
    assert 20 < big[-1] / big[0] < 40  # 32x more views -> ~32x time
    # more hardware helps at every size
    for v in VIEW_COUNTS:
        assert res[(v, 40, 4)] <= res[(v, 8, 4)] + 1e-9
        assert res[(v, 8, 4)] <= res[(v, 8, 1)] + 1e-9
