"""FIG9a — detailed-placement runtime vs CPU cores x GPUs (bigblue4).

The upper plots of Fig. 9: the 50-iteration flattened placement graph
with bigblue4-calibrated costs, swept over cores and GPUs.  Key paper
claims: 58.41s @ (1 core, 1 GPU) vs 14.02s @ (40, 1); concurrency
saturates around 20 cores; 4 GPUs buy almost nothing (13.61s vs
14.02s) because the workload has one GPU placement group.
"""

import pytest

from repro.apps.placement import build_placement_flow
from repro.sim import SimExecutor, paper_testbed

from conftest import record_table

PAPER_ANCHORS = {
    (1, 1): 58.41,
    (40, 1): 14.02,
    (40, 4): 13.61,
}

CORES = (1, 8, 16, 20, 24, 32, 40)
GPUS = (1, 4)


@pytest.fixture(scope="module")
def flow():
    # 50 iterations (the paper's typical convergence count), 32
    # matching windows per iteration, bigblue4-scale cost annotations
    return build_placement_flow(
        num_cells=40, iterations=50, num_matchers=32, window_size=1
    )


def test_fig9_scaling_grid(flow, benchmark):
    def sweep():
        return {
            (c, g): SimExecutor(paper_testbed(c, g), flow.cost_model)
            .run(flow.graph)
            .makespan
            for c in CORES
            for g in GPUS
        }

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (c, g, grid[(c, g)], PAPER_ANCHORS.get((c, g), ""))
        for c in CORES
        for g in GPUS
    ]
    record_table(
        "FIG9a: placement runtime (seconds) vs cores x GPUs, bigblue4 50 iters",
        ["cores", "gpus", "sim_s", "paper_s"],
        rows,
        notes="claims: CPU scaling saturates ~20 cores; 1 GPU is enough",
    )

    # anchors
    assert grid[(1, 1)] == pytest.approx(58.41, rel=0.15)
    assert grid[(40, 1)] == pytest.approx(14.02, rel=0.20)
    assert grid[(40, 4)] == pytest.approx(13.61, rel=0.20)
    # saturation: most of the gain arrives by 20 cores
    assert grid[(1, 1)] / grid[(20, 1)] > 3.0
    assert grid[(20, 1)] / grid[(40, 1)] < 1.25
    # GPUs barely help
    for c in CORES:
        assert grid[(c, 1)] / grid[(c, 4)] < 1.1
    # monotone in cores
    for g in GPUS:
        series = [grid[(c, g)] for c in CORES]
        assert all(b <= a + 0.25 for a, b in zip(series, series[1:]))


def test_fig9_single_gpu_group(flow, benchmark):
    """Structural check behind the no-multi-GPU-gain claim: Algorithm 1
    packs the whole flow into one placement group."""
    from repro.core.placement import DevicePlacement

    res = benchmark(lambda: DevicePlacement().place(flow.graph.nodes, 4))
    assert res.num_groups == 1
    busy = [l for l in res.loads if l > 0]
    assert len(busy) == 1
