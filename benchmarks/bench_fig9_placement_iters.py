"""FIG9b — detailed-placement runtime vs problem size (iterations).

The lower half of Fig. 9: runtime against the iteration count used to
flatten the task graph.  Paper anchors: 5 iterations under 4 GPUs run
in 6.35s with 1 core and 1.44s with 40 cores.
"""

import pytest

from repro.apps.placement import build_placement_flow
from repro.sim import SimExecutor, paper_testbed

from conftest import record_table

ITER_COUNTS = (5, 10, 20, 30, 40, 50)
HW_POINTS = ((1, 4), (8, 4), (40, 4))

PAPER_ANCHORS = {(5, 1, 4): 6.35, (5, 40, 4): 1.44}


@pytest.fixture(scope="module")
def flows():
    return {
        i: build_placement_flow(
            num_cells=40, iterations=i, num_matchers=32, window_size=1
        )
        for i in ITER_COUNTS
    }


def test_fig9_iterations_sweep(flows, benchmark):
    def sweep():
        out = {}
        for i, flow in flows.items():
            for c, g in HW_POINTS:
                out[(i, c, g)] = (
                    SimExecutor(paper_testbed(c, g), flow.cost_model)
                    .run(flow.graph)
                    .makespan
                )
        return out

    res = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (i, c, g, res[(i, c, g)], PAPER_ANCHORS.get((i, c, g), ""))
        for i in ITER_COUNTS
        for (c, g) in HW_POINTS
    ]
    record_table(
        "FIG9b: placement runtime (seconds) vs iterations",
        ["iters", "cores", "gpus", "sim_s", "paper_s"],
        rows,
        notes="paper: 6.35s @ (5 iters, 1 core) and 1.44s @ (5 iters, 40 cores); "
        "CPU cores reduce runtime at every size, GPUs do not",
    )

    # anchors
    assert res[(5, 1, 4)] == pytest.approx(6.35, rel=0.15)
    assert res[(5, 40, 4)] == pytest.approx(1.44, rel=0.20)
    # runtime ~linear in iterations (dependency chain between iterations)
    for c, g in HW_POINTS:
        series = [res[(i, c, g)] for i in ITER_COUNTS]
        assert all(b > a for a, b in zip(series, series[1:]))
        assert 8 < series[-1] / series[0] < 12  # 10x iterations -> ~10x
    # cores help at every size
    for i in ITER_COUNTS:
        assert res[(i, 40, 4)] < res[(i, 8, 4)] < res[(i, 1, 4)]
