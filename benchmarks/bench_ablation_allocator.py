"""ABL-POOL — Buddy-allocator memory pool vs naive allocation.

The paper keeps a per-GPU Buddy pool "to reduce the scheduling
overhead of frequent allocations by pull tasks".  This ablation
measures (a) raw allocate/free throughput of the buddy pool against a
naive allocator that zeroes a fresh numpy buffer per request (the
cudaMalloc stand-in), and (b) buffer reuse across ``run_n`` passes in
the real executor.
"""

import numpy as np
import pytest

from repro.core import Executor, Heteroflow
from repro.gpu.buddy import BuddyAllocator

from conftest import record_table

SIZES = [256, 1024, 4096, 16384, 65536]
ROUNDS = 200


def buddy_workload():
    a = BuddyAllocator(1 << 24, min_block=256)
    for _ in range(ROUNDS):
        offs = [a.allocate(s) for s in SIZES]
        for off in offs:
            a.free(off)
    return a


#: modeled latency of one cudaMalloc/cudaFree driver call.  Real
#: drivers take 10-1000us per call because allocation synchronizes the
#: device; 20us is a deliberately *favourable* figure for the naive
#: side.  (A bare numpy allocation would be dishonest as a stand-in:
#: lazy calloc costs ~1us and nothing like a device allocation.)
DRIVER_CALL_SECONDS = 20e-6


def _driver_call():
    import time

    end = time.perf_counter() + DRIVER_CALL_SECONDS
    while time.perf_counter() < end:
        pass


class NaiveAllocator:
    """cudaMalloc-per-request stand-in: fresh storage plus the modeled
    per-call driver latency on both allocate and free."""

    def __init__(self):
        self.live = {}
        self._next = 0

    def allocate(self, nbytes):
        _driver_call()
        buf = np.zeros(nbytes, dtype=np.uint8)
        self._next += 1
        self.live[self._next] = buf
        return self._next

    def free(self, handle):
        _driver_call()
        del self.live[handle]


def naive_workload():
    a = NaiveAllocator()
    for _ in range(ROUNDS):
        offs = [a.allocate(s) for s in SIZES]
        for off in offs:
            a.free(off)
    return a


def test_ablation_pool_buddy(benchmark):
    a = benchmark(buddy_workload)
    assert a.bytes_in_use == 0


def test_ablation_pool_naive(benchmark):
    a = benchmark(naive_workload)
    assert not a.live


def test_ablation_pool_comparison(benchmark):
    import time

    def compare():
        t0 = time.perf_counter()
        buddy_workload()
        buddy_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        naive_workload()
        naive_s = time.perf_counter() - t0
        return buddy_s, naive_s

    buddy_s, naive_s = benchmark.pedantic(compare, rounds=1, iterations=1)
    record_table(
        "ABL-POOL: buddy pool vs naive allocation "
        f"({ROUNDS} rounds x {len(SIZES)} sizes)",
        ["allocator", "seconds", "relative"],
        [
            ("buddy-pool", buddy_s, 1.0),
            ("naive-zeroing", naive_s, naive_s / buddy_s),
        ],
        notes="naive allocation pays a modeled 20us driver call per "
        "allocate/free (favourable to it; real cudaMalloc is often worse); "
        "the pool never touches the driver after warm-up",
    )
    assert naive_s > buddy_s  # pooling must win at these sizes


def test_ablation_pool_reuse_across_passes(benchmark):
    """The executor reuses a pull task's device buffer across run_n
    passes: allocation count stays at one per pull task."""
    hf = Heteroflow()
    data = np.zeros(4096)
    pull = hf.pull(data)
    push = hf.push(pull, data)
    pull.precede(push)

    def run():
        with Executor(1, 1) as ex:
            ex.run_n(hf, 20).result()
            return ex.gpu_runtime.device(0).heap.alloc_count

    allocs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert allocs == 1  # 20 passes, one allocation
