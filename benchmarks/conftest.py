"""Benchmark harness plumbing.

Each bench module regenerates one paper artifact (table/figure series)
and registers a human-readable table via :func:`record_table`; a
``pytest_terminal_summary`` hook prints every table after the
benchmark run (so the series survive pytest's output capture) and
mirrors them into ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

_TABLES: List[str] = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    notes: str = "",
) -> str:
    """Format and register one paper-vs-measured table."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(_fmt(v).rjust(w) for v, w in zip(r, widths)))
    if notes:
        lines.append(notes)
    text = "\n".join(lines)
    _TABLES.append(text)
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    fname = title.split(":")[0].strip().lower().replace(" ", "_").replace("/", "-")
    with open(os.path.join(_RESULTS_DIR, f"{fname}.txt"), "w") as fh:
        fh.write(text + "\n")
    return text


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("#" * 72)
    terminalreporter.write_line("# Reproduction tables (paper vs measured)")
    terminalreporter.write_line("#" * 72)
    for t in _TABLES:
        terminalreporter.write_line("")
        for line in t.splitlines():
            terminalreporter.write_line(line)
