"""Benchmark harness plumbing.

Each bench module regenerates one paper artifact (table/figure series)
and registers a human-readable table via :func:`record_table`; a
``pytest_terminal_summary`` hook prints every table after the
benchmark run (so the series survive pytest's output capture) and
mirrors them into ``benchmarks/results/`` — twice per table: a
``<name>.txt`` rendering for humans and a structured
``BENCH_<name>.json`` record (schema ``repro.bench/1``) for scripts
and regression tooling.  The JSON record carries the same headers and
rows plus an optional ``meta`` payload (e.g. a
:class:`repro.metrics.RunReport` dict or executor counter snapshot);
see docs/observability.md for the record layout.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

#: schema identifier stamped into every BENCH_*.json record
BENCH_SCHEMA = "repro.bench/1"

_TABLES: List[str] = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _jsonable(v):
    """Coerce table cells (numpy scalars included) to JSON types."""
    if isinstance(v, bool) or v is None or isinstance(v, (int, float, str)):
        return v
    for cast in (int, float):
        try:
            coerced = cast(v)
        except (TypeError, ValueError):
            continue
        if coerced == v:
            return coerced
    return str(v)


def record_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    notes: str = "",
    meta: Optional[Dict] = None,
) -> str:
    """Format and register one paper-vs-measured table.

    Writes ``results/<name>.txt`` (the rendered table) and
    ``results/BENCH_<name>.json`` (the structured record).  *meta*, if
    given, is embedded verbatim in the JSON record — use it for
    machine-readable context the table itself elides (RunReport dicts,
    counter snapshots, config parameters).
    """
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(_fmt(v).rjust(w) for v, w in zip(r, widths)))
    if notes:
        lines.append(notes)
    text = "\n".join(lines)
    _TABLES.append(text)
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    fname = title.split(":")[0].strip().lower().replace(" ", "_").replace("/", "-")
    with open(os.path.join(_RESULTS_DIR, f"{fname}.txt"), "w") as fh:
        fh.write(text + "\n")
    record = {
        "schema": BENCH_SCHEMA,
        "name": fname,
        "title": title,
        "headers": [str(h) for h in headers],
        "rows": [[_jsonable(v) for v in r] for r in rows],
        "notes": notes,
        "meta": meta or {},
    }
    with open(os.path.join(_RESULTS_DIR, f"BENCH_{fname}.json"), "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    return text


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("#" * 72)
    terminalreporter.write_line("# Reproduction tables (paper vs measured)")
    terminalreporter.write_line("#" * 72)
    for t in _TABLES:
        terminalreporter.write_line("")
        for line in t.splitlines():
            terminalreporter.write_line(line)
