"""FIG6a — timing-analysis runtime vs CPU cores x GPUs (netcard, 1024 views).

Rebuilds the paper's primary scaling study: the Fig.-5 correlation
graph over 1024 views with netcard-calibrated task costs, replayed on
the virtual-time machine at every (cores, gpus) point of Fig. 6's
upper plots.  Absolute numbers come from the calibrated cost model;
the assertions pin the *shape* (see EXPERIMENTS.md for the
paper-vs-measured discussion).
"""

import pytest

from repro.apps.timing import build_timing_flow
from repro.sim import SimExecutor, paper_testbed

from conftest import record_table

#: the paper's quoted minutes at the anchor points
PAPER_ANCHORS = {
    (1, 1): 99,
    (1, 4): 51,
    (8, 4): 23,
    (16, 4): 18,
    (24, 4): 15,
    (32, 4): 14,
    (40, 4): 13,
    (40, 1): 36,
    (40, 2): 21,
    (40, 3): 15,
}

CORES = (1, 8, 16, 24, 32, 40)
GPUS = (1, 2, 3, 4)


@pytest.fixture(scope="module")
def flow():
    # full 1024-view workload; tiny functional payloads, paper-scale costs
    return build_timing_flow(num_views=1024, num_gates=60, paths_per_view=8)


def simulate(flow, cores, gpus):
    return SimExecutor(paper_testbed(cores, gpus), flow.cost_model).run(flow.graph)


def test_fig6_full_grid(flow, benchmark):
    def sweep():
        return {
            (c, g): simulate(flow, c, g).makespan_minutes for c in CORES for g in GPUS
        }

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for c in CORES:
        for g in GPUS:
            paper = PAPER_ANCHORS.get((c, g), "")
            rows.append((c, g, grid[(c, g)], paper))
    record_table(
        "FIG6a: timing runtime (minutes) vs cores x GPUs, netcard 1024 views",
        ["cores", "gpus", "sim_min", "paper_min"],
        rows,
        notes="shape claims: monotone in cores and GPUs; GPU scaling more "
        "remarkable per unit; 99min @ (1,1) -> 13min @ (40,4) is 7.7x in the "
        "paper, reproduced here as "
        f"{grid[(1, 1)] / grid[(40, 4)]:.1f}x. Mid-range CPU points run "
        "faster than the paper's (work-conserving simulator; see EXPERIMENTS.md).",
    )

    # corner anchors within tolerance
    assert grid[(1, 1)] == pytest.approx(99, rel=0.15)
    assert grid[(1, 4)] == pytest.approx(51, rel=0.15)
    assert grid[(40, 1)] == pytest.approx(36, rel=0.25)
    # end-to-end speed-up severalfold (paper: 7.7x)
    assert 5 <= grid[(1, 1)] / grid[(40, 4)] <= 15
    # monotone along both axes
    for g in GPUS:
        series = [grid[(c, g)] for c in CORES]
        assert all(b <= a + 0.5 for a, b in zip(series, series[1:]))
    for c in CORES:
        series = [grid[(c, g)] for g in GPUS]
        assert all(b <= a + 0.5 for a, b in zip(series, series[1:]))


def test_fig6_gpu_speedup_dominates(flow, benchmark):
    """Paper: 'speed-up from multiple GPUs is more remarkable than CPUs'."""

    def measure():
        return (
            simulate(flow, 40, 1).makespan,
            simulate(flow, 40, 4).makespan,
            simulate(flow, 1, 4).makespan,
            simulate(flow, 40, 4).makespan,
        )

    t_g1, t_g4, t_c1, t_c40 = benchmark.pedantic(measure, rounds=1, iterations=1)
    per_gpu = (t_g1 / t_g4) / 4
    per_cpu = (t_c1 / t_c40) / 40
    record_table(
        "FIG6a-aux: per-unit speed-up",
        ["resource", "speedup", "units", "per-unit"],
        [
            ("GPUs 1->4 @40c", t_g1 / t_g4, 4, per_gpu),
            ("cores 1->40 @4g", t_c1 / t_c40, 40, per_cpu),
        ],
    )
    assert per_gpu > per_cpu
