"""ABL-STEAL — work-stealing LIFO vs central-queue FIFO scheduling.

Two measurements:

1. On the virtual-time model: the Fig.-5 timing workload scheduled
   depth-first (work-stealing owner-LIFO, the paper's discipline) vs
   breadth-first (one central FIFO queue).  Depth-first reaches the
   GPU stages of each view sooner, so the GPU fills earlier and the
   makespan shrinks at low worker counts.
2. On real threads: raw throughput of the work-stealing deque under
   an owner + thieves against a single shared locked queue.
"""

import queue
import threading

import pytest

from repro.apps.timing import build_timing_flow
from repro.baselines import central_queue_sim_executor
from repro.core.wsq import WorkStealingQueue
from repro.sim import MachineSpec, SimExecutor

from conftest import record_table


@pytest.fixture(scope="module")
def flow():
    return build_timing_flow(num_views=128, num_gates=40, paths_per_view=4)


def test_ablation_stealing_schedule_quality(flow, benchmark):
    def measure():
        out = {}
        for cores in (1, 2, 4):
            m = MachineSpec(cores, 1)
            out[("lifo", cores)] = SimExecutor(m, flow.cost_model).run(flow.graph).makespan
            out[("fifo", cores)] = (
                central_queue_sim_executor(m, flow.cost_model).run(flow.graph).makespan
            )
        return out

    res = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        (cores, res[("lifo", cores)], res[("fifo", cores)],
         res[("fifo", cores)] / res[("lifo", cores)])
        for cores in (1, 2, 4)
    ]
    record_table(
        "ABL-STEAL: depth-first (stealing) vs breadth-first (central queue)",
        ["cores", "lifo_s", "fifo_s", "fifo/lifo"],
        rows,
        notes="breadth-first drains all host tasks before any pull/kernel "
        "reaches the GPU; depth-first pipelines each view immediately",
    )
    for cores in (1, 2, 4):
        assert res[("fifo", cores)] >= res[("lifo", cores)] - 1e-9
    assert res[("fifo", 1)] / res[("lifo", 1)] > 1.2


N_ITEMS = 20000


def _drive_wsq():
    q = WorkStealingQueue()
    consumed = [0, 0]
    done = threading.Event()

    def owner():
        for i in range(N_ITEMS):
            q.push(i)
            if i % 2:
                if q.pop() is not None:
                    consumed[0] += 1
        done.set()

    def thief():
        while not (done.is_set() and q.empty):
            if q.steal() is not None:
                consumed[1] += 1

    ts = [threading.Thread(target=owner), threading.Thread(target=thief)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    return consumed[0] + consumed[1]


def _drive_central():
    q: "queue.Queue" = queue.Queue()
    consumed = [0, 0]
    done = threading.Event()

    def producer():
        for i in range(N_ITEMS):
            q.put(i)
            if i % 2:
                try:
                    q.get_nowait()
                    consumed[0] += 1
                except queue.Empty:
                    pass
        done.set()

    def consumer():
        while not (done.is_set() and q.empty()):
            try:
                q.get(timeout=0.01)
                consumed[1] += 1
            except queue.Empty:
                pass

    ts = [threading.Thread(target=producer), threading.Thread(target=consumer)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    return consumed[0] + consumed[1]


def test_ablation_wsq_throughput(benchmark):
    assert benchmark(_drive_wsq) == N_ITEMS


def test_ablation_central_queue_throughput(benchmark):
    assert benchmark(_drive_central) == N_ITEMS
