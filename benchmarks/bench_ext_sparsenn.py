"""EXT-SNN — sparse-DNN inference scaling (future-work extension).

Not a paper figure: §VI names sparse-NN inference ([47]/[48]) as the
next workload for the runtime, so this bench records its scaling
behaviour on the same virtual-time machine used for Fig. 6/9.  The
expected shape (from ref [48]): throughput scales with GPUs (weight
shards are independent), CPUs contribute only dispatch, and block
pipelining hides the layer-chain latency.
"""

import numpy as np
import pytest

from repro.apps.sparsenn import build_inference_flow
from repro.apps.sparsenn.flow import reference_categories
from repro.core import Executor
from repro.sim import SimExecutor, paper_testbed

from conftest import record_table


@pytest.fixture(scope="module")
def flow():
    return build_inference_flow(
        width=64,
        num_layers=24,
        batch_size=64,
        num_blocks=16,
        num_shards=4,
        paper_nnz_scale=2e4,
    )


def test_ext_snn_scaling(flow, benchmark):
    def sweep():
        out = {}
        for cores, gpus in [(1, 1), (4, 1), (8, 1), (4, 2), (4, 4), (8, 4), (40, 4)]:
            out[(cores, gpus)] = (
                SimExecutor(paper_testbed(cores, gpus), flow.cost_model)
                .run(flow.graph)
                .makespan
            )
        return out

    res = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(c, g, res[(c, g)]) for (c, g) in sorted(res)]
    record_table(
        "EXT-SNN: sparse-DNN inference runtime (seconds) vs cores x GPUs",
        ["cores", "gpus", "sim_s"],
        rows,
        notes="extension of paper SVI future work; shards scale with GPUs, "
        "CPUs only dispatch",
    )
    # GPU-bound scaling: GPUs help superlinearly vs CPUs
    assert res[(4, 4)] < res[(4, 2)] < res[(4, 1)]
    assert res[(4, 2)] / res[(4, 4)] > 1.5
    # extra CPUs beyond dispatch needs buy ~nothing
    assert res[(8, 4)] / res[(40, 4)] < 1.15


def test_ext_snn_functional_latency(benchmark):
    """Wall-clock latency of a real inference on the threaded runtime."""
    flow = build_inference_flow(
        width=48, num_layers=6, batch_size=24, num_blocks=4, num_shards=2
    )
    with Executor(2, 2) as ex:
        benchmark.pedantic(
            lambda: ex.run(flow.graph).result(), rounds=3, iterations=1
        )
    assert np.array_equal(flow.categories, reference_categories(flow))
