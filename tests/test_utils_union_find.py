"""Unit and property tests for the union-find substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.union_find import UnionFind


class TestBasics:
    def test_singletons_are_their_own_roots(self):
        uf = UnionFind(["a", "b"])
        assert uf.find("a") == "a"
        assert uf.find("b") == "b"
        assert not uf.connected("a", "b")

    def test_find_adds_unseen_elements(self):
        uf = UnionFind()
        assert uf.find(42) == 42
        assert 42 in uf
        assert len(uf) == 1

    def test_union_connects(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert uf.connected(1, 2)
        assert uf.set_size(1) == 2

    def test_union_is_idempotent(self):
        uf = UnionFind()
        uf.union(1, 2)
        root = uf.find(1)
        assert uf.union(1, 2) == root
        assert uf.set_size(2) == 2

    def test_transitive_union(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")
        assert uf.set_size("c") == 3

    def test_disjoint_sets_stay_disjoint(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        assert not uf.connected(1, 3)
        assert sorted(len(m) for m in uf.groups().values()) == [2, 2]

    def test_roots_one_per_group(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(2, 3)
        assert len(uf.roots()) == 4

    def test_groups_cover_all_elements(self):
        uf = UnionFind(range(5))
        uf.union(0, 4)
        members = [x for g in uf.groups().values() for x in g]
        assert sorted(members) == list(range(5))

    def test_iteration_yields_every_element(self):
        uf = UnionFind("xyz")
        assert sorted(uf) == ["x", "y", "z"]


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=80
    )
)
def test_matches_naive_partition(edges):
    """Union-find agrees with a brute-force connected-components pass."""
    uf = UnionFind(range(31))
    for a, b in edges:
        uf.union(a, b)

    # brute force: iterate to fixpoint over an explicit partition
    labels = list(range(31))

    def root(v):
        while labels[v] != v:
            v = labels[v]
        return v

    for a, b in edges:
        ra, rb = root(a), root(b)
        if ra != rb:
            labels[rb] = ra

    for a in range(31):
        for b in range(31):
            assert uf.connected(a, b) == (root(a) == root(b))


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60
    )
)
def test_set_sizes_partition_the_universe(edges):
    uf = UnionFind(range(21))
    for a, b in edges:
        uf.union(a, b)
    sizes = {uf.find(x) for x in range(21)}
    assert sum(uf.set_size(r) for r in sizes) == 21
