"""Tests for launch configs, kernel contexts, and argument conversion."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import KernelError
from repro.gpu.kernel import (
    KernelContext,
    LaunchConfig,
    PointerCaster,
    config_for,
    convert_argument,
    launch_sync,
)
from repro.utils.span import Late


class TestLaunchConfig:
    def test_defaults(self):
        c = LaunchConfig()
        assert c.total_threads == 1

    def test_thread_accounting(self):
        c = LaunchConfig(grid=(4, 2, 1), block=(32, 2, 1))
        assert c.threads_per_block == 64
        assert c.num_blocks == 8
        assert c.total_threads == 512

    def test_rejects_oversized_block(self):
        with pytest.raises(KernelError):
            LaunchConfig(block=(2048, 1, 1))

    def test_rejects_zero_dim(self):
        with pytest.raises(KernelError):
            LaunchConfig(grid=(0, 1, 1))

    def test_rejects_negative_shm(self):
        with pytest.raises(KernelError):
            LaunchConfig(shm=-1)

    def test_rejects_non_3tuple(self):
        with pytest.raises(KernelError):
            LaunchConfig(grid=(1, 1))

    def test_with_x_builder(self):
        c = LaunchConfig().with_x(grid_x=7, block_x=128)
        assert c.grid == (7, 1, 1)
        assert c.block == (128, 1, 1)

    def test_config_for_covers_n(self):
        c = config_for(1000, block_x=256)
        assert c.total_threads >= 1000
        assert c.grid == (4, 1, 1)

    def test_config_for_zero(self):
        assert config_for(0).total_threads >= 1

    def test_config_for_negative(self):
        with pytest.raises(KernelError):
            config_for(-1)

    @given(st.integers(0, 10**6), st.sampled_from([32, 64, 128, 256, 1024]))
    def test_config_for_minimal_cover(self, n, bx):
        c = config_for(n, bx)
        assert c.total_threads >= n
        assert c.total_threads - n < bx or n == 0


class TestKernelContext:
    def test_flat_indices_cover_all_threads(self):
        ctx = KernelContext(LaunchConfig(grid=(3, 1, 1), block=(4, 1, 1)), 0)
        assert list(ctx.flat_indices()) == list(range(12))

    def test_block_thread_decomposition(self):
        ctx = KernelContext(LaunchConfig(grid=(2, 1, 1), block=(4, 1, 1)), 0)
        i = ctx.flat_indices()
        assert np.array_equal(
            ctx.block_indices_x() * 4 + ctx.thread_indices_x(), i
        )


class TestConversion:
    def test_buffer_decays_to_view(self, gpu2):
        buf = gpu2.device(0).allocate(16, dtype=np.float32)
        out = convert_argument(buf)
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float32

    def test_pointer_caster_reinterprets(self, gpu2):
        buf = gpu2.device(0).allocate(8, dtype=np.uint8)
        view = PointerCaster(buf).cast(np.int64)
        assert view.dtype == np.int64 and view.size == 1

    def test_late_resolution(self):
        assert convert_argument(Late(lambda: 99)) == 99

    def test_plain_args_forwarded(self):
        marker = object()
        assert convert_argument(marker) is marker


class TestLaunch:
    def test_guarded_index_kernel(self, gpu2):
        d = gpu2.device(0)
        s = d.create_stream()
        n = 100
        buf = d.allocate(n * 8, dtype=np.float64)
        buf.view()[:] = 0

        def fill(ctx, n, out):
            i = ctx.flat_indices()
            i = i[i < n]
            out[i] = i

        launch_sync(s, config_for(n), fill, n, buf)
        assert np.array_equal(buf.view()[:n], np.arange(n, dtype=np.float64))

    def test_whole_array_kernel_without_ctx(self, gpu2):
        d = gpu2.device(0)
        s = d.create_stream()
        buf = d.allocate(4 * 8, dtype=np.float64)
        buf.view()[:] = 2.0

        def double(arr):
            arr *= 2

        launch_sync(s, LaunchConfig(), double, buf)
        assert set(buf.view()) == {4.0}

    def test_cross_device_argument_rejected_eagerly(self, gpu2):
        buf0 = gpu2.device(0).allocate(16)
        s1 = gpu2.device(1).create_stream()
        with pytest.raises(KernelError):
            launch_sync(s1, LaunchConfig(), lambda a: None, buf0)

    def test_kernel_exception_propagates(self, gpu2):
        s = gpu2.device(0).create_stream()

        def bad():
            raise ValueError("kernel bug")

        with pytest.raises(ValueError):
            launch_sync(s, LaunchConfig(), bad)


class TestContext2D:
    def test_grid_indices_2d_cover_tile(self):
        ctx = KernelContext(LaunchConfig(grid=(2, 2, 1), block=(4, 2, 1)), 0)
        ix, iy = ctx.grid_indices_2d()
        # 8 columns x 4 rows
        assert ix.size == iy.size == 32
        assert ix.max() == 7 and iy.max() == 3
        pairs = set(zip(ix.tolist(), iy.tolist()))
        assert len(pairs) == 32  # every (x, y) exactly once

    def test_2d_kernel_transposes(self, gpu2):
        d = gpu2.device(0)
        s = d.create_stream()
        h, w = 3, 5
        src = d.allocate(h * w * 8, dtype=np.float64)
        dst = d.allocate(h * w * 8, dtype=np.float64)
        src.view()[: h * w] = np.arange(h * w, dtype=np.float64)

        def transpose(ctx, w, h, a, b):
            ix, iy = ctx.grid_indices_2d()
            keep = (ix < w) & (iy < h)
            ix, iy = ix[keep], iy[keep]
            b[ix * h + iy] = a[iy * w + ix]

        cfg = LaunchConfig(grid=(1, 1, 1), block=(8, 4, 1))
        launch_sync(s, cfg, transpose, w, h, src, dst)
        a = src.view()[: h * w].reshape(h, w)
        b = dst.view()[: h * w].reshape(w, h)
        assert np.array_equal(b, a.T)
