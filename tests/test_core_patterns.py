"""Tests for the composable task-graph patterns."""

import threading

import numpy as np
import pytest

from repro.core import Executor, Heteroflow
from repro.core.patterns import gpu_map, parallel_for, pipeline, reduce_tree
from repro.errors import GraphError


class TestParallelFor:
    def test_covers_every_index_once(self):
        hf = Heteroflow()
        seen = []
        lock = threading.Lock()

        def body(i):
            with lock:
                seen.append(i)

        parallel_for(hf, 37, body, chunk=5)
        with Executor(3, 0) as ex:
            ex.run(hf).result(timeout=30)
        assert sorted(seen) == list(range(37))

    def test_chunk_count(self):
        hf = Heteroflow()
        firsts, lasts = parallel_for(hf, 10, lambda i: None, chunk=4)
        assert len(firsts) == 3  # [0:4][4:8][8:10]
        assert firsts == lasts

    def test_zero_iterations(self):
        hf = Heteroflow()
        firsts, lasts = parallel_for(hf, 0, lambda i: None)
        assert firsts == [] and hf.empty

    def test_fencing(self):
        hf = Heteroflow()
        order = []
        lock = threading.Lock()

        def mark(tag):
            with lock:
                order.append(tag)

        pre = hf.host(lambda: mark("pre"))
        firsts, lasts = parallel_for(hf, 6, lambda i: mark("body"), chunk=2)
        post = hf.host(lambda: mark("post"))
        pre.precede(*firsts)
        post.succeed(*lasts)
        with Executor(3, 0) as ex:
            ex.run(hf).result(timeout=30)
        assert order[0] == "pre" and order[-1] == "post"
        assert order.count("body") == 6

    def test_validation(self):
        hf = Heteroflow()
        with pytest.raises(GraphError):
            parallel_for(hf, -1, lambda i: None)
        with pytest.raises(GraphError):
            parallel_for(hf, 5, lambda i: None, chunk=0)


class TestGpuMap:
    def test_saxpy_via_gpu_map(self):
        hf = Heteroflow()
        x = np.arange(1000, dtype=np.float64)
        y = np.full(1000, 2.0)

        def saxpy(ctx, n, a, xv, yv):
            i = ctx.flat_indices()
            i = i[i < n]
            yv[i] = a * xv[i] + yv[i]

        pulls, pushes, k = gpu_map(
            hf, saxpy, x, y, extra_args=(1000, 3.0), writeback=[False, True]
        )
        assert len(pulls) == 2 and len(pushes) == 1
        assert k.launch_config.grid[0] == 4
        with Executor(2, 1) as ex:
            ex.run(hf).result(timeout=30)
        assert np.allclose(y, 3.0 * x + 2.0)

    def test_all_arrays_pushed_by_default(self):
        hf = Heteroflow()
        a = np.zeros(8)
        b = np.zeros(8)
        _, pushes, _ = gpu_map(hf, lambda u, v: None, a, b)
        assert len(pushes) == 2

    def test_validation(self):
        hf = Heteroflow()
        with pytest.raises(GraphError):
            gpu_map(hf, lambda: None)
        with pytest.raises(GraphError):
            gpu_map(hf, lambda a: None, np.zeros(4), writeback=[True, False])

    def test_composes_with_host_stages(self):
        hf = Heteroflow()
        data = np.zeros(64)
        filled = hf.host(lambda: data.__setitem__(slice(None), 1.0))

        def double(arr):
            arr *= 2

        pulls, pushes, _ = gpu_map(hf, double, data)
        filled.precede(*pulls)
        total = []
        done = hf.host(lambda: total.append(float(data.sum())))
        done.succeed(*pushes)
        with Executor(2, 1) as ex:
            ex.run(hf).result(timeout=30)
        assert total == [128.0]


class TestReduceTree:
    def test_sum_reduction(self):
        hf = Heteroflow()
        values = list(range(16))
        parts = [0.0] * 16
        leaves = []
        for i, v in enumerate(values):
            leaves.append(hf.host(lambda i=i, v=v: parts.__setitem__(i, float(v))))
        acc = {"total": None}
        lock = threading.Lock()

        def combine(level, slot):
            # a simple (idempotent-unsafe but single-rooted) fold: the
            # root recomputes the total once all parts are in place
            with lock:
                acc["total"] = sum(parts)

        root = reduce_tree(hf, leaves, combine)
        with Executor(3, 0) as ex:
            ex.run(hf).result(timeout=30)
        assert acc["total"] == sum(values)
        assert root.num_successors == 0

    def test_tree_depth_logarithmic(self):
        hf = Heteroflow()
        leaves = [hf.host(lambda: None) for _ in range(16)]
        reduce_tree(hf, leaves, lambda l, s: None, arity=2)
        from repro.core.algorithms import graph_stats

        assert graph_stats(hf).depth == 4  # log2(16)

    def test_single_leaf(self):
        hf = Heteroflow()
        called = []
        leaf = hf.host(lambda: None)
        root = reduce_tree(hf, [leaf], lambda l, s: called.append((l, s)))
        with Executor(1, 0) as ex:
            ex.run(hf).result(timeout=10)
        assert called == [(0, 0)]

    def test_validation(self):
        hf = Heteroflow()
        with pytest.raises(GraphError):
            reduce_tree(hf, [], lambda l, s: None)
        with pytest.raises(GraphError):
            reduce_tree(hf, [hf.host(lambda: None)], lambda l, s: None, arity=1)


class TestPipeline:
    def test_stages_run_in_order(self):
        hf = Heteroflow()
        log = []
        first, last = pipeline(
            hf, [lambda: log.append(0), lambda: log.append(1), lambda: log.append(2)]
        )
        with Executor(3, 0) as ex:
            ex.run(hf).result(timeout=10)
        assert log == [0, 1, 2]
        assert first.num_dependents == 0
        assert last.num_successors == 0

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            pipeline(Heteroflow(), [])
