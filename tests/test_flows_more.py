"""Additional flow-level behaviours: injection, convergence, scaling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.placement import build_placement_flow, generate_placement, hpwl
from repro.apps.placement.db import bigblue4_like
from repro.apps.placement.wirelength import net_hpwl
from repro.apps.timing import build_timing_flow, generate_netlist
from repro.apps.timing.netlist import netcard_like
from repro.core import Executor


class TestInjection:
    def test_timing_flow_with_custom_netlist(self):
        nl = generate_netlist(90, seed=42, name="custom")
        flow = build_timing_flow(num_views=2, netlist=nl, paths_per_view=8)
        assert flow.netlist is nl
        assert "custom" in flow.graph.name
        with Executor(2, 1) as ex:
            ex.run(flow.graph).result(timeout=60)
        assert all(0 <= s.accuracy <= 1 for s in flow.states)

    def test_placement_flow_with_custom_db(self):
        db = generate_placement(70, seed=42, name="mine")
        flow = build_placement_flow(iterations=2, db=db)
        assert flow.db is db
        with Executor(2, 1) as ex:
            ex.run(flow.graph).result(timeout=60)
        assert flow.hpwl_trace[-1] <= flow.hpwl_trace[0]

    def test_scaled_stand_ins(self):
        nl = netcard_like(scale=0.0005)  # 750 gates
        assert 700 <= nl.num_gates <= 800
        nl.validate()
        db = bigblue4_like(scale=0.0002)  # 440 cells
        assert 400 <= db.num_cells <= 480
        db.check_legal()


class TestConvergence:
    def test_placement_run_until_convergence(self):
        """Stateful re-execution: run the K-iteration graph repeatedly
        until an entire pass stops improving — adaptive convergence on
        top of the flattened graph, via run_until."""
        flow = build_placement_flow(num_cells=90, iterations=2, seed=3)

        def converged() -> bool:
            # stop when the last full pass recovered (almost) nothing
            per_pass = 2  # iterations per pass
            if len(flow.improvements) < per_pass:
                return False
            return sum(flow.improvements[-per_pass:]) < 1e-9

        with Executor(3, 1) as ex:
            passes = ex.run_until(flow.graph, converged).result(timeout=300)
        assert passes >= 1
        t = flow.hpwl_trace
        assert all(b <= a + 1e-9 for a, b in zip(t, t[1:]))
        assert sum(flow.improvements[-2:]) < 1e-9

    def test_timing_flow_rerun_is_stable(self):
        """Re-running the correlation flow reproduces the same weights
        (deterministic inputs, idempotent passes)."""
        flow = build_timing_flow(num_views=2, num_gates=80, paths_per_view=8, seed=9)
        with Executor(2, 1) as ex:
            ex.run(flow.graph).result(timeout=60)
            w_first = [s.w.copy() for s in flow.states]
            ex.run(flow.graph).result(timeout=60)
        for a, s in zip(w_first, flow.states):
            assert np.allclose(a, s.w)


class TestHpwlProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 200), dx=st.integers(-5, 5), dy=st.integers(-5, 5))
    def test_translation_invariance(self, seed, dx, dy):
        db = generate_placement(40, seed=seed)
        assert hpwl(db, db.x + dx, db.y + dy) == pytest.approx(hpwl(db))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_nonnegative_and_zero_for_coincident(self, seed):
        db = generate_placement(30, seed=seed)
        per_net = net_hpwl(db.net_ptr, db.net_cells, db.x, db.y)
        assert np.all(per_net >= 0)
        # collapse every cell onto one point: HPWL must vanish
        zeros = np.zeros_like(db.x)
        assert hpwl(db, zeros, zeros) == 0.0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100), scale=st.integers(2, 5))
    def test_dilation_scales_linearly(self, seed, scale):
        db = generate_placement(30, seed=seed)
        assert hpwl(db, db.x * scale, db.y * scale) == pytest.approx(
            scale * hpwl(db)
        )


class TestMultiViewSummary:
    def test_worst_view_dominates(self):
        """Across views, every endpooint's worst slack comes from some
        view, and the slow (ss) corner is the worst one most often."""
        from repro.apps.timing import TimingGraph, enumerate_views, run_sta

        tg = TimingGraph.from_netlist(generate_netlist(120, seed=6))
        base = run_sta(tg)
        views = enumerate_views(6, seed=6)
        slacks = np.stack(
            [
                run_sta(tg, v, clock_period=base.clock_period).endpoint_slacks(tg)
                for v in views
            ]
        )
        worst_view = np.argmin(slacks, axis=0)
        corners = [views[i].corner for i in worst_view]
        assert corners.count("ss") > len(corners) / 3
        # per-endpoint worst slack <= every view's slack
        worst = slacks.min(axis=0)
        assert np.all(worst <= slacks + 1e-12)
