"""Tests for the discrete-event engine, machine model, and simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Heteroflow
from repro.errors import SimulationError
from repro.sim import CostModel, EventQueue, MachineSpec, SimExecutor, TaskCost, paper_testbed


class TestEventQueue:
    def test_runs_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule_at(2.0, lambda: log.append("b"))
        q.schedule_at(1.0, lambda: log.append("a"))
        q.schedule_at(3.0, lambda: log.append("c"))
        assert q.run() == 3.0
        assert log == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        log = []
        for i in range(5):
            q.schedule_at(1.0, lambda i=i: log.append(i))
        q.run()
        assert log == [0, 1, 2, 3, 4]

    def test_schedule_after_accumulates(self):
        q = EventQueue()
        times = []
        q.schedule_after(1.0, lambda: q.schedule_after(2.0, lambda: times.append(q.now)))
        q.run()
        assert times == [3.0]

    def test_rejects_past_and_negative(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule_at(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            q.schedule_after(-0.5, lambda: None)

    def test_event_budget(self):
        q = EventQueue()

        def loop():
            q.schedule_after(1.0, loop)

        loop()
        with pytest.raises(SimulationError):
            q.run(max_events=100)


class TestMachineSpec:
    def test_validation(self):
        with pytest.raises(SimulationError):
            MachineSpec(0, 1)
        with pytest.raises(SimulationError):
            MachineSpec(1, -1)
        with pytest.raises(SimulationError):
            MachineSpec(1, 1, kernel_slots=0)

    def test_copy_durations(self):
        m = MachineSpec(1, 1, h2d_bandwidth=1e9, copy_latency=1e-6)
        assert m.h2d_seconds(1e9) == pytest.approx(1.0 + 1e-6)

    def test_with_resources_preserves_rates(self):
        m = paper_testbed()
        m2 = m.with_resources(8, 2)
        assert (m2.num_cores, m2.num_gpus) == (8, 2)
        assert m2.kernel_slots == m.kernel_slots


class TestCostModel:
    def test_annotations_round_trip(self):
        hf = Heteroflow()
        t = hf.host(lambda: None)
        cm = CostModel()
        cm.annotate_host(t, 2.5)
        assert cm.cost_of(t.node).cpu_seconds == 2.5

    def test_defaults_by_type(self):
        hf = Heteroflow()
        h = hf.host(lambda: None)
        p = hf.pull(np.zeros(128))
        k = hf.kernel(lambda: None)
        cm = CostModel(default_host_seconds=9.0)
        assert cm.cost_of(h.node).cpu_seconds == 9.0
        assert cm.cost_of(p.node).copy_bytes == 128 * 8
        assert cm.cost_of(k.node).gpu_seconds == cm.default_kernel_seconds

    def test_unresolvable_span_uses_default_bytes(self):
        hf = Heteroflow()
        p = hf.pull(lambda: not_yet_defined)  # noqa: F821
        cm = CostModel(default_copy_bytes=77.0)
        assert cm.cost_of(p.node).copy_bytes == 77.0

    def test_negative_cost_rejected(self):
        with pytest.raises(SimulationError):
            TaskCost(cpu_seconds=-1)


def chain_graph(k, host_s=1.0):
    hf = Heteroflow()
    cm = CostModel()
    prev = None
    for i in range(k):
        t = hf.host(lambda: None, name=f"t{i}")
        cm.annotate_host(t, host_s)
        if prev is not None:
            prev.precede(t)
        prev = t
    return hf, cm


def fan_graph(k, host_s=1.0):
    hf = Heteroflow()
    cm = CostModel()
    for i in range(k):
        cm.annotate_host(hf.host(lambda: None), host_s)
    return hf, cm


class TestSimulator:
    def test_chain_makespan_is_sum(self):
        hf, cm = chain_graph(5, 2.0)
        rep = SimExecutor(MachineSpec(4, 0), cm).run(hf)
        assert rep.makespan == pytest.approx(10.0)

    def test_fan_makespan_divides_by_cores(self):
        hf, cm = fan_graph(8, 1.0)
        assert SimExecutor(MachineSpec(1, 0), cm).run(hf).makespan == pytest.approx(8.0)
        assert SimExecutor(MachineSpec(4, 0), cm).run(hf).makespan == pytest.approx(2.0)
        assert SimExecutor(MachineSpec(8, 0), cm).run(hf).makespan == pytest.approx(1.0)

    def test_gpu_pipeline_overlaps_cpu(self):
        """CPU work of later items overlaps GPU work of earlier items."""
        hf = Heteroflow()
        cm = CostModel()
        for i in range(4):
            h = hf.host(lambda: None)
            p = hf.pull([0])
            k = hf.kernel(lambda: None, p)
            h.precede(p)
            p.precede(k)
            cm.annotate_host(h, 1.0)
            cm.annotate_copy(p, 0)
            cm.annotate_kernel(k, 1.0)
        m = MachineSpec(1, 1, dispatch_overhead=0.0, copy_latency=0.0, kernel_launch_overhead=0.0)
        rep = SimExecutor(m, cm).run(hf)
        # serial would be 8; the perfect pipeline floor is 5 (4 cpu +
        # 1 gpu tail); realistic event interleaving may add one stage
        assert 5.0 - 1e-9 <= rep.makespan <= 6.0 + 1e-9

    def test_kernel_slots_cap_concurrency(self):
        hf = Heteroflow()
        cm = CostModel()
        for i in range(8):
            p = hf.pull([0])
            k = hf.kernel(lambda: None, p)
            p.precede(k)
            cm.annotate_copy(p, 0)
            cm.annotate_kernel(k, 1.0)
        base = dict(dispatch_overhead=0.0, copy_latency=0.0, kernel_launch_overhead=0.0)
        one = SimExecutor(MachineSpec(8, 1, kernel_slots=1, **base), cm).run(hf)
        four = SimExecutor(MachineSpec(8, 1, kernel_slots=4, **base), cm).run(hf)
        assert one.makespan == pytest.approx(8.0)
        assert four.makespan == pytest.approx(2.0)

    def test_multi_gpu_spreads_groups(self):
        hf = Heteroflow()
        cm = CostModel()
        for i in range(4):
            p = hf.pull([0])
            k = hf.kernel(lambda: None, p)
            p.precede(k)
            cm.annotate_copy(p, 0)
            cm.annotate_kernel(k, 1.0)
        base = dict(dispatch_overhead=0.0, copy_latency=0.0, kernel_launch_overhead=0.0)
        g1 = SimExecutor(MachineSpec(4, 1, kernel_slots=1, **base), cm).run(hf)
        g4 = SimExecutor(MachineSpec(4, 4, kernel_slots=1, **base), cm).run(hf)
        assert g1.makespan == pytest.approx(4.0)
        assert g4.makespan == pytest.approx(1.0)

    def test_copy_time_from_bandwidth(self):
        hf = Heteroflow()
        cm = CostModel()
        p = hf.pull([0])
        cm.annotate_copy(p, 1e9)
        m = MachineSpec(1, 1, h2d_bandwidth=1e9, copy_latency=0.0, dispatch_overhead=0.0)
        rep = SimExecutor(m, cm).run(hf)
        assert rep.makespan == pytest.approx(1.0)

    def test_report_utilization(self):
        hf, cm = fan_graph(4, 1.0)
        rep = SimExecutor(MachineSpec(2, 0), cm).run(hf)
        assert rep.core_utilization == pytest.approx(1.0)
        assert rep.makespan_minutes == pytest.approx(rep.makespan / 60)

    def test_trace_recording(self):
        hf, cm = chain_graph(3)
        rep = SimExecutor(MachineSpec(1, 0), cm, record_trace=True).run(hf)
        hosts = [r for r in rep.trace if r.type == "host"]
        assert len(hosts) == 3
        assert all(r.duration == pytest.approx(1.0) for r in hosts)

    def test_fifo_policy_accepted_lifo_default(self):
        hf, cm = chain_graph(2)
        SimExecutor(MachineSpec(1, 0), cm, ready_policy="fifo").run(hf)
        with pytest.raises(SimulationError):
            SimExecutor(MachineSpec(1, 0), cm, ready_policy="weird")

    def test_dedicated_needs_spare_cores(self):
        with pytest.raises(SimulationError):
            SimExecutor(MachineSpec(2, 2), dedicated_gpu_workers=True)

    def test_dedicated_wastes_reserved_cores(self):
        """With no GPU work, dedicated mode loses the reserved cores."""
        hf, cm = fan_graph(8, 1.0)
        uni = SimExecutor(MachineSpec(4, 2), cm).run(hf)
        ded = SimExecutor(MachineSpec(4, 2), cm, dedicated_gpu_workers=True).run(hf)
        assert uni.makespan == pytest.approx(2.0)
        assert ded.makespan == pytest.approx(4.0)  # only 2 usable cores

    def test_unplaced_graph_with_zero_gpus_raises(self):
        hf = Heteroflow()
        hf.pull([1])
        with pytest.raises(Exception):
            SimExecutor(MachineSpec(1, 0)).run(hf)

    def test_determinism(self):
        from repro.apps.timing import build_timing_flow

        flow = build_timing_flow(num_views=4, num_gates=60, paths_per_view=8)
        a = SimExecutor(paper_testbed(8, 2), flow.cost_model).run(flow.graph)
        b = SimExecutor(paper_testbed(8, 2), flow.cost_model).run(flow.graph)
        assert a.makespan == b.makespan


@settings(max_examples=25, deadline=None)
@given(
    durations=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=20),
    cores=st.integers(1, 8),
)
def test_makespan_bounds(durations, cores):
    """Classical bounds: max(total/cores, longest task) <= makespan
    <= total (independent host tasks, greedy scheduling)."""
    hf = Heteroflow()
    cm = CostModel()
    for d in durations:
        cm.annotate_host(hf.host(lambda: None), d)
    rep = SimExecutor(MachineSpec(cores, 0), cm).run(hf)
    total = sum(durations)
    assert rep.makespan >= max(total / cores, max(durations)) - 1e-9
    assert rep.makespan <= total + 1e-9


@settings(max_examples=15, deadline=None)
@given(cores=st.sampled_from([1, 2, 4, 8, 16]), st_seed=st.integers(0, 3))
def test_more_cores_never_hurt_independent_work(cores, st_seed):
    rng = np.random.default_rng(st_seed)
    durations = rng.uniform(0.1, 2.0, size=30)
    hf = Heteroflow()
    cm = CostModel()
    for d in durations:
        cm.annotate_host(hf.host(lambda: None), float(d))
    t1 = SimExecutor(MachineSpec(cores, 0), cm).run(hf).makespan
    t2 = SimExecutor(MachineSpec(cores * 2, 0), cm).run(hf).makespan
    assert t2 <= t1 + 1e-9
