"""Tests for the distributed-scheduler extension (EXT-DIST)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Heteroflow
from repro.core.node import TaskType
from repro.dist import ClusterSpec, DistSimExecutor, partition_graph
from repro.errors import SimulationError
from repro.sim import CostModel, MachineSpec, SimExecutor, paper_testbed


class TestClusterSpec:
    def test_validation(self):
        with pytest.raises(SimulationError):
            ClusterSpec(0, MachineSpec(1, 0))
        with pytest.raises(SimulationError):
            ClusterSpec(1, MachineSpec(1, 0), net_bandwidth=0)

    def test_transfer_seconds(self):
        cl = ClusterSpec(2, MachineSpec(1, 0), net_bandwidth=1e9, net_latency=1e-3)
        assert cl.transfer_seconds(1e9) == pytest.approx(1.001)

    def test_totals(self):
        cl = ClusterSpec(3, MachineSpec(4, 2))
        assert cl.total_cores == 12
        assert cl.total_gpus == 6


def diamond_with_costs():
    hf = Heteroflow()
    cm = CostModel()
    a = hf.host(lambda: None, name="a")
    bs = [hf.host(lambda: None, name=f"b{i}") for i in range(6)]
    z = hf.host(lambda: None, name="z")
    for b in bs:
        a.precede(b)
        b.precede(z)
        cm.annotate_host(b, 1.0)
    cm.annotate_host(a, 0.1)
    cm.annotate_host(z, 0.1)
    return hf, cm


class TestPartition:
    def test_assigns_every_node(self):
        hf, cm = diamond_with_costs()
        part = partition_graph(hf.nodes, 3, cm)
        assert set(part.assignment) == {n.nid for n in hf.nodes}
        assert all(0 <= v < 3 for v in part.assignment.values())

    def test_single_node_no_cut(self):
        hf, cm = diamond_with_costs()
        part = partition_graph(hf.nodes, 1, cm)
        assert part.cut_edges == 0
        assert part.load_imbalance == 1.0

    def test_balance_on_independent_work(self):
        hf = Heteroflow()
        cm = CostModel()
        for _ in range(12):
            cm.annotate_host(hf.host(lambda: None), 1.0)
        part = partition_graph(hf.nodes, 4, cm)
        assert part.load_imbalance < 1.2

    def test_kernel_atom_never_split(self):
        hf = Heteroflow()
        cm = CostModel()
        for _ in range(6):
            p1 = hf.pull([0])
            p2 = hf.pull([0])
            k = hf.kernel(lambda a, b: None, p1, p2)
            push = hf.push(p1, [0])
            p1.precede(k)
            p2.precede(k)
            k.precede(push)
        part = partition_graph(hf.nodes, 3, cm)
        for n in hf.nodes:
            if n.type is TaskType.KERNEL:
                for p in n.kernel_sources:
                    assert part.assignment[n.nid] == part.assignment[p.nid]
            if n.type is TaskType.PUSH:
                assert part.assignment[n.nid] == part.assignment[n.source.nid]

    def test_locality_preferred_when_balanced(self):
        """A chain should stay on one node (zero cut)."""
        hf = Heteroflow()
        cm = CostModel()
        prev = None
        for i in range(8):
            t = hf.host(lambda: None)
            cm.annotate_host(t, 1.0)
            if prev:
                prev.precede(t)
            prev = t
        part = partition_graph(hf.nodes, 2, cm)
        # a pure chain cannot be parallelized; locality should keep the
        # cut small even though balance suffers
        assert part.cut_edges <= 2

    def test_empty_graph(self):
        part = partition_graph([], 2)
        assert part.assignment == {}

    def test_rejects_zero_nodes(self):
        with pytest.raises(SimulationError):
            partition_graph([], 0)

    @settings(max_examples=20, deadline=None)
    @given(n_tasks=st.integers(1, 30), nn=st.integers(1, 5), seed=st.integers(0, 50))
    def test_property_total_load_conserved(self, n_tasks, nn, seed):
        rng = np.random.default_rng(seed)
        hf = Heteroflow()
        cm = CostModel()
        tasks = []
        for _ in range(n_tasks):
            t = hf.host(lambda: None)
            cm.annotate_host(t, float(rng.uniform(0.1, 2.0)))
            tasks.append(t)
        for i in range(1, n_tasks):
            if rng.uniform() < 0.4:
                tasks[int(rng.integers(0, i))].precede(tasks[i])
        part = partition_graph(hf.nodes, nn, cm)
        total = sum(cm.cost_of(n).cpu_seconds for n in hf.nodes)
        assert sum(part.loads) == pytest.approx(total, rel=1e-6)
        cut = sum(
            1
            for n in hf.nodes
            for s in n.successors
            if part.assignment[n.nid] != part.assignment[s.nid]
        )
        assert cut == part.cut_edges


class TestDistSimulator:
    def test_one_node_matches_local_sim(self):
        from repro.apps.timing import build_timing_flow

        flow = build_timing_flow(num_views=16, num_gates=40, paths_per_view=4)
        local = SimExecutor(paper_testbed(4, 1), flow.cost_model).run(flow.graph)
        cl = ClusterSpec(1, paper_testbed(4, 1))
        dist = DistSimExecutor(cl, flow.cost_model).run(flow.graph)
        assert dist.makespan == pytest.approx(local.makespan)
        assert dist.messages == 0

    def test_parallel_workload_scales_with_nodes(self):
        from repro.apps.timing import build_timing_flow

        flow = build_timing_flow(num_views=64, num_gates=40, paths_per_view=4)
        times = {}
        for nn in (1, 2, 4):
            cl = ClusterSpec(nn, paper_testbed(8, 1))
            times[nn] = DistSimExecutor(cl, flow.cost_model).run(flow.graph).makespan
        assert times[1] / times[2] > 1.6
        assert times[2] / times[4] > 1.5

    def test_chain_workload_does_not_scale(self):
        from repro.apps.placement import build_placement_flow

        flow = build_placement_flow(
            num_cells=30, iterations=10, num_matchers=32, window_size=1
        )
        cl1 = ClusterSpec(1, paper_testbed(10, 1))
        cl4 = ClusterSpec(4, paper_testbed(10, 1))
        t1 = DistSimExecutor(cl1, flow.cost_model).run(flow.graph).makespan
        t4 = DistSimExecutor(cl4, flow.cost_model).run(flow.graph).makespan
        assert t1 / t4 < 1.5  # iteration chain gates distribution

    def test_network_charged_per_cut_edge(self):
        hf, cm = diamond_with_costs()
        cl = ClusterSpec(2, MachineSpec(4, 0), net_latency=0.01, net_bandwidth=1e9)
        rep = DistSimExecutor(cl, cm).run(hf)
        assert rep.messages == rep.partition.cut_edges
        assert rep.messages > 0
        assert sum(rep.net_busy) == pytest.approx(
            rep.messages * cl.transfer_seconds(cl.default_message_bytes), rel=1e-6
        )

    def test_slow_network_hurts(self):
        hf, cm = diamond_with_costs()
        fast = ClusterSpec(2, MachineSpec(2, 0), net_latency=1e-6)
        slow = ClusterSpec(2, MachineSpec(2, 0), net_latency=0.5)
        t_fast = DistSimExecutor(fast, cm).run(hf).makespan
        t_slow = DistSimExecutor(slow, cm).run(hf).makespan
        assert t_slow > t_fast + 0.4

    def test_gpu_graph_distributes(self):
        hf = Heteroflow()
        cm = CostModel()
        for i in range(8):
            p = hf.pull([0])
            k = hf.kernel(lambda a: None, p)
            p.precede(k)
            cm.annotate_copy(p, 1e6)
            cm.annotate_kernel(k, 1.0)
        cl = ClusterSpec(4, MachineSpec(2, 1, kernel_slots=1))
        rep = DistSimExecutor(cl, cm).run(hf)
        # 8 serial-kernel seconds over 4 nodes of 1 slot each
        assert rep.makespan == pytest.approx(2.0, rel=0.1)

    def test_gpu_graph_on_gpuless_cluster_fails(self):
        hf = Heteroflow()
        hf.pull([0])
        cl = ClusterSpec(2, MachineSpec(2, 0))
        with pytest.raises(Exception):
            DistSimExecutor(cl).run(hf)
