"""Tests for the sweep utility."""

import pytest

from repro.core import Heteroflow
from repro.sim import CostModel, MachineSpec
from repro.sim.sweep import sweep_machines, sweep_workloads


def fan_graph(k=8, seconds=1.0):
    hf = Heteroflow()
    cm = CostModel()
    for _ in range(k):
        cm.annotate_host(hf.host(lambda: None), seconds)
    return hf, cm


class TestSweepMachines:
    def test_covers_grid(self):
        hf, cm = fan_graph()
        res = sweep_machines(hf, cm, cores=[1, 2, 4], gpus=[0])
        assert len(res.points) == 3
        assert res.makespan(1, 0) == pytest.approx(8.0)
        assert res.makespan(4, 0) == pytest.approx(2.0)

    def test_speedups_default_baseline(self):
        hf, cm = fan_graph()
        res = sweep_machines(hf, cm, cores=[1, 4], gpus=[0])
        sp = res.speedups()
        assert sp[(1, 0, ())] == pytest.approx(1.0)
        assert sp[(4, 0, ())] == pytest.approx(4.0)

    def test_explicit_baseline(self):
        hf, cm = fan_graph()
        res = sweep_machines(hf, cm, cores=[2, 4], gpus=[0])
        sp = res.speedups(baseline=(2, 0))
        assert sp[(4, 0, ())] == pytest.approx(2.0)

    def test_missing_point_raises(self):
        hf, cm = fan_graph()
        res = sweep_machines(hf, cm, cores=[1], gpus=[0])
        with pytest.raises(KeyError):
            res.makespan(9, 9)

    def test_base_machine_rates_propagate(self):
        hf = Heteroflow()
        cm = CostModel()
        p = hf.pull([0])
        cm.annotate_copy(p, 1e9)
        base = MachineSpec(1, 1, h2d_bandwidth=1e9, copy_latency=0.0, dispatch_overhead=0.0)
        res = sweep_machines(hf, cm, cores=[1], gpus=[1], base_machine=base)
        assert res.makespan(1, 1) == pytest.approx(1.0)

    def test_rows_sorted(self):
        hf, cm = fan_graph()
        res = sweep_machines(hf, cm, cores=[4, 1], gpus=[0])
        rows = res.rows()
        assert rows[0][0] == 1 and rows[1][0] == 4
        assert rows[0][-2] == pytest.approx(8.0)


class TestSweepWorkloads:
    def test_param_grid(self):
        def build(k):
            return fan_graph(k=k)

        res = sweep_workloads(build, {"k": [4, 8]}, cores=[2], gpus=[0])
        assert len(res.points) == 4 or len(res.points) == 2
        assert res.makespan(2, 0, k=4) == pytest.approx(2.0)
        assert res.makespan(2, 0, k=8) == pytest.approx(4.0)

    def test_figures_reproducible_via_sweep(self):
        """The Fig.-9b series regenerates through the generic sweep."""
        from repro.apps.placement import build_placement_flow

        def build(iterations):
            flow = build_placement_flow(
                num_cells=30, iterations=iterations, num_matchers=32, window_size=1
            )
            return flow.graph, flow.cost_model

        res = sweep_workloads(build, {"iterations": [5, 10]}, cores=[1, 40], gpus=[4])
        t5_1 = res.makespan(1, 4, iterations=5)
        t10_1 = res.makespan(1, 4, iterations=10)
        assert t10_1 / t5_1 == pytest.approx(2.0, rel=0.05)
        assert res.makespan(40, 4, iterations=5) < t5_1
