"""Docs drift: links and API references in README + docs/ must hold.

Runs the same checks as ``python tools/check_docs.py`` (the CI docs
job), so a rename in ``src/`` that leaves a documentation page behind
fails the ordinary test suite too.
"""

import importlib.util
import os

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_checker():
    path = os.path.join(ROOT, "tools", "check_docs.py")
    spec = importlib.util.spec_from_file_location("check_docs", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_docs_have_no_broken_links_or_stale_api_refs():
    checker = _load_checker()
    problems = []
    for page in checker.iter_pages():
        with open(page) as fh:
            text = fh.read()
        problems.extend(checker.check_links(page, text))
        problems.extend(checker.check_api_refs(page, text))
    assert problems == []


def test_required_api_symbols_resolve():
    """The load-bearing operator symbols (gray-failure surface) must
    stay importable under their documented dotted names."""
    checker = _load_checker()
    missing = [d for d in checker.REQUIRED_API if not checker._resolves(d)]
    assert missing == []


def test_every_docs_page_is_indexed_in_readme():
    """The README Documentation table must list each docs/*.md page."""
    with open(os.path.join(ROOT, "README.md")) as fh:
        readme = fh.read()
    for fname in sorted(os.listdir(os.path.join(ROOT, "docs"))):
        if fname.endswith(".md"):
            assert f"docs/{fname}" in readme, f"docs/{fname} not in README"
