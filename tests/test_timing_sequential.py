"""Tests for register-to-register timing with path-based CPPR."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.timing import generate_netlist, run_sta
from repro.apps.timing.graph import TimingGraph
from repro.apps.timing.sequential import (
    analyze_sequential,
    build_sequential_design,
    min_feasible_period,
)


@pytest.fixture
def design():
    return build_sequential_design(generate_netlist(150, seed=17), seed=17)


class TestStaBoundaryHooks:
    def test_source_arrivals_shift_downstream(self):
        tg = TimingGraph.from_netlist(generate_netlist(60, seed=1))
        base = run_sta(tg, clock_period=1e9)
        seeds = np.zeros(tg.num_nodes)
        seeds[: tg.num_inputs] = 100.0
        shifted = run_sta(tg, clock_period=1e9, source_arrivals=seeds)
        # every node fed (transitively) only by PIs moves by exactly 100
        assert np.all(shifted.arrival >= base.arrival - 1e-9)
        assert shifted.arrival[tg.outputs].max() == pytest.approx(
            base.arrival[tg.outputs].max() + 100.0
        )

    def test_endpoint_required_vector(self):
        tg = TimingGraph.from_netlist(generate_netlist(60, seed=1))
        req = np.linspace(100, 200, tg.outputs.size)
        sta = run_sta(tg, clock_period=1.0, endpoint_required=req)
        assert np.allclose(sta.required[tg.outputs], req)

    def test_shape_validation(self):
        tg = TimingGraph.from_netlist(generate_netlist(30, seed=0))
        with pytest.raises(ValueError):
            run_sta(tg, source_arrivals=np.zeros(3))
        with pytest.raises(ValueError):
            run_sta(tg, endpoint_required=np.zeros(1 + tg.outputs.size))


class TestSequentialDesign:
    def test_every_boundary_node_has_a_flop(self, design):
        tg = design.graph
        assert set(design.launch_flop_of) == set(range(tg.num_inputs))
        assert set(design.capture_flop_of) == {int(o) for o in tg.outputs}

    def test_flop_count(self, design):
        assert design.num_flops == design.graph.num_inputs + design.graph.outputs.size


class TestAnalysis:
    def test_cppr_never_hurts(self, design):
        res = analyze_sequential(design)
        assert np.all(res.slack_cppr >= res.slack_pessimistic - 1e-9)
        assert res.wns_cppr >= res.wns_pessimistic

    def test_credit_bounded_by_derate_window(self, design):
        """Credit cannot exceed (late-early) x the launch insertion
        delay (the common path is a prefix of the launch path)."""
        res = analyze_sequential(design, early_derate=0.9, late_derate=1.1)
        credits = res.slack_cppr - res.slack_pessimistic
        for i, ep in enumerate(res.endpoints):
            launch = int(res.launch_of_endpoint[i])
            if launch < 0:
                assert credits[i] == 0.0
                continue
            bound = 0.2 * min(
                design.tree.insertion_delay(launch),
                design.tree.insertion_delay(design.capture_flop_of[int(ep)]),
            )
            assert credits[i] <= bound + 1e-9

    def test_zero_latency_tree_reduces_to_combinational(self):
        """With a zero-delay clock tree and zero flop constants, the
        reg-to-reg slacks equal plain combinational slacks."""
        nl = generate_netlist(80, seed=3)
        design = build_sequential_design(nl, clk_to_q=0.0, setup=0.0)
        design.tree.delay[:] = 0.0
        tg = design.graph
        period = 500.0
        res = analyze_sequential(design, period)
        comb = run_sta(tg, clock_period=period)
        assert np.allclose(
            res.slack_pessimistic, comb.slack[tg.outputs], atol=1e-9
        )
        assert np.allclose(res.slack_cppr, res.slack_pessimistic)

    def test_period_shifts_slack_one_to_one(self, design):
        r1 = analyze_sequential(design, 500.0)
        r2 = analyze_sequential(design, 600.0)
        assert np.allclose(r2.slack_pessimistic - r1.slack_pessimistic, 100.0)
        assert np.allclose(r2.slack_cppr - r1.slack_cppr, 100.0)

    def test_default_period_creates_violations(self, design):
        res = analyze_sequential(design)
        assert res.wns_pessimistic < 0

    def test_recovered_violations_counted(self, design):
        """At a period between the pessimistic and credited WNS, CPPR
        recovers at least one false violation."""
        res0 = analyze_sequential(design, 1000.0)
        # choose a period that makes the worst endpoint pessimistically
        # fail by less than its credit
        worst = int(np.argmin(res0.slack_cppr))
        credit = float(res0.slack_cppr[worst] - res0.slack_pessimistic[worst])
        assume_ok = credit > 1.0
        if not assume_ok:
            pytest.skip("no credit on the worst endpoint for this seed")
        period = 1000.0 - float(res0.slack_pessimistic[worst]) - credit / 2
        res = analyze_sequential(design, period)
        assert res.recovered_violations() >= 1

    def test_rejects_inverted_derates(self, design):
        with pytest.raises(ValueError):
            analyze_sequential(design, 500.0, early_derate=1.1, late_derate=0.9)

    def test_symmetric_derates_no_credit(self, design):
        res = analyze_sequential(design, 500.0, early_derate=1.0, late_derate=1.0)
        assert np.allclose(res.slack_cppr, res.slack_pessimistic)


class TestMinFeasiblePeriod:
    def test_cppr_buys_a_faster_clock(self, design):
        with_cppr = min_feasible_period(design, use_cppr=True)
        without = min_feasible_period(design, use_cppr=False)
        assert with_cppr <= without + 0.01
        # at this design's skews, strictly faster
        assert without - with_cppr > 0.5

    def test_result_is_feasible_and_tight(self, design):
        period = min_feasible_period(design, use_cppr=True, tolerance=0.01)
        assert analyze_sequential(design, period).wns_cppr >= 0
        assert analyze_sequential(design, period - 1.0).wns_cppr < 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 300), period=st.floats(200, 2000))
def test_property_cppr_monotone_and_bounded(seed, period):
    design = build_sequential_design(generate_netlist(50, seed=seed), seed=seed)
    res = analyze_sequential(design, period)
    credits = res.slack_cppr - res.slack_pessimistic
    assert np.all(credits >= -1e-9)
    max_latency = max(
        design.tree.insertion_delay(f)
        for f in list(design.launch_flop_of.values())
    )
    assert np.all(credits <= 0.1 * max_latency + 1e-9)


class TestMinArrivals:
    def test_min_leq_max_everywhere(self):
        from repro.apps.timing.sta import min_arrivals

        tg = TimingGraph.from_netlist(generate_netlist(100, seed=2))
        early = min_arrivals(tg)
        late = run_sta(tg).arrival
        assert np.all(early <= late + 1e-9)

    def test_min_monotone_along_arcs(self):
        from repro.apps.timing.sta import min_arrivals

        tg = TimingGraph.from_netlist(generate_netlist(100, seed=2))
        early = min_arrivals(tg)
        # min-plus: arrival[dst] <= arrival[src] + delay for every arc
        assert np.all(
            early[tg.arc_dst] <= early[tg.arc_src] + tg.arc_delay + 1e-9
        )

    def test_matches_networkx_shortest_path(self):
        import networkx as nx
        from repro.apps.timing.sta import min_arrivals

        tg = TimingGraph.from_netlist(generate_netlist(80, seed=4))
        early = min_arrivals(tg)
        g = nx.DiGraph()
        g.add_nodes_from(range(tg.num_nodes))
        for s, d, w in zip(tg.arc_src, tg.arc_dst, tg.arc_delay):
            if not g.has_edge(int(s), int(d)) or g[int(s)][int(d)]["weight"] > w:
                g.add_edge(int(s), int(d), weight=float(w))
        for ep in tg.outputs[:5]:
            best = min(
                nx.shortest_path_length(g, src, int(ep), weight="weight")
                for src in range(tg.num_inputs)
                if nx.has_path(g, src, int(ep))
            )
            assert early[ep] == pytest.approx(best)


class TestHoldAnalysis:
    @pytest.fixture
    def design(self):
        return build_sequential_design(generate_netlist(120, seed=31), seed=31)

    def test_cppr_never_hurts_hold(self, design):
        from repro.apps.timing.sequential import analyze_hold

        res = analyze_hold(design)
        assert np.all(res.slack_cppr >= res.slack_pessimistic - 1e-9)
        assert res.whs_cppr >= res.whs_pessimistic

    def test_symmetric_derates_no_credit(self, design):
        from repro.apps.timing.sequential import analyze_hold

        res = analyze_hold(design, early_derate=1.0, late_derate=1.0)
        assert np.allclose(res.slack_cppr, res.slack_pessimistic)

    def test_hold_insensitive_to_period(self, design):
        """Hold is a same-cycle race: the clock period must not appear
        anywhere in the slack."""
        from repro.apps.timing.sequential import analyze_hold

        a = analyze_hold(design)
        b = analyze_hold(design)  # period is not even a parameter
        assert np.allclose(a.slack_pessimistic, b.slack_pessimistic)

    def test_larger_hold_requirement_reduces_slack(self, design):
        from repro.apps.timing.sequential import analyze_hold

        a = analyze_hold(design, hold=5.0)
        b = analyze_hold(design, hold=15.0)
        assert np.allclose(a.slack_pessimistic - b.slack_pessimistic, 10.0)

    def test_min_paths_make_hold_tighter_than_setup_paths(self, design):
        """The hold slack uses the earliest path: it must be computed
        from min arrivals, never from the setup (max) arrivals."""
        from repro.apps.timing.sequential import analyze_hold, analyze_sequential
        from repro.apps.timing.sta import min_arrivals

        hold_res = analyze_hold(design, hold=0.0, early_derate=1.0, late_derate=1.0)
        # reconstruct with max arrivals: slacks would be larger
        tree = design.tree
        sources = np.zeros(design.graph.num_nodes)
        for pi, flop in design.launch_flop_of.items():
            sources[pi] = tree.insertion_delay(flop) + design.clk_to_q
        late = run_sta(design.graph, clock_period=1.0, source_arrivals=sources).arrival
        early = min_arrivals(design.graph, source_arrivals=sources)
        eps = design.graph.outputs
        assert np.all(early[eps] <= late[eps] + 1e-9)
        assert np.any(early[eps] < late[eps] - 1e-9)
