"""End-to-end tests for the two application flows on real executors."""

import numpy as np
import pytest

from repro.apps.placement import build_placement_flow
from repro.apps.placement.flow import run_reference as placement_reference
from repro.apps.timing import build_timing_flow
from repro.apps.timing.flow import reference_correlation
from repro.baselines import SequentialExecutor
from repro.core import Executor, TaskType


class TestTimingFlow:
    def test_graph_shape_per_view(self):
        flow = build_timing_flow(num_views=5, num_gates=80, paths_per_view=8)
        hf = flow.graph
        # per view: 3 host + 3 pull + 1 kernel + 1 push; plus 1 report
        assert hf.num_tasks_of(TaskType.HOST) == 5 * 3 + 1
        assert hf.num_tasks_of(TaskType.PULL) == 5 * 3
        assert hf.num_tasks_of(TaskType.KERNEL) == 5
        assert hf.num_tasks_of(TaskType.PUSH) == 5
        hf.validate()

    def test_matches_host_reference_on_parallel_executor(self):
        flow = build_timing_flow(num_views=4, num_gates=150, paths_per_view=24, seed=2)
        with Executor(3, 2, gpu_memory_bytes=1 << 22) as ex:
            ex.run(flow.graph).result(timeout=120)
        ref = reference_correlation(flow)
        for s in flow.states:
            assert np.allclose(s.w, ref[s.view.index])

    def test_matches_host_reference_on_sequential_executor(self):
        flow = build_timing_flow(num_views=3, num_gates=120, paths_per_view=16, seed=4)
        with SequentialExecutor(num_gpus=1) as seq:
            seq.run(flow.graph)
        ref = reference_correlation(flow)
        for s in flow.states:
            assert np.allclose(s.w, ref[s.view.index])

    def test_report_written_last(self):
        flow = build_timing_flow(num_views=2, num_gates=80, paths_per_view=8)
        with Executor(2, 1, gpu_memory_bytes=1 << 22) as ex:
            ex.run(flow.graph).result(timeout=60)
        assert flow.report["num_views"] == 2.0
        assert 0.0 <= flow.report["mean_accuracy"] <= 1.0

    def test_accuracy_beats_chance(self):
        """The regression must actually learn: accuracy well above the
        majority-class floor would be ideal, but at minimum above 0.5."""
        flow = build_timing_flow(num_views=6, num_gates=300, paths_per_view=64, seed=0)
        with Executor(4, 2, gpu_memory_bytes=1 << 22) as ex:
            ex.run(flow.graph).result(timeout=180)
        assert flow.mean_accuracy() > 0.6

    def test_correlation_matrix_properties(self):
        flow = build_timing_flow(num_views=4, num_gates=150, paths_per_view=32, seed=1)
        with Executor(3, 1, gpu_memory_bytes=1 << 22) as ex:
            ex.run(flow.graph).result(timeout=120)
        corr = flow.view_correlation()
        assert corr.shape == (4, 4)
        assert np.allclose(np.diag(corr), 1.0)
        assert np.allclose(corr, corr.T)

    def test_all_views_have_costs(self):
        flow = build_timing_flow(num_views=3, num_gates=80, paths_per_view=8)
        for node in flow.graph.nodes:
            cost = flow.cost_model.cost_of(node)
            assert (cost.cpu_seconds + cost.gpu_seconds + cost.copy_bytes) > 0

    def test_rejects_zero_views(self):
        with pytest.raises(ValueError):
            build_timing_flow(num_views=0)


class TestPlacementFlow:
    def test_graph_shape_per_iteration(self):
        flow = build_placement_flow(num_cells=60, iterations=3, num_matchers=4)
        hf = flow.graph
        # per iter: prio + part + apply + 4 matchers (host);
        # 2 pulls + 1 push (gpu copies); 1 kernel; plus 2 shared adj pulls
        assert hf.num_tasks_of(TaskType.HOST) == 3 * (3 + 4)
        assert hf.num_tasks_of(TaskType.PULL) == 3 * 2 + 2
        assert hf.num_tasks_of(TaskType.KERNEL) == 3
        assert hf.num_tasks_of(TaskType.PUSH) == 3
        hf.validate()

    def test_hpwl_monotone_nonincreasing(self):
        flow = build_placement_flow(num_cells=100, iterations=4, seed=1)
        with Executor(3, 2, gpu_memory_bytes=1 << 22) as ex:
            ex.run(flow.graph).result(timeout=180)
        t = flow.hpwl_trace
        assert len(t) == 5
        assert all(b <= a + 1e-9 for a, b in zip(t, t[1:]))

    def test_improvement_accounting(self):
        flow = build_placement_flow(num_cells=100, iterations=3, seed=2)
        with Executor(3, 1, gpu_memory_bytes=1 << 22) as ex:
            ex.run(flow.graph).result(timeout=180)
        for i, imp in enumerate(flow.improvements):
            assert flow.hpwl_trace[i] - flow.hpwl_trace[i + 1] == pytest.approx(imp)

    def test_matches_host_reference(self):
        flow = build_placement_flow(num_cells=90, iterations=3, seed=7)
        with Executor(4, 2, gpu_memory_bytes=1 << 22) as ex:
            ex.run(flow.graph).result(timeout=180)
        ref = placement_reference(flow)
        assert np.allclose(ref["hpwl"], flow.hpwl_trace)
        assert [int(s) for s in ref["mis_sizes"]] == flow.mis_sizes

    def test_single_gpu_placement_by_grouping(self):
        """All MIS kernels share the adjacency pulls, so Algorithm 1
        must place the whole flow on one GPU — the structural reason
        Fig. 9 shows no multi-GPU gains."""
        from repro.core.placement import DevicePlacement

        flow = build_placement_flow(num_cells=60, iterations=4)
        res = DevicePlacement().place(flow.graph.nodes, 4)
        devices = {
            res.device_of(n) for n in flow.graph.nodes if n.type is TaskType.KERNEL
        }
        assert len(devices) == 1

    def test_legality_preserved(self):
        flow = build_placement_flow(num_cells=80, iterations=3, seed=3)
        with Executor(2, 1, gpu_memory_bytes=1 << 22) as ex:
            ex.run(flow.graph).result(timeout=180)
        sites = set(zip(flow.x.tolist(), flow.y.tolist()))
        assert len(sites) == flow.db.num_cells

    def test_sequential_executor_agrees(self):
        flow = build_placement_flow(num_cells=70, iterations=2, seed=5)
        with SequentialExecutor(num_gpus=1) as seq:
            seq.run(flow.graph)
        ref = placement_reference(flow)
        assert np.allclose(ref["hpwl"], flow.hpwl_trace)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            build_placement_flow(iterations=0)
        with pytest.raises(ValueError):
            build_placement_flow(num_matchers=0)
