"""Tests for device heaps and buffers."""

import numpy as np
import pytest

from repro.errors import AllocationError, DeviceError


class TestDeviceBuffer:
    def test_view_roundtrip(self, gpu2):
        d = gpu2.device(0)
        buf = d.allocate(8 * 4, dtype=np.float32)
        buf.view()[:] = np.arange(8, dtype=np.float32)
        assert list(buf.view()) == list(range(8))

    def test_view_is_zero_copy(self, gpu2):
        d = gpu2.device(0)
        buf = d.allocate(16, dtype=np.uint8)
        buf.view()[0] = 42
        assert d.heap.raw[buf.offset] == 42

    def test_typed_reinterpret(self, gpu2):
        buf = gpu2.device(0).allocate(8, dtype=np.uint8)
        buf.view()[:8] = 0
        as_i64 = buf.view(np.int64)
        assert as_i64.size == 1 and as_i64[0] == 0

    def test_size_in_elements(self, gpu2):
        buf = gpu2.device(0).allocate(64, dtype=np.float64)
        assert buf.size == 8

    def test_use_after_free_raises(self, gpu2):
        buf = gpu2.device(0).allocate(16)
        buf.free()
        with pytest.raises(DeviceError):
            buf.view()

    def test_free_is_idempotent(self, gpu2):
        buf = gpu2.device(0).allocate(16)
        buf.free()
        buf.free()
        assert buf.freed


class TestDeviceHeap:
    def test_allocate_like(self, gpu2):
        arr = np.arange(10, dtype=np.int64)
        buf = gpu2.device(0).heap.allocate_like(arr)
        assert buf.nbytes >= arr.nbytes
        assert buf.dtype == np.int64

    def test_cross_device_free_rejected(self, gpu2):
        buf = gpu2.device(0).allocate(16)
        with pytest.raises(DeviceError):
            gpu2.device(1).heap.free(buf)

    def test_negative_allocation_rejected(self, gpu2):
        with pytest.raises(AllocationError):
            gpu2.device(0).heap.allocate(-1)

    def test_zero_byte_allocation_ok(self, gpu2):
        buf = gpu2.device(0).heap.allocate(0)
        assert buf.nbytes >= 1

    def test_accounting(self, gpu2):
        heap = gpu2.device(0).heap
        before = heap.bytes_in_use
        buf = heap.allocate(100)
        assert heap.bytes_in_use > before
        buf.free()
        assert heap.bytes_in_use == before

    def test_alloc_count_statistics(self, gpu2):
        heap = gpu2.device(0).heap
        start = heap.alloc_count
        heap.allocate(8)
        heap.allocate(8)
        assert heap.alloc_count == start + 2

    def test_exhaustion_raises(self, gpu2):
        heap = gpu2.device(0).heap
        with pytest.raises(AllocationError):
            heap.allocate(heap.capacity * 2)

    def test_isolation_between_devices(self, gpu2):
        b0 = gpu2.device(0).allocate(32, dtype=np.uint8)
        b1 = gpu2.device(1).allocate(32, dtype=np.uint8)
        b0.view()[:] = 1
        b1.view()[:] = 2
        assert set(b0.view()) == {1}
        assert set(b1.view()) == {2}
