"""Tests for the timing-analysis substrate: netlist, graph, STA, views,
paths, CPPR, regression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.timing import (
    TimingGraph,
    enumerate_views,
    generate_clock_tree,
    generate_netlist,
    k_worst_paths,
    run_sta,
    views_for_node,
)
from repro.apps.timing.cppr import cppr_credit
from repro.apps.timing.paths import trace_critical_path
from repro.apps.timing.regression import (
    accuracy,
    gd_step,
    logreg_loss,
    sigmoid,
    standardize,
    train_logreg_host,
)
from repro.apps.timing.views import FIG4_NODES


class TestNetlist:
    def test_deterministic(self):
        a = generate_netlist(100, seed=1)
        b = generate_netlist(100, seed=1)
        assert [g.fanin for g in a.gates] == [g.fanin for g in b.gates]

    def test_seed_changes_structure(self):
        a = generate_netlist(100, seed=1)
        b = generate_netlist(100, seed=2)
        assert [g.fanin for g in a.gates] != [g.fanin for g in b.gates]

    def test_validates(self):
        generate_netlist(200, seed=0).validate()

    def test_outputs_nonempty(self):
        assert generate_netlist(50).outputs

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            generate_netlist(0)

    def test_depth_grows_with_size(self):
        small = generate_netlist(30, seed=0)
        big = generate_netlist(3000, seed=0)
        assert big.depth > small.depth

    @given(st.integers(1, 400), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_topological_fanins(self, n, seed):
        nl = generate_netlist(n, seed=seed)
        nl.validate()
        for g in nl.gates:
            for f in g.fanin:
                assert nl.node_level(f) < g.level


class TestTimingGraph:
    def test_arc_counts_match_fanins(self):
        nl = generate_netlist(80, seed=3)
        tg = TimingGraph.from_netlist(nl)
        assert tg.num_arcs == sum(len(g.fanin) for g in nl.gates)

    def test_level_slices_cover_all_arcs(self):
        tg = TimingGraph.from_netlist(generate_netlist(80, seed=3))
        covered = sum(end - start for start, end in tg.level_arcs)
        assert covered == tg.num_arcs

    def test_arcs_sorted_by_destination_level(self):
        tg = TimingGraph.from_netlist(generate_netlist(120, seed=4))
        lv = tg.level_of[tg.arc_dst]
        assert np.all(np.diff(lv) >= 0)

    def test_positive_delays(self):
        tg = TimingGraph.from_netlist(generate_netlist(60, seed=1))
        assert np.all(tg.arc_delay > 0)


class TestSta:
    @pytest.fixture
    def tg(self):
        return TimingGraph.from_netlist(generate_netlist(150, seed=7))

    def test_arrival_monotone_along_arcs(self, tg):
        """arrival[dst] >= arrival[src] + delay for every arc."""
        sta = run_sta(tg)
        assert np.all(
            sta.arrival[tg.arc_dst] >= sta.arrival[tg.arc_src] + tg.arc_delay - 1e-9
        )

    def test_required_monotone_along_arcs(self, tg):
        sta = run_sta(tg)
        assert np.all(
            sta.required[tg.arc_src] <= sta.required[tg.arc_dst] - tg.arc_delay + 1e-9
        )

    def test_pi_arrival_zero(self, tg):
        sta = run_sta(tg)
        assert np.all(sta.arrival[: tg.num_inputs] == 0)

    def test_default_period_creates_violations(self, tg):
        sta = run_sta(tg)
        assert sta.wns < 0  # 90% of critical delay guarantees failures

    def test_relaxed_period_no_violations(self, tg):
        sta = run_sta(tg, clock_period=1e9)
        assert sta.wns >= 0
        assert sta.tns(tg) == 0

    def test_slow_view_increases_arrivals(self, tg):
        base = run_sta(tg)
        views = enumerate_views(3, seed=1)
        ss = next(v for v in views if v.corner == "ss")
        derated = run_sta(tg, ss, clock_period=base.clock_period)
        assert derated.arrival.sum() > base.arrival.sum()

    def test_view_determinism(self, tg):
        v = enumerate_views(2, seed=5)[0]
        a = run_sta(tg, v)
        b = run_sta(tg, v)
        assert np.array_equal(a.arrival, b.arrival)

    def test_critical_arc_realizes_arrival(self, tg):
        sta = run_sta(tg)
        for node in tg.outputs[:10]:
            arc = sta.critical_arc[node]
            if arc >= 0:
                src = tg.arc_src[arc]
                # this arc realizes the node arrival (possibly derated)
                assert sta.arrival[node] == pytest.approx(
                    sta.arrival[src] + tg.arc_delay[arc]
                )


class TestViews:
    def test_fig4_monotone_growth(self):
        nodes = sorted(FIG4_NODES, reverse=True)  # 180 -> 7
        counts = [views_for_node(n) for n in nodes]
        assert counts == sorted(counts)
        assert counts[-1] / counts[0] > 100  # "exponential" growth

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            views_for_node(3)

    def test_enumerate_counts_and_names(self):
        views = enumerate_views(10, seed=0)
        assert len(views) == 10
        assert len({v.name for v in views}) == 10

    def test_derates_shape_and_positivity(self):
        v = enumerate_views(1, seed=0)[0]
        d = v.derates(500)
        assert d.shape == (500,)
        assert np.all(d > 0)

    def test_slow_corner_derates_above_fast(self):
        views = enumerate_views(6, seed=0)
        ss = next(v for v in views if v.corner == "ss")
        ff = next(v for v in views if v.corner == "ff")
        assert ss.derates(100).mean() > ff.derates(100).mean()

    def test_rejects_zero_views(self):
        with pytest.raises(ValueError):
            enumerate_views(0)


class TestPaths:
    @pytest.fixture
    def setup(self):
        tg = TimingGraph.from_netlist(generate_netlist(200, seed=9))
        return tg, run_sta(tg)

    def test_path_delay_telescopes(self, setup):
        """Sum of arc delays along the traced path equals the endpoint
        arrival (paths start at a zero-arrival node)."""
        tg, sta = setup
        p = trace_critical_path(tg, sta, int(tg.outputs[-1]))
        assert sta.arrival[p.startpoint] == 0
        total = 0.0
        for a, b in zip(p.nodes, p.nodes[1:]):
            arcs = np.nonzero((tg.arc_src == a) & (tg.arc_dst == b))[0]
            total += tg.arc_delay[arcs].max()
        assert total == pytest.approx(p.arrival)

    def test_k_worst_sorted_by_slack(self, setup):
        tg, sta = setup
        paths = k_worst_paths(tg, sta, 10)
        slacks = [p.slack for p in paths]
        assert slacks == sorted(slacks)

    def test_k_caps_at_endpoints(self, setup):
        tg, sta = setup
        paths = k_worst_paths(tg, sta, 10**6)
        assert len(paths) == tg.outputs.size

    def test_k_zero(self, setup):
        tg, sta = setup
        assert k_worst_paths(tg, sta, 0) == []

    def test_worst_path_has_global_min_endpoint_slack(self, setup):
        tg, sta = setup
        worst = k_worst_paths(tg, sta, 1)[0]
        assert worst.slack == pytest.approx(float(sta.endpoint_slacks(tg).min()))


class TestCppr:
    @pytest.fixture
    def tree(self):
        return generate_clock_tree(list(range(16)), seed=2)

    def test_lca_is_symmetric(self, tree):
        assert tree.lca(0, 9) == tree.lca(9, 0)

    def test_lca_self_is_leaf(self, tree):
        assert tree.lca(3, 3) == tree.leaf_of[3]

    def test_common_delay_self_is_insertion_delay(self, tree):
        assert tree.common_path_delay(3, 3) == pytest.approx(tree.insertion_delay(3))

    def test_common_delay_bounded_by_insertion(self, tree):
        for a, b in [(0, 1), (0, 15), (4, 7)]:
            assert tree.common_path_delay(a, b) <= min(
                tree.insertion_delay(a), tree.insertion_delay(b)
            ) + 1e-9

    def test_sibling_pairs_share_more_than_distant(self, tree):
        # leaves 0,1 share a parent; 0 and 15 only share the root side
        assert tree.common_path_delay(0, 1) > tree.common_path_delay(0, 15)

    def test_credit_nonnegative_and_scales(self, tree):
        c = cppr_credit(tree, 0, 1)
        assert c >= 0
        assert cppr_credit(tree, 0, 1, early_derate=0.9, late_derate=1.1) == pytest.approx(2 * c)

    def test_credit_rejects_inverted_derates(self, tree):
        with pytest.raises(ValueError):
            cppr_credit(tree, 0, 1, early_derate=1.1, late_derate=0.9)

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            generate_clock_tree([])

    def test_single_sink(self):
        t = generate_clock_tree([42])
        assert t.insertion_delay(42) > 0


class TestRegression:
    def test_sigmoid_range_and_symmetry(self):
        z = np.linspace(-50, 50, 101)
        s = sigmoid(z)
        assert np.all((s >= 0) & (s <= 1))
        assert np.allclose(s + sigmoid(-z), 1.0)

    @given(st.floats(-700, 700))
    def test_sigmoid_stable(self, z):
        val = sigmoid(np.asarray([z]))[0]
        assert 0.0 <= val <= 1.0 and np.isfinite(val)

    def test_gd_decreases_loss(self):
        rng = np.random.default_rng(0)
        X = np.hstack([np.ones((200, 1)), rng.normal(size=(200, 2))])
        true_w = np.asarray([0.5, 2.0, -1.0])
        y = (sigmoid(X @ true_w) > rng.uniform(size=200)).astype(float)
        w = np.zeros(3)
        losses = [logreg_loss(X, y, w)]
        for _ in range(50):
            w = gd_step(X, y, w, lr=0.5)
            losses.append(logreg_loss(X, y, w))
        assert losses[-1] < losses[0]
        assert all(b <= a + 1e-9 for a, b in zip(losses, losses[1:]))

    def test_learns_separable_data(self):
        rng = np.random.default_rng(1)
        X = np.hstack([np.ones((300, 1)), rng.normal(size=(300, 1))])
        y = (X[:, 1] > 0).astype(float)
        w = train_logreg_host(X, y, epochs=300, lr=1.0)
        assert accuracy(X, y, w) > 0.95

    def test_standardize_zero_mean_unit_std(self):
        rng = np.random.default_rng(2)
        X = rng.normal(5, 3, size=(100, 4))
        Xs, mean, std = standardize(X)
        assert np.allclose(Xs.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Xs.std(axis=0), 1, atol=1e-9)

    def test_standardize_constant_column_passthrough(self):
        X = np.ones((10, 2))
        X[:, 1] = np.arange(10)
        Xs, _, std = standardize(X)
        assert std[0] == 1.0
        assert np.allclose(Xs[:, 0], 0)
