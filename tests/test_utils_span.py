"""Tests for the stateful span abstraction."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.span import Late, Span, SpanError, make_span


class TestConstruction:
    def test_rejects_empty_args(self):
        with pytest.raises(SpanError):
            Span()

    def test_rejects_three_args(self):
        with pytest.raises(SpanError):
            Span([1], 1, 1)

    def test_rejects_non_integer_count(self):
        with pytest.raises(SpanError):
            Span([1, 2], "two")

    def test_rejects_negative_count(self):
        with pytest.raises(SpanError):
            Span([1, 2], -1)

    def test_rejects_unspannable_object(self):
        with pytest.raises(SpanError):
            Span({"a": 1}).host_array()

    def test_rejects_non_contiguous_array(self):
        arr = np.zeros((4, 4))[:, 1]
        with pytest.raises(SpanError):
            Span(arr).host_array()

    def test_make_span_passthrough(self):
        s = Span([1, 2])
        assert make_span(s) is s


class TestResolution:
    def test_ndarray_is_zero_copy(self):
        arr = np.arange(8, dtype=np.float64)
        view = Span(arr).host_array()
        assert view.base is arr or view is arr

    def test_ndarray_count_prefix(self):
        arr = np.arange(10, dtype=np.int64)
        s = Span(arr, 4)
        assert list(s.host_array()) == [0, 1, 2, 3]
        assert s.size_bytes() == 4 * 8

    def test_int_list_becomes_int64(self):
        assert Span([1, 2, 3]).host_array().dtype == np.int64

    def test_float_list_becomes_float64(self):
        assert Span([1.5, 2]).host_array().dtype == np.float64

    def test_bytearray_views_as_uint8(self):
        s = Span(bytearray(b"abcd"))
        assert s.host_array().dtype == np.uint8
        assert s.size_bytes() == 4

    def test_len_and_dtype(self):
        s = Span(np.zeros(5, dtype=np.float32))
        assert len(s) == 5
        assert s.dtype == np.float32


class TestStatefulness:
    def test_list_growth_visible_at_resolution(self):
        """The paper's host_x -> pull_x pattern: data created after the
        span exists must be visible when the span resolves."""
        data: list = []
        s = Span(data)
        data.extend([7, 7, 7])
        assert list(s.host_array()) == [7, 7, 7]

    def test_callable_late_binding(self):
        box = {"arr": np.zeros(2)}
        s = Span(lambda: box["arr"])
        box["arr"] = np.arange(6, dtype=np.float64)
        assert len(s) == 6

    def test_callable_returning_pair(self):
        arr = np.arange(10, dtype=np.float64)
        s = Span(lambda: (arr, 3))
        assert len(s) == 3


class TestWriteBack:
    def test_ndarray_write_back_in_place(self):
        arr = np.zeros(4)
        Span(arr).write_back(np.arange(4, dtype=np.float64))
        assert list(arr) == [0, 1, 2, 3]

    def test_list_write_back_keeps_identity(self):
        data = [0, 0, 0]
        s = Span(data)
        original = data
        s.write_back(np.asarray([5, 6, 7]))
        assert data == [5, 6, 7]
        assert data is original

    def test_write_back_truncates_to_target(self):
        data = [0, 0]
        Span(data).write_back(np.asarray([1, 2, 3, 4]))
        assert data == [1, 2]

    def test_write_back_partial_source(self):
        arr = np.full(4, 9.0)
        Span(arr).write_back(np.asarray([1.0]))
        assert list(arr) == [1.0, 9.0, 9.0, 9.0]

    def test_tuple_target_rejected(self):
        with pytest.raises(SpanError):
            Span((1, 2)).write_back(np.asarray([3, 4]))

    def test_write_back_casts_dtype(self):
        arr = np.zeros(3, dtype=np.int64)
        Span(arr).write_back(np.asarray([1.9, 2.1, 3.7]))
        assert list(arr) == [1, 2, 3]


class TestLate:
    def test_resolves_callable(self):
        assert Late(lambda: 5).resolve() == 5

    def test_rejects_non_callable(self):
        with pytest.raises(SpanError):
            Late(3)


@given(st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=64))
def test_int_roundtrip_through_span(values):
    """host -> span -> write_back round-trips integers exactly."""
    target = [0] * len(values)
    Span(target).write_back(Span(values).host_array())
    assert target == values


@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=1,
        max_size=64,
    )
)
def test_float_roundtrip_through_span(values):
    arr = np.asarray(values, dtype=np.float64)
    out = np.zeros_like(arr)
    Span(out).write_back(Span(arr).host_array())
    assert np.array_equal(out, arr)
