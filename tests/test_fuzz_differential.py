"""Differential fuzzing: random task graphs, two independent runtimes.

Generates random DAGs mixing all four task types with data-dependent
kernels, runs each graph through the work-stealing parallel executor
AND the single-threaded sequential oracle, and requires bit-identical
final host data.  Any divergence is a scheduling/race/placement bug.

Also cross-checks the STA forward pass against networkx's longest-path
machinery on the same weighted DAG.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import SequentialExecutor
from repro.core import Executor, Heteroflow
from repro.utils.rng import seeded_rng


def add2(a, b):
    """Whole-array kernel: a += b (sizes matched by construction)."""
    n = min(a.size, b.size)
    a[:n] += b[:n]


def scale(ctx, n, factor, a):
    i = ctx.flat_indices()
    i = i[i < n]
    a[i] *= factor


def build_random_graph(seed: int, n_chains: int, chain_len: int):
    """A random forest of stateful CPU-GPU chains with cross links.

    Each chain: host(init) -> pull -> [kernel...] -> push -> host(fold).
    Kernels may additionally read an earlier chain's pull data (with an
    explicit dependency on that chain's last writer), exercising the
    Fig.-3 reuse pattern under randomized structure.
    """
    rng = seeded_rng(seed)
    hf = Heteroflow(f"fuzz{seed}")
    arrays = []
    folds = []
    chain_ends = []
    pulls = []

    for c in range(n_chains):
        size = int(rng.integers(8, 64))
        arr = np.zeros(size, dtype=np.float64)
        arrays.append(arr)
        base = float(rng.integers(1, 5))
        init = hf.host(lambda a=arr, b=base: a.__setitem__(slice(None), b))
        pull = hf.pull(arr)
        init.precede(pull)
        last = pull
        for k in range(chain_len):
            choice = rng.integers(0, 2)
            if choice == 0:
                factor = float(rng.integers(2, 4))
                size_late = arr.size
                ker = hf.kernel(scale, size_late, factor, pull)
            else:
                # read another chain's device data when available
                if pulls and rng.integers(0, 2) == 1:
                    other_idx = int(rng.integers(0, len(pulls)))
                    other_pull, other_last = pulls[other_idx]
                    ker = hf.kernel(add2, pull, other_pull)
                    ker.succeed(other_last)
                else:
                    ker = hf.kernel(scale, arr.size, 1.0, pull)
            ker.succeed(last)
            last = ker
        push = hf.push(pull, arr)
        push.succeed(last)
        fold = [0.0]
        folds.append(fold)
        done = hf.host(lambda a=arr, f=fold: f.__setitem__(0, float(a.sum())))
        done.succeed(push)
        chain_ends.append(done)
        pulls.append((pull, last))

    # random extra control edges between chain ends and later inits
    return hf, arrays, folds


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_chains=st.integers(1, 5),
    chain_len=st.integers(1, 4),
)
def test_parallel_matches_sequential(seed, n_chains, chain_len):
    hf1, arrays1, folds1 = build_random_graph(seed, n_chains, chain_len)
    with SequentialExecutor(num_gpus=2, gpu_memory_bytes=1 << 22) as seq:
        seq.run(hf1)

    hf2, arrays2, folds2 = build_random_graph(seed, n_chains, chain_len)
    with Executor(3, 2, gpu_memory_bytes=1 << 22) as ex:
        ex.run(hf2).result(timeout=60)

    for a1, a2 in zip(arrays1, arrays2):
        assert np.array_equal(a1, a2), (a1, a2)
    for f1, f2 in zip(folds1, folds2):
        assert f1 == f2


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_repeated_passes_match(seed):
    """run_n(k) on the parallel executor == k sequential passes."""
    hf1, arrays1, folds1 = build_random_graph(seed, 2, 2)
    with SequentialExecutor(num_gpus=1, gpu_memory_bytes=1 << 22) as seq:
        seq.run(hf1, passes=3)

    hf2, arrays2, folds2 = build_random_graph(seed, 2, 2)
    with Executor(2, 1, gpu_memory_bytes=1 << 22) as ex:
        ex.run_n(hf2, 3).result(timeout=60)

    for a1, a2 in zip(arrays1, arrays2):
        assert np.array_equal(a1, a2)


class TestStaVsNetworkx:
    """The STA forward pass is a longest-path computation; networkx is
    an independent implementation to diff against."""

    def _nx_arrivals(self, tg):
        g = nx.DiGraph()
        g.add_nodes_from(range(tg.num_nodes))
        for s, d, w in zip(tg.arc_src, tg.arc_dst, tg.arc_delay):
            # keep the max-weight parallel edge (max-plus semantics)
            if g.has_edge(int(s), int(d)):
                g[int(s)][int(d)]["weight"] = max(g[int(s)][int(d)]["weight"], float(w))
            else:
                g.add_edge(int(s), int(d), weight=float(w))
        order = list(nx.topological_sort(g))
        arr = {v: 0.0 for v in order}
        for v in order:
            for u in g.predecessors(v):
                arr[v] = max(arr[v], arr[u] + g[u][v]["weight"])
        return arr

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_arrival_times_match(self, seed):
        from repro.apps.timing import TimingGraph, generate_netlist, run_sta

        tg = TimingGraph.from_netlist(generate_netlist(120, seed=seed))
        sta = run_sta(tg)
        nx_arr = self._nx_arrivals(tg)
        for v, a in nx_arr.items():
            assert sta.arrival[v] == pytest.approx(a)

    def test_critical_delay_matches_dag_longest_path(self):
        from repro.apps.timing import TimingGraph, generate_netlist, run_sta

        tg = TimingGraph.from_netlist(generate_netlist(200, seed=5))
        sta = run_sta(tg)
        g = nx.DiGraph()
        for s, d, w in zip(tg.arc_src, tg.arc_dst, tg.arc_delay):
            if not g.has_edge(int(s), int(d)) or g[int(s)][int(d)]["weight"] < w:
                g.add_edge(int(s), int(d), weight=float(w))
        lp = nx.dag_longest_path_length(g, weight="weight")
        assert float(sta.arrival.max()) == pytest.approx(lp)
