"""Tests for the repro.check schedule-validation subsystem itself."""

import numpy as np
import pytest

from repro.check import (
    AllocatorAuditor,
    generate_graph,
    run_determinism_check,
    run_mutant_selftest,
    run_stress,
    validate_schedule,
)
from repro.core import Executor, Heteroflow, TraceObserver
from repro.core.observer import TaskRecord
from repro.errors import ValidationError
from repro.gpu.buddy import BuddyAllocator


class TestGenerator:
    def test_same_seed_same_graph(self):
        a = generate_graph(7, num_gpus=2)
        b = generate_graph(7, num_gpus=2)
        assert [n.name for n in a.graph.nodes] == [n.name for n in b.graph.nodes]
        assert [c.ops for c in a.chains] == [c.ops for c in b.chains]
        assert all(
            np.array_equal(x.init, y.init) for x, y in zip(a.chains, b.chains)
        )

    def test_generated_graphs_are_valid_dags(self):
        for seed in range(10):
            gen = generate_graph(seed, num_gpus=2)
            gen.graph.validate()  # raises on cycles / empty payloads

    def test_mixes_all_task_types(self):
        gen = generate_graph(3, num_gpus=2)
        types = {n.type.value for n in gen.graph.nodes}
        assert {"host", "pull", "push", "kernel"} <= types

    def test_oracle_matches_real_run(self):
        gen = generate_graph(11, num_gpus=2)
        with Executor(2, 2) as ex:
            ex.run_n(gen.graph, 2).result(timeout=60)
        assert gen.verify(passes=2) == []

    def test_oracle_catches_wrong_results(self):
        gen = generate_graph(11, num_gpus=2)
        with Executor(2, 2) as ex:
            ex.run(gen.graph).result(timeout=60)
        gen.chains[0].array[:] += 1.0  # corrupt one chain's result
        problems = gen.verify(passes=1)
        assert any("chain 0" in p for p in problems)

    def test_host_only_when_no_gpus(self):
        gen = generate_graph(5, num_gpus=0)
        assert all(n.type.value == "host" for n in gen.graph.nodes)


def _rec(name, nid, begin, end, *, type="host", device=None, stream=None,
         stream_seq=None, worker_id=0):
    return TaskRecord(
        name=name, type=type, worker_id=worker_id, device=device,
        begin=begin, end=end, nid=nid, stream=stream, stream_seq=stream_seq,
    )


class TestValidator:
    def _two_node_graph(self):
        hf = Heteroflow()
        a = hf.host(lambda: None, name="a")
        b = hf.host(lambda: None, name="b")
        a.precede(b)
        return hf, a.node, b.node

    def test_clean_trace_passes(self):
        hf, a, b = self._two_node_graph()
        records = [
            _rec("a", a.nid, 0.0, 1.0),
            _rec("b", b.nid, 1.5, 2.0),
        ]
        assert validate_schedule(hf, records, passes=1, num_gpus=0).ok

    def test_happens_before_violation(self):
        hf, a, b = self._two_node_graph()
        records = [
            _rec("a", a.nid, 0.0, 1.0),
            _rec("b", b.nid, 0.5, 2.0),  # began before predecessor ended
        ]
        report = validate_schedule(hf, records, passes=1, num_gpus=0)
        assert any(v.kind == "happens-before" for v in report.violations)
        with pytest.raises(ValidationError):
            report.raise_if_failed()

    def test_duplicate_run_violation(self):
        hf, a, b = self._two_node_graph()
        records = [
            _rec("a", a.nid, 0.0, 1.0),
            _rec("a", a.nid, 1.0, 1.2),  # ran twice in one pass
            _rec("b", b.nid, 2.0, 3.0),
        ]
        report = validate_schedule(hf, records, passes=1, num_gpus=0)
        assert any(v.kind == "count" for v in report.violations)

    def test_missing_run_violation_and_allow_partial(self):
        hf, a, b = self._two_node_graph()
        records = [_rec("a", a.nid, 0.0, 1.0)]
        strict = validate_schedule(hf, records, passes=1, num_gpus=0)
        assert any(v.kind == "count" for v in strict.violations)
        relaxed = validate_schedule(
            hf, records, passes=1, num_gpus=0, allow_partial=True
        )
        assert relaxed.ok

    def test_partial_never_excuses_orphan_successor(self):
        """Under allow_partial a successor record without a predecessor
        record is still a happens-before violation."""
        hf, a, b = self._two_node_graph()
        records = [_rec("b", b.nid, 0.0, 1.0)]  # b ran, a never did
        report = validate_schedule(
            hf, records, passes=1, num_gpus=0, allow_partial=True
        )
        assert any(v.kind == "happens-before" for v in report.violations)

    def test_stream_order_violation(self):
        hf = Heteroflow()
        data = np.zeros(4)
        p = hf.pull(data, name="p")
        q = hf.pull(data, name="q")
        records = [
            _rec("p", p.node.nid, 0.0, 3.0, type="pull", device=0,
                 stream=1, stream_seq=1),
            # seq 2 completed before seq 1: FIFO stream ran out of order
            _rec("q", q.node.nid, 1.0, 2.0, type="pull", device=0,
                 stream=1, stream_seq=2),
        ]
        report = validate_schedule(hf, records, passes=1, num_gpus=1)
        assert any(v.kind == "stream-order" for v in report.violations)

    def test_placement_group_split_violation(self):
        """A kernel on a different device than its source pull breaks
        the Algorithm-1 union-find grouping."""
        hf = Heteroflow()
        data = np.zeros(4)
        p = hf.pull(data, name="p")
        k = hf.kernel(lambda x: None, p, name="k")
        p.precede(k)
        records = [
            _rec("p", p.node.nid, 0.0, 1.0, type="pull", device=0,
                 stream=1, stream_seq=1),
            _rec("k", k.node.nid, 2.0, 3.0, type="kernel", device=1,
                 stream=2, stream_seq=1),
        ]
        report = validate_schedule(hf, records, passes=1, num_gpus=2)
        assert any(v.kind == "placement" for v in report.violations)

    def test_host_task_with_device_violation(self):
        hf = Heteroflow()
        a = hf.host(lambda: None, name="a")
        records = [_rec("a", a.node.nid, 0.0, 1.0, device=0)]
        report = validate_schedule(hf, records, passes=1, num_gpus=1)
        assert any(v.kind == "placement" for v in report.violations)

    def test_unknown_nid_violation(self):
        hf, a, b = self._two_node_graph()
        records = [
            _rec("a", a.nid, 0.0, 1.0),
            _rec("b", b.nid, 1.5, 2.0),
            _rec("ghost", 999_999_999, 0.0, 1.0),
        ]
        report = validate_schedule(hf, records, passes=1, num_gpus=0)
        assert any("unknown node" in v.message for v in report.violations)


class TestAuditor:
    def test_clean_lifecycle(self):
        a = BuddyAllocator(1 << 12, min_block=64)
        auditor = AllocatorAuditor()
        auditor.attach(a, label="pool")
        offs = [a.allocate(100) for _ in range(4)]
        for off in offs:
            a.free(off)
        report = auditor.finish()
        assert report.ok
        assert report.num_allocs == 4 and report.num_frees == 4
        assert report.peak_bytes["pool"] == 4 * 128
        assert a.trace_hook is None  # detached

    def test_leak_detected(self):
        a = BuddyAllocator(1 << 12, min_block=64)
        auditor = AllocatorAuditor()
        auditor.attach(a, label="pool")
        a.allocate(64)  # never freed
        report = auditor.finish()
        assert any("leaked" in v for v in report.violations)
        with pytest.raises(ValidationError):
            report.raise_if_failed()

    def test_overlap_and_alignment_detected_from_event_stream(self):
        """Drive the hook directly with corrupt events: the auditor
        must flag the overlap and the misalignment even though the
        allocator itself never produced them."""
        a = BuddyAllocator(1 << 12, min_block=64)
        auditor = AllocatorAuditor()
        auditor.attach(a, label="pool")
        hook = a.trace_hook
        hook("alloc", 0, 128, 100)
        hook("alloc", 64, 128, 100)  # overlaps [0,128) and misaligned
        hook("free", 0, 128, 128)
        hook("free", 64, 128, 128)
        hook("free", 64, 128, 128)  # double free
        report = auditor.finish()
        msgs = "\n".join(report.violations)
        assert "overlaps" in msgs
        assert "naturally" in msgs  # alignment violation
        assert "already-freed" in msgs

    def test_double_attach_rejected(self):
        a = BuddyAllocator(1 << 12, min_block=64)
        auditor = AllocatorAuditor()
        auditor.attach(a)
        with pytest.raises(ValidationError):
            AllocatorAuditor().attach(a)
        auditor.detach_all()

    def test_audits_real_executor_run(self):
        auditor = AllocatorAuditor()
        gen = generate_graph(4, num_gpus=2)
        with Executor(2, 2, observers=[]) as ex:
            auditor.attach_runtime(ex.gpu_runtime)
            ex.run(gen.graph).result(timeout=60)
        report = auditor.finish()
        assert report.ok
        assert report.num_pools == 2
        assert report.num_allocs == report.num_frees > 0


class TestMutantSelftest:
    def test_validator_catches_seeded_scheduler_bug(self):
        """The checker has teeth: a premature-dependency-release mutant
        is flagged while the reference executor passes."""
        result = run_mutant_selftest(delay=0.2)
        assert result.caught
        kinds = {v.kind for v in result.reports["mutant"].violations}
        assert "happens-before" in kinds
        assert result.reports["reference"].ok


class TestStressHarness:
    def test_small_sweep_is_clean(self):
        report = run_stress(seeds=3, configs=[(2, 1)])
        assert report.ok, "\n".join(report.violations)
        assert report.num_runs == 3
        assert report.num_allocs == report.num_frees > 0

    def test_fault_injection_paths(self):
        report = run_stress(seeds=1, configs=[(2, 2)], faults=True)
        assert report.ok, "\n".join(report.violations)
        modes = {o.mode for o in report.outcomes}
        assert modes == {"normal", "fault", "retry", "cancel"}

    def test_determinism_single_worker_host_only(self):
        """Same graph + seed on one worker yields the identical
        validated trace twice; see docs/testing.md for why this only
        holds for host-only graphs."""
        identical, order_a, order_b = run_determinism_check(seed=1, passes=2)
        assert identical, f"{order_a} != {order_b}"


class TestCli:
    def test_check_command_runs_selftest(self, capsys):
        from repro.cli import main

        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "caught" in out
        assert "check: OK" in out

    def test_config_parsing(self):
        from repro.cli import _parse_configs

        assert _parse_configs("1x1,2x2,4x2") == [(1, 1), (2, 2), (4, 2)]
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_configs("nope")
