"""Integration tests asserting the paper's figure *shapes* hold.

These run the virtual-time simulator on reduced-scale versions of the
evaluation workloads (the benchmarks run full scale) and assert the
qualitative claims of §IV:

- Fig. 6: timing runtime falls with both cores and GPUs; multi-GPU
  speed-up is "more remarkable" per unit than CPU speed-up; the
  (1,1) -> (40,4) end-to-end speed-up is several-fold.
- Fig. 9: placement saturates around 20 cores and gains almost
  nothing from extra GPUs.
"""

import pytest

from repro.apps.placement import build_placement_flow
from repro.apps.timing import build_timing_flow
from repro.sim import SimExecutor, paper_testbed


def timing_makespan(flow, cores, gpus):
    return SimExecutor(paper_testbed(cores, gpus), flow.cost_model).run(flow.graph).makespan


@pytest.fixture(scope="module")
def timing_flow():
    # 64 views at paper-scale costs: 1/16 of the 1024-view workload
    return build_timing_flow(num_views=64, num_gates=40, paths_per_view=4)


@pytest.fixture(scope="module")
def placement_flow():
    # 32 matchers = the paper-scale annotation constant (window count)
    return build_placement_flow(num_cells=30, iterations=10, num_matchers=32, window_size=1)


class TestFig6Shape:
    def test_monotone_in_cores(self, timing_flow):
        times = [timing_makespan(timing_flow, c, 4) for c in (1, 8, 40)]
        assert times[0] > times[1] >= times[2] * 0.95

    def test_monotone_in_gpus(self, timing_flow):
        times = [timing_makespan(timing_flow, 40, g) for g in (1, 2, 4)]
        assert times[0] > times[1] > times[2]

    def test_end_to_end_speedup_severalfold(self, timing_flow):
        t11 = timing_makespan(timing_flow, 1, 1)
        t404 = timing_makespan(timing_flow, 40, 4)
        assert 4.0 < t11 / t404 < 20.0  # paper: 7.7x

    def test_gpu_speedup_more_remarkable_per_unit(self, timing_flow):
        """4x GPUs buys more than 4x CPUs does, per added unit."""
        t_40_1 = timing_makespan(timing_flow, 40, 1)
        t_40_4 = timing_makespan(timing_flow, 40, 4)
        t_1_4 = timing_makespan(timing_flow, 1, 4)
        gpu_gain_per_unit = (t_40_1 / t_40_4) / 4
        cpu_gain_per_unit = (t_1_4 / t_40_4) / 40
        assert gpu_gain_per_unit > cpu_gain_per_unit

    def test_runtime_scales_with_views(self):
        """Fig. 6 lower: more views, proportionally more runtime."""
        small = build_timing_flow(num_views=16, num_gates=40, paths_per_view=4)
        large = build_timing_flow(num_views=64, num_gates=40, paths_per_view=4)
        t_small = timing_makespan(small, 8, 2)
        t_large = timing_makespan(large, 8, 2)
        assert 2.5 < t_large / t_small < 6.0  # ~4x views -> ~4x time


class TestFig9Shape:
    def placement_makespan(self, flow, cores, gpus):
        return SimExecutor(paper_testbed(cores, gpus), flow.cost_model).run(flow.graph).makespan

    def test_cpu_scaling_saturates(self, placement_flow):
        t1 = self.placement_makespan(placement_flow, 1, 1)
        t20 = self.placement_makespan(placement_flow, 20, 1)
        t40 = self.placement_makespan(placement_flow, 40, 1)
        assert t1 / t20 > 2.5  # early scaling is real
        assert t20 / t40 < 1.25  # and it saturates near 20 cores

    def test_gpus_barely_help(self, placement_flow):
        t1 = self.placement_makespan(placement_flow, 40, 1)
        t4 = self.placement_makespan(placement_flow, 40, 4)
        assert t1 / t4 < 1.1  # paper: 14.02s vs 13.61s

    def test_runtime_scales_with_iterations(self):
        short = build_placement_flow(num_cells=30, iterations=5, num_matchers=32, window_size=1)
        long = build_placement_flow(num_cells=30, iterations=10, num_matchers=32, window_size=1)
        t_short = self.placement_makespan(short, 40, 4)
        t_long = self.placement_makespan(long, 40, 4)
        assert 1.6 < t_long / t_short < 2.4


class TestRealExecutorIntegration:
    def test_both_apps_share_one_executor(self):
        """Two different application graphs run concurrently on one
        executor (the thread-safe submission story of §III-B)."""
        import numpy as np
        from repro.core import Executor

        tflow = build_timing_flow(num_views=2, num_gates=80, paths_per_view=8, seed=1)
        pflow = build_placement_flow(num_cells=60, iterations=2, seed=1)
        with Executor(4, 2, gpu_memory_bytes=1 << 22) as ex:
            f1 = ex.run(tflow.graph)
            f2 = ex.run(pflow.graph)
            f1.result(timeout=120)
            f2.result(timeout=120)
        assert tflow.report["num_views"] == 2.0
        t = pflow.hpwl_trace
        assert len(t) == 3 and t[-1] <= t[0]
