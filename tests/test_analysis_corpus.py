"""The lint-clean regression corpus and the hflint integration points:
builtin flows, example graphs, generated stress graphs, the executor
gate, and the ``python -m repro lint`` CLI."""

import json
import os

import numpy as np
import pytest

from repro.analysis import Severity, lint
from repro.analysis.corpus import (
    BUILTIN_CORPUS,
    build_saxpy,
    find_examples_dir,
    iter_builtin,
    iter_example_graphs,
)
from repro.check.generator import generate_graph
from repro.check.stress import STRESS_POOL_BYTES
from repro.cli import main
from repro.core import Executor, Heteroflow
from repro.errors import LintError

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def noop_kernel(ctx, *args):
    pass


def racy_graph():
    hf = Heteroflow("racy")
    p = hf.pull(np.zeros(8), name="p")
    k1 = hf.kernel(noop_kernel, p, name="k1")
    k2 = hf.kernel(noop_kernel, p, name="k2")
    p.precede(k1, k2)
    return hf


class TestBuiltinCorpus:
    @pytest.mark.parametrize("name", sorted(BUILTIN_CORPUS))
    def test_builtin_flow_lints_clean(self, name):
        (_, graph), = iter_builtin([name])
        report = lint(graph)
        assert report.clean, [str(d) for d in report.at_least(Severity.WARNING)]

    def test_unknown_builtin_rejected(self):
        with pytest.raises(KeyError):
            list(iter_builtin(["bogus"]))

    def test_saxpy_builder_shared_with_cli(self):
        hf, x, y, n = build_saxpy()
        assert hf.num_nodes == 7 and n == 65536
        with Executor(num_workers=2, num_gpus=1) as ex:
            ex.run(hf, lint=True).result()
        assert y == [4] * n and x == [1] * n


class TestExampleCorpus:
    def test_every_example_graph_lints_clean(self):
        graphs = list(iter_example_graphs(EXAMPLES_DIR))
        # every shipped example must expose build(); 7 scripts, one of
        # which (distributed_scheduling) contributes two graphs
        assert len(graphs) == 8
        for name, graph in graphs:
            report = lint(graph)
            assert report.clean, (
                name,
                [str(d) for d in report.at_least(Severity.WARNING)],
            )

    def test_find_examples_dir_walks_up(self):
        found = find_examples_dir(os.path.dirname(__file__))
        assert os.path.samefile(found, EXAMPLES_DIR)

    def test_scripts_without_build_are_skipped(self, tmp_path):
        (tmp_path / "no_build.py").write_text("VALUE = 1\n")
        assert list(iter_example_graphs(str(tmp_path))) == []


class TestGeneratedCorpus:
    @pytest.mark.parametrize("seed", range(12))
    def test_generated_graphs_lint_clean(self, seed):
        gen = generate_graph(seed, num_gpus=2)
        report = lint(gen.graph, gpu_memory_bytes=STRESS_POOL_BYTES)
        assert report.clean, [str(d) for d in report.at_least(Severity.WARNING)]

    @pytest.mark.parametrize("kwargs", [{"fallbacks": False}, {"gate": True}])
    def test_fault_and_gate_variants_lint_clean(self, kwargs):
        gen = generate_graph(3, num_gpus=2, **kwargs)
        assert lint(gen.graph, gpu_memory_bytes=STRESS_POOL_BYTES).clean

    def test_host_only_graphs_lint_clean(self):
        gen = generate_graph(5, num_gpus=0)
        assert lint(gen.graph).clean


class TestExecutorGate:
    def test_run_with_lint_raises_on_error_findings(self):
        with Executor(num_workers=1, num_gpus=1) as ex:
            with pytest.raises(LintError) as exc:
                ex.run(racy_graph(), lint=True)
            assert "HF011" in str(exc.value)
            assert exc.value.report.by_code("HF011")

    def test_run_without_lint_is_ungated(self):
        # same graph, no gate: the runtime executes it (the "race" is
        # benign no-op kernels), proving the gate is opt-in
        with Executor(num_workers=1, num_gpus=1) as ex:
            assert ex.run(racy_graph()).result() == 1

    def test_warnings_do_not_block_execution(self):
        hf = Heteroflow("warn-only")
        p = hf.pull(np.zeros(8), name="p")
        q = hf.push(p, np.zeros(8), name="q")
        p.precede(q)  # HF012 warning
        with Executor(num_workers=1, num_gpus=1) as ex:
            assert ex.run(hf, lint=True).result() == 1

    def test_executor_lint_uses_its_pool_size(self):
        hf = Heteroflow("big")
        p1 = hf.pull(np.zeros(1024), name="p1")  # 8 KiB each
        p2 = hf.pull(np.zeros(1024), name="p2")
        k = hf.kernel(noop_kernel, p1, p2, name="k")
        k.succeed(p1, p2)
        with Executor(num_workers=1, num_gpus=1, gpu_memory_bytes=8192) as ex:
            assert ex.lint(hf).by_code("HF020")
        with Executor(num_workers=1, num_gpus=1) as ex:  # default 64 MiB
            assert not ex.lint(hf).by_code("HF020")

    def test_heteroflow_lint_method(self):
        report = racy_graph().lint()
        assert not report.ok and report.by_code("HF011")


class TestLintCli:
    def test_builtin_workload_ok(self, capsys):
        assert main(["lint", "saxpy"]) == 0
        out = capsys.readouterr().out
        assert "saxpy: 7 task(s)" in out
        assert "-> OK" in out

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["lint", "bogus"]) == 2
        assert "unknown workloads" in capsys.readouterr().err

    def test_json_output_parses(self, capsys):
        assert main(["lint", "saxpy", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 2
        assert doc["ok"] and doc["clean"]
        assert [g["graph"] for g in doc["graphs"]] == ["saxpy"]

    def test_dot_output(self, capsys):
        assert main(["lint", "saxpy", "--dot"]) == 0
        assert capsys.readouterr().out.startswith('digraph "hflint:saxpy"')

    def test_failing_example_exits_1(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\n"
            "from repro.core import Heteroflow\n"
            "def k(ctx, *a):\n"
            "    pass\n"
            "def build():\n"
            "    hf = Heteroflow('bad')\n"
            "    p = hf.pull(np.zeros(8), name='p')\n"
            "    k1 = hf.kernel(k, p, name='k1')\n"
            "    k2 = hf.kernel(k, p, name='k2')\n"
            "    p.precede(k1, k2)\n"
            "    return hf\n"
        )
        assert main(["lint", "saxpy", "--examples", str(tmp_path)]) == 1
        assert "HF011" in capsys.readouterr().out

    def test_strict_gates_on_warnings(self, tmp_path, capsys):
        (tmp_path / "warn.py").write_text(
            "import numpy as np\n"
            "from repro.core import Heteroflow\n"
            "def build():\n"
            "    hf = Heteroflow('warn')\n"
            "    p = hf.pull(np.zeros(8), name='p')\n"
            "    q = hf.push(p, np.zeros(8), name='q')\n"
            "    p.precede(q)\n"
            "    return hf\n"
        )
        args = ["lint", "saxpy", "--examples", str(tmp_path)]
        assert main(args) == 0  # HF012 is a warning: default gate passes
        capsys.readouterr()
        assert main(args + ["--strict"]) == 1

    def test_gpu_memory_flag_drives_hf020(self, tmp_path, capsys):
        (tmp_path / "hungry.py").write_text(
            "import numpy as np\n"
            "from repro.core import Heteroflow\n"
            "def k(ctx, *a):\n"
            "    pass\n"
            "def build():\n"
            "    hf = Heteroflow('hungry')\n"
            "    p1 = hf.pull(np.zeros(1024), name='p1')\n"  # 8 KiB each
            "    p2 = hf.pull(np.zeros(1024), name='p2')\n"
            "    kt = hf.kernel(k, p1, p2, name='k')\n"
            "    kt.succeed(p1, p2)\n"
            "    return hf\n"
        )
        args = ["lint", "saxpy", "--examples", str(tmp_path)]
        assert main(args) == 0  # fits the default 64 MiB pool
        capsys.readouterr()
        assert main(args + ["--gpu-memory", "8192"]) == 1
        assert "HF020" in capsys.readouterr().out
