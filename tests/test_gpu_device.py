"""Tests for devices, scoped contexts, and async memcpy."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpu.device import GpuRuntime, ScopedDeviceContext, current_device
from repro.gpu import runtime as rt_api


class TestRuntime:
    def test_device_count(self, gpu2):
        assert gpu2.device_count == 2

    def test_invalid_ordinal(self, gpu2):
        with pytest.raises(DeviceError):
            gpu2.device(2)
        with pytest.raises(DeviceError):
            gpu2.device(-1)

    def test_negative_count_rejected(self):
        with pytest.raises(DeviceError):
            GpuRuntime(-1)

    def test_zero_gpu_runtime(self):
        rt = GpuRuntime(0)
        assert rt.device_count == 0
        rt.destroy()

    def test_context_manager_destroys(self):
        with GpuRuntime(1) as rt:
            s = rt.device(0).create_stream()
        # streams are down; enqueue must fail
        with pytest.raises(DeviceError):
            s.enqueue(lambda: None)


class TestScopedContext:
    def test_scope_sets_and_restores(self, gpu2):
        assert current_device() is None
        with ScopedDeviceContext(gpu2.device(1)) as d:
            assert current_device() is d
            with ScopedDeviceContext(gpu2.device(0)):
                assert current_device().ordinal == 0
            assert current_device().ordinal == 1
        assert current_device() is None

    def test_scope_restores_on_exception(self, gpu2):
        with pytest.raises(RuntimeError):
            with ScopedDeviceContext(gpu2.device(0)):
                raise RuntimeError("boom")
        assert current_device() is None


class TestMemcpy:
    def test_h2d_then_d2h_roundtrip(self, gpu2):
        d = gpu2.device(0)
        s = d.create_stream()
        src = np.arange(100, dtype=np.float64)
        buf = d.allocate(src.nbytes, dtype=src.dtype)
        gpu2.memcpy_h2d_async(buf, src, s)
        out = np.zeros_like(src)
        gpu2.memcpy_d2h_async(out, buf, s)
        s.synchronize()
        assert np.array_equal(out, src)

    def test_h2d_wrong_device_stream_rejected(self, gpu2):
        buf = gpu2.device(0).allocate(16)
        s1 = gpu2.device(1).create_stream()
        with pytest.raises(DeviceError):
            gpu2.memcpy_h2d_async(buf, np.zeros(4, dtype=np.float32), s1)

    def test_d2d_peer_copy(self, gpu2):
        d0, d1 = gpu2.device(0), gpu2.device(1)
        s = d1.create_stream()
        a = d0.allocate(16, dtype=np.uint8)
        b = d1.allocate(16, dtype=np.uint8)
        a.view()[:] = 9
        gpu2.memcpy_d2d_async(b, a, s)
        s.synchronize()
        assert set(b.view()) == {9}

    def test_copy_respects_stream_order(self, gpu2):
        """An H2D copy snapshots the host buffer when the op runs, so a
        prior enqueued mutation is visible (stream ordering)."""
        d = gpu2.device(0)
        s = d.create_stream()
        host = np.zeros(8, dtype=np.int64)
        buf = d.allocate(host.nbytes, dtype=host.dtype)
        s.enqueue(lambda: host.__setitem__(slice(None), 5))
        gpu2.memcpy_h2d_async(buf, host, s)
        s.synchronize()
        assert set(buf.view()) == {5}

    def test_runtime_synchronize_drains_all(self, gpu2):
        flags = []
        for i in range(2):
            gpu2.device(i).create_stream().enqueue(lambda i=i: flags.append(i))
        gpu2.synchronize()
        assert sorted(flags) == [0, 1]


class TestFacade:
    def test_cuda_style_roundtrip(self, gpu2):
        s = rt_api.stream_create(gpu2, 0)
        buf = rt_api.malloc(gpu2, 0, 32, dtype=np.float32)
        src = np.arange(8, dtype=np.float32)
        rt_api.memcpy_h2d_async(gpu2, buf, src, s)
        ev = rt_api.event_create()
        rt_api.event_record(ev, s)
        rt_api.event_synchronize(ev)
        out = np.zeros(8, dtype=np.float32)
        rt_api.memcpy_d2h_async(gpu2, out, buf, s)
        rt_api.stream_synchronize(s)
        assert np.array_equal(out, src)
        rt_api.free(buf)
        assert rt_api.device_count(gpu2) == 2


class TestMemset:
    def test_memset_fills_bytes(self, gpu2):
        d = gpu2.device(0)
        s = d.create_stream()
        buf = d.allocate(64, dtype=np.uint8)
        gpu2.memset_async(buf, 7, s)
        s.synchronize()
        assert set(buf.view()) == {7}

    def test_memset_zero_for_floats(self, gpu2):
        d = gpu2.device(0)
        s = d.create_stream()
        buf = d.allocate(8 * 8, dtype=np.float64)
        buf.view()[:] = 3.5
        gpu2.memset_async(buf, 0, s)
        s.synchronize()
        assert set(buf.view()) == {0.0}

    def test_memset_rejects_bad_value(self, gpu2):
        d = gpu2.device(0)
        s = d.create_stream()
        buf = d.allocate(8)
        with pytest.raises(DeviceError):
            gpu2.memset_async(buf, 300, s)

    def test_memset_rejects_wrong_stream(self, gpu2):
        buf = gpu2.device(0).allocate(8)
        s1 = gpu2.device(1).create_stream()
        with pytest.raises(DeviceError):
            gpu2.memset_async(buf, 0, s1)
