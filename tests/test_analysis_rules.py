"""Per-rule hflint tests: one minimal offending graph (flagged) and
one minimal passing graph (silent) for every rule code, plus the
dataflow-model primitives the rules are built on."""

import numpy as np
import pytest

from repro.analysis import GraphModel, RULES, Severity, lint
from repro.analysis.model import READ, WRITE, kernel_access_mode
from repro.core import Heteroflow
from repro.core.task import HostTask
from repro.errors import GraphError
from repro.gpu.memory import pooled_bytes


def noop_kernel(ctx, *args):  # never executed by lint
    pass


def codes(report):
    return [d.code for d in report.diagnostics]


class TestCatalog:
    def test_all_rules_have_catalog_entries(self):
        from repro.analysis import ALL_RULES

        assert set(ALL_RULES) == set(RULES)

    def test_severity_tiers(self):
        assert RULES["HF001"].severity is Severity.ERROR
        assert RULES["HF002"].severity is Severity.WARNING
        assert RULES["HF003"].severity is Severity.ERROR
        assert RULES["HF010"].severity is Severity.ERROR
        assert RULES["HF011"].severity is Severity.ERROR
        assert RULES["HF012"].severity is Severity.WARNING
        assert RULES["HF013"].severity is Severity.INFO
        assert RULES["HF014"].severity is Severity.ERROR
        assert RULES["HF015"].severity is Severity.ERROR
        assert RULES["HF016"].severity is Severity.WARNING
        assert RULES["HF017"].severity is Severity.WARNING
        assert RULES["HF020"].severity is Severity.ERROR

    def test_unknown_code_rejected(self):
        from repro.analysis import Diagnostic

        with pytest.raises(ValueError):
            Diagnostic("HF999", "nope")

    def test_unknown_rule_selection_rejected(self):
        with pytest.raises(ValueError, match="HF999"):
            lint(Heteroflow("g"), rules=["HF999"])


class TestHF001Cycle:
    def test_flags_cycle_with_witness(self):
        hf = Heteroflow("cyclic")
        a = hf.host(lambda: None, name="a")
        b = hf.host(lambda: None, name="b")
        a.precede(b)
        b.precede(a)
        report = lint(hf)
        (d,) = report.by_code("HF001")
        assert d.severity is Severity.ERROR
        witness = d.data["witness"]
        assert witness[0] == witness[-1]
        assert set(witness) == {"a", "b"}
        assert not report.ok

    def test_silent_on_chain(self):
        hf = Heteroflow("chain")
        a = hf.host(lambda: None, name="a")
        b = hf.host(lambda: None, name="b")
        c = hf.host(lambda: None, name="c")
        a.precede(b)
        b.precede(c)
        assert lint(hf).by_code("HF001") == []

    def test_dataflow_rules_skipped_while_cyclic(self):
        hf = Heteroflow("cyclic-gpu")
        p = hf.pull(np.zeros(8), name="p")
        k = hf.kernel(noop_kernel, p, name="k")
        k.precede(p)
        p.precede(k)
        report = lint(hf)
        assert report.by_code("HF001")
        # HF010/HF011/HF013 need the happens-before closure -> skipped
        assert not report.by_code("HF010")
        assert not report.by_code("HF011")
        assert not report.by_code("HF013")


class TestHF002DeadTask:
    def test_flags_disconnected_kernel(self):
        hf = Heteroflow("island")
        hf.kernel(noop_kernel, name="k")
        (d,) = lint(hf).by_code("HF002")
        assert d.tasks == ("k",)
        assert d.data["kind"] == "disconnected"
        assert d.severity is Severity.WARNING

    def test_flags_dead_pull(self):
        hf = Heteroflow("dead-pull")
        h = hf.host(lambda: None, name="h")
        p = hf.pull(np.zeros(8), name="p")
        h.precede(p)
        (d,) = lint(hf).by_code("HF002")
        assert d.tasks == ("p",)
        assert d.data["kind"] == "dead-pull"

    def test_silent_on_isolated_host_and_consumed_pull(self):
        hf = Heteroflow("fine")
        hf.host(lambda: None, name="lonely_host")  # idiomatic: stays silent
        p = hf.pull(np.zeros(8), name="p")
        k = hf.kernel(noop_kernel, p, name="k")
        p.precede(k)
        assert lint(hf).by_code("HF002") == []


class TestHF003Unbound:
    def test_flags_placeholder(self):
        hf = Heteroflow("holes")
        hf.placeholder(name="todo")
        (d,) = lint(hf).by_code("HF003")
        assert d.tasks == ("todo",)
        assert d.severity is Severity.ERROR

    def test_silent_once_bound(self):
        hf = Heteroflow("filled")
        ph = hf.placeholder(HostTask, name="todo")
        ph.host(lambda: None)
        assert lint(hf).by_code("HF003") == []


class TestHF010UseBeforeTransfer:
    def test_flags_kernel_without_path_from_pull(self):
        hf = Heteroflow("backwards")
        p = hf.pull(np.zeros(8), name="p")
        k = hf.kernel(noop_kernel, p, name="k")
        k.precede(p)  # backwards: kernel may run before the H2D copy
        (d,) = lint(hf).by_code("HF010")
        assert d.tasks == ("p", "k")
        assert d.severity is Severity.ERROR

    def test_flags_push_without_path_from_pull(self):
        hf = Heteroflow("stray-push")
        h = hf.host(lambda: None, name="h")
        p = hf.pull(np.zeros(8), name="p")
        k = hf.kernel(noop_kernel, p, name="k")
        q = hf.push(p, np.zeros(8), name="q")
        p.precede(k)
        h.precede(q)  # q never waits for p
        flagged = lint(hf).by_code("HF010")
        assert [d.tasks for d in flagged] == [("p", "q")]

    def test_silent_with_direct_or_transitive_path(self):
        hf = Heteroflow("ordered")
        p = hf.pull(np.zeros(8), name="p")
        k1 = hf.kernel(noop_kernel, p, name="k1")
        k2 = hf.kernel(noop_kernel, p, name="k2")
        p.precede(k1)
        k1.precede(k2)  # k2 reaches p only transitively
        assert lint(hf).by_code("HF010") == []


class TestHF011SpanRace:
    def _racy(self):
        hf = Heteroflow("race")
        p = hf.pull(np.zeros(8), name="p")
        k1 = hf.kernel(noop_kernel, p, name="k1")
        k2 = hf.kernel(noop_kernel, p, name="k2")
        p.precede(k1, k2)
        return hf, p, k1, k2

    def test_flags_write_write_race(self):
        hf, _, _, _ = self._racy()
        (d,) = lint(hf).by_code("HF011")
        assert d.data["kind"] == "write-write"
        assert set(d.tasks) == {"k1", "k2"}
        assert d.severity is Severity.ERROR

    def test_flags_read_write_race(self):
        hf, p, k1, _ = self._racy()
        k1.reads(p)  # k2 still defaults to read-write
        (d,) = lint(hf).by_code("HF011")
        assert d.data["kind"] == "read-write"

    def test_silent_when_ordered(self):
        hf, _, k1, k2 = self._racy()
        k1.precede(k2)
        assert lint(hf).by_code("HF011") == []

    def test_silent_when_both_read_only(self):
        hf, p, k1, k2 = self._racy()
        k1.reads(p)
        k2.reads(p)
        assert lint(hf).by_code("HF011") == []

    def test_no_double_report_with_hf010(self):
        # an access with no path from the pull is HF010, not HF011
        hf = Heteroflow("race-and-stray")
        p = hf.pull(np.zeros(8), name="p")
        k1 = hf.kernel(noop_kernel, p, name="k1")
        k2 = hf.kernel(noop_kernel, p, name="k2")
        p.precede(k1)  # k2 is entirely unplaced
        report = lint(hf)
        assert [d.tasks for d in report.by_code("HF010")] == [("p", "k2")]
        assert report.by_code("HF011") == []


class TestHF012PushUnwritten:
    def test_flags_push_without_any_kernel_write(self):
        hf = Heteroflow("identity-roundtrip")
        p = hf.pull(np.zeros(8), name="p")
        q = hf.push(p, np.zeros(8), name="q")
        p.precede(q)
        (d,) = lint(hf).by_code("HF012")
        assert d.tasks == ("q",)
        assert d.data["span"] == "p"
        assert d.severity is Severity.WARNING

    def test_flags_when_only_kernel_declared_read_only(self):
        hf = Heteroflow("read-only-roundtrip")
        p = hf.pull(np.zeros(8), name="p")
        k = hf.kernel(noop_kernel, p, name="k")
        k.reads(p)
        q = hf.push(p, np.zeros(8), name="q")
        p.precede(k)
        k.precede(q)
        assert len(lint(hf).by_code("HF012")) == 1

    def test_silent_with_default_rw_kernel(self):
        hf = Heteroflow("written")
        p = hf.pull(np.zeros(8), name="p")
        k = hf.kernel(noop_kernel, p, name="k")
        q = hf.push(p, np.zeros(8), name="q")
        p.precede(k)
        k.precede(q)
        assert lint(hf).by_code("HF012") == []


class TestHF013RedundantEdge:
    def test_flags_transitive_edge(self):
        hf = Heteroflow("triangle")
        a = hf.host(lambda: None, name="a")
        b = hf.host(lambda: None, name="b")
        c = hf.host(lambda: None, name="c")
        a.precede(b)
        b.precede(c)
        a.precede(c)  # implied through b
        (d,) = lint(hf).by_code("HF013")
        assert d.tasks == ("a", "c")
        assert d.data == {"kind": "transitive", "via": "b"}
        assert d.severity is Severity.INFO

    def test_flags_duplicate_edge(self):
        hf = Heteroflow("twice")
        a = hf.host(lambda: None, name="a")
        b = hf.host(lambda: None, name="b")
        a.precede(b)
        a.precede(b)
        (d,) = lint(hf).by_code("HF013")
        assert d.data["kind"] == "duplicate"

    def test_silent_on_diamond(self):
        hf = Heteroflow("diamond")
        a = hf.host(lambda: None, name="a")
        b = hf.host(lambda: None, name="b")
        c = hf.host(lambda: None, name="c")
        d = hf.host(lambda: None, name="d")
        a.precede(b, c)
        b.precede(d)
        c.precede(d)
        assert lint(hf).by_code("HF013") == []


class TestHF014UndeclaredWrite:
    def _graph(self, declare_write):
        hf = Heteroflow("hf014")
        p = hf.pull(np.zeros(8, dtype=np.float32), name="p")

        def doubler(ctx, xs):
            xs[:] = xs * 2.0

        k = hf.kernel(doubler, p, name="k").grid(1).block(8)
        if declare_write:
            k.writes(p)
        else:
            k.reads(p)
        p.precede(k)
        return hf

    def test_flags_write_behind_readonly_declaration(self):
        report = lint(self._graph(declare_write=False))
        flagged = report.by_code("HF014")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.ERROR
        assert flagged[0].data["span"] == "p"
        assert flagged[0].data["param"] == "xs"
        kinds = {m["kind"] for m in flagged[0].data["mutations"]}
        assert "setitem" in kinds

    def test_silent_when_declared_written(self):
        assert lint(self._graph(declare_write=True)).by_code("HF014") == []

    def test_flags_write_proven_through_helper(self):
        # the engine follows calls to analyzable captured helpers, so
        # the write is still proven one level down
        hf = Heteroflow("hf014-helper")
        p = hf.pull(np.zeros(8, dtype=np.float32), name="p")

        def helper(arr):
            arr[:] = 0.0

        def delegating(ctx, xs):
            helper(xs)

        k = hf.kernel(delegating, p, name="k").reads(p).grid(1).block(8)
        p.precede(k)
        assert len(lint(hf).by_code("HF014")) == 1

    def test_silent_when_parameter_escapes(self):
        # a dict-dispatched callee is opaque — the write cannot be
        # proven, so the rule must stay quiet rather than guess
        hf = Heteroflow("hf014-escape")
        p = hf.pull(np.zeros(8, dtype=np.float32), name="p")
        table = {"f": lambda arr: None}

        def escaping(ctx, xs):
            table["f"](xs)

        k = hf.kernel(escaping, p, name="k").reads(p).grid(1).block(8)
        p.precede(k)
        assert lint(hf).by_code("HF014") == []

    def test_mutant_deleted_writes_is_caught(self):
        # the acceptance mutant: take a correct graph and delete the
        # writes() declaration — HF014 must catch the hole
        hf = self._graph(declare_write=True)
        node = next(n for n in hf.nodes if n.name == "k")
        node.kernel_reads = node.kernel_writes
        node.kernel_writes = frozenset()
        flagged = lint(hf).by_code("HF014")
        assert len(flagged) == 1


class TestHF015HostRace:
    def _graph(self, ordered):
        hf = Heteroflow("hf015")
        state = {"hits": 0}

        def bump():
            state["hits"] = state["hits"] + 1

        a = hf.host(bump, name="a")
        b = hf.host(bump, name="b")
        if ordered:
            a.precede(b)
        return hf

    def test_flags_unordered_shared_dict_mutation(self):
        flagged = lint(self._graph(ordered=False)).by_code("HF015")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.ERROR
        assert flagged[0].data["object_type"] == "dict"
        assert set(flagged[0].tasks) == {"a", "b"}

    def test_silent_when_ordered(self):
        assert lint(self._graph(ordered=True)).by_code("HF015") == []

    def test_silent_on_disjoint_keys(self):
        hf = Heteroflow("hf015-disjoint")
        state = {}

        def wa():
            state["a"] = 1

        def wb():
            state["b"] = 2

        hf.host(wa, name="a")
        hf.host(wb, name="b")
        assert lint(hf).by_code("HF015") == []

    def test_silent_when_lock_guarded(self):
        import threading

        hf = Heteroflow("hf015-lock")
        lock = threading.Lock()
        state = {"hits": 0}

        def bump():
            with lock:
                state["hits"] = state["hits"] + 1

        hf.host(bump, name="a")
        hf.host(bump, name="b")
        assert lint(hf).by_code("HF015") == []


class TestHF016NondetFrozen:
    def _graph(self):
        import random

        hf = Heteroflow("hf016")
        out = []
        hf.host(lambda: out.append(random.random()), name="roll")
        return hf

    def test_flags_nondet_in_frozen_topology(self):
        hf = self._graph()
        hf.freeze()
        flagged = lint(hf).by_code("HF016")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.WARNING
        assert any("random" in s for s in flagged[0].data["sources"])

    def test_silent_while_unfrozen(self):
        assert lint(self._graph()).by_code("HF016") == []

    def test_silent_on_seeded_generator_methods(self):
        import random

        hf = Heteroflow("hf016-seeded")
        rng = random.Random(7)
        out = []
        hf.host(lambda: out.append(rng.random()), name="roll")
        hf.freeze()
        assert lint(hf).by_code("HF016") == []


class TestHF017StaleDeclaration:
    def _graph(self, touch):
        hf = Heteroflow("hf017")
        p = hf.pull(np.zeros(8, dtype=np.float32), name="p")
        q = hf.pull(np.zeros(8, dtype=np.float32), name="q")

        if touch:
            def body(ctx, xs, ys):
                ys[:] = xs * 2.0
        else:
            def body(ctx, xs, ys):
                ys[:] = ys * 2.0  # xs never touched

        k = (
            hf.kernel(body, p, q, name="k")
            .reads(p)
            .writes(q)
            .grid(1)
            .block(8)
        )
        k.succeed(p, q)
        return hf

    def test_flags_untouched_declared_span(self):
        flagged = lint(self._graph(touch=False)).by_code("HF017")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.WARNING
        assert flagged[0].data == {"span": "p", "param": "xs"}

    def test_silent_when_body_uses_the_span(self):
        assert lint(self._graph(touch=True)).by_code("HF017") == []


class TestHF020GroupCapacity:
    SPAN = 1024  # float64 -> 8192 bytes, already a power of two

    def _two_pulls(self, joined):
        hf = Heteroflow("capacity")
        p1 = hf.pull(np.zeros(self.SPAN), name="p1")
        p2 = hf.pull(np.zeros(self.SPAN), name="p2")
        if joined:  # one kernel unions both pulls into one group
            k = hf.kernel(noop_kernel, p1, p2, name="k")
            k.succeed(p1, p2)
        else:  # independent groups, one per pull
            k1 = hf.kernel(noop_kernel, p1, name="k1")
            k2 = hf.kernel(noop_kernel, p2, name="k2")
            p1.precede(k1)
            p2.precede(k2)
        return hf

    def test_flags_group_exceeding_pool(self):
        hf = self._two_pulls(joined=True)
        (d,) = lint(hf, gpu_memory_bytes=8192).by_code("HF020")
        assert d.data["footprint_bytes"] == 16384
        assert d.data["pool_bytes"] == 8192
        assert set(d.tasks) == {"p1", "p2"}
        assert d.severity is Severity.ERROR

    def test_silent_when_groups_fit_separately(self):
        # same spans, same pool — but no kernel merges the groups
        hf = self._two_pulls(joined=False)
        assert lint(hf, gpu_memory_bytes=8192).by_code("HF020") == []

    def test_silent_with_large_pool(self):
        hf = self._two_pulls(joined=True)
        assert lint(hf, gpu_memory_bytes=1 << 20).by_code("HF020") == []

    def test_footprint_is_buddy_rounded(self):
        hf = Heteroflow("rounded")
        p = hf.pull(np.zeros(5, dtype=np.float64), name="p")  # 40 bytes
        k = hf.kernel(noop_kernel, p, name="k")
        p.precede(k)
        model = GraphModel(hf)
        (group,) = model.groups
        assert group.footprint_bytes == pooled_bytes(40) == 256

    def test_pool_must_be_positive(self):
        with pytest.raises(ValueError):
            lint(Heteroflow("g"), gpu_memory_bytes=0)


class TestGraphModel:
    def test_reaches_and_ordered(self):
        hf = Heteroflow("m")
        a = hf.host(lambda: None, name="a")
        b = hf.host(lambda: None, name="b")
        c = hf.host(lambda: None, name="c")
        a.precede(b)
        b.precede(c)
        m = GraphModel(hf)
        assert m.acyclic
        assert m.reaches(a.node, c.node)
        assert not m.reaches(c.node, a.node)
        assert m.ordered(c.node, a.node)

    def test_access_mode_defaults_and_declarations(self):
        hf = Heteroflow("modes")
        p1 = hf.pull(np.zeros(4), name="p1")
        p2 = hf.pull(np.zeros(4), name="p2")
        k = hf.kernel(noop_kernel, p1, p2, name="k")
        k.reads(p1)
        assert kernel_access_mode(k.node, p1.node) == READ
        assert kernel_access_mode(k.node, p2.node) == WRITE  # conservative
        k.writes(p1)  # override back to read-write
        assert kernel_access_mode(k.node, p1.node) == WRITE

    def test_declarations_reset_on_kernel_rebind(self):
        hf = Heteroflow("rebind")
        p = hf.pull(np.zeros(4), name="p")
        k = hf.kernel(noop_kernel, p, name="k")
        k.reads(p)
        k.kernel(noop_kernel, p)  # rebind drops stale declarations
        assert kernel_access_mode(k.node, p.node) == WRITE

    def test_declaring_non_source_pull_rejected(self):
        hf = Heteroflow("bad-decl")
        p = hf.pull(np.zeros(4), name="p")
        other = hf.pull(np.zeros(4), name="other")
        k = hf.kernel(noop_kernel, p, name="k")
        with pytest.raises(GraphError, match="not among its arguments"):
            k.reads(other)

    def test_unresolved_span_counted_not_fatal(self):
        hf = Heteroflow("late")
        state = {}
        p = hf.pull(lambda: state["missing"], name="p")  # unresolvable now
        k = hf.kernel(noop_kernel, p, name="k")
        p.precede(k)
        model = GraphModel(hf)
        (group,) = model.groups
        assert group.unresolved == [p.node]
        assert group.footprint_bytes == 0
        assert lint(hf, gpu_memory_bytes=256).by_code("HF020") == []
