"""Gray-failure machinery tests: breaker/budget/health state machines
(fake clock, no processes) plus process-level gateway behavior — stall
detection and breaker re-admission, hedged submissions, retry-budget
exhaustion, and the drain-deadline regression suite.

The state-machine classes use injected clocks so every transition is
deterministic; the process classes spawn real 2-worker pools (same
budget discipline as tests/test_gateway.py: few pools, many assertions
per pool).
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.errors import ExecutorError, GatewayError
from repro.gateway import (
    BurstSpec,
    Gateway,
    GeneratedSpec,
    HealthConfig,
    WorkerConfig,
    WorkerHealth,
)
from repro.resilience import CircuitBreaker, RetryBudget

_CONFIG = WorkerConfig(threads=2, gpus=1)
_T = 60.0


def _run(coro):
    return asyncio.run(coro)


class _FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ---------------------------------------------------------------------
# circuit breaker state machine (fake clock — fully deterministic)
# ---------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, clock, **kw):
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("cooldown", 1.0)
        kw.setdefault("jitter", 0.0)
        kw.setdefault("probe_successes", 2)
        return CircuitBreaker(clock=clock, **kw)

    def test_validation(self):
        for kw in (
            {"failure_threshold": 0},
            {"cooldown": -1.0},
            {"backoff": 0.5},
            {"probe_successes": 0},
            {"jitter": 1.0},
        ):
            with pytest.raises(ExecutorError):
                CircuitBreaker(**kw)

    def test_closed_to_open_on_threshold(self):
        clk = _FakeClock()
        b = self._breaker(clk)
        for _ in range(2):
            b.record_failure()
        assert b.state == "closed" and b.routable
        b.record_failure()
        assert b.state == "open" and not b.routable
        assert not b.allow()
        assert b.opened_total == 1
        assert b.remaining_cooldown() == pytest.approx(1.0)

    def test_success_resets_failure_streak(self):
        clk = _FakeClock()
        b = self._breaker(clk)
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state == "closed"  # streak restarted after the success

    def test_half_open_probe_success_closes(self):
        clk = _FakeClock()
        b = self._breaker(clk)
        for _ in range(3):
            b.record_failure()
        clk.advance(0.99)
        assert not b.allow()  # still cooling down
        clk.advance(0.02)
        assert b.allow()  # cooldown elapsed -> half-open probes pass
        assert b.state == "half_open"
        assert not b.routable  # ordinary work still kept away
        b.record_success()
        assert b.state == "half_open"  # needs probe_successes=2
        b.record_success()
        assert b.state == "closed" and b.routable
        assert b.closed_total == 1

    def test_half_open_failure_reopens_with_escalated_cooldown(self):
        clk = _FakeClock()
        b = self._breaker(clk, backoff=2.0, max_cooldown=3.0)
        for _ in range(3):
            b.record_failure()
        assert b.last_cooldown == pytest.approx(1.0)
        clk.advance(1.0)
        assert b.state == "half_open"
        b.record_failure()  # failed probe: re-trip, escalated
        assert b.state == "open"
        assert b.opened_total == 2
        assert b.last_cooldown == pytest.approx(2.0)
        clk.advance(2.0)
        b.record_failure()  # third trip would be 4.0 -> capped at 3.0
        assert b.last_cooldown == pytest.approx(3.0)

    def test_seeded_jitter_is_deterministic(self):
        def trip(seed):
            clk = _FakeClock()
            b = self._breaker(clk, jitter=0.2, seed=seed, name="w0")
            for _ in range(3):
                b.record_failure()
            return b.last_cooldown

        a, b_, c = trip(7), trip(7), trip(8)
        assert a == b_  # same seed, same probe timing
        assert a != c  # different seed spreads differently
        assert 0.8 <= a <= 1.2  # within the +/-20% band

    def test_reset_force_closes_and_clears_escalation(self):
        clk = _FakeClock()
        b = self._breaker(clk)
        for _ in range(3):
            b.record_failure()
        b.reset()
        assert b.state == "closed" and b.routable
        for _ in range(3):
            b.record_failure()
        # escalation restarted: first-trip cooldown again, not backoff^n
        assert b.last_cooldown == pytest.approx(1.0)


# ---------------------------------------------------------------------
# retry budget token bucket
# ---------------------------------------------------------------------
class TestRetryBudget:
    def test_validation(self):
        with pytest.raises(ExecutorError):
            RetryBudget(0)
        with pytest.raises(ExecutorError):
            RetryBudget(1.0, refill_per_success=-0.1)

    def test_spend_until_denied(self):
        rb = RetryBudget(2.0, refill_per_success=0.0)
        assert rb.try_spend() and rb.try_spend()
        assert not rb.try_spend()
        assert rb.tokens == pytest.approx(0.0)
        assert rb.spent_total == pytest.approx(2.0)
        assert rb.denied_total == 1

    def test_refill_caps_at_capacity(self):
        rb = RetryBudget(2.0, initial=0.0, refill_per_success=1.5)
        assert not rb.try_spend()
        rb.record_success()
        assert rb.try_spend()
        for _ in range(10):
            rb.record_success()
        assert rb.tokens == pytest.approx(2.0)


# ---------------------------------------------------------------------
# per-worker health estimator
# ---------------------------------------------------------------------
class TestWorkerHealth:
    def _health(self, clk, **kw):
        kw.setdefault("stall_after_s", 1.0)
        return WorkerHealth(0, clock=clk, **kw)

    def test_state_axis_and_score_decay(self):
        clk = _FakeClock(100.0)
        h = self._health(clk)
        assert h.state == "healthy"
        assert h.score() == pytest.approx(1.0)
        clk.advance(0.5)  # silence halfway through the stall window
        assert h.score() == pytest.approx(0.5)
        clk.advance(1.0)
        assert h.score() == 0.0  # silent past the window
        assert h.mark_stalled(True)  # flag change reported
        assert h.state == "stalled"
        assert not h.mark_stalled(True)  # idempotent set: no change
        h.on_pong(0.01)  # recovery: pong resets silence
        h.mark_stalled(False)
        assert h.state == "healthy" and h.score() == pytest.approx(1.0)
        h.mark_dead()
        assert h.state == "dead" and h.score() == 0.0

    def test_slow_rtt_degrades_score(self):
        clk = _FakeClock()
        h = self._health(clk, config=HealthConfig(baseline_rtt_s=0.05))
        h.on_pong(0.2)  # 4x baseline
        assert h.ewma_rtt == pytest.approx(0.2)  # first sample seeds the EWMA
        assert h.score() == pytest.approx(0.25)
        h.on_pong(0.2)
        assert h.ewma_rtt == pytest.approx(0.2)

    def test_settle_quantile_and_hedge_default(self):
        clk = _FakeClock()
        h = self._health(clk, config=HealthConfig(default_hedge_s=0.25))
        assert h.settle_quantile(0.95) == pytest.approx(0.25)  # no samples yet
        for w in (0.1, 0.2, 0.3, 0.4):
            h.on_settle(w)
        assert h.settle_quantile(0.5) == pytest.approx(0.3)
        assert h.settle_quantile(0.95) == pytest.approx(0.4)
        h.on_settle(0.0)  # non-positive walls are dropped
        assert h.settles == 4

    def test_snapshot_is_json_ready(self):
        clk = _FakeClock()
        h = self._health(clk)
        h.on_pong(0.01)
        snap = h.snapshot()
        for key in ("wid", "state", "score", "ewma_rtt_s", "silence_s",
                    "settle_p95_s", "pongs", "settles"):
            assert key in snap


# ---------------------------------------------------------------------
# process-level: stall detection, breaker ejection, re-admission
# ---------------------------------------------------------------------
@pytest.mark.gateway
class TestGrayFailures:
    def test_stall_opens_breaker_then_readmits(self):
        """Wedge one worker's recv loop: the monitor must flag it
        *stalled* (not dead — no respawn), the breaker must eject it
        from routing, and once the stall clears probes must close the
        breaker again."""

        async def main():
            async with Gateway(
                2,
                worker=_CONFIG,
                heartbeat_interval=0.05,
                stall_misses=3,
                heartbeat_misses=80,  # death budget 4s >> stall 0.8s
                breaker_threshold=2,
                breaker_cooldown=0.3,
                breaker_probe_successes=1,
                name="gray-test",
            ) as gw:
                pid0 = gw._workers[0].proc.pid
                breaker = gw._breakers[0]
                gw.inject_chaos(0, stall_s=0.8)
                deadline = time.monotonic() + 10.0
                saw_stalled = False
                while time.monotonic() < deadline:
                    snap = gw.health_snapshot()[0]
                    saw_stalled = saw_stalled or snap["state"] == "stalled"
                    if breaker.opened_total >= 1 and saw_stalled:
                        break
                    await asyncio.sleep(0.02)
                assert saw_stalled, "stall never detected"
                assert breaker.opened_total >= 1, "breaker never opened"
                # stalled-not-dead: routing skips it while the breaker
                # is open, but submissions still flow via worker 1
                if not breaker.routable:
                    sub = gw.submit(BurstSpec(width=2), tenant="t")
                    assert sub.wid == 1
                    assert (await sub).ok
                # recovery: pongs resume, probes re-admit the slot
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline and not breaker.routable:
                    await asyncio.sleep(0.02)
                assert breaker.routable, "breaker never re-admitted worker"
                assert gw._workers[0].proc.pid == pid0, (
                    "gray stall escalated to a respawn"
                )
                snap = gw.snapshot()
                assert snap["gateway.health.stalls"] >= 1
                assert snap["gateway.breaker.opened"] >= 1
                assert snap["gateway.breaker.closed"] >= 1
                assert snap["gateway.respawns"] == 0

        _run(main())

    def test_hedged_submission_settles_exactly_once(self):
        async def main():
            async with Gateway(2, worker=_CONFIG) as gw:
                # slow enough that the primary cannot settle before
                # the hedge timer fires on the next loop iteration
                fh = await gw.freeze(BurstSpec(width=4, sleep_s=0.2))
                # hedge_after=0 arms the duplicate leg immediately
                sub = gw.submit(fh, tenant="h", hedge_after=0.0)
                res = await sub
                assert res.ok
                # awaiting again returns the same settled result
                assert (await sub) is res
                kinds = [ev["kind"] async for ev in sub.events()]
                assert kinds.count("settled") == 1
                snap = gw.snapshot()
                launched = snap["gateway.hedge.launched"]
                accounted = (
                    snap["gateway.hedge.wins"]
                    + snap["gateway.hedge.losses"]
                    + snap["gateway.hedge.dropped"]
                )
                assert launched >= 1 and launched == accounted
                # one submission, one settle — legs never double-count
                assert snap["gateway.submits"] == 1
                assert snap["gateway.settled"] == 1

                # validation: hedging is frozen-only, and string delays
                # are restricted to the quantile vocabulary
                with pytest.raises(GatewayError, match="FrozenHandle"):
                    gw.submit(BurstSpec(width=2), hedge_after=0.1)
                with pytest.raises(GatewayError, match="p95"):
                    gw.submit(fh, hedge_after="p42")
                # "p95" itself resolves via the primary's quantile
                assert (await gw.submit(fh, hedge_after="p95")).ok

        _run(main())

    def test_retry_budget_exhaustion_settles_worker_lost(self):
        """With an empty, non-refilling budget, a worker death cannot
        replay its inflight — it must settle fast as worker_lost with
        reason retry_budget, and the denial must be countable."""

        async def main():
            budget = RetryBudget(1.0, initial=0.0, refill_per_success=0.0)
            async with Gateway(
                2,
                worker=_CONFIG,
                heartbeat_interval=0.1,
                retry_budget=budget,
                name="budget-test",
            ) as gw:
                fh = await gw.freeze(BurstSpec(width=4, sleep_s=0.5))
                sub = gw.submit(fh, tenant="pin")
                await asyncio.sleep(0.15)  # let the Submit land
                os.kill(gw._workers[sub.wid].proc.pid, signal.SIGKILL)
                res = await asyncio.wait_for(sub.future, _T)
                assert res.outcome == "worker_lost"
                assert res.reason == "retry_budget"
                assert budget.denied_total >= 1
                assert gw.snapshot()["gateway.retry_budget.exhausted"] >= 1
                assert gw.retry_budget is budget

        _run(main())


# ---------------------------------------------------------------------
# drain deadline semantics (the PR 9 satellite fixes)
# ---------------------------------------------------------------------
@pytest.mark.gateway
class TestDrainDeadlines:
    def test_drain_shares_one_deadline_across_both_waits(self):
        """Regression: drain(timeout=T) used to wait T+grace for worker
        acks and then *another* T+grace for straggler settles.  With
        work slower than the deadline, the whole call must finish in
        about one T+grace, force-settling the stragglers."""

        async def main():
            async with Gateway(
                2,
                worker=_CONFIG,
                drain_grace=0.5,
                name="drain-test",
            ) as gw:
                subs = [
                    gw.submit(BurstSpec(width=2, sleep_s=2.5))
                    for _ in range(2)
                ]
                await asyncio.sleep(0.2)
                t0 = time.monotonic()
                ok = await gw.drain(timeout=0.5)
                elapsed = time.monotonic() - t0
                assert not ok  # the sleepy bursts cannot finish in time
                # single shared deadline: ~1.0s budget; the old
                # double-grace bug took ~2x that
                assert elapsed < 1.8, f"drain took {elapsed:.2f}s"
                for sub in subs:
                    res = await asyncio.wait_for(sub.future, 1.0)
                    assert res.outcome == "failed"
                    assert res.reason == "drain_timeout"

        _run(main())

    def test_breaker_open_during_drain_settles_every_future(self):
        """Regression: a breaker open (worker stalled, legs possibly
        rerouted) while drain() runs must not strand or double-settle
        anything — every future resolves exactly once."""

        async def main():
            async with Gateway(
                2,
                worker=_CONFIG,
                heartbeat_interval=0.05,
                stall_misses=3,
                heartbeat_misses=80,
                breaker_threshold=1,  # a single stalled tick trips it
                breaker_cooldown=0.2,
                name="drain-stall",
            ) as gw:
                fh = await gw.freeze(BurstSpec(width=2, sleep_s=0.3))
                subs = [gw.submit(fh, tenant=f"t{i}") for i in range(6)]
                await asyncio.sleep(0.05)
                # wedge worker 0 and wait for the breaker to trip so
                # the drain starts with the breaker open and reroute /
                # suppression machinery armed
                gw.inject_chaos(0, stall_s=1.0)
                deadline = time.monotonic() + 5.0
                while (
                    time.monotonic() < deadline
                    and gw._breakers[0].opened_total == 0
                ):
                    await asyncio.sleep(0.02)
                assert gw._breakers[0].opened_total >= 1
                await gw.drain(timeout=20.0)
                results = []
                for sub in subs:
                    assert sub.future.done(), "drain stranded a future"
                    results.append(sub.future.result())
                # exactly-once settle, no duplicate legs leaked
                assert len(results) == len(subs)
                completed = sum(1 for r in results if r.ok)
                assert completed == len(subs), [r.outcome for r in results]
                snap = gw.snapshot()
                assert snap["gateway.settled"] == snap["gateway.submits"]

        _run(main())
