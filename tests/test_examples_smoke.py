"""Smoke tests: every example must run to completion.

Examples are deliverables; these tests execute each one in-process at
reduced size (arguments where supported) and assert clean exit.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list) -> None:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        with pytest.raises(SystemExit) as exc:
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
        assert exc.value.code in (0, None)
    finally:
        sys.argv = old_argv


def test_quickstart():
    run_example("quickstart.py", [])


def test_timing_correlation():
    run_example("timing_correlation.py", ["3"])


def test_detailed_placement():
    run_example("detailed_placement.py", ["120", "3"])


def test_multi_gpu_pipeline():
    run_example("multi_gpu_pipeline.py", [])


def test_sparse_inference():
    run_example("sparse_inference.py", ["48", "6", "24"])


def test_distributed_scheduling():
    run_example("distributed_scheduling.py", [])


def test_incremental_whatif():
    run_example("incremental_whatif.py", [])
