"""Tests for incremental STA (OpenTimer-2.0-style repropagation)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.timing import TimingGraph, generate_netlist, run_sta
from repro.apps.timing.incremental import IncrementalTimer
from repro.apps.timing.sta import StaResult


@pytest.fixture
def tg():
    return TimingGraph.from_netlist(generate_netlist(150, seed=11))


def full_recompute(timer: IncrementalTimer) -> StaResult:
    """Oracle: fresh full STA over the timer's current delays."""
    g = timer.graph
    edited = TimingGraph(
        num_nodes=g.num_nodes,
        num_inputs=g.num_inputs,
        arc_src=g.arc_src,
        arc_dst=g.arc_dst,
        arc_delay=timer.delays.copy(),
        level_of=g.level_of,
        level_arcs=g.level_arcs,
        outputs=g.outputs,
    )
    return run_sta(edited, clock_period=timer.clock_period)


class TestConsistency:
    def test_initial_state_matches_full_sta(self, tg):
        timer = IncrementalTimer(tg)
        ref = run_sta(tg)
        assert np.allclose(timer.arrival, ref.arrival)
        assert np.allclose(timer.required, ref.required)

    def test_single_edit_matches_full(self, tg):
        timer = IncrementalTimer(tg)
        timer.update_arc_delay(0, float(timer.delays[0]) * 3 + 10)
        ref = full_recompute(timer)
        timer.update_timing()
        assert np.allclose(timer.arrival, ref.arrival)
        assert np.allclose(timer.required, ref.required)

    def test_delay_decrease_matches_full(self, tg):
        timer = IncrementalTimer(tg)
        arc = tg.num_arcs // 2
        timer.update_arc_delay(arc, 0.0)
        ref = full_recompute(timer)
        timer.update_timing()
        assert np.allclose(timer.arrival, ref.arrival)
        assert np.allclose(timer.required, ref.required)

    def test_batched_edits_match_full(self, tg):
        timer = IncrementalTimer(tg)
        rng = np.random.default_rng(0)
        for arc in rng.choice(tg.num_arcs, size=10, replace=False):
            timer.scale_arc_delay(int(arc), float(rng.uniform(0.3, 3.0)))
        ref = full_recompute(timer)
        timer.update_timing()
        assert np.allclose(timer.arrival, ref.arrival)
        assert np.allclose(timer.required, ref.required)

    def test_revert_restores_original(self, tg):
        timer = IncrementalTimer(tg)
        original = float(timer.delays[5])
        before = timer.arrival.copy()
        timer.update_arc_delay(5, original * 10)
        timer.update_timing()
        timer.update_arc_delay(5, original)
        timer.update_timing()
        assert np.allclose(timer.arrival, before)

    def test_snapshot_is_full_sta_result(self, tg):
        timer = IncrementalTimer(tg)
        timer.scale_arc_delay(3, 2.0)
        snap = timer.snapshot()
        ref = full_recompute(timer)
        assert np.allclose(snap.arrival, ref.arrival)
        assert np.allclose(snap.slack, ref.slack)
        assert snap.clock_period == timer.clock_period

    def test_wns_and_slack_queries_autopropagate(self, tg):
        timer = IncrementalTimer(tg)
        wns_before = timer.wns
        # lengthen the current critical arc substantially
        crit_ep = int(tg.outputs[np.argmin(timer.snapshot().endpoint_slacks(tg))])
        arcs = np.nonzero(tg.arc_dst == crit_ep)[0]
        timer.update_arc_delay(int(arcs[0]), float(timer.delays[arcs[0]]) + 100.0)
        assert timer.wns < wns_before  # query triggered repropagation


class TestLaziness:
    def test_noop_edit_propagates_nothing(self, tg):
        timer = IncrementalTimer(tg)
        timer.update_arc_delay(0, float(timer.delays[0]))
        assert timer.update_timing() == 0

    def test_local_edit_touches_local_cone_only(self, tg):
        """An edit near the outputs must not re-evaluate the graph."""
        timer = IncrementalTimer(tg)
        # pick an arc whose destination is an endpoint (deepest level)
        ep = int(tg.outputs[-1])
        arcs = np.nonzero(tg.arc_dst == ep)[0]
        timer.update_arc_delay(int(arcs[0]), float(timer.delays[arcs[0]]) * 1.01)
        touched = timer.update_timing()
        assert touched < tg.num_nodes / 2

    def test_second_update_is_free(self, tg):
        timer = IncrementalTimer(tg)
        timer.scale_arc_delay(0, 2.0)
        timer.update_timing()
        assert timer.update_timing() == 0

    def test_propagation_counters(self, tg):
        timer = IncrementalTimer(tg)
        timer.scale_arc_delay(0, 2.0)
        a = timer.update_timing()
        assert timer.last_propagation_count == a
        timer.scale_arc_delay(1, 2.0)
        b = timer.update_timing()
        assert timer.total_propagations == a + b


class TestValidation:
    def test_rejects_bad_arc(self, tg):
        timer = IncrementalTimer(tg)
        with pytest.raises(IndexError):
            timer.update_arc_delay(tg.num_arcs, 1.0)

    def test_rejects_negative_delay(self, tg):
        timer = IncrementalTimer(tg)
        with pytest.raises(ValueError):
            timer.update_arc_delay(0, -1.0)

    def test_view_derates_applied(self, tg):
        from repro.apps.timing import enumerate_views

        view = enumerate_views(3, seed=2)[0]
        timer = IncrementalTimer(tg, view=view)
        ref = run_sta(tg, view, clock_period=timer.clock_period)
        assert np.allclose(timer.arrival, ref.arrival)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 500),
    n_edits=st.integers(1, 12),
)
def test_property_incremental_equals_full(seed, n_edits):
    """Any sequence of random edits leaves the timer equal to a full
    recompute over the edited delays."""
    tg = TimingGraph.from_netlist(generate_netlist(60, seed=7))
    timer = IncrementalTimer(tg)
    rng = np.random.default_rng(seed)
    for _ in range(n_edits):
        arc = int(rng.integers(0, tg.num_arcs))
        timer.update_arc_delay(arc, float(rng.uniform(0.0, 50.0)))
        if rng.uniform() < 0.5:
            timer.update_timing()  # interleave eager and lazy updates
    ref = full_recompute(timer)
    timer.update_timing()
    assert np.allclose(timer.arrival, ref.arrival)
    assert np.allclose(timer.required, ref.required)


class TestSequentialBoundaries:
    def test_sequential_timer_matches_analysis(self):
        from repro.apps.timing.incremental import for_sequential_design
        from repro.apps.timing.sequential import analyze_sequential, build_sequential_design

        design = build_sequential_design(generate_netlist(80, seed=21), seed=21)
        period = 600.0
        timer = for_sequential_design(design, period)
        res = analyze_sequential(design, period)
        # pessimistic slacks agree endpoint by endpoint
        eps = design.graph.outputs
        assert np.allclose(
            timer.required[eps] - timer.arrival[eps], res.slack_pessimistic
        )

    def test_sequential_timer_incremental_edit(self):
        from repro.apps.timing.incremental import for_sequential_design
        from repro.apps.timing.sequential import build_sequential_design

        design = build_sequential_design(generate_netlist(80, seed=22), seed=22)
        timer = for_sequential_design(design, 600.0)
        arc = design.graph.num_arcs // 3
        timer.scale_arc_delay(arc, 4.0)
        # oracle: a fresh sequential timer over the edited delays
        fresh = for_sequential_design(design, 600.0)
        fresh.update_arc_delay(arc, float(timer.delays[arc]))
        fresh.update_timing()
        timer.update_timing()
        assert np.allclose(timer.arrival, fresh.arrival)
        assert np.allclose(timer.required, fresh.required)

    def test_boundary_conditions_survive_edits_and_reverts(self):
        from repro.apps.timing.incremental import for_sequential_design
        from repro.apps.timing.sequential import build_sequential_design

        design = build_sequential_design(generate_netlist(60, seed=23), seed=23)
        timer = for_sequential_design(design, 500.0)
        before_arr = timer.arrival.copy()
        before_req = timer.required.copy()
        original = float(timer.delays[3])
        timer.update_arc_delay(3, original * 5)
        timer.update_timing()
        timer.update_arc_delay(3, original)
        timer.update_timing()
        assert np.allclose(timer.arrival, before_arr)
        assert np.allclose(timer.required, before_req)
