"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    AllocationError,
    CycleError,
    DeviceError,
    EmptyTaskError,
    ExecutorError,
    GraphError,
    HeteroflowError,
    KernelError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [GraphError, ExecutorError, DeviceError, SimulationError, KernelError],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, HeteroflowError)

    def test_cycle_is_graph_error(self):
        assert issubclass(CycleError, GraphError)

    def test_empty_task_is_graph_error(self):
        assert issubclass(EmptyTaskError, GraphError)

    def test_allocation_is_device_error(self):
        assert issubclass(AllocationError, DeviceError)

    def test_kernel_is_device_error(self):
        assert issubclass(KernelError, DeviceError)

    def test_cycle_error_carries_cycle(self):
        err = CycleError(["a", "b", "c"])
        assert err.cycle == ["a", "b", "c"]
        assert "a -> b -> c" in str(err)

    def test_single_catch_covers_library(self):
        """A caller catching HeteroflowError sees every library failure
        mode (the single-base contract)."""
        from repro.core import Executor, Heteroflow

        with Executor(1, 0) as ex:
            hf = Heteroflow()
            hf.pull([1])
            try:
                ex.run(hf).result(timeout=10)
            except HeteroflowError:
                pass  # ExecutorError: GPU task without GPUs
            else:  # pragma: no cover
                pytest.fail("expected a HeteroflowError subclass")
