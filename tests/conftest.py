"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Executor, Heteroflow
from repro.gpu.device import GpuRuntime


@pytest.fixture
def gpu2():
    """A fresh 2-device simulated GPU runtime, torn down after the test."""
    rt = GpuRuntime(2, memory_bytes=1 << 22)
    yield rt
    rt.destroy()


@pytest.fixture
def executor():
    """A small 2-worker, 2-GPU executor."""
    ex = Executor(num_workers=2, num_gpus=2, gpu_memory_bytes=1 << 22)
    yield ex
    ex.shutdown()


@pytest.fixture
def cpu_executor():
    """A 2-worker, GPU-less executor."""
    ex = Executor(num_workers=2, num_gpus=0)
    yield ex
    ex.shutdown()


def saxpy_kernel(ctx, n, a, x, y):
    """The paper's saxpy written in guarded-index style."""
    i = ctx.flat_indices()
    i = i[i < n]
    y[i] = a * x[i] + y[i]


@pytest.fixture
def saxpy_graph():
    """The Listing-1 saxpy graph over list containers.

    Returns (graph, x, y, n): after one run, y == 2*1 + 2 == 4
    everywhere and x is unchanged.
    """
    n = 4096
    x: list = []
    y: list = []
    hf = Heteroflow("saxpy")
    host_x = hf.host(lambda: x.extend([1] * n), name="host_x")
    host_y = hf.host(lambda: y.extend([2] * n), name="host_y")
    pull_x = hf.pull(x, name="pull_x")
    pull_y = hf.pull(y, name="pull_y")
    kernel = (
        hf.kernel(saxpy_kernel, n, 2, pull_x, pull_y, name="saxpy")
        .block_x(256)
        .grid_x((n + 255) // 256)
    )
    push_x = hf.push(pull_x, x, name="push_x")
    push_y = hf.push(pull_y, y, name="push_y")
    host_x.precede(pull_x)
    host_y.precede(pull_y)
    kernel.succeed(pull_x, pull_y).precede(push_x, push_y)
    return hf, x, y, n
