"""Unit and property tests for the Knowlton buddy allocator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError
from repro.gpu.buddy import BuddyAllocator


class TestBasics:
    def test_capacity_rounds_to_pow2(self):
        assert BuddyAllocator(1000, min_block=64).capacity == 1024

    def test_rejects_bad_min_block(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(1024, min_block=100)

    def test_rejects_zero_capacity(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(0)

    def test_block_size_rounds_up(self):
        a = BuddyAllocator(1024, min_block=64)
        assert a.block_size(1) == 64
        assert a.block_size(65) == 128
        assert a.block_size(64) == 64

    def test_allocate_whole_arena(self):
        a = BuddyAllocator(256, min_block=64)
        off = a.allocate(256)
        assert off == 0
        assert a.bytes_in_use == 256

    def test_over_capacity_raises(self):
        a = BuddyAllocator(256, min_block=64)
        with pytest.raises(AllocationError):
            a.allocate(512)

    def test_exhaustion_raises(self):
        a = BuddyAllocator(256, min_block=64)
        for _ in range(4):
            a.allocate(64)
        with pytest.raises(AllocationError):
            a.allocate(64)

    def test_free_reclaims(self):
        a = BuddyAllocator(256, min_block=64)
        offs = [a.allocate(64) for _ in range(4)]
        for off in offs:
            a.free(off)
        assert a.bytes_in_use == 0
        assert a.allocate(256) == 0  # full coalescing happened

    def test_double_free_raises(self):
        a = BuddyAllocator(256, min_block=64)
        off = a.allocate(64)
        a.free(off)
        with pytest.raises(AllocationError):
            a.free(off)

    def test_invalid_free_raises(self):
        a = BuddyAllocator(256, min_block=64)
        with pytest.raises(AllocationError):
            a.free(32)

    def test_distinct_offsets(self):
        a = BuddyAllocator(1024, min_block=64)
        offs = [a.allocate(64) for _ in range(16)]
        assert len(set(offs)) == 16

    def test_split_produces_buddy_pair(self):
        a = BuddyAllocator(256, min_block=64)
        x = a.allocate(64)
        y = a.allocate(64)
        assert {x, y} == {0, 64}  # buddies of the first 128-block

    def test_allocation_size_reports_block(self):
        a = BuddyAllocator(1024, min_block=64)
        off = a.allocate(100)
        assert a.allocation_size(off) == 128

    def test_peak_tracking(self):
        a = BuddyAllocator(1024, min_block=64)
        x = a.allocate(512)
        a.free(x)
        a.allocate(64)
        assert a.peak_bytes == 512

    def test_coalescing_across_levels(self):
        a = BuddyAllocator(512, min_block=64)
        offs = [a.allocate(64) for _ in range(8)]
        # free in interleaved order; must still coalesce to the root
        for off in offs[::2] + offs[1::2]:
            a.free(off)
        assert a.allocate(512) == 0


@pytest.mark.parametrize("seed", range(12))
def test_seeded_random_sequence_alignment_overlap_coalescing(seed):
    """Seeded random alloc/free interleavings (reproducible from the
    seed alone): every block handed out is naturally aligned and
    disjoint from all live blocks, and once everything is freed the
    arena coalesces back into a single root block."""
    rng = random.Random(seed)
    a = BuddyAllocator(1 << 14, min_block=64)
    live = {}  # offset -> block size

    for _ in range(400):
        if live and rng.random() < 0.45:
            off = rng.choice(list(live))
            del live[off]
            a.free(off)
        else:
            request = rng.randint(1, 1500)
            try:
                off = a.allocate(request)
            except AllocationError:
                continue  # exhaustion is legal; keep going
            size = a.allocation_size(off)
            # alignment: power-of-two block, naturally aligned, in range
            assert size >= request
            assert size & (size - 1) == 0 and size >= 64
            assert off % size == 0
            assert 0 <= off and off + size <= a.capacity
            # no-overlap with every currently-live block
            for o, s in live.items():
                assert off + size <= o or o + s <= off, (
                    f"[{off},{off + size}) overlaps [{o},{o + s})"
                )
            live[off] = size

        a.check_invariants()

    for off in list(live):
        a.free(off)
    assert a.bytes_in_use == 0
    assert a.fully_coalesced, "free blocks failed to merge to the root"
    assert a.allocate(a.capacity) == 0


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 300)),
            st.tuples(st.just("free"), st.integers(0, 30)),
        ),
        max_size=120,
    )
)
def test_invariants_under_random_workload(ops):
    """Free + allocated blocks always tile the arena exactly, and
    in-use accounting matches the live block set."""
    a = BuddyAllocator(2048, min_block=64)
    live = []
    for op, arg in ops:
        if op == "alloc":
            try:
                live.append(a.allocate(arg))
            except AllocationError:
                pass  # exhaustion is legal under random load
        elif live:
            a.free(live.pop(arg % len(live)))
    a.check_invariants()
    assert a.bytes_in_use == sum(a.allocation_size(o) for o in live)


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(1, 256), min_size=1, max_size=20))
def test_full_free_restores_arena(sizes):
    a = BuddyAllocator(4096, min_block=64)
    offs = []
    for s in sizes:
        try:
            offs.append(a.allocate(s))
        except AllocationError:
            break
    for o in offs:
        a.free(o)
    assert a.bytes_in_use == 0
    assert a.allocate(a.capacity) == 0
