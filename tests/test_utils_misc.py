"""Tests for the DOT writer and RNG helpers."""

import io

from hypothesis import given, strategies as st

from repro.utils.dot import DotWriter
from repro.utils.rng import derive_seed, seeded_rng


class TestDotWriter:
    def test_renders_digraph_header(self):
        assert DotWriter("g").render().startswith('digraph "g"')

    def test_nodes_and_edges_present(self):
        w = DotWriter()
        w.add_node("a", "task_a")
        w.add_node("b", "task_b")
        w.add_edge("a", "b")
        text = w.render()
        assert 'label="task_a"' in text
        assert "n0 -> n1;" in text

    def test_stable_node_ids(self):
        w = DotWriter()
        assert w.node_id("x") == w.node_id("x")
        assert w.node_id("x") != w.node_id("y")

    def test_quotes_special_characters(self):
        w = DotWriter()
        w.add_node("a", 'say "hi"')
        assert '\\"hi\\"' in w.render()

    def test_writes_to_stream(self):
        w = DotWriter()
        w.add_node(1, "n")
        buf = io.StringIO()
        text = w.render(buf)
        assert buf.getvalue() == text

    def test_edge_attributes(self):
        w = DotWriter()
        w.add_edge("a", "b", color="red")
        assert 'color="red"' in w.render()


class TestRng:
    def test_seeded_rng_deterministic(self):
        a = seeded_rng(3).integers(0, 100, 10)
        b = seeded_rng(3).integers(0, 100, 10)
        assert list(a) == list(b)

    def test_seeded_rng_passthrough(self):
        rng = seeded_rng(0)
        assert seeded_rng(rng) is rng

    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_seed_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    @given(st.integers(0, 2**62), st.text(max_size=20))
    def test_derive_seed_in_range(self, seed, label):
        d = derive_seed(seed, label)
        assert 0 <= d < 2**63
