"""Conservation and determinism properties of the simulators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Heteroflow
from repro.dist import ClusterSpec, DistSimExecutor
from repro.sim import CostModel, MachineSpec, SimExecutor


def random_mixed_graph(seed: int, n_chains: int, chain_len: int):
    rng = np.random.default_rng(seed)
    hf = Heteroflow()
    cm = CostModel()
    host_total = 0.0
    gpu_total = 0.0
    for c in range(n_chains):
        prev = None
        for k in range(chain_len):
            if rng.uniform() < 0.5:
                t = hf.host(lambda: None)
                d = float(rng.uniform(0.1, 2.0))
                cm.annotate_host(t, d)
                host_total += d
            else:
                p = hf.pull([0])
                cm.annotate_copy(p, 0.0)
                t = hf.kernel(lambda a: None, p)
                d = float(rng.uniform(0.1, 2.0))
                cm.annotate_kernel(t, d)
                gpu_total += d
                p.precede(t)
                if prev is not None:
                    prev.precede(p)
                    prev = t
                    continue
            if prev is not None:
                prev.precede(t)
            prev = t
    return hf, cm, host_total, gpu_total


class TestConservation:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), chains=st.integers(1, 5), length=st.integers(1, 5))
    def test_busy_time_equals_annotated_work(self, seed, chains, length):
        """No work is lost or duplicated: summed core busy time equals
        total host seconds (plus dispatch), GPU busy equals kernel
        seconds (plus launch overhead) exactly."""
        hf, cm, host_total, gpu_total = random_mixed_graph(seed, chains, length)
        m = MachineSpec(3, 2, dispatch_overhead=0.0, kernel_launch_overhead=0.0, copy_latency=0.0)
        rep = SimExecutor(m, cm).run(hf)
        assert sum(rep.core_busy) == pytest.approx(host_total, rel=1e-9, abs=1e-9)
        assert sum(rep.gpu_busy) == pytest.approx(gpu_total, rel=1e-9, abs=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_makespan_within_classical_bounds(self, seed):
        hf, cm, host_total, gpu_total = random_mixed_graph(seed, 4, 4)
        m = MachineSpec(2, 1, dispatch_overhead=0.0, kernel_launch_overhead=0.0, copy_latency=0.0)
        rep = SimExecutor(m, cm).run(hf)
        total = host_total + gpu_total
        assert rep.makespan <= total + 1e-9  # never worse than serial
        assert rep.makespan >= max(host_total / 2, gpu_total / m.kernel_slots) - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_determinism_across_runs(self, seed):
        hf, cm, *_ = random_mixed_graph(seed, 3, 3)
        m = MachineSpec(4, 2)
        a = SimExecutor(m, cm).run(hf).makespan
        b = SimExecutor(m, cm).run(hf).makespan
        assert a == b

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_dist_one_node_equals_local(self, seed):
        hf, cm, *_ = random_mixed_graph(seed, 3, 3)
        m = MachineSpec(4, 2)
        local = SimExecutor(m, cm).run(hf).makespan
        dist = DistSimExecutor(ClusterSpec(1, m), cm).run(hf).makespan
        assert dist == pytest.approx(local)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100), nodes=st.integers(2, 4))
    def test_dist_conserves_work(self, seed, nodes):
        hf, cm, host_total, gpu_total = random_mixed_graph(seed, 4, 3)
        m = MachineSpec(2, 1, dispatch_overhead=0.0, kernel_launch_overhead=0.0, copy_latency=0.0)
        rep = DistSimExecutor(ClusterSpec(nodes, m), cm).run(hf)
        assert sum(rep.node_core_busy) == pytest.approx(host_total, abs=1e-9)
        assert sum(rep.node_gpu_busy) == pytest.approx(gpu_total, abs=1e-9)

    def test_fifo_and_lifo_conserve_identically(self):
        hf, cm, host_total, _ = random_mixed_graph(7, 4, 4)
        m = MachineSpec(2, 1, dispatch_overhead=0.0, kernel_launch_overhead=0.0, copy_latency=0.0)
        lifo = SimExecutor(m, cm, ready_policy="lifo").run(hf)
        fifo = SimExecutor(m, cm, ready_policy="fifo").run(hf)
        assert sum(lifo.core_busy) == pytest.approx(sum(fifo.core_busy))
        assert sum(lifo.gpu_busy) == pytest.approx(sum(fifo.gpu_busy))
