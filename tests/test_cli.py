"""Tests for the ``python -m repro`` CLI and the figures module."""

import json

import pytest

from repro.cli import build_parser, main
from repro.figures import ALL_FIGURES, fig4_table, fig6a_table, format_table


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "figures" in capsys.readouterr().out

    def test_unknown_figure_rejected(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["saxpy", "--workers", "3"])
        assert args.command == "saxpy" and args.workers == 3


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "repro.core" in out

    def test_saxpy_runs(self, capsys):
        assert main(["saxpy", "--workers", "2", "--gpus", "1"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_figures_fig4(self, capsys):
        assert main(["figures", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "FIG4" in out and "7nm" in out

    def test_figures_fig6a_scaled(self, capsys):
        assert main(["figures", "fig6a", "--views", "32"]) == 0
        out = capsys.readouterr().out
        assert "paper_min" in out

    @pytest.mark.parametrize("workload", ["saxpy", "timing", "placement", "sparsenn"])
    def test_dot_outputs_digraph(self, capsys, workload):
        assert main(["dot", workload]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_trace_writes_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", str(out)]) == 0
        events = json.loads(out.read_text())
        assert len(events) == 7


class TestFiguresModule:
    def test_all_figures_registry(self):
        assert set(ALL_FIGURES) == {"fig4", "fig6a", "fig6b", "fig9a", "fig9b"}

    def test_fig4_rows(self):
        headers, rows, _ = fig4_table()
        assert len(rows) == 10
        assert headers[0] == "node"

    def test_fig6a_small(self):
        headers, rows, notes = fig6a_table(num_views=16)
        assert len(rows) == 24
        # scaled (1,1) point lands near the paper's 99 minutes
        point = next(r for r in rows if r[0] == 1 and r[1] == 1)
        assert 80 < point[2] < 120

    def test_format_table_alignment(self):
        text = format_table("T", (("a", "bb"), [(1, 22), (333, 4)], "note"))
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert lines[-1] == "note"
        assert all(len(l) == len(lines[1]) for l in lines[1:4])


class TestGantt:
    @pytest.mark.parametrize("workload", ["timing", "placement", "sparsenn"])
    def test_gantt_renders(self, capsys, workload):
        assert main(["gantt", workload, "--cores", "2", "--gpus", "1",
                     "--size", "2", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "legend" in out
