"""Tests for the sparse-NN inference extension (EXT-SNN)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.sparsenn import build_inference_flow, generate_sparse_mlp
from repro.apps.sparsenn.flow import reference_categories
from repro.apps.sparsenn.kernels import spmm_reference
from repro.apps.sparsenn.model import ACTIVATION_CLIP, generate_batch
from repro.baselines import SequentialExecutor
from repro.core import Executor, TaskType, TraceObserver


class TestModel:
    def test_deterministic(self):
        a = generate_sparse_mlp(32, 3, seed=1)
        b = generate_sparse_mlp(32, 3, seed=1)
        for wa, wb in zip(a.layers, b.layers):
            assert (wa != wb).nnz == 0

    def test_shapes_and_nnz(self):
        m = generate_sparse_mlp(32, 4, nnz_per_row=6)
        assert m.num_layers == 4
        assert m.nnz == 4 * 32 * 6
        for w in m.layers:
            assert w.shape == (32, 32)

    def test_nnz_capped_at_width(self):
        m = generate_sparse_mlp(4, 1, nnz_per_row=100)
        assert m.layers[0].nnz == 16

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            generate_sparse_mlp(0, 1)
        with pytest.raises(ValueError):
            generate_sparse_mlp(4, 0)

    def test_activations_bounded(self):
        m = generate_sparse_mlp(32, 10, seed=2)
        x = generate_batch(32, 16, seed=2)
        a = m.infer(x)
        assert np.all(a >= 0) and np.all(a <= ACTIVATION_CLIP)

    def test_layer_arrays_reconstruct(self):
        m = generate_sparse_mlp(16, 2, seed=0)
        from scipy import sparse

        data, idx, ptr, bias = m.layer_arrays(1)
        w = sparse.csr_matrix((data, idx, ptr), shape=(16, 16))
        assert (w != m.layers[1]).nnz == 0
        assert bias.shape == (16,)

    def test_batch_density(self):
        x = generate_batch(64, 100, seed=0, density=0.3)
        assert 0.2 < (x > 0).mean() < 0.4


class TestKernels:
    def test_spmm_kernel_matches_reference(self, gpu2):
        from repro.apps.sparsenn.kernels import spmm_bias_relu_kernel
        from repro.gpu.kernel import LaunchConfig, launch_sync

        m = generate_sparse_mlp(24, 1, seed=5)
        x = generate_batch(24, 8, seed=5)
        d = gpu2.device(0)
        s = d.create_stream()
        data, idx, ptr, bias = m.layer_arrays(0)
        bufs = {}
        for name, arr in [
            ("data", data), ("idx", idx), ("ptr", ptr), ("bias", bias),
            ("x", np.ascontiguousarray(x.reshape(-1))),
            ("y", np.zeros(24 * 8)),
        ]:
            b = d.allocate(arr.nbytes, dtype=arr.dtype)
            gpu2.memcpy_h2d_async(b, arr, s)
            bufs[name] = b
        launch_sync(
            s, LaunchConfig(), spmm_bias_relu_kernel,
            24, 24, 8, bufs["data"], bufs["idx"], bufs["ptr"], bufs["bias"],
            bufs["x"], bufs["y"],
        )
        out = np.empty(24 * 8)
        gpu2.memcpy_d2h_async(out, bufs["y"], s)
        s.synchronize()
        expected = spmm_reference(m.layers[0], m.biases[0], x)
        assert np.allclose(out.reshape(24, 8), expected)


class TestFlow:
    def test_matches_scipy_reference(self):
        flow = build_inference_flow(
            width=48, num_layers=6, batch_size=24, num_blocks=4, num_shards=2, seed=7
        )
        with Executor(3, 2, gpu_memory_bytes=1 << 22) as ex:
            ex.run(flow.graph).result(timeout=120)
        assert np.array_equal(flow.categories, reference_categories(flow))

    def test_sequential_oracle_agrees(self):
        flow = build_inference_flow(
            width=32, num_layers=4, batch_size=16, num_blocks=2, num_shards=1, seed=3
        )
        with SequentialExecutor(num_gpus=1, gpu_memory_bytes=1 << 22) as seq:
            seq.run(flow.graph)
        assert np.array_equal(flow.categories, reference_categories(flow))

    def test_shards_spread_over_gpus(self):
        flow = build_inference_flow(
            width=32, num_layers=3, batch_size=16, num_blocks=4, num_shards=4, seed=1
        )
        obs = TraceObserver()
        with Executor(3, 4, observers=[obs], gpu_memory_bytes=1 << 22) as ex:
            ex.run(flow.graph).result(timeout=120)
        assert len(obs.tasks_per_device()) == 4
        assert np.array_equal(flow.categories, reference_categories(flow))

    def test_task_counts(self):
        flow = build_inference_flow(
            width=32, num_layers=3, batch_size=16, num_blocks=2, num_shards=2
        )
        hf = flow.graph
        # weights: 2 shards x 3 layers x 4 pulls; acts: 2 blocks x 2;
        # idx: 2 pulls
        assert hf.num_tasks_of(TaskType.PULL) == 2 * 3 * 4 + 2 * 2 + 2
        # layer kernels + readout kernels
        assert hf.num_tasks_of(TaskType.KERNEL) == 2 * 3 + 2
        assert hf.num_tasks_of(TaskType.PUSH) == 2
        hf.validate()

    def test_activation_residency(self):
        """Activations never round-trip: exactly one push per block."""
        flow = build_inference_flow(
            width=32, num_layers=8, batch_size=16, num_blocks=2, num_shards=1
        )
        assert flow.graph.num_tasks_of(TaskType.PUSH) == flow.num_blocks

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            build_inference_flow(num_blocks=0)
        with pytest.raises(ValueError):
            build_inference_flow(batch_size=2, num_blocks=4)

    def test_shards_capped_at_blocks(self):
        flow = build_inference_flow(
            width=32, num_layers=2, batch_size=8, num_blocks=2, num_shards=8
        )
        assert flow.num_shards == 2

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        blocks=st.integers(1, 4),
        layers=st.integers(1, 5),
    )
    def test_property_differential(self, seed, blocks, layers):
        flow = build_inference_flow(
            width=24,
            num_layers=layers,
            batch_size=12,
            num_blocks=blocks,
            num_shards=min(blocks, 2),
            seed=seed,
        )
        with Executor(2, 2, gpu_memory_bytes=1 << 22) as ex:
            ex.run(flow.graph).result(timeout=120)
        assert np.array_equal(flow.categories, reference_categories(flow))
