"""Reporter tests: the pinned JSON schema (golden), the text renderer,
and the DOT overlay."""

import json

import numpy as np

from repro.analysis import (
    JSON_SCHEMA_VERSION,
    Severity,
    lint,
    render_dot,
    render_json,
    render_text,
)
from repro.core import Heteroflow


def noop_kernel(ctx, *args):
    pass


def roundtrip_graph():
    """pull -> push with no kernel write: exactly one HF012 warning."""
    hf = Heteroflow("roundtrip")
    p = hf.pull(np.zeros(8), name="p")
    q = hf.push(p, np.zeros(8), name="q")
    p.precede(q)
    return hf


def racy_graph():
    hf = Heteroflow("racy")
    p = hf.pull(np.zeros(8), name="p")
    k1 = hf.kernel(noop_kernel, p, name="k1")
    k2 = hf.kernel(noop_kernel, p, name="k2")
    p.precede(k1, k2)
    return hf


class TestJsonGolden:
    def test_schema_version(self):
        assert JSON_SCHEMA_VERSION == 2

    def test_golden_document(self):
        report = lint(roundtrip_graph(), gpu_memory_bytes=1 << 20)
        doc = json.loads(render_json([report]))
        assert doc == {
            "version": 2,
            "ok": True,
            "clean": False,
            "graphs": [
                {
                    "graph": "roundtrip",
                    "num_tasks": 2,
                    "gpu_memory_bytes": 1048576,
                    "ok": True,
                    "clean": False,
                    "counts": {"error": 0, "warning": 1, "info": 0},
                    "effects": {},
                    "diagnostics": [
                        {
                            "code": "HF012",
                            "rule": "push of unwritten span",
                            "severity": "warning",
                            "message": (
                                "push task 'q' copies back the span of pull "
                                "task 'p', but no kernel ever writes that "
                                "span — the push returns the data unchanged"
                            ),
                            "tasks": ["q"],
                            "nids": [1],
                            "data": {"span": "p"},
                        }
                    ],
                }
            ],
        }

    def test_effects_map_rendered_for_kernels(self):
        hf = Heteroflow("fx")
        p = hf.pull(np.zeros(8, dtype=np.float32), name="p")

        def doubler(ctx, xs):
            xs[:] = xs * 2.0

        k = hf.kernel(doubler, p, name="k").writes(p).grid(1).block(8)
        p.precede(k)
        doc = json.loads(render_json([lint(hf)]))
        effects = doc["graphs"][0]["effects"]
        assert "k" in effects
        ent = effects["k"]
        assert ent["confident"] is True and ent["opaque"] is False
        assert ent["params"]["xs"]["writes"] is True
        assert ent["params"]["xs"]["mutations"][0]["kind"] == "setitem"

    def test_output_is_stable_across_runs(self):
        a = render_json([lint(racy_graph(), gpu_memory_bytes=1 << 20)])
        b = render_json([lint(racy_graph(), gpu_memory_bytes=1 << 20)])
        assert a == b

    def test_diagnostics_sorted_severity_first(self):
        hf = racy_graph()  # HF011 error
        a = hf.host(lambda: None, name="a")
        b = hf.host(lambda: None, name="b")
        a.precede(b)
        a.precede(b)  # HF013 info
        hf.pull(np.zeros(4), name="dead")  # HF002 warning (and HF002 dead-pull)
        report = lint(hf)
        sevs = [d.severity for d in report.diagnostics]
        assert sevs == sorted(sevs, reverse=True)
        assert report.diagnostics[0].code == "HF011"
        assert report.diagnostics[-1].code == "HF013"


class TestTextRenderer:
    def test_clean_graph(self):
        hf = Heteroflow("empty-ish")
        hf.host(lambda: None, name="h")
        text = render_text(lint(hf))
        assert "empty-ish: 1 task(s), 0 error(s), 0 warning(s), 0 info(s)" in text
        assert "clean" in text

    def test_findings_one_per_line(self):
        text = render_text(lint(racy_graph()))
        assert "HF011 error:" in text
        assert "[k1, k2]" in text

    def test_verbose_shows_data(self):
        text = render_text(lint(racy_graph()), verbose=True)
        assert "kind: write-write" in text
        assert "span: p" in text


class TestDotOverlay:
    def test_flagged_tasks_colored_and_annotated(self):
        hf = racy_graph()
        dot = render_dot(lint(hf), hf)
        assert dot.startswith('digraph "hflint:racy"')
        assert dot.count("indianred1") == 2  # both racing kernels, error fill
        assert 'label="k1 [HF011]"' in dot
        # the clean pull keeps the neutral style
        assert 'label="p"' in dot and "orange" not in dot

    def test_warning_fill(self):
        hf = roundtrip_graph()
        dot = render_dot(lint(hf), hf)
        assert "orange" in dot  # HF012 warning on the push

    def test_redundant_edges_dashed(self):
        hf = Heteroflow("triangle")
        a = hf.host(lambda: None, name="a")
        b = hf.host(lambda: None, name="b")
        c = hf.host(lambda: None, name="c")
        a.precede(b)
        b.precede(c)
        a.precede(c)
        dot = render_dot(lint(hf), hf)
        assert 'style="dashed"' in dot
        assert "khaki1" in dot  # info fill on the endpoints

    def test_clean_graph_keeps_neutral_style(self):
        hf = Heteroflow("ok")
        a = hf.host(lambda: None, name="a")
        b = hf.host(lambda: None, name="b")
        a.precede(b)
        dot = render_dot(lint(hf), hf)
        for color in ("indianred1", "orange", "khaki1", "dashed"):
            assert color not in dot


class TestReportVerdicts:
    def test_ok_vs_clean(self):
        warn_only = lint(roundtrip_graph())
        assert warn_only.ok and not warn_only.clean
        err = lint(racy_graph())
        assert not err.ok and not err.clean

    def test_counts_and_filters(self):
        report = lint(racy_graph())
        assert report.counts() == {"error": 1, "warning": 0, "info": 0}
        assert report.at_least(Severity.WARNING) == report.errors
