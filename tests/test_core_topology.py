"""Direct unit tests for Topology semantics and CPPR setup checks."""

import pytest

from repro.apps.timing.cppr import generate_clock_tree, setup_slack_with_cppr
from repro.core import Heteroflow
from repro.core.topology import Topology


class TestTopology:
    def graph(self, k=3):
        hf = Heteroflow()
        for _ in range(k):
            hf.host(lambda: None)
        return hf

    def test_pass_accounting(self):
        t = Topology(self.graph(3), repeats=2)
        t.begin_pass()
        assert not t.node_finished()
        assert not t.node_finished()
        assert t.node_finished()  # third node completes the pass

    def test_repeats_stop_condition(self):
        t = Topology(self.graph(1), repeats=2)
        assert not t.pass_completed()  # pass 1 of 2
        assert t.pass_completed()  # pass 2 of 2 -> stop

    def test_predicate_stop_condition(self):
        state = {"n": 0}

        def pred():
            state["n"] += 1
            return state["n"] >= 3

        t = Topology(self.graph(1), repeats=None, predicate=pred)
        assert not t.pass_completed()
        assert not t.pass_completed()
        assert t.pass_completed()

    def test_failure_stops_regardless_of_repeats(self):
        t = Topology(self.graph(1), repeats=100)
        t.fail(ValueError("x"))
        assert t.pass_completed()

    def test_first_error_wins(self):
        t = Topology(self.graph(1), repeats=1)
        first = ValueError("first")
        t.fail(first)
        t.fail(RuntimeError("second"))
        assert t.error is first

    def test_complete_sets_result(self):
        t = Topology(self.graph(1), repeats=1)
        t.passes_done = 1
        t.complete()
        assert t.future.result(timeout=1) == 1

    def test_complete_sets_exception(self):
        t = Topology(self.graph(1), repeats=1)
        t.fail(KeyError("boom"))
        t.complete()
        with pytest.raises(KeyError):
            t.future.result(timeout=1)


class TestSetupSlackWithCppr:
    @pytest.fixture
    def tree(self):
        return generate_clock_tree(list(range(8)), seed=4)

    def test_cppr_never_reduces_slack(self, tree):
        for a, b in [(0, 1), (0, 7), (3, 4)]:
            pess, corrected = setup_slack_with_cppr(tree, 100.0, a, b, 40.0)
            assert corrected >= pess

    def test_same_flop_pair_fully_credited(self, tree):
        """launch == capture: the entire clock path is common, so the
        derate asymmetry on it is fully credited back."""
        pess, corrected = setup_slack_with_cppr(tree, 100.0, 5, 5, 40.0)
        latency = tree.insertion_delay(5)
        assert corrected - pess == pytest.approx((1.05 - 0.95) * latency)

    def test_sibling_pair_credits_more_than_distant(self, tree):
        _, sib = setup_slack_with_cppr(tree, 100.0, 0, 1, 40.0)
        p_sib, _ = setup_slack_with_cppr(tree, 100.0, 0, 1, 40.0)
        _, far = setup_slack_with_cppr(tree, 100.0, 0, 7, 40.0)
        p_far, _ = setup_slack_with_cppr(tree, 100.0, 0, 7, 40.0)
        assert sib - p_sib > far - p_far

    def test_arrival_reduces_slack_linearly(self, tree):
        p1, c1 = setup_slack_with_cppr(tree, 100.0, 0, 3, 10.0)
        p2, c2 = setup_slack_with_cppr(tree, 100.0, 0, 3, 30.0)
        assert p1 - p2 == pytest.approx(20.0)
        assert c1 - c2 == pytest.approx(20.0)

    def test_symmetric_derates_no_credit(self, tree):
        pess, corrected = setup_slack_with_cppr(
            tree, 100.0, 0, 3, 40.0, early_derate=1.0, late_derate=1.0
        )
        assert corrected == pytest.approx(pess)
