"""Tests for nodes, task handles, and the Heteroflow graph class."""

import io

import numpy as np
import pytest

from repro.core import Heteroflow, TaskType
from repro.core.task import HostTask, KernelTask, PullTask, PushTask, Task
from repro.errors import CycleError, EmptyTaskError, GraphError


class TestTaskCreation:
    def test_host_task(self):
        hf = Heteroflow()
        t = hf.host(lambda: None, name="h")
        assert t.type is TaskType.HOST
        assert t.name == "h"
        assert not t.empty

    def test_host_requires_callable(self):
        hf = Heteroflow()
        with pytest.raises(GraphError):
            hf.host(42)

    def test_pull_task_over_vector_and_raw(self):
        """Listing 3: pull over a container and over (ptr, count)."""
        hf = Heteroflow()
        data1 = [0] * 100
        data2 = np.zeros(10, dtype=np.float32)
        p1 = hf.pull(data1)
        p2 = hf.pull(data2, 10)
        assert p1.type is TaskType.PULL
        assert p2.type is TaskType.PULL

    def test_push_requires_pull_source(self):
        hf = Heteroflow()
        with pytest.raises(GraphError):
            hf.push("not a pull", [1])

    def test_push_rejects_empty_pull(self):
        hf = Heteroflow()
        with pytest.raises(GraphError):
            hf.push(PullTask(), [1])

    def test_kernel_gathers_pull_sources(self):
        """Listing 8's gather_sources: pull args become sources, other
        args don't."""
        hf = Heteroflow()
        p1 = hf.pull([1])
        p2 = hf.pull([2])
        k = hf.kernel(lambda a, b, n: None, p1, p2, 10)
        assert len(k.sources) == 2
        assert {s.node.nid for s in k.sources} == {p1.node.nid, p2.node.nid}

    def test_kernel_requires_callable(self):
        hf = Heteroflow()
        with pytest.raises(GraphError):
            hf.kernel("nope")

    def test_default_names_unique(self):
        hf = Heteroflow()
        a = hf.host(lambda: None)
        b = hf.host(lambda: None)
        assert a.name != b.name

    def test_rename_chains(self):
        hf = Heteroflow()
        t = hf.host(lambda: None).rename("renamed")
        assert t.name == "renamed"


class TestPlaceholders:
    def test_placeholder_is_typed_empty_work(self):
        hf = Heteroflow()
        t = hf.placeholder(HostTask)
        assert t.type is TaskType.PLACEHOLDER
        assert not t.empty  # has a node, lacks work

    def test_placeholder_participates_in_dependencies(self):
        hf = Heteroflow()
        ph = hf.placeholder(HostTask)
        other = hf.host(lambda: None)
        ph.precede(other)
        assert other.num_dependents == 1

    def test_placeholder_fill_makes_runnable(self):
        hf = Heteroflow()
        ph = hf.placeholder(HostTask)
        ph.host(lambda: None)
        hf.validate()  # no longer raises

    def test_unfilled_placeholder_fails_validation(self):
        hf = Heteroflow()
        hf.placeholder(HostTask)
        with pytest.raises(GraphError):
            hf.validate()

    def test_empty_handle_operations_raise(self):
        t = Task()
        assert t.empty
        with pytest.raises(EmptyTaskError):
            t.precede(t)
        with pytest.raises(EmptyTaskError):
            _ = t.name

    def test_unknown_placeholder_type_rejected(self):
        hf = Heteroflow()

        class Weird(Task):
            pass

        with pytest.raises(GraphError):
            hf.placeholder(Weird)


class TestDependencies:
    def test_precede_variadic(self):
        hf = Heteroflow()
        a, b, c = (hf.host(lambda: None) for _ in range(3))
        a.precede(b, c)
        assert a.num_successors == 2
        assert b.num_dependents == 1

    def test_succeed_is_symmetric(self):
        hf = Heteroflow()
        a, b = hf.host(lambda: None), hf.host(lambda: None)
        b.succeed(a)
        assert a.num_successors == 1
        assert b.num_dependents == 1

    def test_self_loop_rejected(self):
        hf = Heteroflow()
        a = hf.host(lambda: None)
        with pytest.raises(GraphError):
            a.precede(a)

    def test_cycle_detected(self):
        hf = Heteroflow()
        a, b, c = (hf.host(lambda: None) for _ in range(3))
        a.precede(b)
        b.precede(c)
        c.precede(a)
        with pytest.raises(CycleError):
            hf.validate()

    def test_cross_graph_edge_detected(self):
        g1, g2 = Heteroflow(), Heteroflow()
        a = g1.host(lambda: None)
        b = g2.host(lambda: None)
        a.precede(b)
        with pytest.raises(GraphError):
            g1.validate()

    def test_handle_equality_by_node(self):
        hf = Heteroflow()
        a = hf.host(lambda: None)
        alias = HostTask(a.node)
        assert a == alias
        assert hash(a) == hash(alias)

    def test_topological_order_respects_edges(self):
        hf = Heteroflow()
        tasks = [hf.host(lambda: None) for _ in range(6)]
        for i in range(5):
            tasks[i].precede(tasks[i + 1])
        order = hf.topological_order()
        assert [n.nid for n in order] == [t.node.nid for t in tasks]


class TestKernelShape:
    def test_block_grid_builders(self):
        hf = Heteroflow()
        k = hf.kernel(lambda: None).block_x(256).grid_x(4).grid_y(2).shm(64)
        cfg = k.launch_config
        assert cfg.block == (256, 1, 1)
        assert cfg.grid == (4, 2, 1)
        assert cfg.shm == 64

    def test_grid_block_tuple_setters(self):
        hf = Heteroflow()
        k = hf.kernel(lambda: None).grid(2, 3, 4).block(8, 4)
        assert k.launch_config.grid == (2, 3, 4)
        assert k.launch_config.block == (8, 4, 1)


class TestGraphInspection:
    def test_counts(self):
        hf = Heteroflow()
        hf.host(lambda: None)
        p = hf.pull([1])
        hf.push(p, [1])
        hf.kernel(lambda: None)
        assert hf.num_nodes == 4
        assert len(hf) == 4
        assert hf.num_tasks_of(TaskType.PULL) == 1
        assert hf.has_gpu_tasks

    def test_empty_and_clear(self):
        hf = Heteroflow()
        assert hf.empty
        hf.host(lambda: None)
        hf.clear()
        assert hf.empty

    def test_tasks_returns_right_handle_types(self):
        hf = Heteroflow()
        hf.host(lambda: None)
        p = hf.pull([1])
        hf.push(p, [1])
        hf.kernel(lambda: None)
        kinds = [type(t) for t in hf.tasks()]
        assert kinds == [HostTask, PullTask, PushTask, KernelTask]

    def test_dump_dot(self):
        hf = Heteroflow("demo")
        a = hf.host(lambda: None, name="alpha")
        p = hf.pull([1], name="pin")
        a.precede(p)
        text = hf.dump()
        assert text.startswith('digraph "demo"')
        assert "alpha" in text and "pin" in text
        assert "->" in text

    def test_dump_to_stream(self):
        hf = Heteroflow()
        hf.host(lambda: None)
        buf = io.StringIO()
        text = hf.dump(buf)
        assert buf.getvalue() == text

    def test_dump_kernel_shows_launch_shape(self):
        hf = Heteroflow()
        hf.kernel(lambda: None, name="k").grid_x(7).block_x(32)
        assert "<<<7,32>>>" in hf.dump()
