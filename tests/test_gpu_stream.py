"""Tests for stream ordering, events, and error propagation."""

import threading
import time

import pytest

from repro.errors import DeviceError
from repro.gpu.stream import Event


class TestOrdering:
    def test_fifo_execution_order(self, gpu2):
        s = gpu2.device(0).create_stream()
        seen = []
        for i in range(20):
            s.enqueue(lambda i=i: seen.append(i))
        s.synchronize()
        assert seen == list(range(20))

    def test_enqueue_is_asynchronous(self, gpu2):
        s = gpu2.device(0).create_stream()
        gate = threading.Event()
        s.enqueue(gate.wait)
        # returns immediately even though the op is blocked
        s.enqueue(lambda: None)
        gate.set()
        s.synchronize()

    def test_ops_executed_counter(self, gpu2):
        s = gpu2.device(0).create_stream()
        for _ in range(5):
            s.enqueue(lambda: None)
        s.synchronize()
        assert s.ops_executed >= 5

    def test_callback_runs_after_op(self, gpu2):
        s = gpu2.device(0).create_stream()
        order = []
        s.enqueue(lambda: order.append("op"), callback=lambda err: order.append(err))
        s.synchronize()
        assert order == ["op", None]


class TestEvents:
    def test_event_completes_after_prior_work(self, gpu2):
        s = gpu2.device(0).create_stream()
        done = []
        s.enqueue(lambda: (time.sleep(0.01), done.append(1)))
        ev = s.record_event()
        ev.synchronize()
        assert done == [1]

    def test_query_before_and_after(self, gpu2):
        s = gpu2.device(0).create_stream()
        gate = threading.Event()
        s.enqueue(gate.wait)
        ev = s.record_event()
        assert not ev.query()
        gate.set()
        ev.synchronize()
        assert ev.query()

    def test_cross_stream_wait(self, gpu2):
        """stream_wait_event sequences s2 work after s1 work."""
        d = gpu2.device(0)
        s1, s2 = d.create_stream(), d.create_stream()
        order = []
        gate = threading.Event()
        s1.enqueue(lambda: (gate.wait(), order.append("a")))
        ev = s1.record_event()
        s2.wait_event(ev)
        s2.enqueue(lambda: order.append("b"))
        gate.set()
        s2.synchronize()
        assert order == ["a", "b"]

    def test_event_timeout(self, gpu2):
        s = gpu2.device(0).create_stream()
        gate = threading.Event()
        s.enqueue(gate.wait)
        ev = s.record_event()
        with pytest.raises(DeviceError):
            ev.synchronize(timeout=0.05)
        gate.set()

    def test_standalone_event_object(self):
        ev = Event()
        assert not ev.query()


class TestErrors:
    def test_error_surfaces_on_synchronize(self, gpu2):
        s = gpu2.device(0).create_stream()
        s.enqueue(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            s.synchronize()

    def test_error_delivered_to_callback(self, gpu2):
        """A callback consumes its op's error: it receives the
        exception object and the stream stays clean afterwards."""
        s = gpu2.device(0).create_stream()
        captured = []
        s.enqueue(lambda: 1 / 0, callback=captured.append)
        s.synchronize()  # does not raise - the callback owned the error
        assert isinstance(captured[0], ZeroDivisionError)

    def test_error_clears_after_sync(self, gpu2):
        s = gpu2.device(0).create_stream()
        s.enqueue(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            s.synchronize()
        s.enqueue(lambda: None)
        s.synchronize()  # no stale error

    def test_enqueue_after_destroy_raises(self, gpu2):
        s = gpu2.device(0).create_stream()
        s.destroy()
        with pytest.raises(DeviceError):
            s.enqueue(lambda: None)

    def test_destroy_is_idempotent(self, gpu2):
        s = gpu2.device(0).create_stream()
        s.destroy()
        s.destroy()
