"""Tests for the work-stealing CPU-GPU executor."""

import threading
import time

import numpy as np
import pytest

from repro.core import Executor, Heteroflow, TraceObserver
from repro.errors import ExecutorError, GraphError, KernelError
from tests.conftest import saxpy_kernel


class TestBasicExecution:
    def test_saxpy_listing1(self, executor, saxpy_graph):
        hf, x, y, n = saxpy_graph
        executor.run(hf).result(timeout=30)
        assert y == [4] * n
        assert x == [1] * n

    def test_host_only_graph_no_gpus(self, cpu_executor):
        hf = Heteroflow()
        seen = []
        a = hf.host(lambda: seen.append("a"))
        b = hf.host(lambda: seen.append("b"))
        a.precede(b)
        cpu_executor.run(hf).result(timeout=10)
        assert seen == ["a", "b"]

    def test_gpu_graph_on_cpu_executor_fails(self, cpu_executor):
        hf = Heteroflow()
        hf.pull([1, 2])
        with pytest.raises(ExecutorError):
            cpu_executor.run(hf).result(timeout=10)

    def test_empty_graph_completes_immediately(self, executor):
        assert executor.run(Heteroflow()).result(timeout=5) == 0

    def test_diamond_ordering(self, executor):
        hf = Heteroflow()
        log = []
        lock = threading.Lock()

        def mark(tag):
            def f():
                with lock:
                    log.append(tag)

            return f

        a = hf.host(mark("a"))
        b = hf.host(mark("b"))
        c = hf.host(mark("c"))
        d = hf.host(mark("d"))
        a.precede(b, c)
        d.succeed(b, c)
        executor.run(hf).result(timeout=10)
        assert log[0] == "a" and log[-1] == "d"
        assert set(log[1:3]) == {"b", "c"}

    def test_wide_fanout(self, executor):
        hf = Heteroflow()
        counter = [0]
        lock = threading.Lock()

        def inc():
            with lock:
                counter[0] += 1

        root = hf.host(lambda: None)
        for _ in range(64):
            root.precede(hf.host(inc))
        executor.run(hf).result(timeout=30)
        assert counter[0] == 64

    def test_fig3_data_reuse_via_transitive_dependency(self, executor):
        """Listing 10 / Fig. 3: kernel2 reads pull1's device data with
        only a transitive dependency through kernel1."""
        vec1: list = []
        vec2: list = []
        hf = Heteroflow()
        host1 = hf.host(lambda: vec1.extend([0] * 64))
        host2 = hf.host(lambda: vec2.extend([1] * 64))
        pull1 = hf.pull(vec1)
        pull2 = hf.pull(vec2)

        def k1(v1):
            v1 += 5  # whole-array kernel

        def k2(v1, v2):
            v2 += v1  # reads pull1's data updated by k1

        kernel1 = hf.kernel(k1, pull1)
        kernel2 = hf.kernel(k2, pull1, pull2)
        push1 = hf.push(pull1, vec1)
        push2 = hf.push(pull2, vec2)
        host1.precede(pull1)
        host2.precede(pull2)
        pull1.precede(kernel1)
        pull2.precede(kernel2)
        kernel1.precede(push1, kernel2)
        kernel2.precede(push2)
        executor.run(hf).result(timeout=30)
        assert vec1 == [5] * 64
        assert vec2 == [6] * 64


class TestRepeatedExecution:
    def test_run_n_stateful_accumulation(self, executor):
        """Each pass sees the previous pass's mutations (the stateful
        transition the paper's Listing 4 discussion requires)."""
        hf = Heteroflow()
        data = np.zeros(16, dtype=np.float64)
        pull = hf.pull(data)

        def inc(arr):
            arr += 1

        k = hf.kernel(inc, pull)
        push = hf.push(pull, data)
        pull.precede(k)
        k.precede(push)
        assert executor.run_n(hf, 5).result(timeout=30) == 5
        assert set(data) == {5.0}

    def test_run_n_zero(self, executor, saxpy_graph):
        hf, x, y, n = saxpy_graph
        assert executor.run_n(hf, 0).result(timeout=5) == 0
        assert x == []  # nothing ran

    def test_run_until_predicate(self, executor):
        hf = Heteroflow()
        counter = [0]
        hf.host(lambda: counter.__setitem__(0, counter[0] + 1))
        passes = executor.run_until(hf, lambda: counter[0] >= 7).result(timeout=30)
        assert counter[0] == 7
        assert passes == 7

    def test_run_until_requires_callable(self, executor):
        with pytest.raises(ExecutorError):
            executor.run_until(Heteroflow(), "not callable")

    def test_negative_run_n_rejected(self, executor):
        with pytest.raises(ExecutorError):
            executor.run_n(Heteroflow(), -1)

    def test_same_graph_serialized_submissions(self, executor):
        """Submitting one graph twice queues the topologies; both
        complete and effects accumulate in order."""
        hf = Heteroflow()
        log = []
        lock = threading.Lock()
        hf.host(lambda: (lock.acquire(), log.append(len(log)), lock.release()))
        f1 = executor.run_n(hf, 3)
        f2 = executor.run_n(hf, 2)
        assert f1.result(timeout=30) == 3
        assert f2.result(timeout=30) == 2
        assert log == [0, 1, 2, 3, 4]

    def test_pull_regrows_buffer_between_passes(self, executor):
        """A host task grows the container every pass; the pull buffer
        must be reallocated to fit."""
        hf = Heteroflow()
        data: list = [1]
        grow = hf.host(lambda: data.extend([1] * len(data)))
        pull = hf.pull(data)
        push = hf.push(pull, data)
        grow.precede(pull)
        pull.precede(push)
        executor.run_n(hf, 4).result(timeout=30)
        assert len(data) == 16


class TestErrors:
    def test_host_exception_reaches_future(self, executor):
        hf = Heteroflow()
        hf.host(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            executor.run(hf).result(timeout=10)

    def test_kernel_exception_reaches_future(self, executor):
        hf = Heteroflow()
        p = hf.pull([1, 2])

        def bad(arr):
            raise ValueError("kernel bug")

        k = hf.kernel(bad, p)
        p.precede(k)
        with pytest.raises(ValueError):
            executor.run(hf).result(timeout=10)

    def test_downstream_tasks_cancelled_after_failure(self, executor):
        hf = Heteroflow()
        ran = []
        a = hf.host(lambda: 1 / 0)
        b = hf.host(lambda: ran.append(1))
        a.precede(b)
        with pytest.raises(ZeroDivisionError):
            executor.run(hf).result(timeout=10)
        assert ran == []

    def test_missing_pull_dependency_detected(self, executor):
        """A kernel scheduled in parallel with its pull (user forgot
        the edge) either works or raises KernelError — never hangs or
        corrupts.  With no edge at all and independent sources the
        kernel can run first, which must raise."""
        hf = Heteroflow()
        blocker = hf.host(lambda: time.sleep(0.2))
        p = hf.pull([1, 2, 3])
        blocker.precede(p)  # delay the pull
        k = hf.kernel(lambda arr: None, p)  # no pull -> kernel edge!
        with pytest.raises(KernelError):
            executor.run(hf).result(timeout=10)

    def test_executor_rejects_bad_counts(self):
        with pytest.raises(ExecutorError):
            Executor(0, 0)
        with pytest.raises(ExecutorError):
            Executor(1, -1)

    def test_run_after_shutdown_rejected(self):
        ex = Executor(1, 0)
        ex.shutdown()
        with pytest.raises(ExecutorError):
            ex.run(Heteroflow())

    def test_validation_error_propagates_at_submit(self, executor):
        hf = Heteroflow()
        a = hf.host(lambda: None)
        b = hf.host(lambda: None)
        a.precede(b)
        b.precede(a)
        with pytest.raises(GraphError):
            executor.run(hf)


class TestConcurrency:
    def test_nonblocking_run(self, executor):
        hf = Heteroflow()
        gate = threading.Event()
        hf.host(gate.wait)
        fut = executor.run(hf)
        assert not fut.done()  # returned before the task finished
        gate.set()
        fut.result(timeout=10)

    def test_wait_for_all(self, executor):
        graphs = []
        counters = []
        for _ in range(4):
            hf = Heteroflow()
            c = [0]
            hf.host(lambda c=c: c.__setitem__(0, c[0] + 1))
            graphs.append(hf)
            counters.append(c)
            executor.run_n(hf, 3)
        executor.wait_for_all()
        assert [c[0] for c in counters] == [3, 3, 3, 3]

    def test_submission_from_many_threads(self, executor):
        """The executor interface is thread-safe (paper §III-B)."""
        results = []
        lock = threading.Lock()

        def submit(i):
            hf = Heteroflow()
            out = []
            hf.host(lambda: out.append(i))
            executor.run(hf).result(timeout=30)
            with lock:
                results.extend(out)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert sorted(results) == list(range(8))

    def test_many_independent_graphs_in_flight(self, executor):
        futs = []
        outs = []
        for i in range(10):
            hf = Heteroflow()
            out = []
            outs.append(out)
            a = hf.host(lambda out=out, i=i: out.append(i))
            b = hf.host(lambda out=out: out.append("end"))
            a.precede(b)
            futs.append(executor.run(hf))
        for f in futs:
            f.result(timeout=30)
        assert all(len(o) == 2 for o in outs)


class TestResources:
    def test_buffers_released_after_topology(self, executor, saxpy_graph):
        hf, x, y, n = saxpy_graph
        executor.run(hf).result(timeout=30)
        for dev in executor.gpu_runtime.devices:
            assert dev.heap.bytes_in_use == 0

    def test_multi_gpu_distribution(self, executor):
        """Independent groups land on both GPUs of the fixture."""
        hf = Heteroflow()
        for i in range(6):
            p = hf.pull(np.full(256, float(i)))
            k = hf.kernel(lambda a: None, p)
            p.precede(k)
        obs = TraceObserver()
        executor.add_observer(obs)
        executor.run(hf).result(timeout=30)
        assert set(obs.tasks_per_device()) == {0, 1}

    def test_observer_records_every_task(self, executor, saxpy_graph):
        hf, *_ = saxpy_graph
        obs = TraceObserver()
        executor.add_observer(obs)
        executor.run(hf).result(timeout=30)
        counts = obs.count_by_type()
        assert counts == {"host": 2, "pull": 2, "kernel": 1, "push": 2}
        assert obs.topologies_started == 1
        assert obs.topologies_finished == 1

    def test_placeholder_filled_before_run(self, executor):
        from repro.core.task import HostTask

        hf = Heteroflow()
        ph = hf.placeholder(HostTask)
        out = []
        tail = hf.host(lambda: out.append("tail"))
        ph.precede(tail)
        ph.host(lambda: out.append("head"))  # decided late
        executor.run(hf).result(timeout=10)
        assert out == ["head", "tail"]

    def test_context_manager_shutdown(self):
        with Executor(1, 1) as ex:
            hf = Heteroflow()
            hf.host(lambda: None)
            ex.run(hf)
        # exiting waits and shuts down without error
