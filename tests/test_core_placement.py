"""Tests for Algorithm 1 (device placement)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Heteroflow
from repro.core.placement import DevicePlacement, default_cost_metric
from repro.baselines import RoundRobinPlacement
from repro.errors import ExecutorError


def place(hf, gpus, impl=None):
    impl = impl or DevicePlacement()
    return impl.place(hf.nodes, gpus)


class TestGrouping:
    def test_kernel_groups_with_its_pulls(self):
        hf = Heteroflow()
        p1, p2 = hf.pull([1]), hf.pull([2])
        k = hf.kernel(lambda a, b: None, p1, p2)
        res = place(hf, 4)
        assert res.num_groups == 1
        assert res.device_of(k.node) == res.device_of(p1.node) == res.device_of(p2.node)

    def test_transitive_grouping_through_shared_pull(self):
        """Fig. 3: kernel1(pull1) and kernel2(pull1, pull2) merge."""
        hf = Heteroflow()
        p1, p2 = hf.pull([1]), hf.pull([2])
        k1 = hf.kernel(lambda a: None, p1)
        k2 = hf.kernel(lambda a, b: None, p1, p2)
        res = place(hf, 4)
        assert res.num_groups == 1
        devices = {res.device_of(n) for n in (p1.node, p2.node, k1.node, k2.node)}
        assert len(devices) == 1

    def test_independent_groups_spread(self):
        hf = Heteroflow()
        kernels = []
        for i in range(4):
            p = hf.pull(np.zeros(64))
            kernels.append(hf.kernel(lambda a: None, p))
        res = place(hf, 4)
        assert res.num_groups == 4
        assert sorted(res.device_of(k.node) for k in kernels) == [0, 1, 2, 3]

    def test_push_inherits_source_device(self):
        hf = Heteroflow()
        p = hf.pull([1])
        hf.kernel(lambda a: None, p)
        target = [0]
        push = hf.push(p, target)
        res = place(hf, 3)
        assert res.device_of(push.node) == res.device_of(p.node)

    def test_lone_pull_gets_placed(self):
        hf = Heteroflow()
        p = hf.pull([1, 2, 3])
        res = place(hf, 2)
        assert res.device_of(p.node) in (0, 1)


class TestBinPacking:
    def test_balanced_load_with_unequal_groups(self):
        """One big group + several small ones: the big group must not
        share a GPU with another group when a free GPU exists."""
        hf = Heteroflow()
        big = hf.pull(np.zeros(100_000))
        hf.kernel(lambda a: None, big)
        smalls = []
        for _ in range(3):
            p = hf.pull(np.zeros(8))
            hf.kernel(lambda a: None, p)
            smalls.append(p)
        res = place(hf, 2)
        big_dev = res.device_of(big.node)
        assert all(res.device_of(p.node) != big_dev for p in smalls)

    def test_imbalance_beats_round_robin_on_skew(self):
        """ABL-PLACE core property: balanced packing yields lower load
        imbalance than round-robin on skewed group sizes."""
        hf = Heteroflow()
        sizes = [1 << 16, 8, 8, 1 << 16, 8, 8, 8, 8]
        for s in sizes:
            p = hf.pull(np.zeros(s))
            hf.kernel(lambda a: None, p)
        balanced = place(hf, 2)
        hf2 = Heteroflow()
        for s in sizes:
            p = hf2.pull(np.zeros(s))
            hf2.kernel(lambda a: None, p)
        rr = place(hf2, 2, RoundRobinPlacement())
        assert balanced.load_imbalance <= rr.load_imbalance

    def test_no_gpu_tasks_trivial(self):
        hf = Heteroflow()
        hf.host(lambda: None)
        res = place(hf, 0)
        assert res.assignment == {}

    def test_gpu_tasks_without_gpus_raise(self):
        hf = Heteroflow()
        hf.pull([1])
        with pytest.raises(ExecutorError):
            place(hf, 0)

    def test_custom_cost_metric(self):
        hf = Heteroflow()
        pulls = [hf.pull([1]) for _ in range(4)]
        for p in pulls:
            hf.kernel(lambda a: None, p)
        # metric that makes group 0 enormous
        first = pulls[0].node.nid

        def metric(group):
            return 1e9 if any(n.nid == first for n in group) else 1.0

        res = DevicePlacement(metric).place(hf.nodes, 2)
        dev0 = res.device_of(pulls[0].node)
        assert all(res.device_of(p.node) != dev0 for p in pulls[1:])

    def test_default_metric_fallback_for_unresolvable_span(self):
        hf = Heteroflow()
        p = hf.pull(lambda: undefined_name)  # noqa: F821 - resolves later
        cost = default_cost_metric([p.node])
        assert cost > 0


@settings(max_examples=40, deadline=None)
@given(
    group_sizes=st.lists(st.integers(1, 1000), min_size=1, max_size=24),
    gpus=st.integers(1, 6),
)
def test_every_gpu_task_is_assigned(group_sizes, gpus):
    """All pull/kernel/push nodes receive a device in range, kernels
    co-locate with their pulls, and loads sum to the total cost."""
    hf = Heteroflow()
    kernels = []
    for s in group_sizes:
        p = hf.pull(np.zeros(s))
        k = hf.kernel(lambda a: None, p)
        hf.push(p, np.zeros(s))
        kernels.append((k, p))
    res = place(hf, gpus)
    for n in hf.nodes:
        if n.type.is_gpu:
            assert 0 <= res.device_of(n) < gpus
    for k, p in kernels:
        assert res.device_of(k.node) == res.device_of(p.node)
    assert sum(res.loads) == pytest.approx(
        sum(default_cost_metric(ms) for ms in _groups_of(hf))
    )


def _groups_of(hf):
    """Recompute groups independently for the property test."""
    from repro.core.node import TaskType
    from repro.utils.union_find import UnionFind

    uf = UnionFind()
    for n in hf.nodes:
        if n.type in (TaskType.PULL, TaskType.KERNEL):
            uf.add(n)
        if n.type is TaskType.KERNEL:
            for p in n.kernel_sources:
                uf.union(n, p)
    return list(uf.groups().values())


@settings(max_examples=30, deadline=None)
@given(
    group_sizes=st.lists(st.integers(1, 50), min_size=2, max_size=20),
    gpus=st.integers(2, 4),
)
def test_balanced_satisfies_greedy_bound(group_sizes, gpus):
    """Greedy balanced packing guarantees max load <= mean + max-group
    (the classical list-scheduling bound); round-robin does not."""

    def build():
        hf = Heteroflow()
        for s in group_sizes:
            p = hf.pull(np.zeros(s))
            hf.kernel(lambda a: None, p)
        return hf

    balanced = place(build(), gpus)
    total = sum(balanced.loads)
    biggest = max(
        default_cost_metric(ms) for ms in _groups_of(build())
    )
    assert max(balanced.loads) <= total / gpus + biggest + 1e-9
