"""Tests for the overload-protection layer (repro.service).

Bounded admission under the three policies, priorities, deadlines,
graceful drain, the shutdown(wait=False) stranding regression, the
cancel/start interleaving race, and a multi-tenant sweep cross-checked
by the schedule validator.
"""

import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.check.generator import generate_graph
from repro.check.validate import validate_schedule
from repro.core import Executor, Heteroflow, TraceObserver
from repro.core.wsq import PriorityOverflowQueue
from repro.errors import AdmissionRejectedError, ExecutorError
from repro.resilience import RetryPolicy
from repro.service import AdmissionController, predicted_footprint_bytes


def _quick_graph(out=None, token=None):
    hf = Heteroflow()
    if out is None:
        hf.host(lambda: None)
    else:
        hf.host(lambda: out.append(token))
    return hf


def _gated_graph(gate, started=None, wait=30.0):
    """One host task that blocks on *gate* (sets *started* first)."""
    hf = Heteroflow()

    def body():
        if started is not None:
            started.set()
        gate.wait(wait)

    hf.host(body)
    return hf


class TestAdmissionController:
    def test_topology_ledger(self):
        ctrl = AdmissionController(max_topologies=2, policy="reject")
        assert ctrl.try_acquire(0)
        assert ctrl.try_acquire(0)
        assert not ctrl.try_acquire(0)
        assert ctrl.saturated
        assert ctrl.in_use_topologies == 2
        ctrl.release(0)
        assert ctrl.try_acquire(0)

    def test_footprint_ledger(self):
        ctrl = AdmissionController(max_footprint_bytes=1000, policy="reject")
        assert ctrl.try_acquire(600)
        assert not ctrl.try_acquire(600)
        assert ctrl.in_use_bytes == 600
        ctrl.release(600)
        assert ctrl.try_acquire(600)

    def test_would_ever_fit(self):
        ctrl = AdmissionController(max_footprint_bytes=100)
        assert ctrl.would_ever_fit(100)
        assert not ctrl.would_ever_fit(101)
        unbounded = AdmissionController(max_topologies=1)
        assert unbounded.would_ever_fit(1 << 40)

    def test_block_timeout_raises(self):
        ctrl = AdmissionController(
            max_topologies=1, policy="block", block_timeout=0.05
        )
        assert ctrl.try_acquire(0)
        with pytest.raises(AdmissionRejectedError) as ei:
            ctrl.acquire(0)
        assert ei.value.reason == "timeout"

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            AdmissionController(max_topologies=1, policy="nope")

    def test_blocked_waiters_served_by_priority(self):
        ctrl = AdmissionController(max_topologies=1, policy="block")
        assert ctrl.try_acquire(0)
        order = []
        ready = threading.Barrier(3)

        def waiter(pri):
            ready.wait(5)
            ctrl.acquire(0, priority=pri)
            order.append(pri)
            ctrl.release(0)

        low = threading.Thread(target=waiter, args=(1,))
        high = threading.Thread(target=waiter, args=(9,))
        low.start()
        high.start()
        ready.wait(5)
        deadline = time.monotonic() + 5
        while ctrl.waiting < 2 and time.monotonic() < deadline:
            time.sleep(0.002)
        assert ctrl.waiting == 2
        ctrl.release(0)
        low.join(5)
        high.join(5)
        assert order == [9, 1]

    def test_rejection_is_structured(self):
        ctrl = AdmissionController(
            max_topologies=3, max_footprint_bytes=512, policy="reject"
        )
        assert ctrl.try_acquire(100)
        err = ctrl.rejection("capacity", priority=2, footprint_bytes=400)
        assert err.reason == "capacity"
        assert err.policy == "reject"
        assert err.priority == 2
        assert err.footprint_bytes == 400
        assert err.in_use_topologies == 1
        assert err.in_use_bytes == 100
        assert isinstance(err, ExecutorError)


class TestBoundedAdmission:
    def test_reject_policy_at_capacity(self):
        ctrl = AdmissionController(max_topologies=1, policy="reject")
        gate = threading.Event()
        started = threading.Event()
        with Executor(2, 0, admission=ctrl) as ex:
            fut = ex.run(_gated_graph(gate, started))
            assert started.wait(10)
            with pytest.raises(AdmissionRejectedError) as ei:
                ex.run(_quick_graph())
            assert ei.value.reason == "capacity"
            gate.set()
            fut.result(timeout=30)
            # capacity returned: the next submission is admitted
            ex.run(_quick_graph()).result(timeout=10)
            snap = ex.metrics.snapshot()
            assert snap["service.admitted"] == 2
            assert snap["service.rejected"] == 1

    def test_block_policy_waits_for_capacity(self):
        ctrl = AdmissionController(max_topologies=1, policy="block")
        gate = threading.Event()
        started = threading.Event()
        out = []
        with Executor(2, 0, admission=ctrl) as ex:
            ex.run(_gated_graph(gate, started))
            assert started.wait(10)
            futs = []

            def submit():
                futs.append(ex.run(_quick_graph(out, "late")))

            t = threading.Thread(target=submit)
            t.start()
            deadline = time.monotonic() + 10
            while ctrl.waiting < 1 and time.monotonic() < deadline:
                time.sleep(0.002)
            assert ctrl.waiting == 1
            gate.set()
            t.join(10)
            futs[0].result(timeout=30)
            assert out == ["late"]
            snap = ex.metrics.snapshot()
            assert snap["service.admission_blocked"] == 1
            assert snap["service.admission_wait_seconds"]["count"] == 2

    def test_block_timeout_rejects_submission(self):
        ctrl = AdmissionController(
            max_topologies=1, policy="block", block_timeout=0.05
        )
        gate = threading.Event()
        started = threading.Event()
        with Executor(2, 0, admission=ctrl) as ex:
            ex.run(_gated_graph(gate, started))
            assert started.wait(10)
            with pytest.raises(AdmissionRejectedError) as ei:
                ex.run(_quick_graph())
            assert ei.value.reason == "timeout"
            gate.set()
            assert ex.metrics.snapshot()["service.rejected"] == 1

    def test_never_fits_rejected_under_every_policy(self):
        hf = Heteroflow()
        hf.pull(np.zeros(1 << 12))
        assert predicted_footprint_bytes(hf) > 64
        for policy in ("block", "reject", "shed"):
            ctrl = AdmissionController(
                max_footprint_bytes=64, policy=policy
            )
            with Executor(2, 1, admission=ctrl) as ex:
                with pytest.raises(AdmissionRejectedError) as ei:
                    ex.run(hf)
                assert ei.value.reason == "never_fits"
                assert ctrl.in_use_bytes == 0

    def test_footprint_capacity_uses_static_model(self):
        """max_footprint_bytes gates on the hflint HF020 prediction."""
        gate = threading.Event()
        started = threading.Event()
        hf = Heteroflow()
        p = hf.pull(np.zeros(1 << 10))

        def body():
            started.set()
            gate.wait(30)

        hf.host(body).succeed(p)
        fp = predicted_footprint_bytes(hf)
        assert fp >= 1 << 13  # float64 payload, buddy-rounded
        ctrl = AdmissionController(max_footprint_bytes=fp, policy="reject")
        with Executor(2, 1, admission=ctrl) as ex:
            fut = ex.run(hf)
            assert started.wait(10)
            assert ctrl.in_use_bytes == fp
            # an identical graph would double the footprint: rejected,
            # but not "never_fits" -- it fits once the first finishes
            hf2 = Heteroflow()
            hf2.pull(np.zeros(1 << 10))
            with pytest.raises(AdmissionRejectedError) as ei:
                ex.run(hf2)
            assert ei.value.reason == "capacity"
            gate.set()
            fut.result(timeout=30)
            ex.run(hf2).result(timeout=30)
            assert ctrl.in_use_bytes == 0


class TestShedding:
    def test_sheds_lowest_priority_queued_topology(self):
        ctrl = AdmissionController(max_topologies=2, policy="shed")
        gate = threading.Event()
        started = threading.Event()
        g = _gated_graph(gate, started)
        with Executor(2, 0, admission=ctrl) as ex:
            running = ex.run(g)  # starts, holds the gate
            assert started.wait(10)
            victim = ex.run(g, priority=0)  # queued behind it
            evictor = ex.run(g, priority=5)  # at capacity: sheds victim
            with pytest.raises(AdmissionRejectedError) as ei:
                victim.result(timeout=10)
            assert ei.value.reason == "shed"
            gate.set()
            running.result(timeout=30)
            evictor.result(timeout=30)
            snap = ex.metrics.snapshot()
            assert snap["service.shed"] == 1
            assert snap["service.admitted"] == 3

    def test_never_sheds_started_or_higher_priority(self):
        ctrl = AdmissionController(max_topologies=2, policy="shed")
        gate = threading.Event()
        started = threading.Event()
        g = _gated_graph(gate, started)
        with Executor(2, 0, admission=ctrl) as ex:
            running = ex.run(g, priority=0)  # started: untouchable
            assert started.wait(10)
            queued = ex.run(g, priority=5)
            # nothing queued below priority 1 -> shed degrades to reject
            with pytest.raises(AdmissionRejectedError) as ei:
                ex.run(g, priority=1)
            assert ei.value.reason == "capacity"
            gate.set()
            running.result(timeout=30)
            queued.result(timeout=30)
            assert ex.metrics.snapshot()["service.shed"] == 0


class TestDeadlines:
    def test_queued_deadline_cancels_immediately(self):
        gate = threading.Event()
        started = threading.Event()
        g = _gated_graph(gate, started)
        with Executor(2, 0) as ex:
            front = ex.run(g)
            assert started.wait(10)
            late = ex.run(g, deadline=0.05)
            topo = ex._futures[late]
            with pytest.raises(CancelledError):
                late.result(timeout=10)  # fires while still queued
            assert any(
                e["kind"] == "deadline_exceeded" and not e["started"]
                for e in topo.events
            )
            gate.set()
            front.result(timeout=30)
            assert ex.metrics.snapshot()["service.deadline_exceeded"] == 1

    def test_started_deadline_flushes_remaining_tasks(self):
        gate = threading.Event()
        hf = Heteroflow()
        ran = []
        a = hf.host(lambda: gate.wait(30))
        b = hf.host(lambda: ran.append("b"))
        a.precede(b)
        with Executor(2, 0) as ex:
            fut = ex.run(hf, deadline=0.05)
            topo = ex._futures[fut]
            time.sleep(0.2)
            gate.set()
            with pytest.raises(CancelledError):
                fut.result(timeout=30)
            assert ran == []  # successor flushed unrun
            assert any(
                e["kind"] == "deadline_exceeded" and e["started"]
                for e in topo.events
            )

    def test_generous_deadline_is_disarmed(self):
        with Executor(2, 0) as ex:
            ex.run(_quick_graph(), deadline=60.0).result(timeout=10)
            ex.wait_for_all()
            assert ex.metrics.snapshot()["service.deadline_exceeded"] == 0

    def test_invalid_deadline(self):
        with Executor(2, 0) as ex:
            with pytest.raises(ExecutorError):
                ex.run(_quick_graph(), deadline=0.0)
            with pytest.raises(ExecutorError):
                ex.run_n(_quick_graph(), 2, deadline=-1.0)


class TestPriorities:
    def test_priority_queue_orders_cross_graph_dispatch(self):
        q = PriorityOverflowQueue()
        q.push("low", 0)
        q.push("hi-a", 5)
        q.push("mid", 3)
        q.push("hi-b", 5)
        assert len(q) == 4
        # highest first, FIFO within a priority
        assert [q.steal() for _ in range(4)] == ["hi-a", "hi-b", "mid", "low"]
        assert q.empty
        assert q.steal() is None
        assert q.high_water == 4

    def test_graph_fifo_orders_by_priority_behind_front(self):
        gate = threading.Event()
        started = threading.Event()
        g = _gated_graph(gate, started)
        done = []
        with Executor(2, 0) as ex:
            front = ex.run(g)
            assert started.wait(10)
            futs = {}
            for pri in (1, 3, 2):
                futs[pri] = ex.run(g, priority=pri)
                futs[pri].add_done_callback(
                    lambda f, p=pri: done.append(p)
                )
            with ex._graph_lock:
                queue = list(ex._graph_queues[id(g)])
                queued = [t.priority for t in queue[1:]]
            assert queued == [3, 2, 1]
            gate.set()
            front.result(timeout=30)
            for f in futs.values():
                f.result(timeout=30)
            assert done == [3, 2, 1]


class TestDrain:
    def test_clean_drain_then_refuses_submissions(self):
        with Executor(2, 0) as ex:
            futs = [ex.run(_quick_graph()) for _ in range(4)]
            assert ex.drain(timeout=30) is True
            assert ex.draining
            for f in futs:
                f.result(timeout=10)
            with pytest.raises(ExecutorError):
                ex.run(_quick_graph())
            assert ex.metrics.snapshot()["service.drain_cancelled"] == 0

    def test_drain_timeout_cancels_stragglers(self):
        gate = threading.Event()
        started = threading.Event()
        g = _gated_graph(gate, started)
        with Executor(2, 0) as ex:
            running = ex.run(g)
            assert started.wait(10)
            queued = ex.run(g)
            threading.Timer(0.3, gate.set).start()
            assert ex.drain(timeout=0.05, cancel_grace=30) is False
            # the queued sibling never ran; the started one was
            # cancelled and settled once its gated body returned
            with pytest.raises(CancelledError):
                queued.result(timeout=10)
            with pytest.raises(CancelledError):
                running.result(timeout=10)
            assert ex.metrics.snapshot()["service.drain_cancelled"] == 2

    def test_shutdown_drain_timeout(self):
        gate = threading.Event()
        started = threading.Event()
        ex = Executor(2, 0)
        fut = ex.run(_gated_graph(gate, started))
        assert started.wait(10)
        threading.Timer(0.3, gate.set).start()
        ex.shutdown(drain_timeout=0.05)
        with pytest.raises(CancelledError):
            fut.result(timeout=10)
        with pytest.raises(ExecutorError):
            ex.run(_quick_graph())


class TestShutdownStranding:
    def test_unwaited_shutdown_resolves_queued_siblings(self):
        """shutdown(wait=False) must resolve every outstanding future,
        including queued topologies that never started."""
        gate = threading.Event()
        started = threading.Event()
        g = _gated_graph(gate, started, wait=10.0)
        ex = Executor(2, 0)
        running = ex.run(g)
        assert started.wait(10)
        queued = ex.run(g)
        threading.Timer(0.2, gate.set).start()
        ex.shutdown(wait=False)
        # the running one may have finished its pass before teardown;
        # either way both futures must be resolved, not stranded
        for fut in (running, queued):
            assert fut.done()
            try:
                fut.result(timeout=5)
            except CancelledError:
                pass
        assert not ex._futures and not ex._graph_queues

    def test_unwaited_shutdown_resolves_parked_retry(self):
        """Regression: a topology parked on a delayed retry sits on the
        timer wheel, not in any queue; shutdown(wait=False) used to
        strand its future forever."""
        hf = Heteroflow()
        hf.host(lambda: 1 / 0)
        policy = RetryPolicy(max_attempts=3, base_delay=30.0, jitter=0.0)
        ex = Executor(2, 0)
        fut = ex.run(hf, policy=policy)
        deadline = time.monotonic() + 10
        while (
            ex.metrics.snapshot()["resilience.retries"] < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        assert ex.metrics.snapshot()["resilience.retries"] >= 1
        ex.shutdown(wait=False)
        with pytest.raises(CancelledError):
            fut.result(timeout=5)  # resolves now, not in 30s


class TestCancelInterleaving:
    def test_cancel_race_leaves_no_stale_queue_entries(self):
        """Hammer cancel against start/finalize: whatever interleaving
        wins, every future resolves and the FIFO map ends empty."""
        with Executor(4, 0) as ex:
            futs = []
            for i in range(60):
                hf = Heteroflow()
                hf.host(lambda: time.sleep(0.0005))
                first = ex.run(hf)
                second = ex.run(hf)  # queued sibling
                futs.extend((first, second))
                # race the cancel against promotion and completion
                target = second if i % 2 == 0 else first
                canceller = threading.Thread(
                    target=ex.cancel, args=(target,)
                )
                canceller.start()
                if i % 3 == 0:
                    ex.cancel(second)
                canceller.join(10)
            for f in futs:
                try:
                    f.result(timeout=30)
                except CancelledError:
                    pass
            ex.wait_for_all()
            with ex._graph_lock:
                assert ex._graph_queues == {}
                assert ex._futures == {}

    def test_cancel_queued_topology_releases_admission(self):
        ctrl = AdmissionController(max_topologies=2, policy="reject")
        gate = threading.Event()
        started = threading.Event()
        g = _gated_graph(gate, started)
        with Executor(2, 0, admission=ctrl) as ex:
            running = ex.run(g)
            assert started.wait(10)
            queued = ex.run(g)
            assert ctrl.in_use_topologies == 2
            assert ex.cancel(queued)
            with pytest.raises(CancelledError):
                queued.result(timeout=10)
            # capacity came back exactly once
            assert ctrl.in_use_topologies == 1
            gate.set()
            running.result(timeout=30)
            assert ctrl.in_use_topologies == 0


class TestMultiTenant:
    def test_eight_tenants_validate_clean(self):
        """8 submitter threads race mixed workloads, cancels, and
        deadlines at one bounded executor; every future settles and
        every graph's trace passes the schedule validator."""
        ctrl = AdmissionController(
            max_topologies=12, policy="block", block_timeout=30.0
        )
        obs = TraceObserver()
        results = []  # (gen, submissions) per thread
        errors = []
        with Executor(4, 2, admission=ctrl) as ex:
            ex.add_observer(obs)

            def tenant(tid):
                try:
                    gen = generate_graph(
                        1000 + tid,
                        num_gpus=2,
                        max_hosts=3,
                        max_chains=2,
                        max_kernels=2,
                        max_len=32,
                    )
                    subs = []
                    for j in range(4):
                        mode = (tid + j) % 3
                        if mode == 0:
                            fut = ex.run(gen.graph, priority=tid % 4)
                        elif mode == 1:
                            fut = ex.run_n(gen.graph, 2)
                        else:
                            hits = []
                            fut = ex.run_until(
                                gen.graph,
                                lambda h=hits: (
                                    h.append(1) or len(h) >= 2
                                ),
                            )
                        passes = 2 if mode else 1
                        if tid % 4 == 0 and j == 3:
                            ex.cancel(fut)
                        subs.append((fut, passes))
                    results.append((gen, subs))
                except Exception as exc:  # pragma: no cover
                    errors.append((tid, exc))

            threads = [
                threading.Thread(target=tenant, args=(tid,))
                for tid in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert errors == []
            outcomes = []
            for gen, subs in results:
                for fut, _ in subs:
                    try:
                        fut.result(timeout=60)
                        outcomes.append("completed")
                    except CancelledError:
                        outcomes.append("cancelled")
            ex.wait_for_all()
        assert len(outcomes) == 32  # nothing stranded
        for gen, subs in results:
            nids = {n.nid for n in gen.graph.nodes}
            records = [r for r in obs.records if r.nid in nids]
            all_done = all(not f.cancelled() for f, _ in subs)
            try:
                all_done = all_done and not any(
                    f.exception() for f, _ in subs
                )
            except CancelledError:
                all_done = False
            expected = sum(p for _, p in subs)
            report = validate_schedule(
                gen.graph,
                records,
                passes=max(expected, 1),
                num_gpus=2,
                allow_partial=not all_done,
            )
            assert report.violations == []


class TestSoakHarness:
    def test_smoke_sweep_reconciles(self):
        from repro.service import run_soak

        report = run_soak(scenarios=3, seed=11)
        assert report.ok, report.violations
        assert report.violations == []
        totals = report.totals
        assert totals["submitted"] == totals["rejected"] + totals["admitted"]
        assert totals["admitted"] == (
            totals["completed"]
            + totals["shed"]
            + totals["deadline_exceeded"]
            + totals["cancelled"]
            + totals["failed"]
        )
        doc = report.to_dict()
        assert doc["schema"] == "repro.soak-report/1"
        assert len(doc["scenarios"]) == 3
        assert {"p50", "p95", "p99"} <= set(doc["wall_latency_s"])


class TestServiceMetrics:
    def test_gauges_track_controller(self):
        ctrl = AdmissionController(max_topologies=2, policy="block")
        gate = threading.Event()
        started = threading.Event()
        with Executor(2, 0, admission=ctrl) as ex:
            snap = ex.metrics.snapshot()
            assert snap["service.overload_state"] == 0
            assert snap["service.topologies_in_use"] == 0
            fut1 = ex.run(_gated_graph(gate, started))
            assert started.wait(10)
            fut2 = ex.run(_gated_graph(gate))
            snap = ex.metrics.snapshot()
            assert snap["service.topologies_in_use"] == 2
            assert snap["service.overload_state"] == 1  # saturated
            gate.set()
            fut1.result(timeout=30)
            fut2.result(timeout=30)
            ex.wait_for_all()
            snap = ex.metrics.snapshot()
            assert snap["service.topologies_in_use"] == 0
            assert snap["service.overload_state"] == 0
            ex.drain(timeout=10)
            assert ex.metrics.snapshot()["service.overload_state"] == 3
