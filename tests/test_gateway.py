"""Tests for the async multiprocess gateway (:mod:`repro.gateway`).

Every test spawns a real worker pool (``multiprocessing`` spawn
context), so the pool stays small (2 processes) and each test bundles
several related assertions to keep the spawn bill down.  The seeded
worker-death test SIGKILLs a live worker mid-graph and requires every
awaitable to settle and the slot to respawn; the drain-under-load test
mirrors ``tests/test_service.py``'s drain guarantees across the
process boundary.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.errors import GatewayError
from repro.gateway import (
    BuiltinSpec,
    BurstSpec,
    Gateway,
    GeneratedSpec,
    WorkerConfig,
)

pytestmark = pytest.mark.gateway

_CONFIG = WorkerConfig(threads=2, gpus=1)


def _run(coro):
    return asyncio.run(coro)


class TestSubmission:
    def test_submit_completes_and_streams_events(self):
        async def main():
            async with Gateway(2, worker=_CONFIG) as gw:
                sub = gw.submit(GeneratedSpec(seed=7, num_gpus=1))
                res = await sub
                assert res.ok and res.outcome == "completed"
                assert res.passes == 1
                assert res.wid in (0, 1)
                kinds = [ev["kind"] async for ev in sub.events()]
                assert kinds == ["submitted", "accepted", "settled"]
                # the event iterator terminates once settled
                res2 = await gw.submit(BuiltinSpec("saxpy"))
                assert res2.ok

        _run(main())

    def test_instance_pins_to_worker_and_verifies(self):
        async def main():
            async with Gateway(2, worker=_CONFIG) as gw:
                gh = gw.instance(GeneratedSpec(seed=11, num_gpus=1))
                r1 = await gw.submit(gh)
                r2 = await gw.submit(gh, repeats=2)
                assert r1.ok and r2.ok
                assert r1.wid == r2.wid == gh.wid
                total = r1.passes + r2.passes
                assert total == 3
                assert await gw.verify(gh, total) == ()
                # a wrong pass count is a detected violation, proving
                # the oracle runs for real on the worker side
                wrong = await gw.verify(gh, total + 1)
                assert wrong and "pass" in wrong[0]

        _run(main())

    def test_frozen_replay_crosses_process_boundary(self):
        async def main():
            async with Gateway(2, worker=_CONFIG) as gw:
                fh = await gw.freeze(BurstSpec(width=8))
                results = await asyncio.gather(
                    *[gw.submit(fh).future for _ in range(6)]
                )
                assert all(r.ok for r in results)
                # both workers served replays (round-robin routing) and
                # their executors took the frozen-plan path
                metrics = await gw.worker_metrics()
                assert sorted(metrics) == [0, 1]
                for snap in metrics.values():
                    assert snap["worker.frozen"] == 1
                    assert (
                        snap["replay.cache_hits"] + snap["replay.fast_path"]
                        > 0
                    )

        _run(main())

    def test_submit_rejects_unknown_target(self):
        async def main():
            async with Gateway(2, worker=_CONFIG) as gw:
                with pytest.raises(GatewayError):
                    gw.submit("not a spec")  # type: ignore[arg-type]

        _run(main())


class TestWorkerDeath:
    def test_sigkill_mid_graph_settles_and_respawns(self):
        """SIGKILL a worker with a graph in flight: the submission
        settles (replayed on the replacement), the slot respawns
        within the heartbeat budget, and nothing is stranded."""

        async def main():
            interval = 0.2
            async with Gateway(
                2, worker=_CONFIG, heartbeat_interval=interval
            ) as gw:
                gh = gw.instance(BurstSpec(width=4, sleep_s=0.3))
                sub = gw.submit(gh)
                await asyncio.sleep(0.1)  # let the work start
                victim = gw._workers[sub.wid]
                t0 = time.monotonic()
                os.kill(victim.proc.pid, signal.SIGKILL)
                res = await asyncio.wait_for(sub.future, 30.0)
                # the replan path resubmitted the idempotent spec
                assert res.outcome == "completed"
                assert res.replans == 1
                # detection is one is_alive poll away, the respawned
                # Ready a process start after that
                deadline = t0 + 15.0
                while time.monotonic() < deadline:
                    fresh = gw._workers[victim.wid]
                    if fresh is not victim and fresh.ready:
                        break
                    await asyncio.sleep(0.02)
                fresh = gw._workers[victim.wid]
                assert fresh is not victim and fresh.ready
                assert gw._workers_alive() == 2
                # the dead worker's instance state is gone: the handle
                # is tainted and verification is honestly vacuous
                assert gh.tainted
                assert await gw.verify(gh, 1) == ()
                snap = gw.snapshot()
                assert snap["gateway.worker_deaths"] == 1
                assert snap["gateway.respawns"] == 1
                assert snap["gateway.replans"] == 1
                # the replacement serves new work
                assert (await gw.submit(BurstSpec(width=2))).ok

        _run(main())

    def test_second_death_settles_as_worker_lost(self):
        """With the replan budget exhausted, a submission settles with
        a structured worker_lost result instead of hanging."""

        async def main():
            async with Gateway(
                1, worker=_CONFIG, heartbeat_interval=0.2, max_replans=0
            ) as gw:
                sub = gw.submit(BurstSpec(width=4, sleep_s=0.4))
                await asyncio.sleep(0.1)
                os.kill(gw._workers[0].proc.pid, signal.SIGKILL)
                res = await asyncio.wait_for(sub.future, 30.0)
                assert res.outcome == "worker_lost"
                assert "WorkerDiedError" in res.error
                # the pool healed regardless
                assert (await gw.submit(BurstSpec(width=2))).ok

        _run(main())


class TestDrainShutdown:
    def test_drain_under_load_settles_everything(self):
        """Mirror of the in-process drain guarantee: drain() with live
        submissions settles every awaitable, then refuses new work."""

        async def main():
            async with Gateway(2, worker=_CONFIG) as gw:
                subs = [
                    gw.submit(BurstSpec(width=3, sleep_s=0.1))
                    for _ in range(6)
                ]
                ok = await gw.drain(timeout=30.0)
                assert ok
                assert all(s.done() for s in subs)
                outcomes = {(await s).outcome for s in subs}
                assert outcomes == {"completed"}
                with pytest.raises(GatewayError):
                    gw.submit(BurstSpec(width=1))

        _run(main())

    def test_shutdown_is_idempotent_and_strands_nothing(self):
        async def main():
            gw = Gateway(2, worker=_CONFIG)
            await gw.start()
            subs = [
                gw.submit(BurstSpec(width=2, sleep_s=0.05))
                for _ in range(4)
            ]
            await gw.shutdown(drain_timeout=30.0)
            assert all(s.done() for s in subs)
            await gw.shutdown()  # second call is a no-op
            assert gw._workers_alive() == 0

        _run(main())


class TestCancelAndMetrics:
    def test_cancel_and_exact_metric_counts(self):
        """gateway.* counters track the harness's view exactly, the
        replay.* pattern one tier up (docs/observability.md)."""

        async def main():
            async with Gateway(2, worker=_CONFIG) as gw:
                fh = await gw.freeze(BurstSpec(width=4))
                oks = [gw.submit(fh) for _ in range(5)]
                await asyncio.gather(*(s.future for s in oks))
                # a long multi-pass run leaves passes to cancel
                victim = gw.submit(
                    gw.instance(BurstSpec(width=3, sleep_s=0.2)),
                    repeats=10,
                )
                await asyncio.sleep(0.05)
                assert gw.cancel(victim) is True
                res = await asyncio.wait_for(victim.future, 30.0)
                assert res.outcome == "cancelled"
                # cancelling a settled submission reports False
                assert gw.cancel(oks[0]) is False

                snap = gw.snapshot()
                assert snap["gateway.submits"] == 6
                assert snap["gateway.settled"] == 6
                assert snap["gateway.cancels"] == 1
                assert snap["gateway.worker_deaths"] == 0
                assert snap["gateway.respawns"] == 0
                assert snap["gateway.replans"] == 0
                assert snap["gateway.workers_alive"] == 2
                assert snap["gateway.inflight"] == 0
                hist = snap["gateway.round_trip_seconds"]
                assert hist["count"] == 6
                assert hist["sum"] > 0

        _run(main())


class TestGatewaySoakSmoke:
    def test_tiny_sweep_reconciles(self):
        from repro.gateway import run_gateway_soak

        report = run_gateway_soak(
            3, workers=2, seed=7, kill_every=3, throughput_repeats=20
        )
        assert report.ok, report.violations
        assert report.num_scenarios == 3
        totals = report.totals
        assert totals["kills"] == 1
        assert totals["failed"] == 0
        settled = sum(
            totals[k]
            for k in (
                "completed",
                "rejected",
                "shed",
                "deadline_exceeded",
                "cancelled",
                "failed",
                "worker_lost",
            )
        )
        assert settled == totals["submitted"]
        assert report.throughput["errors"] == 0
        doc = report.to_dict()
        assert doc["schema"] == "repro.gateway-soak-report/1"
        assert doc["cpu_count"] == os.cpu_count()
