"""Tests for the OpenCL-flavoured facade (portability claim)."""

import numpy as np
import pytest

from repro.errors import DeviceError, KernelError
from repro.gpu.opencl import CommandQueue, Context, release, wait_for_events


@pytest.fixture
def ctx(gpu2):
    return Context(gpu2, 0)


class TestBuffers:
    def test_create_and_release(self, ctx):
        buf = ctx.create_buffer(256, dtype=np.float32)
        assert buf.size == 64
        release(buf)
        assert buf.freed

    def test_write_read_roundtrip(self, ctx):
        q = ctx.create_command_queue()
        src = np.arange(32, dtype=np.float64)
        buf = ctx.create_buffer(src.nbytes, dtype=src.dtype)
        q.enqueue_write_buffer(buf, src, blocking=True)
        out = np.zeros_like(src)
        q.enqueue_read_buffer(buf, out, blocking=True)
        assert np.array_equal(out, src)

    def test_nonblocking_returns_events(self, ctx):
        q = ctx.create_command_queue()
        src = np.ones(8)
        buf = ctx.create_buffer(src.nbytes, dtype=src.dtype)
        ev = q.enqueue_write_buffer(buf, src)
        wait_for_events([ev])
        assert ev.query()


class TestKernels:
    def test_ndrange_kernel(self, ctx):
        q = ctx.create_command_queue()
        n = 1000
        data = np.zeros(n)
        buf = ctx.create_buffer(data.nbytes, dtype=data.dtype)
        q.enqueue_write_buffer(buf, data)

        def fill(ctx, n, out):  # noqa: A002 - 'ctx' selects kernel-context mode
            i = ctx.flat_indices()
            i = i[i < n]
            out[i] = 7.0

        ev = q.enqueue_nd_range_kernel(fill, n, n, buf, local_size=128)
        out = np.zeros(n)
        q.enqueue_read_buffer(buf, out, blocking=True)
        assert set(out) == {7.0}
        assert ev.query()

    def test_wait_list_orders_across_queues(self, ctx):
        q1 = ctx.create_command_queue("q1")
        q2 = ctx.create_command_queue("q2")
        data = np.zeros(16)
        buf = ctx.create_buffer(data.nbytes, dtype=data.dtype)
        ev = q1.enqueue_write_buffer(buf, np.full(16, 3.0))

        def double(arr):
            arr *= 2

        q2.enqueue_nd_range_kernel(double, 16, buf, wait_for=[ev])
        out = np.zeros(16)
        q2.enqueue_read_buffer(buf, out, blocking=True)
        assert set(out) == {6.0}

    def test_rejects_bad_global_size(self, ctx):
        q = ctx.create_command_queue()
        with pytest.raises(KernelError):
            q.enqueue_nd_range_kernel(lambda: None, 0)

    def test_finish_drains(self, ctx):
        q = ctx.create_command_queue()
        hits = []
        q.enqueue_nd_range_kernel(lambda: hits.append(1), 1)
        q.finish()
        assert hits == [1]

    def test_marker_and_flush(self, ctx):
        q = ctx.create_command_queue()
        q.flush()
        ev = q.enqueue_marker()
        ev.synchronize()


class TestRelease:
    def test_release_queue(self, ctx):
        q = ctx.create_command_queue()
        release(q)
        with pytest.raises(DeviceError):
            q.enqueue_marker()

    def test_release_unknown_rejected(self, ctx):
        with pytest.raises(DeviceError):
            release(42)

    def test_release_context_noop(self, ctx, gpu2):
        release(ctx)
        release(gpu2)


class TestSameSubstrate:
    def test_cuda_and_opencl_share_memory(self, gpu2):
        """The portability claim: both facades drive one substrate —
        a buffer written through the OpenCL face reads back through
        the CUDA-style face."""
        ctx = Context(gpu2, 0)
        q = ctx.create_command_queue()
        buf = ctx.create_buffer(64, dtype=np.float64)
        q.enqueue_write_buffer(buf, np.full(8, 5.0), blocking=True)
        # CUDA-style read of the same buffer
        s = gpu2.device(0).create_stream()
        out = np.zeros(8)
        gpu2.memcpy_d2h_async(out, buf, s)
        s.synchronize()
        assert set(out) == {5.0}
