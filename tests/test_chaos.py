"""Chaos harness: seeded fault-scenario sweeps (docs/resilience.md)."""

import json

from repro.cli import main
from repro.resilience.chaos import (
    CHAOS_REPORT_SCHEMA,
    KINDS,
    run_chaos,
    run_scenario,
)


class TestScenarios:
    def test_kinds_cycle_over_index(self):
        for i in (0, 3, 7):
            out = run_scenario(i, seed=0)
            assert out.kind == KINDS[i % len(KINDS)]
            assert out.ok, out.violations

    def test_deterministic_parameters(self):
        a = run_scenario(2, seed=0)
        b = run_scenario(2, seed=0)
        assert (a.seed, a.kind, a.workers, a.gpus) == (
            b.seed,
            b.kind,
            b.workers,
            b.gpus,
        )
        assert a.num_records == b.num_records
        c = run_scenario(2, seed=1)
        assert (a.seed, a.workers) != (c.seed, c.workers) or a.gpus != c.gpus

    def test_expected_failure_scenario(self):
        # degrade scenarios alternate fallbacks; index 9 (second degrade)
        # drops them and must fail with a structured error
        out = run_scenario(9, seed=0)
        assert out.kind == "degrade"
        assert out.expect_failure
        assert not out.completed
        assert out.ok, out.violations
        assert "TaskFailedError" in out.error


class TestSweep:
    def test_smoke_sweep(self):
        lines = []
        report = run_chaos(10, seed=0, log=lines.append)
        assert report.ok, report.violations
        assert report.num_scenarios == 10
        assert len(lines) == 10
        assert report.num_completed + report.num_failed_as_expected == 10
        # the sweep exercised the resilience machinery, not just clean runs
        assert sum(report.counters.values()) > 0

    def test_report_serialization(self):
        report = run_chaos(3, seed=0)
        d = report.to_dict()
        assert d["schema"] == CHAOS_REPORT_SCHEMA
        assert d["num_scenarios"] == 3
        assert len(d["scenarios"]) == 3
        for s in d["scenarios"]:
            assert set(s) >= {
                "index",
                "kind",
                "seed",
                "completed",
                "violations",
                "counters",
            }
        # round-trips through JSON
        assert json.loads(report.to_json())["ok"] == report.ok


class TestCli:
    def test_chaos_smoke_exit_code(self, capsys):
        assert main(["chaos", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "chaos: OK" in out

    def test_chaos_json_artifact(self, tmp_path, capsys):
        path = tmp_path / "chaos.json"
        assert main(["chaos", "--smoke", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["schema"] == CHAOS_REPORT_SCHEMA
        assert data["ok"] is True
        assert data["num_scenarios"] == 10
