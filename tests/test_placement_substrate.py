"""Tests for the placement substrate: DB, HPWL, MIS, partition, matching."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.placement import (
    generate_placement,
    hpwl,
    match_window,
    mis_reference,
    net_hpwl,
    partition_windows,
    verify_independent,
)
from repro.apps.placement.matching import apply_matches, window_cost_matrix
from repro.apps.placement.mis import IN_SET, mis_rounds, random_priorities
from repro.apps.placement.wirelength import cell_cost_at


class TestDb:
    def test_legal_by_construction(self):
        generate_placement(200, seed=0).check_legal()

    def test_deterministic(self):
        a = generate_placement(100, seed=4)
        b = generate_placement(100, seed=4)
        assert np.array_equal(a.x, b.x) and np.array_equal(a.net_cells, b.net_cells)

    def test_transpose_consistency(self):
        db = generate_placement(80, seed=1)
        for cell in range(0, db.num_cells, 7):
            for net in db.nets_of(cell):
                assert cell in db.cells_of(int(net))

    def test_conflict_graph_symmetric(self):
        db = generate_placement(60, seed=2)
        ptr, idx = db.neighbors_csr()
        for v in range(db.num_cells):
            for u in idx[ptr[v] : ptr[v + 1]]:
                row = idx[ptr[u] : ptr[u + 1]]
                assert v in row

    def test_conflict_graph_no_self_loops(self):
        db = generate_placement(60, seed=2)
        ptr, idx = db.neighbors_csr()
        for v in range(db.num_cells):
            assert v not in idx[ptr[v] : ptr[v + 1]]

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            generate_placement(1)

    def test_copy_isolates_positions(self):
        db = generate_placement(50, seed=0)
        c = db.copy()
        c.x[0] += 1
        assert db.x[0] != c.x[0]


class TestHpwl:
    def test_two_pin_net_is_manhattan_bbox(self):
        db = generate_placement(30, seed=3)
        per_net = net_hpwl(db.net_ptr, db.net_cells, db.x, db.y)
        for net in range(db.num_nets):
            cells = db.cells_of(net)
            expected = (
                db.x[cells].max() - db.x[cells].min() + db.y[cells].max() - db.y[cells].min()
            )
            assert per_net[net] == pytest.approx(float(expected))

    def test_total_is_sum(self):
        db = generate_placement(30, seed=3)
        assert hpwl(db) == pytest.approx(
            float(net_hpwl(db.net_ptr, db.net_cells, db.x, db.y).sum())
        )

    def test_translation_invariance(self):
        db = generate_placement(40, seed=5)
        assert hpwl(db, db.x + 7, db.y + 3) == pytest.approx(hpwl(db))

    def test_cell_cost_at_current_matches_net_sum(self):
        db = generate_placement(40, seed=6)
        cell = 0
        cost = cell_cost_at(db, cell, float(db.x[cell]), float(db.y[cell]), db.x, db.y)
        direct = sum(
            net_hpwl(db.net_ptr, db.net_cells, db.x, db.y)[int(n)] for n in db.nets_of(cell)
        )
        assert cost == pytest.approx(direct)


class TestMis:
    def small_graph(self, n=60, seed=0):
        db = generate_placement(n, seed=seed)
        return db.neighbors_csr()

    def test_parallel_equals_sequential_greedy(self):
        """The Blelloch property: random-priority parallel MIS equals
        the greedy sequential MIS on the same priorities."""
        ptr, idx = self.small_graph()
        rng = np.random.default_rng(0)
        for trial in range(5):
            pri = random_priorities(ptr.size - 1, rng)
            state = np.zeros(ptr.size - 1, dtype=np.int64)
            mis_rounds(ptr, idx, pri, state)
            ref = mis_reference(ptr, idx, pri)
            assert np.array_equal(state, ref)

    def test_result_is_maximal_independent(self):
        ptr, idx = self.small_graph(80, 3)
        pri = random_priorities(ptr.size - 1, np.random.default_rng(1))
        state = np.zeros(ptr.size - 1, dtype=np.int64)
        mis_rounds(ptr, idx, pri, state)
        assert verify_independent(ptr, idx, state)

    def test_isolated_vertices_always_in_set(self):
        ptr = np.asarray([0, 0, 0, 0])
        idx = np.asarray([], dtype=np.int64)
        pri = np.asarray([2.0, 0.0, 1.0])
        state = np.zeros(3, dtype=np.int64)
        mis_rounds(ptr, idx, pri, state)
        assert np.all(state == IN_SET)

    def test_clique_selects_exactly_one(self):
        # triangle
        ptr = np.asarray([0, 2, 4, 6])
        idx = np.asarray([1, 2, 0, 2, 0, 1])
        pri = np.asarray([0.5, 2.0, 1.0])
        state = np.zeros(3, dtype=np.int64)
        mis_rounds(ptr, idx, pri, state)
        assert list(state) == [2, 1, 2]  # only the max-priority vertex

    def test_converges_in_few_rounds(self):
        ptr, idx = self.small_graph(200, 7)
        pri = random_priorities(ptr.size - 1, np.random.default_rng(2))
        state = np.zeros(ptr.size - 1, dtype=np.int64)
        rounds = mis_rounds(ptr, idx, pri, state)
        assert rounds <= 30  # O(log n) expected

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(4, 60), seed=st.integers(0, 100))
    def test_property_parallel_equals_sequential(self, n, seed):
        db = generate_placement(n, seed=seed)
        ptr, idx = db.neighbors_csr()
        pri = random_priorities(n, np.random.default_rng(seed))
        state = np.zeros(n, dtype=np.int64)
        mis_rounds(ptr, idx, pri, state)
        assert np.array_equal(state, mis_reference(ptr, idx, pri))
        assert verify_independent(ptr, idx, state)


class TestPartition:
    def test_windows_cover_cells_once(self):
        cells = np.arange(17)
        x = np.arange(17)
        y = np.zeros(17, dtype=np.int64)
        windows = partition_windows(cells, x, y, 5)
        flat = np.concatenate(windows)
        assert sorted(flat.tolist()) == list(range(17))
        assert [len(w) for w in windows] == [5, 5, 5, 2]

    def test_spatial_ordering(self):
        cells = np.asarray([0, 1, 2, 3])
        x = np.asarray([9, 1, 8, 2])
        y = np.asarray([0, 0, 0, 0])
        w = partition_windows(cells, x, y, 2)
        assert w[0].tolist() == [1, 3]  # leftmost pair first

    def test_empty(self):
        assert partition_windows(np.asarray([], dtype=int), np.asarray([]), np.asarray([]), 4) == []

    def test_bad_window_size(self):
        with pytest.raises(ValueError):
            partition_windows(np.asarray([1]), np.asarray([0]), np.asarray([0]), 0)


class TestMatching:
    def test_identity_is_feasible_so_never_worse(self):
        db = generate_placement(60, seed=8)
        ptr, idx = db.neighbors_csr()
        pri = random_priorities(db.num_cells, np.random.default_rng(0))
        state = mis_reference(ptr, idx, pri)
        mis_cells = np.nonzero(state == IN_SET)[0]
        windows = partition_windows(mis_cells, db.x, db.y, 6)
        x, y = db.x.copy(), db.y.copy()
        before = hpwl(db, x, y)
        results = [match_window(db, w, x, y) for w in windows]
        gained = apply_matches(x, y, windows, results)
        after = hpwl(db, x, y)
        assert gained >= -1e-9
        assert after <= before + 1e-9

    def test_improvement_accounting_exact(self):
        """Because moved cells are pairwise net-disjoint, the claimed
        per-window improvements sum exactly to the global HPWL delta."""
        db = generate_placement(80, seed=9)
        ptr, idx = db.neighbors_csr()
        pri = random_priorities(db.num_cells, np.random.default_rng(3))
        state = mis_reference(ptr, idx, pri)
        mis_cells = np.nonzero(state == IN_SET)[0]
        windows = partition_windows(mis_cells, db.x, db.y, 5)
        x, y = db.x.copy(), db.y.copy()
        before = hpwl(db, x, y)
        results = [match_window(db, w, x, y) for w in windows]
        gained = apply_matches(x, y, windows, results)
        assert before - hpwl(db, x, y) == pytest.approx(gained)

    def test_positions_stay_a_permutation(self):
        db = generate_placement(50, seed=10)
        ptr, idx = db.neighbors_csr()
        pri = random_priorities(db.num_cells, np.random.default_rng(1))
        state = mis_reference(ptr, idx, pri)
        mis_cells = np.nonzero(state == IN_SET)[0]
        windows = partition_windows(mis_cells, db.x, db.y, 4)
        x, y = db.x.copy(), db.y.copy()
        sites_before = sorted(zip(x.tolist(), y.tolist()))
        results = [match_window(db, w, x, y) for w in windows]
        apply_matches(x, y, windows, results)
        assert sorted(zip(x.tolist(), y.tolist())) == sites_before

    def test_single_cell_window_noop(self):
        db = generate_placement(30, seed=0)
        w = np.asarray([5])
        nx, ny, imp = match_window(db, w, db.x, db.y)
        assert imp == 0.0
        assert nx[0] == db.x[5] and ny[0] == db.y[5]

    def test_empty_window(self):
        db = generate_placement(30, seed=0)
        nx, ny, imp = match_window(db, np.asarray([], dtype=int), db.x, db.y)
        assert imp == 0.0 and nx.size == 0

    def test_cost_matrix_diagonal_is_current_cost(self):
        db = generate_placement(40, seed=2)
        window = np.asarray([0, 1])
        cost = window_cost_matrix(db, window, db.x, db.y)
        for i, cell in enumerate(window):
            assert cost[i, i] == pytest.approx(
                cell_cost_at(db, int(cell), float(db.x[cell]), float(db.y[cell]), db.x, db.y)
            )


class TestMatchingOptimality:
    """match_window must find the true optimum of its cost model —
    verified against brute-force permutation search on small windows."""

    def brute_force(self, db, window, x, y):
        import itertools

        from repro.apps.placement.wirelength import cell_cost_at

        slots = [(float(x[c]), float(y[c])) for c in window]
        best_cost, best_perm = float("inf"), None
        for perm in itertools.permutations(range(len(window))):
            cost = sum(
                cell_cost_at(db, int(window[i]), *slots[j], x, y)
                for i, j in enumerate(perm)
            )
            if cost < best_cost:
                best_cost, best_perm = cost, perm
        return best_cost, best_perm

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_brute_force(self, seed):
        db = generate_placement(40, seed=seed)
        ptr, idx = db.neighbors_csr()
        pri = random_priorities(db.num_cells, np.random.default_rng(seed))
        state = mis_reference(ptr, idx, pri)
        mis_cells = np.nonzero(state == IN_SET)[0][:6]  # one small window
        if mis_cells.size < 2:
            pytest.skip("degenerate seed")
        x, y = db.x.copy(), db.y.copy()
        nx_, ny_, imp = match_window(db, mis_cells, x, y)
        matched_cost = sum(
            # cost of each cell at its matched slot
            __import__("repro.apps.placement.wirelength", fromlist=["cell_cost_at"]).cell_cost_at(
                db, int(c), float(nx_[i]), float(ny_[i]), x, y
            )
            for i, c in enumerate(mis_cells)
        )
        best_cost, _ = self.brute_force(db, mis_cells, x, y)
        assert matched_cost == pytest.approx(best_cost)

    def test_improvement_equals_identity_minus_optimal(self):
        db = generate_placement(30, seed=5)
        window = np.asarray([0, 1, 2, 3])
        x, y = db.x.copy(), db.y.copy()
        _, _, imp = match_window(db, window, x, y)
        from repro.apps.placement.matching import window_cost_matrix

        cost = window_cost_matrix(db, window, x, y)
        best, _ = self.brute_force(db, window, x, y)
        assert imp == pytest.approx(float(np.trace(cost)) - best)
