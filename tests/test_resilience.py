"""Fault-tolerant execution: retry/timeout policies, device-fault
injection, and graceful GPU-to-host degradation (docs/resilience.md)."""

import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.check import generate_graph, validate_schedule
from repro.core import Executor, Heteroflow, TraceObserver
from repro.errors import (
    DeviceFailedError,
    ExecutorError,
    GraphError,
    KernelError,
    TaskFailedError,
    TaskTimeoutError,
)
from repro.resilience import (
    FaultProfile,
    FaultState,
    ResiliencePolicy,
    RetryPolicy,
    normalize_policy,
)

_T = 60.0  # generous future timeout: a hang is the failure being tested


# ---------------------------------------------------------------------
# policy objects
# ---------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ExecutorError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ExecutorError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ExecutorError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ExecutorError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ExecutorError):
            ResiliencePolicy(timeout=0)

    def test_cancellation_never_retryable(self):
        p = RetryPolicy(max_attempts=5)
        assert not p.retryable(CancelledError())
        assert p.retryable(RuntimeError("x"))
        narrow = RetryPolicy(retry_on=(KernelError,))
        assert narrow.retryable(KernelError("k"))
        assert not narrow.retryable(RuntimeError("x"))

    def test_backoff_and_cap(self):
        p = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=0.3, jitter=0.0)
        assert p.delay_for(1) == pytest.approx(0.1)
        assert p.delay_for(2) == pytest.approx(0.2)
        assert p.delay_for(3) == pytest.approx(0.3)  # capped
        assert p.delay_for(9) == pytest.approx(0.3)

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(base_delay=0.1, jitter=0.5, seed=42)
        q = RetryPolicy(base_delay=0.1, jitter=0.5, seed=42)
        for attempt in (1, 2, 3):
            d = p.delay_for(attempt, key=7)
            assert d == q.delay_for(attempt, key=7)  # same seed, same delay
            base = min(0.1 * 2.0 ** (attempt - 1), p.max_delay)
            assert base * 0.5 <= d <= base * 1.5
        # different task keys de-synchronize the jitter stream
        assert p.delay_for(1, key=1) != p.delay_for(1, key=2)

    def test_zero_base_delay_short_circuits(self):
        assert RetryPolicy(base_delay=0.0, jitter=0.9).delay_for(5) == 0.0

    def test_delay_info_reports_saturation(self):
        p = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=0.3, jitter=0.0)
        below = p.delay_info(1)
        assert below.seconds == pytest.approx(0.1)
        assert not below.saturated
        at_cap = p.delay_info(3)  # raw 0.4 > cap 0.3
        assert at_cap.seconds == pytest.approx(0.3)
        assert at_cap.saturated
        assert at_cap.max_delay == pytest.approx(0.3)
        assert at_cap.as_dict() == {
            "retry_delay_s": pytest.approx(0.3),
            "backoff_saturated": True,
            "max_delay_s": pytest.approx(0.3),
        }
        # zero base delay never saturates (no backoff in play)
        assert not RetryPolicy(base_delay=0.0).delay_info(9).saturated

    def test_normalize(self):
        assert normalize_policy(None) == ResiliencePolicy()
        rp = RetryPolicy(max_attempts=2)
        assert normalize_policy(rp) == ResiliencePolicy(retry=rp)
        rs = ResiliencePolicy(retry=rp, timeout=1.0)
        assert normalize_policy(rs) is rs
        with pytest.raises(ExecutorError):
            normalize_policy("nope")


class TestTaskApi:
    def test_retry_accepts_policy_or_kwargs(self):
        hf = Heteroflow()
        t = hf.host(lambda: None)
        t.retry(max_attempts=5, base_delay=0.01)
        assert t.node.retry_policy.max_attempts == 5
        p = RetryPolicy(max_attempts=2)
        t.retry(p)
        assert t.node.retry_policy is p
        with pytest.raises(GraphError):
            t.retry(p, max_attempts=9)
        with pytest.raises(GraphError):
            t.retry("nope")

    def test_timeout_validation(self):
        hf = Heteroflow()
        t = hf.host(lambda: None)
        t.timeout(0.5)
        assert t.node.timeout_s == 0.5
        with pytest.raises(GraphError):
            t.timeout(0)

    def test_host_fallback_requires_bound_kernel(self):
        hf = Heteroflow()
        p = hf.pull(np.zeros(4))
        k = hf.kernel(lambda x: None, p)
        k.host_fallback()
        assert k.node.fallback_fn is k.node.kernel_fn
        with pytest.raises(GraphError):
            k.host_fallback("not callable")


# ---------------------------------------------------------------------
# fault profiles / states
# ---------------------------------------------------------------------
class _FakeDevice:
    ordinal = 0

    def __init__(self):
        self.failed = False

    def fail(self):
        self.failed = True


class TestFaultProfile:
    def test_validation(self):
        with pytest.raises(ExecutorError):
            FaultProfile(alloc_failures=-1)
        with pytest.raises(ExecutorError):
            FaultProfile(kernel_fault_at=0)
        with pytest.raises(ExecutorError):
            FaultProfile(kernel_fault_rate=1.5)
        assert FaultProfile().empty
        assert not FaultProfile(die_at_op=1).empty

    def test_alloc_failures_counted(self):
        st = FaultState(FaultProfile(alloc_failures=2), seed=0)
        dev = _FakeDevice()
        from repro.errors import AllocationError

        for _ in range(2):
            with pytest.raises(AllocationError, match="injected"):
                st.on_alloc(dev)
        st.on_alloc(dev)  # third one succeeds
        assert st.stats()["injected_alloc_faults"] == 2

    def test_kernel_fault_at_fires_once(self):
        st = FaultState(FaultProfile(kernel_fault_at=2), seed=0)
        dev = _FakeDevice()
        st.on_kernel(dev)
        with pytest.raises(KernelError, match="injected"):
            st.on_kernel(dev)
        st.on_kernel(dev)

    def test_die_at_op_kills_device(self):
        st = FaultState(FaultProfile(die_at_op=1), seed=0)
        dev = _FakeDevice()
        with pytest.raises(DeviceFailedError):
            st.on_op(dev)
        assert dev.failed

    def test_device_configure_and_clear(self):
        with Executor(1, 1) as ex:
            dev = ex.gpu_runtime.device(0)
            dev.configure_faults(FaultProfile(kernel_fault_at=1), seed=3)
            assert dev.fault_state is not None
            with pytest.raises(KernelError):
                dev.pre_kernel()
            dev.clear_faults()
            assert dev.fault_state is None
            dev.pre_kernel()  # no-op now

    def test_dead_device_rejects_everything(self):
        with Executor(1, 1) as ex:
            dev = ex.gpu_runtime.device(0)
            dev.fail()
            assert not dev.alive
            for hook in (dev.pre_op, dev.pre_kernel, dev.pre_alloc):
                with pytest.raises(DeviceFailedError):
                    hook()


# ---------------------------------------------------------------------
# retry loop on the real executor
# ---------------------------------------------------------------------
class TestRetries:
    def _flaky(self, failures):
        calls = []

        def fn():
            calls.append(1)
            if len(calls) <= failures:
                raise RuntimeError(f"flake {len(calls)}")

        return fn, calls

    def test_exact_once_after_retries(self):
        """S3: fail N-1 times, succeed on N — exactly one committed
        trace record, validated strictly."""
        hf = Heteroflow("retry")
        fn, calls = self._flaky(2)
        t = hf.host(fn, name="flaky")
        t.retry(max_attempts=3, base_delay=0.0)
        done = hf.host(lambda: None, name="after")
        t.precede(done)
        obs = TraceObserver()
        with Executor(2, 0, observers=[obs]) as ex:
            ex.run(hf).result(timeout=_T)
            snap = ex.metrics.snapshot()
        assert len(calls) == 3
        validate_schedule(hf, obs.records, passes=1, num_gpus=0).raise_if_failed()
        assert sum(1 for r in obs.records if r.nid == t.node.nid) == 1
        assert snap["resilience.retries"] == 2
        assert snap["resilience.exhausted"] == 0

    def test_exhaustion_wraps_with_history(self):
        hf = Heteroflow()
        fn, calls = self._flaky(99)
        hf.host(fn, name="doomed").retry(max_attempts=3, base_delay=0.0)
        with Executor(1, 0) as ex:
            fut = ex.run(hf)
            with pytest.raises(TaskFailedError) as ei:
                fut.result(timeout=_T)
            snap = ex.metrics.snapshot()
        err = ei.value
        assert len(calls) == 3
        assert err.task_name == "doomed"
        assert len(err.attempts) == 3
        assert all(isinstance(a, RuntimeError) for a in err.attempts)
        assert isinstance(err.__cause__, RuntimeError)
        assert snap["resilience.exhausted"] == 1

    def test_attempt_log_records_backoff_saturation(self):
        """The structured attempt history on TaskFailedError shows the
        delay slept per retried attempt and flags the ones where the
        exponential had hit the policy's max_delay cap."""
        hf = Heteroflow()
        fn, _calls = self._flaky(99)
        hf.host(fn, name="capped").retry(
            max_attempts=3, base_delay=0.01, backoff=4.0,
            max_delay=0.02, jitter=0.0,
        )
        with Executor(1, 0) as ex:
            with pytest.raises(TaskFailedError) as ei:
                ex.run(hf).result(timeout=_T)
        err = ei.value
        assert len(err.attempt_log) == 3
        first, second, last = err.attempt_log
        assert first["error"] == "RuntimeError"
        assert first["retry_delay_s"] == pytest.approx(0.01)
        assert not first["backoff_saturated"]
        # attempt 2's raw backoff (0.04) exceeded the 0.02 cap
        assert second["retry_delay_s"] == pytest.approx(0.02)
        assert second["backoff_saturated"]
        assert second["max_delay_s"] == pytest.approx(0.02)
        # the terminal attempt was not retried: no delay fields
        assert "retry_delay_s" not in last
        assert "backoff saturated on 1 attempt(s)" in str(err)

    def test_no_policy_keeps_raw_exception(self):
        """Backward compat: without a policy the original error type
        reaches the future unwrapped."""
        hf = Heteroflow()
        hf.host(self._flaky(99)[0])
        with Executor(1, 0) as ex:
            with pytest.raises(RuntimeError, match="flake"):
                ex.run(hf).result(timeout=_T)

    def test_run_level_policy_and_delayed_retry(self):
        hf = Heteroflow()
        fn, calls = self._flaky(1)
        hf.host(fn)
        with Executor(1, 0) as ex:
            ex.run(
                hf, policy=RetryPolicy(max_attempts=2, base_delay=0.02)
            ).result(timeout=_T)
        assert len(calls) == 2

    def test_per_task_policy_overrides_run_level(self):
        hf = Heteroflow()
        fn, calls = self._flaky(99)
        hf.host(fn).retry(max_attempts=1)  # task says: never retry
        with Executor(1, 0) as ex:
            with pytest.raises(TaskFailedError):
                ex.run(
                    hf, policy=RetryPolicy(max_attempts=10, base_delay=0.0)
                ).result(timeout=_T)
        assert len(calls) == 1

    def test_retry_observer_hook(self):
        seen = []

        class Obs(TraceObserver):
            def on_task_retry(self, worker_id, node, attempt, error):
                seen.append((node.name, attempt, type(error).__name__))

        hf = Heteroflow()
        fn, _ = self._flaky(1)
        hf.host(fn, name="f").retry(max_attempts=2, base_delay=0.0)
        with Executor(1, 0, observers=[Obs()]) as ex:
            ex.run(hf).result(timeout=_T)
        assert seen == [("f", 1, "RuntimeError")]


class TestTimeouts:
    def test_host_task_timeout(self):
        hf = Heteroflow()
        hf.host(lambda: time.sleep(0.3), name="slow").timeout(0.05)
        with Executor(1, 0) as ex:
            fut = ex.run(hf)
            with pytest.raises(TaskFailedError) as ei:
                fut.result(timeout=_T)
            snap = ex.metrics.snapshot()
        assert isinstance(ei.value.__cause__, TaskTimeoutError)
        assert snap["resilience.timeouts"] >= 1

    def test_stalled_stream_times_out_and_recovers(self):
        """An injected stream stall trips the deadline; the stream is
        quarantined and the retried task completes on a fresh one."""
        gen = generate_graph(2, num_gpus=1)
        obs = TraceObserver()
        ex = Executor(2, 1, observers=[obs])
        try:
            ex.gpu_runtime.device(0).configure_faults(
                FaultProfile(stall_at_op=1), seed=0
            )
            policy = ResiliencePolicy(
                retry=RetryPolicy(max_attempts=4, base_delay=0.0),
                timeout=0.3,
            )
            ex.run(gen.graph, policy=policy).result(timeout=_T)
            snap = ex.metrics.snapshot()
            validate_schedule(
                gen.graph, obs.records, passes=1, num_gpus=1
            ).raise_if_failed()
            assert gen.verify(passes=1) == []
        finally:
            ex.shutdown()
        assert snap["resilience.timeouts"] >= 1
        assert snap["resilience.streams_quarantined"] >= 1


# ---------------------------------------------------------------------
# device death: migration and degradation
# ---------------------------------------------------------------------
def _two_chain_graph():
    """Two independent pull->kernel->push chains (two placement groups,
    so two GPUs each get one)."""
    hf = Heteroflow("chains")
    arrays = []
    for i in range(2):
        a = np.arange(32, dtype=np.float64) + i

        def kern(x):
            x *= 2.0
            x += 1.0

        p = hf.pull(a, name=f"p{i}")
        k = hf.kernel(kern, p, name=f"k{i}")
        k.host_fallback()
        s = hf.push(p, a, name=f"s{i}")
        p.precede(k)
        k.precede(s)
        arrays.append(a)
    return hf, arrays


class TestDeviceDeath:
    def test_migrates_to_surviving_gpu(self):
        hf, arrays = _two_chain_graph()
        expected = [np.arange(32, dtype=np.float64) * 2.0 + 1.0,
                    (np.arange(32, dtype=np.float64) + 1) * 2.0 + 1.0]
        obs = TraceObserver()
        ex = Executor(2, 2, observers=[obs])
        try:
            ex.gpu_runtime.device(0).configure_faults(
                FaultProfile(die_at_op=1), seed=0
            )
            ex.run(hf).result(timeout=_T)
            snap = ex.metrics.snapshot()
            assert ex.alive_gpus == [1]
        finally:
            ex.shutdown()
        for got, want in zip(arrays, expected):
            np.testing.assert_array_equal(got, want)
        validate_schedule(hf, obs.records, passes=1, num_gpus=2).raise_if_failed()
        assert snap["resilience.device_failures"] == 1
        # every GPU record left on the trace ran on the survivor
        assert {r.device for r in obs.records if r.device is not None} == {1}

    def test_degrades_to_host_fallback(self):
        hf, arrays = _two_chain_graph()
        expected = [np.arange(32, dtype=np.float64) * 2.0 + 1.0,
                    (np.arange(32, dtype=np.float64) + 1) * 2.0 + 1.0]
        obs = TraceObserver()
        ex = Executor(2, 1, observers=[obs])
        try:
            ex.gpu_runtime.device(0).configure_faults(
                FaultProfile(die_at_op=1), seed=0
            )
            fut = ex.run(hf, metrics=True)
            fut.result(timeout=_T)
            snap = ex.metrics.snapshot()
        finally:
            ex.shutdown()
        for got, want in zip(arrays, expected):
            np.testing.assert_array_equal(got, want)
        validate_schedule(hf, obs.records, passes=1, num_gpus=1).raise_if_failed()
        assert snap["resilience.degraded_topologies"] == 1
        assert snap["resilience.fallback_tasks"] >= 1
        kinds = {e["kind"] for e in fut.run_report.events}
        assert "device_failed" in kinds
        assert "degraded" in kinds
        # fallback kernels never double-run alongside a GPU attempt
        for i in range(2):
            recs = [r for r in obs.records if r.name == f"k{i}"]
            assert len(recs) == 1

    def test_no_fallback_means_structured_failure(self):
        hf = Heteroflow()
        a = np.zeros(8)
        p = hf.pull(a, name="p")
        k = hf.kernel(lambda x: None, p, name="k")  # no host_fallback
        p.precede(k)
        ex = Executor(1, 1)
        try:
            ex.gpu_runtime.device(0).configure_faults(
                FaultProfile(die_at_op=1), seed=0
            )
            with pytest.raises(TaskFailedError) as ei:
                ex.run(hf).result(timeout=_T)
        finally:
            ex.shutdown()
        assert any(isinstance(a, DeviceFailedError) for a in ei.value.attempts)

    def test_degraded_from_start(self):
        """A graph submitted after every GPU already died runs entirely
        host-side via the degraded path."""
        hf, arrays = _two_chain_graph()
        ex = Executor(1, 1)
        try:
            # the device dies behind the executor's back; the first GPU
            # op discovers it and recovery degrades the topology
            ex.gpu_runtime.device(0).fail()
            ex.run(hf).result(timeout=_T)
            snap = ex.metrics.snapshot()
            assert ex.alive_gpus == []
            assert snap["resilience.degraded_topologies"] >= 1
        finally:
            ex.shutdown()

    def test_alloc_faults_in_buddy_pool(self):
        gen = generate_graph(4, num_gpus=1)
        obs = TraceObserver()
        ex = Executor(2, 1, observers=[obs])
        try:
            ex.gpu_runtime.device(0).configure_faults(
                FaultProfile(alloc_failures=1), seed=0
            )
            ex.run(
                gen.graph, policy=RetryPolicy(max_attempts=3, base_delay=0.0)
            ).result(timeout=_T)
            stats = ex.gpu_runtime.device(0).fault_state.stats()
        finally:
            ex.shutdown()
        assert stats["injected_alloc_faults"] == 1
        validate_schedule(
            gen.graph, obs.records, passes=1, num_gpus=1
        ).raise_if_failed()
        assert gen.verify(passes=1) == []


# ---------------------------------------------------------------------
# cancellation (S1/S2)
# ---------------------------------------------------------------------
class TestCancellation:
    def test_queued_topology_cancels_immediately(self):
        """S2: a submission still waiting in its graph FIFO resolves
        with CancelledError without running anything."""
        gate = threading.Event()
        hf = Heteroflow()
        hf.host(gate.wait, name="gate")
        with Executor(2, 0) as ex:
            f1 = ex.run(hf)
            f2 = ex.run(hf)  # queued behind f1 on the same graph
            t0 = time.perf_counter()
            assert ex.cancel(f2)
            with pytest.raises(CancelledError):
                f2.result(timeout=5)
            assert time.perf_counter() - t0 < 1.0  # did not wait for f1
            gate.set()
            assert f1.result(timeout=_T) == 1

    def test_inflight_cancel_stops_retry_loop(self):
        """S2: cancelling mid-retries wins over further attempts."""
        started = threading.Event()
        calls = []

        def flaky():
            calls.append(1)
            started.set()
            raise RuntimeError("flake")

        hf = Heteroflow()
        hf.host(flaky).retry(max_attempts=10_000, base_delay=0.05)
        with Executor(1, 0) as ex:
            fut = ex.run(hf)
            assert started.wait(timeout=_T)
            ex.cancel(fut)
            with pytest.raises(CancelledError):
                fut.result(timeout=_T)
        assert len(calls) < 10_000

    def test_profiled_future_cleanup_idempotent(self):
        """S1: cancelling a queued *profiled* submission exercises the
        double-cleanup path (cancel pops the futures, then the done
        callback runs) without errors or leaks."""
        gate = threading.Event()
        hf = Heteroflow()
        hf.host(gate.wait, name="gate")
        with Executor(2, 0) as ex:
            f1 = ex.run(hf, metrics=True)
            f2 = ex.run(hf, metrics=True)
            assert ex.cancel(f2)
            with pytest.raises(CancelledError):
                f2.result(timeout=5)
            gate.set()
            f1.result(timeout=_T)
            assert f1.run_report is not None
            with ex._graph_lock:
                assert not ex._futures  # no leaked future bookkeeping

    def test_cancel_unknown_future_returns_false(self):
        from concurrent.futures import Future

        with Executor(1, 0) as ex:
            assert not ex.cancel(Future())
