"""Tests for the journaled gateway (:mod:`repro.gateway` + journal).

Spawns real worker pools like tests/test_gateway.py, so tests stay
bundled and pools stay at 2 processes.  Covers the write-through
contract (accepted before the handle, settled before the Result),
idempotency-key dedupe, crash recovery via :meth:`Gateway.recover`,
structured refusal when the journal device fails, worker immunity to
operator signals, and a smoke run of the crash soak harness.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.durability import FaultyOs, Journal, fsck
from repro.durability.soak import run_gateway_crash_soak
from repro.errors import GatewayError, JournalWriteError
from repro.gateway import BurstSpec, Gateway, GeneratedSpec, WorkerConfig

pytestmark = pytest.mark.gateway

_CONFIG = WorkerConfig(threads=2, gpus=1)


def _run(coro):
    return asyncio.run(coro)


class TestWriteThrough:
    def test_journaled_submit_settle_and_dedupe(self, tmp_path):
        path = str(tmp_path / "j")

        async def main():
            async with Gateway(2, worker=_CONFIG, journal=path) as gw:
                fh = await gw.freeze(BurstSpec(width=4))
                s1 = gw.submit(fh, idempotency_key="job-1")
                # accepted journaled before the client sees the handle
                assert gw.journal.lookup("job-1") == s1.jid
                # an in-flight key returns the SAME live handle
                s1b = gw.submit(fh, idempotency_key="job-1")
                assert s1b is s1
                r1 = await s1
                assert r1.ok
                # a settled key replays the journaled Result, no re-run
                submits_before = gw.snapshot()["gateway.submits"]
                s1c = gw.submit(
                    BurstSpec(width=64), idempotency_key="job-1"
                )
                r1c = await s1c
                assert r1c.outcome == r1.outcome
                assert gw.snapshot()["gateway.submits"] == submits_before
                assert gw.snapshot()["journal.dedup_hits"] == 2
                events = [ev async for ev in s1c.events()]
                assert events[-1]["replayed"] is True

                # unkeyed submissions are journaled too
                r2 = await gw.submit(BurstSpec(width=2))
                assert r2.ok
                assert gw.journal.counts()["entries"] == 2
                assert await gw.drain(timeout=30.0)
        _run(main())
        report = fsck(path)
        assert report.clean and report.drained
        assert report.accepted == report.settled == 2

    def test_key_without_journal_refused(self):
        async def main():
            async with Gateway(2, worker=_CONFIG) as gw:
                with pytest.raises(GatewayError, match="requires a journal"):
                    gw.submit(BurstSpec(width=2), idempotency_key="k")
        _run(main())

    def test_journal_device_failure_refuses_submission(self, tmp_path):
        # ordinal 1 is the segment header; the first accepted append is
        # write 2 and must fail structured with nothing admitted
        journal = Journal(
            str(tmp_path / "j"),
            os_impl=FaultyOs(fail_write_at=2),
            fsync_policy="always",
        )

        async def main():
            async with Gateway(2, worker=_CONFIG, journal=journal) as gw:
                with pytest.raises(JournalWriteError) as ei:
                    gw.submit(BurstSpec(width=2), idempotency_key="k")
                assert ei.value.reason == "write"
                assert gw.snapshot()["gateway.inflight"] == 0
                assert gw.journal.counts()["entries"] == 0
                # transient device: the retry goes through end to end
                res = await gw.submit(
                    BurstSpec(width=2), idempotency_key="k"
                )
                assert res.ok
        _run(main())


class TestRecovery:
    def test_recover_resubmits_unsettled(self, tmp_path):
        path = str(tmp_path / "j")
        # fabricate post-crash residue: what a SIGKILLed gateway leaves
        j = Journal(path, fsync_policy="never")
        j.open()
        j.append_frozen(1, BurstSpec(width=4))
        done = j.append_accepted(key="done", target="spec",
                                 spec=BurstSpec(width=2))
        j.append_settled(done, outcome="completed", passes=1)
        j.append_accepted(key="spec-redo", target="spec",
                          spec=GeneratedSpec(seed=5, num_gpus=1))
        j.append_accepted(key="frozen-redo", target="frozen", fid=1)
        j.append_accepted(key="pinned", target="instance",
                          spec=BurstSpec(width=2), iid=1)
        j.close()

        async def main():
            async with Gateway(2, worker=_CONFIG, journal=path) as gw:
                report = await gw.recover()
                assert report.frozen_reshipped == 1
                assert report.resubmitted == 2
                assert report.not_replayable == 1
                results = await asyncio.gather(
                    *(s.future for s in report.submissions)
                )
                assert all(r.ok for r in results)
                # the pinned-instance entry settled without re-running
                pinned = await gw.submit(
                    BurstSpec(width=1), idempotency_key="pinned"
                )
                assert pinned.outcome == "worker_lost"
                assert pinned.reason == "not_replayable"
                # the pre-crash settlement replays too
                done_again = await gw.submit(
                    BurstSpec(width=1), idempotency_key="done"
                )
                assert done_again.outcome == "completed"
                # the re-shipped frozen handle is live for new traffic
                fh = gw.frozen_handles()[1]
                assert (await gw.submit(fh)).ok
                assert await gw.drain(timeout=30.0)
        _run(main())
        report = fsck(path)
        assert report.clean and report.drained
        # 4 fabricated + 1 fresh frozen submit; no double-accepts
        assert report.accepted == report.settled == 5

    def test_keyed_fallthrough_resubmits_journaled_payload(self, tmp_path):
        # restart WITHOUT recover(): a keyed submit whose entry is
        # journaled-but-unsettled must resubmit from the *journaled*
        # entry — the caller's divergent payload is ignored, so what
        # runs (and what another recovery would replay) is exactly
        # what the journal recorded
        path = str(tmp_path / "j")
        j = Journal(path, fsync_policy="never")
        j.open()
        j.append_accepted(key="redo", target="spec",
                          spec=BurstSpec(width=7))
        j.append_accepted(key="pinned", target="instance",
                          spec=BurstSpec(width=2), iid=1)
        j.close()

        async def main():
            async with Gateway(2, worker=_CONFIG, journal=path) as gw:
                sub = gw.submit(BurstSpec(width=1), idempotency_key="redo")
                assert sub.jid == 1
                assert sub.request.spec == BurstSpec(width=7)
                assert gw.journal.get(1).spec == BurstSpec(width=7)
                assert (await sub).ok
                # a pinned-instance entry is not replayable: it settles
                # worker_lost/not_replayable, mirroring recover()
                pinned = await gw.submit(
                    BurstSpec(width=1), idempotency_key="pinned"
                )
                assert pinned.outcome == "worker_lost"
                assert pinned.reason == "not_replayable"
                assert await gw.drain(timeout=30.0)
        _run(main())
        report = fsck(path)
        assert report.clean and report.drained
        assert report.accepted == report.settled == 2

    def test_workers_ignore_operator_signals(self):
        # SIGTERM to the process group must drain via the gateway, not
        # slaughter the pool: workers ignore TERM/INT (worker_main)
        async def main():
            async with Gateway(2, worker=_CONFIG) as gw:
                for handle in gw._workers:
                    os.kill(handle.proc.pid, signal.SIGTERM)
                    os.kill(handle.proc.pid, signal.SIGINT)
                await asyncio.sleep(0.3)
                assert gw.snapshot()["gateway.workers_alive"] == 2
                res = await gw.submit(BurstSpec(width=4))
                assert res.ok
                assert gw.snapshot()["gateway.worker_deaths"] == 0
        _run(main())


class TestCrashSoakSmoke:
    def test_five_scenarios_including_one_kill_cycle(self, tmp_path):
        # indices 0-4: three clean, one journal fault, one full
        # SIGKILL + recover cycle — the CI-smoke shape
        report = run_gateway_crash_soak(
            5, workers=2, seed=11, journal_dir=str(tmp_path)
        )
        assert report.ok, report.all_violations
        totals = report.totals
        assert totals["crash_cycles"] == 1
        assert totals["kills"] == 1
        assert totals["fault_injections"] >= 1
        assert report.final_fsck["clean"]
        doc = report.to_dict()
        assert doc["schema"] == "repro.gateway-crash-soak-report/1"
        assert doc["num_scenarios"] == 5
