"""Robustness and failure-injection tests for the executor."""

import threading
import time

import numpy as np
import pytest

from repro.core import Executor, Heteroflow, TraceObserver
from repro.errors import AllocationError
from repro.utils.span import SpanError


class TestMemoryPressure:
    def test_oversized_pull_fails_cleanly(self):
        """A pull larger than device memory raises AllocationError via
        the future, and the executor survives for further work."""
        with Executor(2, 1, gpu_memory_bytes=1 << 16) as ex:
            hf = Heteroflow()
            hf.pull(np.zeros(1 << 20))
            with pytest.raises(AllocationError):
                ex.run(hf).result(timeout=30)
            # executor still healthy
            ok = Heteroflow()
            out = []
            ok.host(lambda: out.append(1))
            ex.run(ok).result(timeout=10)
            assert out == [1]

    def test_failed_topology_releases_buffers(self):
        with Executor(2, 1, gpu_memory_bytes=1 << 18) as ex:
            hf = Heteroflow()
            p = hf.pull(np.zeros(64))
            bad = hf.host(lambda: 1 / 0)
            p.precede(bad)
            with pytest.raises(ZeroDivisionError):
                ex.run(hf).result(timeout=30)
            assert ex.gpu_runtime.device(0).heap.bytes_in_use == 0

    def test_pool_pressure_with_sequential_reuse(self):
        """Many sequential graphs each allocating most of the pool:
        buffers must be freed between topologies or the pool exhausts."""
        with Executor(2, 1, gpu_memory_bytes=1 << 18) as ex:
            for _ in range(8):
                hf = Heteroflow()
                data = np.zeros(1 << 14)  # 128KB of the 256KB pool
                p = hf.pull(data)
                hf.push(p, data).succeed(p)
                ex.run(hf).result(timeout=30)


class TestSpanFailures:
    def test_unresolvable_span_fails_future(self):
        with Executor(2, 1) as ex:
            hf = Heteroflow()
            hf.pull(lambda: {"not": "spannable"})
            with pytest.raises(SpanError):
                ex.run(hf).result(timeout=30)

    def test_span_factory_exception_propagates(self):
        with Executor(2, 1) as ex:
            hf = Heteroflow()

            def factory():
                raise RuntimeError("source data unavailable")

            hf.pull(factory)
            with pytest.raises(RuntimeError, match="source data unavailable"):
                ex.run(hf).result(timeout=30)

    def test_push_writeback_failure_propagates(self):
        with Executor(2, 1) as ex:
            hf = Heteroflow()
            p = hf.pull([1, 2, 3])
            push = hf.push(p, (1, 2, 3))  # immutable tuple target
            p.precede(push)
            with pytest.raises(SpanError):
                ex.run(hf).result(timeout=30)


class TestObserverRobustness:
    def test_multiple_observers_all_called(self, saxpy_graph):
        hf, *_ = saxpy_graph
        o1, o2 = TraceObserver(), TraceObserver()
        with Executor(2, 1, observers=[o1, o2]) as ex:
            ex.run(hf).result(timeout=30)
        assert len(o1.records) == len(o2.records) == 7

    def test_observer_clear(self, saxpy_graph):
        hf, *_ = saxpy_graph
        obs = TraceObserver()
        with Executor(2, 1, observers=[obs]) as ex:
            ex.run(hf).result(timeout=30)
            obs.clear()
            assert obs.records == []


class TestStress:
    def test_thousand_task_graph(self):
        """Large fan-out/fan-in graph completes with every task run
        exactly once."""
        hf = Heteroflow()
        counter = [0]
        lock = threading.Lock()

        def inc():
            with lock:
                counter[0] += 1

        layers = []
        for _ in range(10):
            layers.append([hf.host(inc) for _ in range(100)])
        for prev, nxt in zip(layers, layers[1:]):
            # sparse random-ish coupling: i -> i and i -> (i*7)%100
            for i in range(100):
                prev[i].precede(nxt[i], nxt[(i * 7) % 100])
        with Executor(4, 0) as ex:
            ex.run(hf).result(timeout=120)
        assert counter[0] == 1000

    def test_deep_chain(self):
        hf = Heteroflow()
        seen = []
        prev = None
        for i in range(500):
            t = hf.host(lambda i=i: seen.append(i))
            if prev is not None:
                prev.precede(t)
            prev = t
        with Executor(3, 0) as ex:
            ex.run(hf).result(timeout=120)
        assert seen == list(range(500))

    def test_many_small_gpu_graphs_concurrently(self):
        futures = []
        arrays = []
        with Executor(4, 2, gpu_memory_bytes=1 << 22) as ex:
            for i in range(20):
                hf = Heteroflow()
                data = np.full(128, float(i))
                arrays.append(data)

                def double(arr):
                    arr *= 2

                p = hf.pull(data)
                k = hf.kernel(double, p)
                s = hf.push(p, data)
                p.precede(k)
                k.precede(s)
                futures.append(ex.run(hf))
            for f in futures:
                f.result(timeout=60)
        for i, data in enumerate(arrays):
            assert set(data) == {2.0 * i}

    def test_rapid_run_n_interleaving(self):
        """run_n topologies on two graphs interleave without loss."""
        g1, g2 = Heteroflow(), Heteroflow()
        c1, c2 = [0], [0]
        lock = threading.Lock()
        g1.host(lambda: (lock.acquire(), c1.__setitem__(0, c1[0] + 1), lock.release()))
        g2.host(lambda: (lock.acquire(), c2.__setitem__(0, c2[0] + 1), lock.release()))
        with Executor(4, 0) as ex:
            f1 = ex.run_n(g1, 50)
            f2 = ex.run_n(g2, 50)
            f1.result(timeout=60)
            f2.result(timeout=60)
        assert c1[0] == 50 and c2[0] == 50

    def test_shutdown_under_load_waits(self):
        ex = Executor(2, 0)
        hf = Heteroflow()
        done = []
        hf.host(lambda: (time.sleep(0.2), done.append(1)))
        ex.run(hf)
        ex.shutdown(wait=True)
        assert done == [1]


class TestCancellation:
    def test_cancel_flushes_remaining_tasks(self):
        from concurrent.futures import CancelledError

        hf = Heteroflow()
        gate = threading.Event()
        ran = []
        first = hf.host(gate.wait)
        second = hf.host(lambda: ran.append(1))
        first.precede(second)
        with Executor(2, 0) as ex:
            fut = ex.run(hf)
            assert ex.cancel(fut)
            gate.set()
            with pytest.raises(CancelledError):
                fut.result(timeout=30)
        assert ran == []

    def test_cancel_run_n_stops_iteration(self):
        from concurrent.futures import CancelledError

        hf = Heteroflow()
        count = [0]
        gate = threading.Event()

        def work():
            count[0] += 1
            if count[0] == 2:
                gate.set()
            time.sleep(0.01)

        hf.host(work)
        with Executor(1, 0) as ex:
            fut = ex.run_n(hf, 10_000)
            gate.wait(timeout=30)
            ex.cancel(fut)
            with pytest.raises(CancelledError):
                fut.result(timeout=30)
        assert count[0] < 10_000

    def test_cancel_done_future_returns_false(self):
        hf = Heteroflow()
        hf.host(lambda: None)
        with Executor(1, 0) as ex:
            fut = ex.run(hf)
            fut.result(timeout=30)
            assert not ex.cancel(fut)

    def test_cancel_foreign_future_returns_false(self):
        from concurrent.futures import Future

        with Executor(1, 0) as ex:
            assert not ex.cancel(Future())

    def test_cancelled_topology_releases_buffers(self):
        from concurrent.futures import CancelledError

        hf = Heteroflow()
        gate = threading.Event()
        blocker = hf.host(gate.wait)
        p = hf.pull(np.zeros(256))
        blocker.precede(p)
        with Executor(2, 1) as ex:
            fut = ex.run(hf)
            ex.cancel(fut)
            gate.set()
            with pytest.raises(CancelledError):
                fut.result(timeout=30)
            assert ex.gpu_runtime.device(0).heap.bytes_in_use == 0


class TestValidatedRecovery:
    """Failure paths checked through the schedule validator: whatever
    part of the graph did run must still form a consistent schedule."""

    def _diamond_with_gpu(self):
        hf = Heteroflow()
        data = np.arange(64, dtype=np.float64)

        def double(x):
            x *= 2

        gate = threading.Event()
        head = hf.host(gate.wait, name="head")
        p = hf.pull(data, name="pull")
        k = hf.kernel(double, p, name="kernel")
        s = hf.push(p, data, name="push")
        head.precede(p)
        p.precede(k)
        k.precede(s)
        return hf, gate

    def test_cancel_mid_flight_leaves_consistent_partial_trace(self):
        from concurrent.futures import CancelledError

        from repro.check import AllocatorAuditor, validate_schedule

        hf, gate = self._diamond_with_gpu()
        obs = TraceObserver()
        auditor = AllocatorAuditor()
        with Executor(2, 1, observers=[obs]) as ex:
            auditor.attach_runtime(ex.gpu_runtime)
            fut = ex.run(hf)
            ex.cancel(fut)
            gate.set()
            with pytest.raises(CancelledError):
                fut.result(timeout=30)
        validate_schedule(
            hf, obs.records, passes=1, num_gpus=1, allow_partial=True
        ).raise_if_failed()
        auditor.finish().raise_if_failed()  # zero leaks after cancel

    def test_shutdown_no_wait_trace_stays_consistent(self):
        """shutdown(wait=False) stops accepting sleepers but lets the
        workers drain queued work; whatever ran must form a valid
        (possibly partial) schedule.  The future is deliberately not
        waited on: with GPU callbacks in flight it may never resolve."""
        from repro.check import validate_schedule

        hf = Heteroflow()
        prev = None
        for i in range(20):
            t = hf.host(lambda: time.sleep(0.002), name=f"n{i}")
            if prev is not None:
                prev.precede(t)
            prev = t
        obs = TraceObserver()
        ex = Executor(2, 0, observers=[obs])
        ex.run(hf)
        ex.shutdown(wait=False)
        validate_schedule(
            hf, obs.records, passes=1, num_gpus=0, allow_partial=True
        ).raise_if_failed()

    def test_kernel_callback_exception_validated(self):
        """A kernel function raising inside the stream callback fails
        the future with that error, flushes the rest of the graph, and
        leaves a consistent partial trace and a leak-free heap."""
        from repro.check import AllocatorAuditor, validate_schedule

        hf = Heteroflow()
        data = np.zeros(64)

        def bad_kernel(x):
            raise ValueError("kernel exploded")

        p = hf.pull(data, name="pull")
        k = hf.kernel(bad_kernel, p, name="bad")
        s = hf.push(p, data, name="push")
        p.precede(k)
        k.precede(s)
        obs = TraceObserver()
        auditor = AllocatorAuditor()
        with Executor(2, 1, observers=[obs]) as ex:
            auditor.attach_runtime(ex.gpu_runtime)
            with pytest.raises(ValueError, match="kernel exploded"):
                ex.run(hf).result(timeout=30)
            assert ex.gpu_runtime.device(0).heap.bytes_in_use == 0
        validate_schedule(
            hf, obs.records, passes=1, num_gpus=1, allow_partial=True
        ).raise_if_failed()
        auditor.finish().raise_if_failed()
