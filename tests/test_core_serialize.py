"""Tests for graph serialization and the profile convenience."""

import json

import pytest

from repro.core import Executor, Heteroflow, TaskType
from repro.core.serialize import (
    graph_to_dict,
    graph_to_json,
    skeleton_from_dict,
    skeleton_from_json,
    structure_equal,
)
from repro.core.task import HostTask
from repro.errors import GraphError


class TestExport:
    def test_dict_covers_all_tasks(self, saxpy_graph):
        hf, *_ = saxpy_graph
        d = graph_to_dict(hf)
        assert d["num_tasks"] == 7
        assert {t["type"] for t in d["tasks"]} == {"host", "pull", "push", "kernel"}

    def test_edges_preserved(self, saxpy_graph):
        hf, *_ = saxpy_graph
        d = graph_to_dict(hf)
        edge_count = sum(len(t["successors"]) for t in d["tasks"])
        assert edge_count == sum(len(n.successors) for n in hf.nodes)

    def test_kernel_metadata(self, saxpy_graph):
        hf, *_ = saxpy_graph
        d = graph_to_dict(hf)
        k = next(t for t in d["tasks"] if t["type"] == "kernel")
        assert k["block"] == [256, 1, 1]
        assert len(k["sources"]) == 2

    def test_push_source_recorded(self, saxpy_graph):
        hf, *_ = saxpy_graph
        d = graph_to_dict(hf)
        pushes = [t for t in d["tasks"] if t["type"] == "push"]
        pulls = {t["id"] for t in d["tasks"] if t["type"] == "pull"}
        assert all(p["source"] in pulls for p in pushes)

    def test_json_round_trips(self, saxpy_graph):
        hf, *_ = saxpy_graph
        assert json.loads(graph_to_json(hf)) == graph_to_dict(hf)


class TestSkeleton:
    def test_structure_round_trip(self, saxpy_graph):
        hf, *_ = saxpy_graph
        clone = skeleton_from_json(graph_to_json(hf))
        assert clone.num_nodes == hf.num_nodes
        for orig, copy in zip(hf.nodes, clone.nodes):
            assert copy.name == orig.name
            assert len(copy.successors) == len(orig.successors)

    def test_skeleton_tasks_are_placeholders(self, saxpy_graph):
        hf, *_ = saxpy_graph
        clone = skeleton_from_dict(graph_to_dict(hf))
        assert all(n.type is TaskType.PLACEHOLDER for n in clone.nodes)
        with pytest.raises(GraphError):
            clone.validate()  # work not bound yet

    def test_skeleton_runnable_after_rebind(self):
        hf = Heteroflow("orig")
        out = []
        a = hf.host(lambda: out.append("a"), name="a")
        b = hf.host(lambda: out.append("b"), name="b")
        a.precede(b)
        clone = skeleton_from_dict(graph_to_dict(hf))
        log = []
        for t in clone.tasks():
            HostTask(t.node).host(lambda n=t.name: log.append(n))
        with Executor(2, 0) as ex:
            ex.run(clone).result(timeout=10)
        assert log == ["a", "b"]

    def test_rejects_bad_schema(self):
        with pytest.raises(GraphError):
            skeleton_from_dict({"schema": 99, "tasks": []})

    def test_rejects_unknown_type(self):
        with pytest.raises(GraphError):
            skeleton_from_dict(
                {"schema": 1, "tasks": [{"id": 0, "type": "quantum", "successors": []}]}
            )


class TestStructureEqual:
    def test_identical_builders_equal(self):
        def build():
            hf = Heteroflow()
            a = hf.host(lambda: None, name="a")
            p = hf.pull([1], name="p")
            a.precede(p)
            return hf

        assert structure_equal(build(), build())

    def test_extra_edge_detected(self):
        def build(extra):
            hf = Heteroflow()
            a = hf.host(lambda: None, name="a")
            b = hf.host(lambda: None, name="b")
            c = hf.host(lambda: None, name="c")
            a.precede(b)
            b.precede(c)
            if extra:
                a.precede(c)
            return hf

        assert not structure_equal(build(False), build(True))

    def test_app_flows_deterministic_structure(self):
        from repro.apps.timing import build_timing_flow

        a = build_timing_flow(num_views=3, num_gates=60, paths_per_view=8, seed=5)
        b = build_timing_flow(num_views=3, num_gates=60, paths_per_view=8, seed=5)
        assert structure_equal(a.graph, b.graph)


class TestProfile:
    def test_profile_returns_trace(self, saxpy_graph):
        hf, *_ = saxpy_graph
        with Executor(2, 1) as ex:
            obs = ex.profile(hf)
        assert len(obs.records) == 7
        assert obs.topologies_finished == 1

    def test_profile_detaches_observer(self, saxpy_graph):
        hf, x, y, n = saxpy_graph
        with Executor(2, 1) as ex:
            obs = ex.profile(hf)
            count = len(obs.records)
            ex.run(hf).result(timeout=30)  # second run not observed
        assert len(obs.records) == count


from hypothesis import given, settings, strategies as st


@settings(max_examples=20, deadline=None)
@given(
    n_tasks=st.integers(1, 25),
    edge_density=st.floats(0, 0.5),
    seed=st.integers(0, 1000),
)
def test_property_random_dag_round_trips(n_tasks, edge_density, seed):
    """Random DAG structures survive export -> skeleton import."""
    import numpy as np

    rng = np.random.default_rng(seed)
    hf = Heteroflow("fuzz")
    tasks = [hf.host(lambda: None, name=f"t{i}") for i in range(n_tasks)]
    for j in range(1, n_tasks):
        for i in range(j):
            if rng.uniform() < edge_density:
                tasks[i].precede(tasks[j])
    clone = skeleton_from_dict(graph_to_dict(hf))
    assert clone.num_nodes == hf.num_nodes
    for orig, copy in zip(hf.nodes, clone.nodes):
        assert copy.name == orig.name
        assert [s.name for s in copy.successors] == [s.name for s in orig.successors]
    # topological structure intact
    clone_order = [n.name for n in clone.topological_order()]
    orig_order = [n.name for n in hf.topological_order()]
    assert clone_order == orig_order
