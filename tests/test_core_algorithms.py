"""Tests for graph analysis and refinement utilities."""

import numpy as np
import pytest

from repro.core import Executor, Heteroflow
from repro.core.algorithms import (
    average_parallelism,
    critical_path,
    graph_stats,
    linearize,
    merge,
    redundant_edges,
    total_work,
)
from repro.sim import CostModel, MachineSpec, SimExecutor


def chain(k, seconds=1.0):
    hf = Heteroflow()
    cm = CostModel()
    prev = None
    for _ in range(k):
        t = hf.host(lambda: None)
        cm.annotate_host(t, seconds)
        if prev:
            prev.precede(t)
        prev = t
    return hf, cm


def fan(k, seconds=1.0):
    hf = Heteroflow()
    cm = CostModel()
    for _ in range(k):
        cm.annotate_host(hf.host(lambda: None), seconds)
    return hf, cm


class TestCriticalPath:
    def test_chain_span_is_sum(self):
        hf, cm = chain(5, 2.0)
        span, path = critical_path(hf, cm)
        assert span == pytest.approx(10.0)
        assert len(path) == 5

    def test_fan_span_is_single_task(self):
        hf, cm = fan(8, 3.0)
        span, path = critical_path(hf, cm)
        assert span == pytest.approx(3.0)
        assert len(path) == 1

    def test_weighted_branch_selection(self):
        hf = Heteroflow()
        cm = CostModel()
        a = hf.host(lambda: None, name="a")
        heavy = hf.host(lambda: None, name="heavy")
        light = hf.host(lambda: None, name="light")
        z = hf.host(lambda: None, name="z")
        a.precede(heavy, light)
        z.succeed(heavy, light)
        for t, s in ((a, 1.0), (heavy, 5.0), (light, 1.0), (z, 1.0)):
            cm.annotate_host(t, s)
        span, path = critical_path(hf, cm)
        assert span == pytest.approx(7.0)
        assert [n.name for n in path] == ["a", "heavy", "z"]

    def test_span_lower_bounds_simulation(self):
        from repro.apps.timing import build_timing_flow

        flow = build_timing_flow(num_views=16, num_gates=40, paths_per_view=4)
        m = MachineSpec(64, 8)
        span, _ = critical_path(flow.graph, flow.cost_model, m)
        sim = SimExecutor(m, flow.cost_model).run(flow.graph)
        assert sim.makespan >= span - 1e-9

    def test_empty_graph(self):
        span, path = critical_path(Heteroflow())
        assert span == 0.0 and path == []

    def test_gpu_tasks_use_gpu_and_copy_weights(self):
        hf = Heteroflow()
        cm = CostModel()
        p = hf.pull([0])
        k = hf.kernel(lambda a: None, p)
        p.precede(k)
        cm.annotate_copy(p, 12e9)  # exactly 1 second at default rate
        cm.annotate_kernel(k, 2.0)
        span, _ = critical_path(hf, cm)
        assert span == pytest.approx(3.0)


class TestWorkAndParallelism:
    def test_total_work(self):
        hf, cm = fan(4, 2.5)
        assert total_work(hf, cm) == pytest.approx(10.0)

    def test_parallelism_of_fan_and_chain(self):
        fan_hf, fan_cm = fan(8)
        chain_hf, chain_cm = chain(8)
        assert average_parallelism(fan_hf, fan_cm) == pytest.approx(8.0)
        assert average_parallelism(chain_hf, chain_cm) == pytest.approx(1.0)

    def test_apps_have_expected_parallelism_ordering(self):
        from repro.apps.placement import build_placement_flow
        from repro.apps.timing import build_timing_flow

        t = build_timing_flow(num_views=32, num_gates=40, paths_per_view=4)
        p = build_placement_flow(num_cells=30, iterations=10, num_matchers=32, window_size=1)
        # the view-parallel timing workload is far more parallel than
        # the iteration-chained placement workload
        assert average_parallelism(t.graph, t.cost_model) > 4 * average_parallelism(
            p.graph, p.cost_model
        )


class TestStats:
    def test_counts_and_depth(self, saxpy_graph):
        hf, *_ = saxpy_graph
        s = graph_stats(hf)
        assert s.num_tasks == 7
        assert s.num_edges == 6
        assert s.depth == 3  # host -> pull -> kernel -> push
        assert s.counts_by_type == {"host": 2, "pull": 2, "kernel": 1, "push": 2}
        assert s.num_sources == 2
        assert s.num_sinks == 2

    def test_widths(self):
        hf, _ = fan(5)
        s = graph_stats(hf)
        assert s.max_level_width == 5
        assert s.depth == 0


class TestRefinement:
    def test_redundant_edge_detected(self):
        hf = Heteroflow()
        a, b, c = (hf.host(lambda: None) for _ in range(3))
        a.precede(b)
        b.precede(c)
        a.precede(c)  # redundant: implied by a->b->c
        red = redundant_edges(hf)
        assert len(red) == 1
        assert red[0][0].nid == a.node.nid and red[0][1].nid == c.node.nid

    def test_fig3_graph_has_no_redundancy(self):
        """The paper's Fig.-3 graph relies on transitivity instead of
        extra edges; verify it is already reduced."""
        hf = Heteroflow()
        host1 = hf.host(lambda: None)
        host2 = hf.host(lambda: None)
        p1, p2 = hf.pull([0]), hf.pull([1])
        k1 = hf.kernel(lambda a: None, p1)
        k2 = hf.kernel(lambda a, b: None, p1, p2)
        s1 = hf.push(p1, [0])
        s2 = hf.push(p2, [1])
        host1.precede(p1)
        host2.precede(p2)
        p1.precede(k1)
        p2.precede(k2)
        k1.precede(s1, k2)
        k2.precede(s2)
        assert redundant_edges(hf) == []

    def test_merge_moves_tasks(self):
        g1, g2 = Heteroflow("a"), Heteroflow("b")
        t1 = g1.host(lambda: None)
        t2 = g2.host(lambda: None)
        moved = merge(g1, g2)
        assert g2.empty
        assert g1.num_nodes == 2
        t1.precede(t2)  # cross-graph link now legal
        g1.validate()
        assert moved[0] is t2.node

    def test_merged_graph_executes(self):
        g1, g2 = Heteroflow(), Heteroflow()
        out = []
        a = g1.host(lambda: out.append("a"))
        b = g2.host(lambda: out.append("b"))
        merge(g1, g2)
        a.precede(b)
        with Executor(2, 0) as ex:
            ex.run(g1).result(timeout=10)
        assert out == ["a", "b"]

    def test_linearize_forces_sequential(self):
        hf, _ = fan(6)
        linearize(hf)
        order = hf.topological_order()
        for x, y in zip(order, order[1:]):
            assert y in x.successors
        s = graph_stats(hf)
        assert s.depth == 5

    def test_linearized_graph_runs(self):
        hf = Heteroflow()
        out = []
        for i in range(4):
            hf.host(lambda i=i: out.append(i))
        linearize(hf)
        with Executor(3, 0) as ex:
            ex.run(hf).result(timeout=10)
        assert out == sorted(out)
