"""Tests for the baseline executors and placements."""

import numpy as np
import pytest

from repro.baselines import (
    RoundRobinPlacement,
    SequentialExecutor,
    central_queue_sim_executor,
    dedicated_sim_executor,
)
from repro.core import Executor, Heteroflow
from repro.errors import ExecutorError, KernelError
from repro.sim import CostModel, MachineSpec
from tests.conftest import saxpy_kernel


class TestSequentialExecutor:
    def test_saxpy(self, saxpy_graph):
        hf, x, y, n = saxpy_graph
        with SequentialExecutor(num_gpus=1) as seq:
            seq.run(hf)
        assert y == [4] * n

    def test_multi_pass_stateful(self):
        hf = Heteroflow()
        data = np.zeros(8)
        pull = hf.pull(data)

        def inc(arr):
            arr += 1

        k = hf.kernel(inc, pull)
        push = hf.push(pull, data)
        pull.precede(k)
        k.precede(push)
        with SequentialExecutor(num_gpus=1) as seq:
            seq.run(hf, passes=3)
        assert set(data) == {3.0}

    def test_agrees_with_parallel_executor(self, saxpy_graph):
        """Differential: sequential and parallel runtimes produce the
        same final data."""
        hf, x, y, n = saxpy_graph
        with SequentialExecutor(num_gpus=2) as seq:
            seq.run(hf)
        y_seq = list(y)
        x.clear()
        y.clear()
        with Executor(4, 2, gpu_memory_bytes=1 << 22) as ex:
            ex.run(hf).result(timeout=30)
        assert y == y_seq

    def test_gpu_tasks_need_gpus(self):
        hf = Heteroflow()
        hf.pull([1])
        with SequentialExecutor(num_gpus=0) as seq:
            with pytest.raises(ExecutorError):
                seq.run(hf)

    def test_kernel_before_pull_raises(self):
        hf = Heteroflow()
        p = hf.pull([1])
        k = hf.kernel(lambda arr: None, p)
        k.precede(p)  # wrong direction on purpose
        with SequentialExecutor(num_gpus=1) as seq:
            with pytest.raises(KernelError):
                seq.run(hf)

    def test_releases_buffers(self):
        hf = Heteroflow()
        p = hf.pull(np.zeros(64))
        seq = SequentialExecutor(num_gpus=1)
        seq.run(hf)
        assert seq._gpu.device(0).heap.bytes_in_use == 0
        seq.shutdown()


def _mixed_graph(n_chains=8):
    hf = Heteroflow()
    cm = CostModel()
    for i in range(n_chains):
        h = hf.host(lambda: None)
        p = hf.pull([0])
        k = hf.kernel(lambda: None, p)
        h.precede(p)
        p.precede(k)
        cm.annotate_host(h, 1.0)
        cm.annotate_copy(p, 0)
        cm.annotate_kernel(k, 1.0)
    return hf, cm


class TestSimBaselines:
    def test_dedicated_never_faster_on_host_heavy_work(self):
        hf = Heteroflow()
        cm = CostModel()
        for _ in range(16):
            cm.annotate_host(hf.host(lambda: None), 1.0)
        m = MachineSpec(4, 2)
        from repro.sim import SimExecutor

        uni = SimExecutor(m, cm).run(hf).makespan
        ded = dedicated_sim_executor(m, cm).run(hf).makespan
        assert ded >= uni

    def test_central_queue_never_beats_lifo_on_pipelines(self):
        hf, cm = _mixed_graph(12)
        m = MachineSpec(1, 1)
        from repro.sim import SimExecutor

        lifo = SimExecutor(m, cm).run(hf).makespan
        fifo = central_queue_sim_executor(m, cm).run(hf).makespan
        assert fifo >= lifo - 1e-9

    def test_round_robin_correctness_preserved(self):
        """Round-robin placement still co-locates kernels with their
        pulls, so the real executor runs correctly under it."""
        hf = Heteroflow()
        data = np.zeros(16)
        outs = []
        for i in range(4):
            p = hf.pull(data)
            k = hf.kernel(lambda arr: None, p)
            p.precede(k)
        res = RoundRobinPlacement().place(hf.nodes, 3)
        from repro.core.node import TaskType

        for n in hf.nodes:
            if n.type is TaskType.KERNEL:
                assert n.device == n.kernel_sources[0].device
        _ = outs
