"""Freeze-and-replay: compiled topologies, the slot fast path, and the
differential harness (docs/runtime.md, "Freeze and replay").

Covers the frozen-graph surface end to end:

- ``Heteroflow.freeze()`` compilation (slot tables, fast-path
  eligibility, idempotence) and the frozen lint cache;
- structured :class:`~repro.errors.FrozenTopologyError` from **every**
  mutation entry point after freeze;
- replay execution equivalence — fast path, general path, bindings,
  multi-pass, ``run_until`` — against fresh-run behavior;
- drain/shutdown stranding guarantees for queued and in-flight replays;
- the fresh-vs-frozen differential property sweep
  (:mod:`repro.check.replay`): >=50 seeded scenarios, oracle-checked
  and validator-checked on both sides.
"""

import threading
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.check.replay import REPLAY_CONFIGS, run_replay_check
from repro.check.validate import validate_schedule
from repro.core import Executor, FrozenTopology, Heteroflow, TraceObserver
from repro.core.placement import apply_assignment, snapshot_assignment
from repro.errors import (
    ExecutorError,
    FrozenTopologyError,
    GraphError,
)


def build_diamond(log):
    hf = Heteroflow("diamond")
    a = hf.host(lambda: log.append("a"), name="a")
    b = hf.host(lambda: log.append("b"), name="b")
    c = hf.host(lambda: log.append("c"), name="c")
    d = hf.host(lambda: log.append("d"), name="d")
    a.precede(b, c)
    d.succeed(b, c)
    return hf, (a, b, c, d)


def build_gpu_graph(data):
    hf = Heteroflow("gpu")
    pull = hf.pull(data, name="pull")
    kern = hf.kernel(lambda x: x.__iadd__(1.0), pull, name="kern").succeed(pull)
    push = hf.push(pull, data, name="push").succeed(kern)
    return hf, pull, kern, push


# ---------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------
class TestFreeze:
    def test_freeze_compiles_slot_tables(self):
        log = []
        hf, _ = build_diamond(log)
        frozen = hf.freeze()
        assert isinstance(frozen, FrozenTopology)
        assert len(frozen) == 4
        names = [n.name for n in frozen.nodes]
        assert names[0] == "a" and names[-1] == "d"
        # slot 0 (a) precedes b and c; join counters match dependents
        assert sorted(frozen.succ_slots[0]) == [1, 2]
        assert frozen.join_init == (0, 1, 1, 2)
        assert frozen.source_slots == (0,)
        assert frozen.fast_capable
        assert not frozen.has_gpu

    def test_freeze_idempotent_and_flag(self):
        hf, _ = build_diamond([])
        assert not hf.frozen
        frozen = hf.freeze()
        assert hf.freeze() is frozen
        assert hf.frozen

    def test_freeze_empty_graph_rejected(self):
        with pytest.raises(GraphError, match="empty"):
            Heteroflow("e").freeze()

    def test_freeze_validates(self):
        hf = Heteroflow("bad")
        hf.placeholder(name="p")
        with pytest.raises(GraphError, match="never assigned"):
            hf.freeze()

    def test_gpu_graph_not_fast_capable(self):
        hf, *_ = build_gpu_graph(np.zeros(8))
        frozen = hf.freeze()
        assert frozen.has_gpu
        assert not frozen.fast_capable

    def test_per_task_resilience_disables_fast_path(self):
        hf = Heteroflow("r")
        hf.host(lambda: None).retry(max_attempts=2)
        assert not hf.freeze().fast_capable

    def test_footprint_cached(self):
        hf, *_ = build_gpu_graph(np.zeros(64))
        frozen = hf.freeze()
        fp = frozen.predicted_footprint()
        assert fp > 0
        assert frozen.predicted_footprint() == fp

    def test_lint_cached_on_freeze(self):
        log = []
        hf, _ = build_diamond(log)
        frozen = hf.freeze()
        r1 = frozen.lint()
        assert frozen.lint() is r1  # identical object, not a re-run
        assert hf.lint() is r1  # graph-level lint delegates to the cache
        r2 = frozen.lint(gpu_memory_bytes=1 << 20)
        assert r2 is not r1  # distinct keyword set -> distinct analysis
        assert frozen.lint(gpu_memory_bytes=1 << 20) is r2

    def test_executor_lint_uses_frozen_cache(self):
        hf, _ = build_diamond([])
        frozen = hf.freeze()
        with Executor(1, 0) as ex:
            assert ex.lint(frozen) is ex.lint(frozen)


# ---------------------------------------------------------------------
# mutation entry points raise FrozenTopologyError
# ---------------------------------------------------------------------
class TestFrozenMutations:
    @pytest.fixture()
    def frozen_gpu(self):
        data = np.zeros(8)
        hf, pull, kern, push = build_gpu_graph(data)
        extra = hf.host(lambda: None, name="h")
        extra.precede(pull)
        hf.freeze()
        return hf, pull, kern, push, extra

    def _raises(self, fn, operation):
        with pytest.raises(FrozenTopologyError) as err:
            fn()
        assert err.value.operation == operation
        assert "frozen" in str(err.value)

    def test_add_task(self, frozen_gpu):
        hf, *_ = frozen_gpu
        for add in (
            lambda: hf.host(lambda: None),
            lambda: hf.pull([1.0]),
            lambda: hf.kernel(lambda x: None),
            lambda: hf.placeholder(),
        ):
            self._raises(add, "add a task")

    def test_clear(self, frozen_gpu):
        hf, *_ = frozen_gpu
        self._raises(hf.clear, "clear")

    def test_dependency_edges(self, frozen_gpu):
        _, pull, kern, push, extra = frozen_gpu
        self._raises(lambda: extra.precede(push), "precede")
        self._raises(lambda: push.succeed(extra), "succeed")

    def test_rename(self, frozen_gpu):
        _, pull, *_ = frozen_gpu
        self._raises(lambda: pull.rename("x"), "rename")

    def test_resilience_config(self, frozen_gpu):
        _, _, kern, _, extra = frozen_gpu
        self._raises(lambda: extra.retry(max_attempts=2), "retry")
        self._raises(lambda: extra.timeout(1.0), "timeout")

    def test_work_rebinding(self, frozen_gpu):
        _, pull, kern, push, extra = frozen_gpu
        self._raises(lambda: extra.host(lambda: None), "host")
        self._raises(lambda: pull.pull([1.0]), "pull")
        self._raises(lambda: push.push(pull, [1.0]), "push")
        self._raises(lambda: kern.kernel(lambda x: None, pull), "kernel")

    def test_kernel_declarations(self, frozen_gpu):
        _, pull, kern, *_ = frozen_gpu
        self._raises(lambda: kern.reads(pull), "reads")
        self._raises(lambda: kern.writes(pull), "writes")
        self._raises(kern.host_fallback, "host_fallback")

    def test_launch_shape(self, frozen_gpu):
        _, _, kern, *_ = frozen_gpu
        self._raises(lambda: kern.grid(2), "grid")
        self._raises(lambda: kern.block(64), "block")
        self._raises(lambda: kern.shm(256), "shm")
        self._raises(lambda: kern.grid_x(2), "update the launch shape of")
        self._raises(lambda: kern.block_y(2), "update the launch shape of")

    def test_error_carries_target(self):
        hf = Heteroflow("named")
        t = hf.host(lambda: None, name="victim")
        hf.freeze()
        with pytest.raises(FrozenTopologyError) as err:
            t.rename("other")
        assert err.value.target == "victim"


# ---------------------------------------------------------------------
# replay execution
# ---------------------------------------------------------------------
class TestReplayExecution:
    def test_fast_path_runs_every_task_in_order(self):
        log = []
        hf, _ = build_diamond(log)
        frozen = hf.freeze()
        obs = TraceObserver()
        with Executor(2, 0, observers=[obs]) as ex:
            for _ in range(3):
                assert ex.run(frozen).result(timeout=30) == 1
        assert sorted(log) == sorted(["a", "b", "c", "d"] * 3)
        report = validate_schedule(hf, obs.records, passes=3, num_gpus=0)
        report.raise_if_failed()

    def test_run_n_and_run_until(self):
        count = []
        hf = Heteroflow("n")
        hf.host(lambda: count.append(1))
        frozen = hf.freeze()
        with Executor(1, 0) as ex:
            assert ex.run_n(frozen, 4).result(timeout=30) == 4
            assert (
                ex.run_until(frozen, lambda: len(count) >= 6).result(timeout=30)
                >= 2
            )
        assert len(count) >= 6

    def test_run_n_zero_resolves_immediately(self):
        hf = Heteroflow("z")
        hf.host(lambda: None)
        frozen = hf.freeze()
        with Executor(1, 0) as ex:
            assert ex.run_n(frozen, 0).result(timeout=30) == 0

    def test_gpu_replay_matches_fresh_arithmetic(self):
        fresh_data = np.full(16, 2.0)
        frozen_data = np.full(16, 2.0)
        fresh_hf, *_ = build_gpu_graph(fresh_data)
        frozen_hf, *_ = build_gpu_graph(frozen_data)
        frozen = frozen_hf.freeze()
        with Executor(2, 2) as ex:
            ex.run_n(fresh_hf, 3).result(timeout=30)
            for _ in range(3):
                ex.run(frozen).result(timeout=30)
        np.testing.assert_allclose(fresh_data, frozen_data)
        np.testing.assert_allclose(frozen_data, np.full(16, 5.0))

    def test_plan_cache_hit_and_miss_accounting(self):
        hf, *_ = build_gpu_graph(np.zeros(8))
        frozen = hf.freeze()
        with Executor(1, 2) as ex:
            for _ in range(4):
                ex.run(frozen).result(timeout=30)
            snap = ex.metrics.snapshot()
        assert snap["replay.cache_misses"] == 1
        assert snap["replay.cache_hits"] == 3

    def test_fast_path_task_failure_propagates(self):
        hf = Heteroflow("boom")
        a = hf.host(lambda: None, name="ok")
        boom = hf.host(lambda: 1 / 0, name="boom")
        a.precede(boom)
        frozen = hf.freeze()
        with Executor(2, 0) as ex:
            with pytest.raises(ZeroDivisionError):
                ex.run(frozen).result(timeout=30)
            # the frozen graph stays usable after a failed replay
            with pytest.raises(ZeroDivisionError):
                ex.run(frozen).result(timeout=30)

    def test_replay_cancellation(self):
        gate = threading.Event()
        hf = Heteroflow("gated")
        first = hf.host(gate.wait, name="gate")
        hf.host(lambda: None, name="after").succeed(first)
        frozen = hf.freeze()
        with Executor(2, 0) as ex:
            fut = ex.run(frozen)
            assert ex.cancel(fut)
            gate.set()
            with pytest.raises(CancelledError):
                fut.result(timeout=30)
            # cancelled replay leaves the compiled state reusable
            assert ex.run(frozen).result(timeout=30) == 1


class TestBindings:
    def test_bindings_swap_host_callable_per_submission(self):
        log = []
        hf, _ = build_diamond(log)
        frozen = hf.freeze()
        with Executor(2, 0) as ex:
            ex.run(frozen, bindings={"b": lambda: log.append("B!")}).result(
                timeout=30
            )
            ex.run(frozen).result(timeout=30)
        assert log.count("B!") == 1
        assert log.count("b") == 1  # original callable untouched
        assert log.count("a") == 2

    def test_bindings_on_general_path(self):
        # GPU graph -> general (non-fast) frozen path; host override
        # must still apply through the per-submission table
        data = np.zeros(8)
        hf, pull, *_ = build_gpu_graph(data)
        seen = []
        hf.host(lambda: seen.append("orig"), name="h").precede(pull)
        frozen = hf.freeze()
        with Executor(2, 1) as ex:
            ex.run(frozen, bindings={"h": lambda: seen.append("bound")}).result(
                timeout=30
            )
        assert seen == ["bound"]

    def test_bindings_unknown_name_rejected(self):
        hf, _ = build_diamond([])
        frozen = hf.freeze()
        with Executor(1, 0) as ex:
            with pytest.raises(GraphError, match="no host task named"):
                ex.run(frozen, bindings={"nope": lambda: None})

    def test_bindings_ambiguous_name_rejected(self):
        hf = Heteroflow("dup")
        hf.host(lambda: None, name="twin")
        hf.host(lambda: None, name="twin")
        frozen = hf.freeze()
        with Executor(1, 0) as ex:
            with pytest.raises(GraphError, match="ambiguous"):
                ex.run(frozen, bindings={"twin": lambda: None})

    def test_bindings_require_callable(self):
        hf, _ = build_diamond([])
        frozen = hf.freeze()
        with Executor(1, 0) as ex:
            with pytest.raises(GraphError, match="not callable"):
                ex.run(frozen, bindings={"a": 42})

    def test_bindings_require_frozen_graph(self):
        hf, _ = build_diamond([])
        with Executor(1, 0) as ex:
            with pytest.raises(ExecutorError, match="requires a FrozenTopology"):
                ex.run(hf, bindings={"a": lambda: None})


# ---------------------------------------------------------------------
# drain / shutdown stranding guarantees (regression)
# ---------------------------------------------------------------------
class TestReplayStranding:
    def _gated_frozen(self):
        gate = threading.Event()
        hf = Heteroflow("strand")
        first = hf.host(gate.wait, name="gate")
        for i in range(4):
            hf.host(lambda: None, name=f"t{i}").succeed(first)
        return hf.freeze(), gate

    def test_shutdown_no_wait_resolves_every_replay_future(self):
        frozen, gate = self._gated_frozen()
        ex = Executor(2, 0)
        futures = [ex.run(frozen) for _ in range(5)]
        gate.set()
        ex.shutdown(wait=False)
        for fut in futures:
            assert fut.done()
            # each future either completed a pass or was cancelled at
            # teardown — never stranded unresolved
            try:
                assert fut.result(timeout=0) == 1
            except CancelledError:
                pass

    def test_drain_settles_queued_replays(self):
        frozen, gate = self._gated_frozen()
        ex = Executor(2, 0)
        try:
            futures = [ex.run(frozen) for _ in range(4)]
            gate.set()
            assert ex.drain(timeout=30.0)
            for fut in futures:
                assert fut.done()
                assert fut.result(timeout=0) == 1
            with pytest.raises(ExecutorError, match="draining"):
                ex.run(frozen)
        finally:
            ex.shutdown()

    def test_shutdown_cancels_gate_blocked_replay(self):
        frozen, gate = self._gated_frozen()
        ex = Executor(2, 0)
        futures = [ex.run(frozen) for _ in range(3)]
        # gate never set before shutdown: the started replay is blocked
        # mid-task and the rest are queued; nothing may strand
        t = threading.Timer(0.2, gate.set)
        t.start()
        try:
            ex.shutdown(wait=False)
        finally:
            t.join()
        for fut in futures:
            assert fut.done()


# ---------------------------------------------------------------------
# placement snapshot helpers
# ---------------------------------------------------------------------
class TestPlacementSnapshot:
    def test_snapshot_and_reapply(self):
        data = np.zeros(8)
        hf, pull, kern, push = build_gpu_graph(data)
        frozen = hf.freeze()
        with Executor(1, 2) as ex:
            ex.run(frozen).result(timeout=30)
            pairs = snapshot_assignment(hf.nodes)
            assert {n.type.value for n, _ in pairs} == {"pull", "kernel", "push"}
            assert all(d is not None for _, d in pairs)
            # clobber the assignment, then restore it from the snapshot
            for n, _ in pairs:
                n.device = 99
            apply_assignment(pairs)
            assert [n.device for n, _ in pairs] == [d for _, d in pairs]
            ex.run(frozen).result(timeout=30)


# ---------------------------------------------------------------------
# differential property sweep (>=50 seeded scenarios)
# ---------------------------------------------------------------------
class TestDifferentialSweep:
    def test_fifty_plus_seeded_scenarios_agree(self):
        """Every seeded topology runs fresh and frozen-replayed; both
        trace streams validate, both match the host-replay oracle, and
        the two sides' terminal states are bitwise-compatible —
        including cancellation, deadline firing, and device fault
        injection through the replay path."""
        report = run_replay_check()
        assert report.num_scenarios >= 50
        modes = {o.mode for o in report.outcomes}
        assert modes == {"normal", "cancel", "deadline", "fault"}
        assert any(o.fast for o in report.outcomes)  # slot fast path hit
        assert any(o.gpus > 0 for o in report.outcomes)  # general path hit
        assert report.ok, "\n".join(report.violations)

    def test_report_dict_schema(self):
        report = run_replay_check(seeds=1, configs=[(2, 0)])
        doc = report.to_dict()
        assert doc["schema"] == "repro.replay-report/1"
        assert doc["num_scenarios"] == 1
        assert doc["ok"] is True
        (scenario,) = doc["scenarios"]
        assert scenario["mode"] == "normal"
        assert scenario["records_fresh"] == scenario["records_frozen"] > 0

    def test_configs_cover_fast_and_general_paths(self):
        assert (2, 0) in REPLAY_CONFIGS
        assert any(g > 0 for _, g in REPLAY_CONFIGS)
