"""Tests for trace analysis and chrome-trace export."""

import json

import pytest

from repro.core import Executor, TraceObserver
from repro.core.tracing import chrome_trace_events, dump_chrome_trace, write_chrome_trace
from repro.sim import CostModel, MachineSpec, SimExecutor
from repro.sim.simulator import SimTaskRecord
from repro.sim.trace import (
    busiest_tasks,
    concurrency_profile,
    peak_concurrency,
    records_from_observer,
    render_gantt,
    summarize,
    utilization_by_resource,
)


def rec(name, type_, resource, start, end):
    return SimTaskRecord(name, type_, resource, start, end)


SAMPLE = [
    rec("a", "host", "core0", 0.0, 1.0),
    rec("b", "host", "core1", 0.0, 2.0),
    rec("k1", "kernel", "gpu0", 1.0, 3.0),
    rec("k2", "kernel", "gpu0", 2.0, 4.0),
    rec("p", "pull", "gpu0", 0.5, 0.75),
]


class TestUtilization:
    def test_busy_accounting(self):
        rows = {u.resource: u for u in utilization_by_resource(SAMPLE)}
        assert rows["core0"].busy == pytest.approx(1.0)
        assert rows["gpu0"].busy == pytest.approx(2.0 + 2.0 + 0.25)

    def test_utilization_fraction(self):
        rows = {u.resource: u for u in utilization_by_resource(SAMPLE, makespan=4.0)}
        assert rows["core1"].utilization == pytest.approx(0.5)

    def test_empty(self):
        assert utilization_by_resource([]) == []


class TestConcurrency:
    def test_profile_levels(self):
        prof = concurrency_profile(SAMPLE, type_filter="kernel")
        # k1 1->3, k2 2->4: level goes 1 at t=1, 2 at t=2, 1 at t=3, 0 at t=4
        assert prof == [(1.0, 1), (2.0, 2), (3.0, 1), (4.0, 0)]

    def test_peak(self):
        assert peak_concurrency(SAMPLE, "kernel") == 2
        assert peak_concurrency(SAMPLE) == 3  # b, k1|p overlap window
        assert peak_concurrency([], "kernel") == 0

    def test_busiest(self):
        top = busiest_tasks(SAMPLE, 2)
        assert {t.name for t in top} == {"k1", "k2"} or top[0].name == "b"
        assert top[0].duration >= top[1].duration


class TestGantt:
    def test_renders_all_resources(self):
        text = render_gantt(SAMPLE, width=40)
        assert "core0" in text and "gpu0" in text
        assert "K" in text and "#" in text

    def test_empty(self):
        assert "empty" in render_gantt([])

    def test_summary(self):
        s = summarize(SAMPLE)
        assert "5 tasks" in s
        assert "kernel=2" in s


class TestObserverAdapters:
    @pytest.fixture
    def observer(self, saxpy_graph):
        hf, *_ = saxpy_graph
        obs = TraceObserver()
        with Executor(2, 1, observers=[obs]) as ex:
            ex.run(hf).result(timeout=30)
        return obs

    def test_records_adapt_and_rebase(self, observer):
        recs = records_from_observer(observer)
        assert len(recs) == 7
        assert min(r.start for r in recs) == pytest.approx(0.0)
        assert any(r.resource.startswith("gpu") for r in recs)

    def test_chrome_trace_structure(self, observer):
        events = chrome_trace_events(observer)
        assert len(events) == 7
        for e in events:
            assert e["ph"] == "X"
            assert e["dur"] > 0
            assert e["cat"] in ("host", "pull", "push", "kernel")

    def test_chrome_trace_roundtrips_json(self, observer):
        parsed = json.loads(dump_chrome_trace(observer))
        assert isinstance(parsed, list) and parsed

    def test_write_chrome_trace(self, observer, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(observer, str(path))
        assert json.loads(path.read_text())

    def test_empty_observer(self):
        assert chrome_trace_events(TraceObserver()) == []
        assert records_from_observer(TraceObserver()) == []


class TestSimTraceEndToEnd:
    def test_sim_trace_feeds_tools(self):
        from repro.core import Heteroflow

        hf = Heteroflow()
        cm = CostModel()
        prev = None
        for i in range(4):
            t = hf.host(lambda: None, name=f"t{i}")
            cm.annotate_host(t, 1.0)
            if prev:
                prev.precede(t)
            prev = t
        rep = SimExecutor(MachineSpec(2, 0), cm, record_trace=True).run(hf)
        rows = utilization_by_resource(rep.trace, rep.makespan)
        assert sum(r.busy for r in rows) == pytest.approx(4.0)
        assert "core0" in render_gantt(rep.trace)
