"""Tests for the report_timing text reports."""

import io

import numpy as np
import pytest

from repro.apps.timing import (
    TimingGraph,
    enumerate_views,
    generate_netlist,
    k_worst_paths,
    report_timing,
    run_sta,
)
from repro.apps.timing.report import report_path


@pytest.fixture
def setup():
    tg = TimingGraph.from_netlist(generate_netlist(120, seed=4))
    return tg, run_sta(tg)


class TestReportPath:
    def test_header_fields(self, setup):
        tg, sta = setup
        p = k_worst_paths(tg, sta, 1)[0]
        text = report_path(tg, sta, p)
        assert f"Endpoint    : node {p.endpoint}" in text
        assert f"Startpoint  : node {p.startpoint}" in text
        assert "Slack" in text

    def test_violated_flag(self, setup):
        tg, sta = setup
        p = k_worst_paths(tg, sta, 1)[0]
        text = report_path(tg, sta, p)
        assert ("VIOLATED" in text) == (p.slack < 0)

    def test_stage_arrival_telescopes(self, setup):
        """The last cumulative arrival equals the path arrival."""
        tg, sta = setup
        p = k_worst_paths(tg, sta, 1)[0]
        text = report_path(tg, sta, p)
        last = text.strip().splitlines()[-1].split()
        assert float(last[-1]) == pytest.approx(p.arrival, abs=5e-3)

    def test_stage_count(self, setup):
        tg, sta = setup
        p = k_worst_paths(tg, sta, 1)[0]
        lines = report_path(tg, sta, p).strip().splitlines()
        stage_lines = [l for l in lines if l.split()[0].isdigit()]
        assert len(stage_lines) == len(p.nodes)

    def test_view_name_in_report(self):
        tg = TimingGraph.from_netlist(generate_netlist(80, seed=1))
        view = enumerate_views(2, seed=1)[0]
        sta = run_sta(tg, view)
        p = k_worst_paths(tg, sta, 1)[0]
        assert view.name in report_path(tg, sta, p)


class TestReportTiming:
    def test_k_blocks(self, setup):
        tg, sta = setup
        text = report_timing(tg, sta, k=3)
        assert text.count("# Path") == 3

    def test_wns_matches_worst_path(self, setup):
        tg, sta = setup
        paths = k_worst_paths(tg, sta, 2)
        text = report_timing(tg, sta, k=2)
        assert f"WNS {paths[0].slack:.3f}" in text

    def test_writes_stream(self, setup):
        tg, sta = setup
        buf = io.StringIO()
        text = report_timing(tg, sta, k=1, stream=buf)
        assert buf.getvalue() == text

    def test_zero_paths(self, setup):
        tg, sta = setup
        text = report_timing(tg, sta, k=0)
        assert "0 path(s)" in text
