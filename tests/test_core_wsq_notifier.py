"""Tests for the work-stealing queue and the eventcount notifier."""

import threading
import time

from hypothesis import given, strategies as st

from repro.core.notifier import Notifier
from repro.core.wsq import WorkStealingQueue


class TestWsqSequential:
    def test_owner_lifo(self):
        q = WorkStealingQueue()
        for i in range(3):
            q.push(i)
        assert [q.pop() for _ in range(3)] == [2, 1, 0]

    def test_thief_fifo(self):
        q = WorkStealingQueue()
        for i in range(3):
            q.push(i)
        assert [q.steal() for _ in range(3)] == [0, 1, 2]

    def test_empty_returns_none(self):
        q = WorkStealingQueue()
        assert q.pop() is None
        assert q.steal() is None
        assert q.empty

    def test_len(self):
        q = WorkStealingQueue()
        q.push("a")
        q.push("b")
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_mixed_ends(self):
        q = WorkStealingQueue()
        for i in range(4):
            q.push(i)
        assert q.steal() == 0  # oldest
        assert q.pop() == 3  # newest
        assert q.steal() == 1
        assert q.pop() == 2


class TestWsqConcurrent:
    def test_no_loss_no_duplication_under_stealing(self):
        """One owner pushes/pops while thieves steal: every item is
        consumed exactly once."""
        q = WorkStealingQueue()
        n = 2000
        consumed = []
        lock = threading.Lock()
        done = threading.Event()

        def owner():
            for i in range(n):
                q.push(i)
                if i % 3 == 0:
                    item = q.pop()
                    if item is not None:
                        with lock:
                            consumed.append(item)
            done.set()

        def thief():
            while not (done.is_set() and q.empty):
                item = q.steal()
                if item is not None:
                    with lock:
                        consumed.append(item)

        threads = [threading.Thread(target=owner)] + [
            threading.Thread(target=thief) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert sorted(consumed) == list(range(n))

    def test_owner_plus_four_thieves_steal_oldest_first(self):
        """1 owner + 4 thieves hammering one queue: every item is
        consumed exactly once, and each thief's stolen sequence is
        strictly increasing — steals always take the oldest remaining
        item, so no thief can ever observe items out of age order."""
        q = WorkStealingQueue()
        n = 5000
        owner_got = []
        done = threading.Event()

        def owner():
            for i in range(n):
                q.push(i)
                if i % 5 == 0:
                    item = q.pop()
                    if item is not None:
                        owner_got.append(item)
            done.set()

        num_thieves = 4
        stolen = [[] for _ in range(num_thieves)]

        def thief(tid):
            while not (done.is_set() and q.empty):
                item = q.steal()
                if item is not None:
                    stolen[tid].append(item)

        threads = [threading.Thread(target=owner)] + [
            threading.Thread(target=thief, args=(t,)) for t in range(num_thieves)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        consumed = owner_got + [x for s in stolen for x in s]
        assert sorted(consumed) == list(range(n)), "items lost or duplicated"
        # the queue front only ever advances, so a single thief's view
        # of it is monotone: any out-of-order pair means a steal
        # returned a non-oldest item
        for tid, seq in enumerate(stolen):
            assert all(a < b for a, b in zip(seq, seq[1:])), (
                f"thief {tid} stole out of age order"
            )
        # with 4 competing thieves against one owner, work must
        # actually have been distributed
        assert sum(len(s) for s in stolen) > 0


@given(st.lists(st.sampled_from(["push", "pop", "steal"]), max_size=200))
def test_wsq_matches_deque_model(ops):
    """Sequential WSQ behaves exactly like a deque with append/pop
    at the bottom and popleft at the top."""
    from collections import deque

    q = WorkStealingQueue()
    model = deque()
    counter = 0
    for op in ops:
        if op == "push":
            q.push(counter)
            model.append(counter)
            counter += 1
        elif op == "pop":
            expected = model.pop() if model else None
            assert q.pop() == expected
        else:
            expected = model.popleft() if model else None
            assert q.steal() == expected
    assert len(q) == len(model)


class TestNotifier:
    def test_notify_before_commit_prevents_sleep(self):
        """The two-phase protocol: a notify between prepare and commit
        makes commit return immediately (no lost wakeup)."""
        n = Notifier()
        epoch = n.prepare_wait()
        n.notify_one()
        start = time.perf_counter()
        n.commit_wait(epoch, timeout=5.0)
        assert time.perf_counter() - start < 1.0

    def test_cancel_wait_decrements(self):
        n = Notifier()
        n.prepare_wait()
        assert n.num_waiters == 1
        n.cancel_wait()
        assert n.num_waiters == 0

    def test_commit_times_out(self):
        n = Notifier()
        epoch = n.prepare_wait()
        start = time.perf_counter()
        n.commit_wait(epoch, timeout=0.05)
        elapsed = time.perf_counter() - start
        assert 0.03 <= elapsed < 2.0
        assert n.num_waiters == 0

    def test_notify_all_wakes_everyone(self):
        n = Notifier()
        woke = []

        def sleeper(i):
            e = n.prepare_wait()
            n.commit_wait(e, timeout=10.0)
            woke.append(i)

        threads = [threading.Thread(target=sleeper, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        # give sleepers time to commit
        for _ in range(100):
            if n.num_waiters == 4:
                break
            time.sleep(0.005)
        n.notify_all()
        for t in threads:
            t.join(timeout=10)
        assert sorted(woke) == [0, 1, 2, 3]

    def test_notify_one_wakes_at_least_one(self):
        n = Notifier()
        woke = threading.Event()

        def sleeper():
            e = n.prepare_wait()
            n.commit_wait(e, timeout=10.0)
            woke.set()

        t = threading.Thread(target=sleeper)
        t.start()
        for _ in range(100):
            if n.num_waiters == 1:
                break
            time.sleep(0.005)
        n.notify_one()
        assert woke.wait(timeout=10)
        t.join()
