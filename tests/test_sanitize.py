"""hfsan runtime sanitizer tests (repro.analysis.sanitize).

The sanitizer swaps recording proxies into task callables, runs the
graph normally, and cross-checks every observed access against the
static effect inference.  These tests cover: clean runs stay clean and
numerically intact, a deliberately-wrong declaration diverges, proxies
uninstall after the run, the frozen path works, the check sweep is
sound, and the footprint predictor stays a single shared definition.
"""

import numpy as np
import pytest

from repro.analysis.sanitize import SCHEMA, SanitizerSession
from repro.check import run_sanitize_sweep
from repro.core import Executor, Heteroflow


def build_saxpy(n=64):
    hf = Heteroflow("saxpy")
    x = np.full(n, 1.0, dtype=np.float32)
    y = np.full(n, 2.0, dtype=np.float32)
    px = hf.pull(x, name="px")
    py = hf.pull(y, name="py")

    def saxpy(ctx, xs, ys):
        ys[:] = 2.0 * xs + ys

    k = (
        hf.kernel(saxpy, px, py, name="k")
        .reads(px)
        .writes(py)
        .grid(1)
        .block(n)
    )
    qy = hf.push(py, y, name="qy")
    k.succeed(px, py)
    k.precede(qy)
    return hf, x, y


@pytest.fixture
def ex():
    with Executor(num_workers=2, num_gpus=1) as e:
        yield e


class TestCleanRun:
    def test_saxpy_sanitized_clean_and_correct(self, ex):
        hf, x, y = build_saxpy()
        fut = ex.run(hf, sanitize=True)
        fut.result(timeout=60)
        rep = fut.sanitize_report
        assert rep is not None and rep.ok
        assert rep.divergences == []
        assert rep.checked_tasks == 1  # pull/push are structural
        np.testing.assert_allclose(y, np.full(64, 4.0, dtype=np.float32))

    def test_report_schema_and_json(self, ex):
        hf, _, _ = build_saxpy()
        fut = ex.run(hf, sanitize=True)
        fut.result(timeout=60)
        doc = fut.sanitize_report.as_dict()
        assert doc["schema"] == SCHEMA
        assert doc["ok"] is True
        fut.sanitize_report.to_json()  # must serialize

    def test_unsanitized_run_has_no_report(self, ex):
        hf, _, _ = build_saxpy()
        fut = ex.run(hf)
        fut.result(timeout=60)
        assert not hasattr(fut, "sanitize_report")

    def test_host_captured_objects_proxied_and_observed(self, ex):
        hf = Heteroflow("hosts")
        log = []
        a = hf.host(lambda: log.append("a"), name="a")
        b = hf.host(lambda: log.append("b"), name="b")
        a.precede(b)
        fut = ex.run(hf, sanitize=True)
        fut.result(timeout=60)
        rep = fut.sanitize_report
        assert rep.ok and rep.proxied_objects == 1
        assert log == ["a", "b"]  # same object, order preserved

    def test_composes_with_metrics(self, ex):
        hf, _, _ = build_saxpy()
        fut = ex.run(hf, sanitize=True, metrics=True)
        fut.result(timeout=60)
        assert fut.sanitize_report.ok
        assert fut.run_report is not None


class TestDivergence:
    def test_mutant_deleted_writes_diverges(self, ex):
        # runtime analogue of the HF014 mutant: strip the writes()
        # declaration so inference predicts read-only, then observe
        # the kernel writing anyway
        hf, _, _ = build_saxpy()
        node = next(n for n in hf.nodes if n.name == "k")
        node.kernel_reads = frozenset(node.kernel_reads | node.kernel_writes)
        node.kernel_writes = frozenset()
        fut = ex.run(hf, sanitize=True)
        fut.result(timeout=60)
        rep = fut.sanitize_report
        assert not rep.ok
        kinds = {d.kind for d in rep.divergences}
        assert "undeclared-span-write" in kinds


class TestProxyLifecycle:
    def test_captured_objects_restored_after_run(self, ex):
        state = {"hits": 0}

        def bump():
            state["hits"] = state["hits"] + 1

        hf = Heteroflow("restore")
        hf.host(bump, name="h")
        fut = ex.run(hf, sanitize=True)
        fut.result(timeout=60)
        # the closure cell must hold the original dict again
        (cell,) = bump.__closure__
        assert cell.cell_contents is state
        assert state == {"hits": 1}

    def test_uninstall_is_idempotent(self):
        state = []

        def touch():
            state.append(1)

        hf = Heteroflow("once")
        hf.host(touch, name="h")
        session = SanitizerSession(hf)
        session.uninstall()
        session.uninstall()
        (cell,) = touch.__closure__
        assert cell.cell_contents is state


class TestFrozenPath:
    def test_frozen_graph_sanitizes(self, ex):
        hf, _, y = build_saxpy()
        hf.freeze()
        fut = ex.run(hf, sanitize=True)
        fut.result(timeout=60)
        assert fut.sanitize_report.ok
        np.testing.assert_allclose(y, np.full(64, 4.0, dtype=np.float32))


class TestSweep:
    def test_sweep_smoke_is_clean(self):
        report = run_sanitize_sweep(3, num_workers=2, num_gpus=1)
        assert report.ok, report.violations[:5]
        assert report.num_runs == 3
        assert report.num_divergences == 0
        doc = report.as_dict()
        assert doc["schema"] == "repro.sanitize-sweep/1"


class TestFootprintSingleDefinition:
    def test_admission_reuses_the_analyzer_predictor(self):
        from repro.analysis.model import predicted_footprint_bytes as a
        from repro.service.admission import predicted_footprint_bytes as b

        assert a is b

    def test_footprint_matches_on_a_graph(self):
        from repro.analysis.model import predicted_footprint_bytes

        hf, _, _ = build_saxpy()
        assert predicted_footprint_bytes(hf) > 0
