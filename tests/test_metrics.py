"""Metrics registry, executor counters, RunReport, and the profile CLI.

Covers the observability surface of docs/observability.md: the
lock-cheap instrument primitives, exact counter values on a
deterministic single-worker schedule, RunReport invariants (measured
critical path bounded by wall time), the schema-v1 golden, chrome-trace
edge cases, and ``python -m repro profile``.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.check.validate import validate_schedule
from repro.core import Executor, Heteroflow, TraceObserver
from repro.core.tracing import chrome_trace_events
from repro.gpu.buddy import BuddyAllocator
from repro.metrics import (
    RUN_REPORT_SCHEMA,
    CriticalPathEntry,
    LaneUtilization,
    RunReport,
    build_run_report,
    render_report_text,
)
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    LaneCounter,
    MaxGauge,
    MetricsRegistry,
)


# ---------------------------------------------------------------------
# registry primitives
# ---------------------------------------------------------------------
class TestRegistryPrimitives:
    def test_counter_concurrent_increments(self):
        c = Counter("t")
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            for _ in range(5000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8 * 5000

    def test_counter_weighted(self):
        c = Counter()
        c.inc(10)
        c.inc(2.5)
        assert c.value == 12.5

    def test_lane_counter(self):
        lc = LaneCounter(3, "lanes")
        lc.inc(0)
        lc.inc(2, 5)
        assert lc.per_lane() == [1, 0, 5]
        assert lc.value == 6

    def test_gauge_and_max_gauge(self):
        g = Gauge("g")
        g.set(3)
        g.set(1)
        assert g.value == 1
        mg = MaxGauge("m")
        assert mg.value == 0  # empty
        mg.observe(4)
        mg.observe(2)
        assert mg.value == 4

    def test_histogram_buckets_upper_inclusive(self):
        h = Histogram("h", bounds=[1.0, 10.0])
        for v in (0.5, 1.0, 5.0, 10.0, 99.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(115.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 99.0
        # bounds are upper-inclusive: 1.0 -> first bucket, 10.0 -> second
        assert snap["buckets"] == [2, 2, 1]

    def test_histogram_empty(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_registry_idempotent_and_typed(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x")
        assert reg.counter("x") is c1
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_shapes_and_callbacks(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.lane_counter("l", 2).inc(1)
        reg.histogram("h").observe(0.5)
        reg.register_callback("cb", lambda: {"nested": 7})
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["l"] == [0, 1]
        assert snap["h"]["count"] == 1
        assert snap["cb"] == {"nested": 7}


# ---------------------------------------------------------------------
# executor counters
# ---------------------------------------------------------------------
def _diamond():
    hf = Heteroflow("diamond")
    a = hf.host(lambda: None, name="a")
    b = hf.host(lambda: None, name="b")
    c = hf.host(lambda: None, name="c")
    d = hf.host(lambda: None, name="d")
    a.precede(b, c)
    d.succeed(b, c)
    return hf


class TestExecutorCounters:
    def test_single_worker_exact_counts(self):
        """One worker makes the pop accounting fully deterministic:
        the submitter pushes the single source to the shared queue, and
        every released successor lands on the worker's local queue."""
        with Executor(num_workers=1, num_gpus=0) as ex:
            ex.run(_diamond()).result()
            snap = ex.metrics.snapshot()
        assert snap["executor.tasks_executed"] == [4]
        assert snap["executor.tasks_flushed"] == [0]
        assert snap["executor.shared_pops"] == [1]  # the source
        assert snap["executor.local_pops"] == [3]  # b, c, d
        # the victim-steal loop never runs with one worker
        assert snap["executor.steals_attempted"] == [0]
        assert snap["executor.steals_succeeded"] == [0]
        # a's completion releases b and c back-to-back: depth 2
        assert snap["executor.queue_high_water"] == [2]
        assert snap["executor.shared_queue_high_water"] == 1
        assert snap["executor.notify_count"] >= 1

    def test_pop_conservation_multi_worker(self):
        """Every executed task was obtained by exactly one pop path."""
        hf = Heteroflow("wide")
        for _ in range(50):
            hf.host(lambda: None)
        with Executor(num_workers=3, num_gpus=0) as ex:
            ex.run(hf).result()
            ex.wait_for_all()
            snap = ex.metrics.snapshot()
        assert sum(snap["executor.tasks_executed"]) == 50
        for wid in range(3):
            assert (
                snap["executor.tasks_executed"][wid]
                + snap["executor.tasks_flushed"][wid]
                == snap["executor.local_pops"][wid]
                + snap["executor.shared_pops"][wid]
                + snap["executor.steals_succeeded"][wid]
            )

    def test_sleep_wakeup_pairing(self):
        with Executor(num_workers=2, num_gpus=0) as ex:
            ex.run(_diamond()).result()
            snap = ex.metrics.snapshot()
        sleeps, wakeups = snap["executor.sleeps"], snap["executor.wakeups"]
        for s, w in zip(sleeps, wakeups):
            # a worker currently asleep has committed one more time
            # than it has returned
            assert w <= s <= w + 1

    def test_gpu_device_stats(self):
        from repro.analysis.corpus import build_saxpy

        hf, x, y, n = build_saxpy()
        with Executor(num_workers=2, num_gpus=1) as ex:
            ex.run(hf).result()
            snap = ex.metrics.snapshot()
        gpu = snap["gpu0"]
        assert gpu["kernel_launches"] == 1
        assert gpu["h2d_bytes"] > 0 and gpu["d2h_bytes"] > 0
        assert gpu["ops_executed"] >= 5  # 2 pulls + 1 kernel + 2 pushes
        assert gpu["busy_seconds"] >= 0.0
        pool = gpu["pool"]
        assert pool["outstanding"] == 0  # buffers released at finalize
        assert pool["allocs"] == pool["frees"] == 2
        assert pool["bytes_in_use"] == 0
        assert pool["peak_bytes"] > 0


# ---------------------------------------------------------------------
# replay.* counters (docs/runtime.md, "Freeze and replay")
# ---------------------------------------------------------------------
class TestReplayCounters:
    def test_fast_path_exact_counts(self):
        """Host-only replays: every counter value is fully determined
        by the submission sequence."""
        frozen = _diamond().freeze()
        with Executor(num_workers=1, num_gpus=0) as ex:
            for _ in range(3):
                ex.run(frozen).result()  # 3 submissions, 1 pass each
            ex.run_n(frozen, 4).result()  # 1 submission, 4 passes
            snap = ex.metrics.snapshot()
        # one cache entry compiled on first submission, reused after
        assert snap["replay.cache_misses"] == 1
        assert snap["replay.cache_hits"] == 3
        # one plan reuse per dispatched pass: 3*1 + 4
        assert snap["replay.plan_reuses"] == 7
        # every submission was fast-path eligible
        assert snap["replay.fast_path"] == 4
        # one latency observation per finished submission
        hist = snap["replay.latency_seconds"]
        assert hist["count"] == 4
        assert hist["min"] > 0.0
        assert hist["sum"] >= 4 * hist["min"]
        # fast-path tasks still feed the per-worker execution lanes
        assert snap["executor.tasks_executed"] == [4 * 7]

    def test_general_path_counts_and_no_fast_increment(self):
        import numpy as np

        data = np.zeros(8)
        hf = Heteroflow("gpu")
        pull = hf.pull(data, name="pull")
        kern = hf.kernel(lambda x: None, pull, name="k").succeed(pull)
        hf.push(pull, data, name="push").succeed(kern)
        frozen = hf.freeze()
        with Executor(num_workers=1, num_gpus=1) as ex:
            for _ in range(2):
                ex.run(frozen).result()
            snap = ex.metrics.snapshot()
        assert snap["replay.cache_misses"] == 1
        assert snap["replay.cache_hits"] == 1
        assert snap["replay.plan_reuses"] == 2
        assert snap["replay.fast_path"] == 0  # GPU graphs are not fast
        assert snap["replay.latency_seconds"]["count"] == 2

    def test_fresh_runs_leave_replay_counters_zero(self):
        with Executor(num_workers=1, num_gpus=0) as ex:
            ex.run(_diamond()).result()
            snap = ex.metrics.snapshot()
        assert snap["replay.cache_hits"] == 0
        assert snap["replay.cache_misses"] == 0
        assert snap["replay.plan_reuses"] == 0
        assert snap["replay.fast_path"] == 0
        assert snap["replay.latency_seconds"]["count"] == 0

    def test_distinct_frozen_graphs_get_distinct_cache_entries(self):
        f1 = _diamond().freeze()
        f2 = _diamond().freeze()
        with Executor(num_workers=1, num_gpus=0) as ex:
            ex.run(f1).result()
            ex.run(f2).result()
            ex.run(f1).result()
            ex.run(f2).result()
            snap = ex.metrics.snapshot()
        assert snap["replay.cache_misses"] == 2  # one compile per fid
        assert snap["replay.cache_hits"] == 2


# ---------------------------------------------------------------------
# buddy-pool counters
# ---------------------------------------------------------------------
class TestBuddyCounters:
    def test_split_and_merge_counts(self):
        b = BuddyAllocator(1024, min_block=256)
        off = b.allocate(256)  # 1024 -> 512+512 -> 256+256
        assert b.num_splits == 2
        assert b.num_allocs == 1
        b.free(off)
        assert b.num_merges == 2
        assert b.num_frees == 1
        assert b.fully_coalesced

    def test_fragmentation_measure(self):
        b = BuddyAllocator(1024, min_block=256)
        assert b.fragmentation() == 0.0  # one whole free block
        a = b.allocate(256)
        b.allocate(256)
        b.free(a)  # free: 256 @ 0 and 512 @ 512 (buddy still live)
        assert b.free_bytes == 768
        assert b.largest_free_block == 512
        assert b.fragmentation() == pytest.approx(1 - 512 / 768)
        stats = b.stats()
        assert stats["splits"] == 2 and stats["merges"] == 0
        assert stats["capacity"] == 1024

    def test_heap_stats_layering(self):
        from repro.gpu.device import Device

        dev = Device(0, memory_bytes=1 << 20)
        try:
            buf = dev.allocate(1000)
            stats = dev.heap.stats()
            assert stats["buffer_allocs"] == 1
            assert stats["outstanding"] == 1
            assert stats["bytes_in_use"] == 1024  # block-rounded
            buf.free()
            assert dev.heap.stats()["outstanding"] == 0
        finally:
            dev.destroy()


class TestStreamBusy:
    def test_busy_seconds_accumulates(self):
        import time as _time

        from repro.gpu.device import GpuRuntime

        with GpuRuntime(1) as rt:
            s = rt.device(0).create_stream()
            s.enqueue(lambda: _time.sleep(0.02))
            s.synchronize()
            assert s.ops_executed >= 1
            assert s.busy_seconds >= 0.01


# ---------------------------------------------------------------------
# chrome-trace edge cases
# ---------------------------------------------------------------------
class TestChromeTrace:
    def test_empty_observer(self):
        assert chrome_trace_events(TraceObserver()) == []

    def test_host_only_run_uses_worker_lanes(self):
        obs = TraceObserver()
        with Executor(num_workers=1, num_gpus=0, observers=[obs]) as ex:
            ex.run(_diamond()).result()
        events = chrome_trace_events(obs)
        assert len(events) == 4
        assert all(e["tid"] == "worker0" for e in events)
        assert all(e["ph"] == "X" for e in events)


# ---------------------------------------------------------------------
# RunReport
# ---------------------------------------------------------------------
class TestRunReport:
    def test_metrics_run_invariants(self):
        from repro.analysis.corpus import BUILTIN_CORPUS

        hf = BUILTIN_CORPUS["timing"]()
        obs = TraceObserver()
        with Executor(num_workers=2, num_gpus=2, observers=[obs]) as ex:
            fut = ex.run(hf, metrics=True)
            fut.result()
        rep = fut.run_report
        assert rep is not None
        # the acceptance invariant: measured critical path is a lower
        # bound on the run
        assert 0 < rep.critical_path_length <= rep.wall_time
        # every task on the critical path has zero slack
        for entry in rep.critical_path:
            assert rep.slack[entry.nid] == 0.0
        # per-task counts agree with the schedule validator's view of
        # the same run (our own observer saw the identical schedule)
        vreport = validate_schedule(hf, obs.records, num_gpus=2)
        vreport.raise_if_failed()
        assert rep.num_records == vreport.num_records
        assert sum(rep.tasks_by_type.values()) == rep.num_records
        # lanes cover every record
        assert sum(l.tasks for l in rep.lanes) == rep.num_records
        # text rendering mentions the workload and the path
        text = render_report_text(rep)
        assert "critical path" in text and rep.workload in text

    def test_report_attached_on_failure(self):
        hf = Heteroflow("boom")
        ok = hf.host(lambda: None, name="ok")
        bad = hf.host(lambda: 1 / 0, name="bad")
        ok.precede(bad)
        with Executor(num_workers=1, num_gpus=0) as ex:
            fut = ex.run(hf, metrics=True)
            with pytest.raises(ZeroDivisionError):
                fut.result()
        assert fut.run_report is not None
        assert fut.run_report.num_records >= 1  # 'ok' ran

    def test_schema_v1_golden(self):
        """Pins the serialized layout; renames require a schema bump."""
        rep = RunReport(
            workload="w",
            wall_time=2.0,
            num_workers=2,
            num_gpus=1,
            passes=1,
            num_records=2,
            tasks_by_type={"host": 2},
            lanes=[LaneUtilization("worker0", 2, 1.0, 0.5)],
            critical_path_length=1.5,
            critical_path=[CriticalPathEntry("a", 0, "host", 1.5)],
            slack={0: 0.0, 1: 0.5},
            tasks_per_worker=[2, 0],
            steals_attempted=[1, 3],
            steals_succeeded=[0, 1],
            tasks_per_device={0: 1},
            counters={"executor.tasks_executed": [2, 0]},
        )
        assert rep.to_dict() == {
            "schema": "repro.run-report/1",
            "workload": "w",
            "wall_time": 2.0,
            "num_workers": 2,
            "num_gpus": 1,
            "passes": 1,
            "num_records": 2,
            "tasks_by_type": {"host": 2},
            "lanes": [
                {"lane": "worker0", "tasks": 2, "busy": 1.0, "utilization": 0.5}
            ],
            "critical_path": {
                "length": 1.5,
                "tasks": [
                    {"name": "a", "nid": 0, "type": "host", "duration": 1.5}
                ],
            },
            "slack": {"0": 0.0, "1": 0.5},
            "steals": {
                "tasks_per_worker": [2, 0],
                "attempted": [1, 3],
                "succeeded": [0, 1],
            },
            "placement": {"tasks_per_device": {"0": 1}},
            "counters": {"executor.tasks_executed": [2, 0]},
            "events": [],
        }
        assert RUN_REPORT_SCHEMA == "repro.run-report/1"
        assert json.loads(rep.to_json())["schema"] == RUN_REPORT_SCHEMA

    def test_build_report_empty_records(self):
        hf = _diamond()
        rep = build_run_report(
            hf, [], wall_time=0.0, num_workers=1, num_gpus=0
        )
        assert rep.num_records == 0
        assert rep.critical_path_length == 0.0
        assert rep.critical_path == []
        assert rep.lanes == []
        render_report_text(rep)  # must not raise on the degenerate case


# ---------------------------------------------------------------------
# the profile CLI
# ---------------------------------------------------------------------
class TestProfileCli:
    def test_profile_json_schema(self, capsys):
        assert main(["profile", "timing", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == RUN_REPORT_SCHEMA
        assert doc["workload"] == "timing"
        assert doc["critical_path"]["length"] <= doc["wall_time"]
        assert doc["num_records"] > 0
        assert sum(doc["tasks_by_type"].values()) == doc["num_records"]

    def test_profile_text_and_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["profile", "saxpy", "--trace", str(out)]) == 0
        captured = capsys.readouterr()
        assert "RunReport: saxpy" in captured.out
        events = json.loads(out.read_text())
        assert len(events) == 7  # saxpy's seven tasks
        assert {e["tid"] for e in events} >= {"worker0"} | {
            e["tid"] for e in events if e["tid"].startswith("gpu")
        }
