"""Tests for the durable submission journal (:mod:`repro.durability`).

Pure file-level tests — no gateway, no spawned processes (those live in
tests/test_gateway_durability.py).  The property-style classes sweep
seeded random record batches through the codec and the journal under
truncation, bit flips, and scheduled system-call faults: every torn
tail must truncate cleanly, every flipped bit must be rejected by the
checksum, and every injected fault must surface as a structured
:class:`~repro.errors.JournalWriteError` with the record rolled back.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.durability import (
    FaultyOs,
    FsckReport,
    Journal,
    encode_record,
    fsck,
    scan_bytes,
    segment_index,
    segment_name,
)
from repro.durability.journal import FRAME_OVERHEAD
from repro.errors import JournalCorruptError, JournalError, JournalWriteError


def _record(rng: random.Random, seq: int) -> dict:
    return {
        "kind": "accepted",
        "seq": seq,
        "jid": seq,
        "key": f"k{seq}" if rng.random() < 0.5 else "",
        "target": rng.choice(("spec", "frozen", "instance")),
        "payload": rng.randbytes(rng.randint(0, 200)),
    }


def _fill(journal: Journal, n: int, *, settle: int = 0) -> None:
    for i in range(n):
        journal.append_accepted(key=f"k{i}", target="spec", tenant="t")
    for jid in range(1, settle + 1):
        journal.append_settled(jid, outcome="completed")


class TestCodec:
    def test_roundtrip_random_batches(self):
        for seed in range(8):
            rng = random.Random(seed)
            records = [_record(rng, s) for s in range(1, rng.randint(2, 30))]
            blob = b"".join(encode_record(r) for r in records)
            scanned, good_end, problem = scan_bytes(blob)
            assert problem is None
            assert good_end == len(blob)
            assert [r for _off, r in scanned] == records

    def test_truncation_at_every_boundary(self):
        """A torn tail at ANY byte offset yields exactly the records
        whose frames are complete — never an exception, never a
        half-parsed record."""
        rng = random.Random(42)
        records = [_record(rng, s) for s in range(1, 6)]
        frames = [encode_record(r) for r in records]
        blob = b"".join(frames)
        ends = [0]
        for f in frames:
            ends.append(ends[-1] + len(f))
        for cut in range(len(blob) + 1):
            scanned, good_end, problem = scan_bytes(blob[:cut])
            complete = sum(1 for e in ends[1:] if e <= cut)
            assert len(scanned) == complete
            assert good_end == ends[complete]
            assert (problem is None) == (cut == ends[complete])

    def test_bit_flips_rejected(self):
        rng = random.Random(7)
        records = [_record(rng, s) for s in range(1, 10)]
        blob = bytearray(b"".join(encode_record(r) for r in records))
        for _ in range(32):
            pos = rng.randrange(len(blob))
            flipped = bytearray(blob)
            flipped[pos] ^= 1 << rng.randrange(8)
            scanned, _good_end, problem = scan_bytes(bytes(flipped))
            # the flip must cost records from its frame onward, and the
            # scan must flag the damage — silent acceptance is the bug
            assert problem is not None
            assert len(scanned) < len(records)

    def test_segment_names(self):
        assert segment_name(3) == "seg-00000003.wal"
        assert segment_index("seg-00000003.wal") == 3
        assert segment_index("other.txt") is None

    def test_spec_payloads_roundtrip_restricted(self):
        # the allowlisted spec classes decode normally
        from repro.gateway.spec import BurstSpec, GeneratedSpec

        rec = {
            "kind": "accepted", "seq": 1, "jid": 1,
            "spec": GeneratedSpec(seed=3, num_gpus=1),
            "extra": (BurstSpec(width=2), frozenset({1, 2})),
        }
        scanned, good_end, problem = scan_bytes(encode_record(rec))
        assert problem is None
        assert scanned[0][1]["spec"] == GeneratedSpec(seed=3, num_gpus=1)

    def test_malicious_frame_is_rejected_not_executed(self, tmp_path):
        # a crafted, CRC-valid frame naming a global outside the
        # allowlist must surface as a "pickle" problem — the payload is
        # never imported or executed, even by read-only fsck
        pwned = tmp_path / "pwned"

        class Evil:
            def __reduce__(self):
                return (os.mkdir, (str(pwned),))

        evil = encode_record({"kind": "accepted", "seq": 2, "spec": Evil()})
        scanned, _good_end, problem = scan_bytes(evil)
        assert problem is not None and problem[0] == "pickle"
        assert scanned == [] and not pwned.exists()

        # planted in a sealed (non-final) segment it is corruption:
        # fsck flags it, open() refuses — and neither executes it
        jdir = tmp_path / "j"
        jdir.mkdir()
        (jdir / segment_name(1)).write_bytes(
            encode_record(
                {"kind": "segment_header", "index": 1, "compact": False,
                 "seq": 1}
            )
            + evil
        )
        (jdir / segment_name(2)).write_bytes(
            encode_record(
                {"kind": "segment_header", "index": 2, "compact": False,
                 "seq": 3}
            )
        )
        report = fsck(str(jdir))
        assert not report.clean
        assert report.corruptions[0].kind == "pickle"
        with pytest.raises(JournalCorruptError):
            Journal(str(jdir)).open()
        assert not pwned.exists()


class TestJournal:
    def test_append_reopen_rebuilds_state(self, tmp_path):
        path = str(tmp_path / "j")
        j = Journal(path, fsync_policy="never")
        j.open()
        j.append_frozen(1, {"spec": "burst"})
        _fill(j, 6, settle=4)
        j.close()

        j2 = Journal(path)
        j2.open()
        assert j2.counts() == {
            "entries": 6, "settled": 4, "unsettled": 2, "frozen": 1
        }
        assert [e.jid for e in j2.unsettled()] == [5, 6]
        assert j2.lookup("k2") == 3
        assert j2.get(1).settled["outcome"] == "completed"
        assert j2.next_fid == 2
        # appends continue after the replayed sequence
        jid = j2.append_accepted(key="fresh", target="spec")
        assert jid == 7
        j2.close()

    def test_exactly_once_refusals(self, tmp_path):
        j = Journal(str(tmp_path / "j"), fsync_policy="never")
        j.open()
        jid = j.append_accepted(key="once", target="spec")
        j.append_settled(jid, outcome="completed")
        with pytest.raises(JournalError, match="exactly-once"):
            j.append_settled(jid, outcome="failed")
        with pytest.raises(JournalError, match="already journaled"):
            j.append_accepted(key="once", target="spec")
        with pytest.raises(JournalError, match="unknown jid"):
            j.append_settled(99, outcome="completed")
        j.close()

    def test_rotation_and_compaction(self, tmp_path):
        # compact_retain_keyed=False bounds the dedupe window: every
        # settled entry is dropped, keyed or not
        path = str(tmp_path / "j")
        j = Journal(
            path, fsync_policy="never", segment_max_bytes=512,
            auto_compact=False, compact_retain_keyed=False,
        )
        j.open()
        j.append_frozen(1, {"w": 8})
        _fill(j, 20, settle=17)
        assert j._num_segments() > 1
        dropped = j.compact()
        assert dropped == 17
        j.close()

        j2 = Journal(path)
        j2.open()
        # settled history is gone, live state survives
        assert j2.counts()["entries"] == 3
        assert j2.counts()["unsettled"] == 3
        assert j2.frozen_specs == {1: {"w": 8}}
        assert {e.key for e in j2.unsettled()} == {"k17", "k18", "k19"}
        j2.close()

    def test_compaction_retains_keyed_dedupe(self, tmp_path):
        # the default: keyed settlements survive compaction, so a
        # replayed idempotency key keeps returning the journaled
        # Result; only unkeyed settled history is dropped
        path = str(tmp_path / "j")
        j = Journal(path, fsync_policy="never", auto_compact=False)
        j.open()
        _fill(j, 4, settle=4)  # keyed k0..k3, all settled
        unkeyed = [j.append_accepted(target="spec") for _ in range(3)]
        for jid in unkeyed:
            j.append_settled(jid, outcome="completed")
        live = j.append_accepted(key="live", target="spec")
        dropped = j.compact()
        assert dropped == 3  # the unkeyed settlements, nothing else
        assert j.counts() == {
            "entries": 5, "settled": 4, "unsettled": 1, "frozen": 0
        }
        j.close()

        j2 = Journal(path)
        j2.open()
        for i in range(4):
            jid = j2.lookup(f"k{i}")
            assert jid is not None
            assert j2.get(jid).settled["outcome"] == "completed"
        assert all(j2.get(jid) is None for jid in unkeyed)
        assert [e.jid for e in j2.unsettled()] == [live]
        # a second compaction keeps carrying the keyed settlements
        assert j2.compact() == 0
        assert j2.lookup("k0") is not None
        j2.close()
        assert fsck(path).clean

    def test_crash_mid_compaction_residue_is_harmless(self, tmp_path):
        # a crash between "start writing the compact segment" and the
        # commit rename leaves only a *.tmp file: the old generation is
        # untouched, open() keeps every record and removes the residue
        path = str(tmp_path / "j")
        j = Journal(path, fsync_policy="never")
        j.open()
        j.append_frozen(1, {"w": 2})
        _fill(j, 6, settle=4)
        j.close()
        # fabricate the residue: a header-only compact segment that
        # never got renamed into place
        tmp = tmp_path / "j" / (segment_name(2) + ".tmp")
        tmp.write_bytes(encode_record(
            {"kind": "segment_header", "index": 2, "compact": True,
             "seq": 999}
        ))
        pre = fsck(path)
        assert pre.clean and pre.tmp_segments == 1
        assert pre.accepted == 6 and pre.settled == 4

        j2 = Journal(path)
        j2.open()
        assert j2.open_report.tmp_removed == 1
        assert j2.counts() == {
            "entries": 6, "settled": 4, "unsettled": 2, "frozen": 1
        }
        assert not tmp.exists()
        j2.close()
        assert fsck(path).tmp_segments == 0

    def test_compaction_write_failure_rolls_back(self, tmp_path):
        # a device fault mid-compaction must abort the whole pass:
        # tmp removed, appends resume on the old generation, no record
        # lost — never a partial compact generation
        path = str(tmp_path / "j")
        j = Journal(
            path, os_impl=FaultyOs(fail_write_at=9),
            fsync_policy="always", auto_compact=False,
        )
        j.open()
        _fill(j, 5, settle=2)  # writes 1-8: header + 5 accepted + 2 settled
        with pytest.raises(JournalWriteError):
            j.compact()  # write 9 is the compact segment's header
        assert not any(
            n.endswith(".tmp") for n in os.listdir(path)
        )
        # the journal keeps working on the old generation...
        j.append_accepted(key="after", target="spec")
        # ...and a retried compaction succeeds (transient device)
        assert j.compact() == 0  # keyed settlements are retained
        j.close()

        j2 = Journal(path)
        j2.open()
        assert j2.counts() == {
            "entries": 6, "settled": 2, "unsettled": 4, "frozen": 0
        }
        assert j2.lookup("after") == 6
        j2.close()
        assert fsck(path).clean

    def test_torn_tail_truncated_on_open(self, tmp_path):
        path = str(tmp_path / "j")
        j = Journal(path, fsync_policy="never")
        j.open()
        _fill(j, 5)
        j.close()
        seg = tmp_path / "j" / segment_name(1)
        with open(seg, "ab") as fh:
            fh.write(b"\xa6\x5c\xff\xff")  # marker + torn header
        size_torn = seg.stat().st_size

        j2 = Journal(path)
        j2.open()
        assert j2.open_report.torn_truncations == 1
        assert j2.counts()["entries"] == 5
        assert seg.stat().st_size == size_torn - 4
        j2.close()

    def test_corruption_mid_log_refuses_open(self, tmp_path):
        path = str(tmp_path / "j")
        j = Journal(path, fsync_policy="never", segment_max_bytes=512)
        j.open()
        _fill(j, 20)
        assert j._num_segments() > 1
        j.close()
        first = tmp_path / "j" / segment_name(1)
        data = bytearray(first.read_bytes())
        data[len(data) // 2] ^= 0x40
        first.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError):
            Journal(path).open()
        report = fsck(path)
        assert not report.clean
        assert report.corruptions[0].segment == segment_name(1)

    def test_fsync_policy_validation(self, tmp_path):
        with pytest.raises(JournalError, match="fsync_policy"):
            Journal(str(tmp_path / "j"), fsync_policy="sometimes")


class TestFaultInjection:
    @pytest.mark.parametrize("fault,reason", [
        ("fail_fsync_at", "fsync"),
        ("short_write_at", "short_write"),
        ("fail_write_at", "write"),
        ("enospc_at", "enospc"),
    ])
    def test_scheduled_fault_is_structured_and_rolled_back(
        self, tmp_path, fault, reason
    ):
        for seed in range(4):
            rng = random.Random(seed)
            n = rng.randint(4, 12)
            at = rng.randint(3, n + 1)  # ordinal 1 is the segment header
            path = str(tmp_path / f"{fault}-{seed}")
            shim = FaultyOs(**{fault: at})
            j = Journal(path, os_impl=shim, fsync_policy="always")
            j.open()
            failures = 0
            for i in range(n):
                try:
                    j.append_accepted(key=f"k{i}", target="spec")
                except JournalWriteError as exc:
                    assert exc.reason == reason
                    failures += 1
                    # transient device (once=True): the retry commits
                    j.append_accepted(key=f"k{i}", target="spec")
            j.close()
            assert failures == 1 and shim.injected == [reason]

            j2 = Journal(path)
            j2.open()
            # the failed append never half-committed; the retry did
            assert j2.counts()["entries"] == n
            assert [j2.lookup(f"k{i}") for i in range(n)] == list(
                range(1, n + 1)
            )
            j2.close()
            assert fsck(path).clean

    def test_persistent_enospc_keeps_refusing(self, tmp_path):
        shim = FaultyOs(enospc_at=3, once=False)
        j = Journal(str(tmp_path / "j"), os_impl=shim, fsync_policy="always")
        j.open()
        j.append_accepted(key="a", target="spec")
        for _ in range(3):
            with pytest.raises(JournalWriteError) as ei:
                j.append_accepted(key="b", target="spec")
            assert ei.value.reason == "enospc"
        j.close()
        j2 = Journal(str(tmp_path / "j"))
        j2.open()
        assert j2.counts()["entries"] == 1
        j2.close()


class TestFsck:
    def test_clean_and_drained(self, tmp_path):
        path = str(tmp_path / "j")
        j = Journal(path, fsync_policy="never")
        j.open()
        j.append_frozen(1, {"w": 2})
        _fill(j, 4, settle=4)
        j.close()
        report = fsck(path)
        assert report.clean and report.drained
        assert (report.accepted, report.settled, report.frozen) == (4, 4, 1)
        assert report.record_kinds["segment_header"] == 1
        assert "clean" in report.render_text()
        assert report.to_dict()["schema"].startswith("repro.fsck")

    def test_unsettled_reported(self, tmp_path):
        path = str(tmp_path / "j")
        j = Journal(path, fsync_policy="never")
        j.open()
        _fill(j, 3, settle=1)
        j.close()
        report = fsck(path)
        assert report.clean and not report.drained
        assert report.unsettled == [(2, "k1"), (3, "k2")]

    def test_missing_directory(self, tmp_path):
        report = fsck(str(tmp_path / "nope"))
        assert not report.clean
        assert report.corruptions[0].kind == "missing"

    def test_property_random_batches_with_damage(self, tmp_path):
        """Random journals + random damage: fsck must agree with what
        open() would do — count every intact record, flag every tear."""
        for seed in range(6):
            rng = random.Random(seed)
            path = str(tmp_path / f"p{seed}")
            j = Journal(path, fsync_policy="never", segment_max_bytes=2048)
            j.open()
            n = rng.randint(5, 25)
            _fill(j, n, settle=rng.randint(0, n))
            j.close()
            clean = fsck(path)
            assert clean.clean and clean.accepted == n

            segs = sorted(
                p for p in os.listdir(path) if segment_index(p) is not None
            )
            final = os.path.join(path, segs[-1])
            with open(final, "ab") as fh:
                fh.write(rng.randbytes(rng.randint(1, FRAME_OVERHEAD + 8)))
            damaged = fsck(path)
            # a torn FINAL tail is recoverable, never corruption
            assert damaged.clean
            assert damaged.torn_tail_bytes > 0
            j2 = Journal(path)
            j2.open()
            assert j2.counts()["entries"] == n
            assert j2.open_report.torn_truncations == 1
            j2.close()
            assert fsck(path).torn_tail_bytes == 0
