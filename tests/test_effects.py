"""Effect-inference engine tests (repro.analysis.effects).

Edge cases the bytecode walker must get right: nested closures,
comprehensions, conditional branches, *args forwarding, method
references, span-argument rebinding, and nondeterminism detection —
including bound builtin methods whose ``__module__`` is None.
"""

import random
import threading
import time
import uuid

import numpy as np

from repro.analysis import (
    infer_callable_effects,
    infer_task_effects,
)
from repro.core import Heteroflow


def span_effects(fn, nargs=1):
    """Bind *fn* as a kernel over *nargs* pulls; return {name: RootEffect}."""
    hf = Heteroflow("probe")
    pulls = [
        hf.pull(np.zeros(8, dtype=np.float32), name=f"p{i}")
        for i in range(nargs)
    ]
    k = hf.kernel(fn, *pulls, name="k").grid(1).block(8)
    te = infer_task_effects(k.node)
    return {pull.name: eff for pull, eff in te.span.items()}


class TestSpanParams:
    def test_subscript_store_is_confident_write(self):
        def fn(ctx, xs):
            xs[0] = 1.0

        eff = span_effects(fn)["p0"]
        assert eff.writes and eff.confident and not eff.escapes
        assert [m.kind for m in eff.mutations] == ["setitem"]

    def test_slice_store_is_whole_object_write(self):
        def fn(ctx, xs):
            xs[:] = xs * 2.0

        eff = span_effects(fn)["p0"]
        assert eff.writes and eff.reads and eff.confident
        assert eff.mutations[0].whole

    def test_rebinding_is_a_read_not_a_write(self):
        def fn(ctx, xs):
            xs = xs * 2.0
            return xs

        eff = span_effects(fn)["p0"]
        assert eff.reads and not eff.writes and eff.confident

    def test_comprehension_reads_the_span(self):
        def fn(ctx, xs):
            return [v * 2 for v in xs]

        eff = span_effects(fn)["p0"]
        assert eff.reads and not eff.writes and eff.confident

    def test_conditional_write_unions_branches(self):
        def fn(ctx, xs):
            if xs[0] > 0:
                xs[1] = 1.0

        eff = span_effects(fn)["p0"]
        assert eff.reads and eff.writes and eff.confident

    def test_nested_closure_write_is_proven(self):
        # the param is promoted to a cell (MAKE_CELL); the inner
        # function's store must still attribute to the span root
        def fn(ctx, xs):
            def inner():
                xs[0] = 1.0

            inner()

        eff = span_effects(fn)["p0"]
        assert eff.writes and eff.confident

    def test_helper_call_is_followed(self):
        def helper(arr):
            arr[:] = 0.0

        def fn(ctx, xs):
            helper(xs)

        eff = span_effects(fn)["p0"]
        assert eff.writes and eff.confident

    def test_star_args_forwarding_loses_confidence(self):
        def fn(ctx, *args):
            args[0][0] = 1.0

        eff = span_effects(fn)["p0"]
        assert eff.escapes and not eff.confident

    def test_opaque_escape_loses_confidence(self):
        table = {"f": lambda arr: None}

        def fn(ctx, xs):
            table["f"](xs)

        eff = span_effects(fn)["p0"]
        assert eff.escapes and not eff.confident

    def test_safe_builtins_only_read(self):
        def fn(ctx, xs):
            return len(xs)

        eff = span_effects(fn)["p0"]
        assert eff.reads and not eff.writes and not eff.escapes
        assert eff.confident

    def test_two_params_tracked_separately(self):
        def fn(ctx, xs, ys):
            ys[:] = xs * 2.0

        effs = span_effects(fn, nargs=2)
        assert effs["p0"].reads and not effs["p0"].writes
        assert effs["p1"].writes


class TestCapturedState:
    def test_method_reference_write_on_captured_list(self):
        acc = []

        def fn():
            acc.append(1)

        ce = infer_callable_effects(fn)
        (eff,) = ce.captured.values()
        assert eff.name == "acc" and eff.obj_type == "list"
        assert eff.writes and eff.confident

    def test_dict_store_records_key(self):
        state = {}

        def fn():
            state["hits"] = 1

        ce = infer_callable_effects(fn)
        (eff,) = ce.captured.values()
        assert eff.writes
        assert any(m.kind == "setitem" for m in eff.mutations)

    def test_pure_reads_stay_reads(self):
        state = {"hits": 0}

        def fn():
            return state["hits"] > 0

        ce = infer_callable_effects(fn)
        (eff,) = ce.captured.values()
        assert eff.reads and not eff.writes and eff.confident

    def test_returning_a_tracked_element_escapes(self):
        # handing a sub-object to the caller is a conservative escape:
        # the engine can no longer prove what happens to it
        state = {"hits": []}

        def fn():
            return state["hits"]

        ce = infer_callable_effects(fn)
        (eff,) = ce.captured.values()
        assert eff.escapes and not eff.confident

    def test_nested_closure_mutation_of_captured_dict(self):
        state = {}

        def fn():
            def inner():
                state["k"] = 1

            inner()

        ce = infer_callable_effects(fn)
        (eff,) = ce.captured.values()
        assert eff.writes and eff.confident

    def test_lock_guarded_mutation_records_guard(self):
        lock = threading.Lock()
        state = {"hits": 0}

        def fn():
            with lock:
                state["hits"] = state["hits"] + 1

        ce = infer_callable_effects(fn)
        effs = {e.name: e for e in ce.captured.values()}
        assert effs["state"].writes
        assert effs["state"].guarded  # every access holds the lock

    def test_immutable_captures_are_not_roots(self):
        n = 42
        msg = "hello"

        def fn():
            return f"{msg}:{n}"

        ce = infer_callable_effects(fn)
        assert ce.captured == {}


class TestNondet:
    def _sources(self, fn):
        return infer_callable_effects(fn).nondet

    def test_random_module_function(self):
        # random.random is a bound builtin method with __module__ None;
        # resolution must go through __self__
        assert any(
            "random" in s for s in self._sources(lambda: random.random())
        )

    def test_time_module_function(self):
        assert any(
            "time" in s for s in self._sources(lambda: time.time())
        )

    def test_uuid(self):
        assert any("uuid" in s for s in self._sources(lambda: uuid.uuid4()))

    def test_numpy_global_rng(self):
        assert any(
            "numpy.random" in s
            for s in self._sources(lambda: np.random.rand(3))
        )

    def test_seeded_generator_is_not_flagged(self):
        rng = random.Random(7)
        out = []

        def fn():
            out.append(rng.random())

        assert self._sources(fn) == []

    def test_deterministic_math_is_not_flagged(self):
        def fn():
            return sum(i * i for i in range(10))

        assert self._sources(fn) == []


class TestTaskAccessor:
    def test_kernel_task_effects(self):
        hf = Heteroflow("acc")
        p = hf.pull(np.zeros(8, dtype=np.float32), name="p")

        def doubler(ctx, xs):
            xs[:] = xs * 2.0

        k = hf.kernel(doubler, p, name="k").writes(p).grid(1).block(8)
        te = k.effects()
        assert te.effects.confident
        (eff,) = te.span.values()
        assert eff.reads and eff.writes

    def test_host_task_effects(self):
        hf = Heteroflow("acc")
        log = []
        h = hf.host(lambda: log.append(1), name="h")
        te = h.effects()
        (eff,) = te.effects.captured.values()
        assert eff.writes

    def test_opaque_callable_reports_opaque(self):
        hf = Heteroflow("acc")
        h = hf.host(time.sleep.__call__, name="h")
        te = h.effects()
        assert te.effects.opaque and not te.effects.confident
