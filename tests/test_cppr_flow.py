"""Tests for the heterogeneous (batched-GPU) CPPR flow."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.timing import build_sequential_design, generate_netlist
from repro.apps.timing.cppr import generate_clock_tree
from repro.apps.timing.cppr_flow import (
    build_cppr_flow,
    cppr_batch_kernel,
    flatten_tree,
    reference_credits,
)
from repro.baselines import SequentialExecutor
from repro.core import Executor


class TestFlattenTree:
    def test_acc_matches_scalar_common_path(self):
        tree = generate_clock_tree(list(range(10)), seed=3)
        parent, depth, acc = flatten_tree(tree)
        for sink in range(10):
            leaf = tree.leaf_of[sink]
            # acc at a leaf equals the insertion delay of the sink
            assert acc[leaf] == pytest.approx(tree.insertion_delay(sink))

    def test_depth_consistent_with_parent(self):
        tree = generate_clock_tree(list(range(12)), seed=5)
        parent, depth, _ = flatten_tree(tree)
        for i in range(tree.num_nodes):
            if parent[i] >= 0:
                assert depth[i] == depth[parent[i]] + 1


class TestBatchKernel:
    def batch(self, tree, pairs):
        parent, depth, acc = flatten_tree(tree)
        a = np.asarray([tree.leaf_of[x] for x, _ in pairs], dtype=np.int64)
        b = np.asarray([tree.leaf_of[y] for _, y in pairs], dtype=np.int64)
        credits = np.zeros(len(pairs))
        cppr_batch_kernel(None, len(pairs), 0.1, parent, depth, acc, a, b, credits)
        return credits

    def test_matches_scalar_cppr(self):
        from repro.apps.timing.cppr import cppr_credit

        tree = generate_clock_tree(list(range(16)), seed=7)
        pairs = [(0, 1), (0, 15), (7, 8), (3, 3), (14, 2)]
        credits = self.batch(tree, pairs)
        for (x, y), c in zip(pairs, credits):
            assert c == pytest.approx(
                cppr_credit(tree, x, y, early_derate=1.0, late_derate=1.1)
            )

    def test_sentinel_yields_zero(self):
        tree = generate_clock_tree(list(range(4)), seed=1)
        parent, depth, acc = flatten_tree(tree)
        a = np.asarray([-1, tree.leaf_of[0]], dtype=np.int64)
        b = np.asarray([tree.leaf_of[1], tree.leaf_of[1]], dtype=np.int64)
        credits = np.zeros(2)
        cppr_batch_kernel(None, 2, 0.1, parent, depth, acc, a, b, credits)
        assert credits[0] == 0.0
        assert credits[1] > 0.0

    @settings(max_examples=20, deadline=None)
    @given(n_sinks=st.integers(2, 40), seed=st.integers(0, 100))
    def test_property_batch_equals_scalar(self, n_sinks, seed):
        from repro.apps.timing.cppr import cppr_credit

        tree = generate_clock_tree(list(range(n_sinks)), seed=seed)
        rng = np.random.default_rng(seed)
        pairs = [
            (int(rng.integers(n_sinks)), int(rng.integers(n_sinks)))
            for _ in range(12)
        ]
        credits = self.batch(tree, pairs)
        for (x, y), c in zip(pairs, credits):
            assert c == pytest.approx(
                cppr_credit(tree, x, y, early_derate=1.0, late_derate=1.1)
            )


class TestFlow:
    @pytest.fixture
    def state(self):
        design = build_sequential_design(generate_netlist(100, seed=9), seed=9)
        return build_cppr_flow(design, 700.0)

    def test_parallel_executor_matches_scalar(self, state):
        with Executor(3, 2) as ex:
            ex.run(state.graph).result(timeout=120)
        assert np.allclose(state.credits, reference_credits(state))
        assert np.allclose(state.slack_cppr, state.slack_pessimistic + state.credits)

    def test_sequential_oracle_matches(self):
        design = build_sequential_design(generate_netlist(80, seed=2), seed=2)
        state = build_cppr_flow(design, 600.0)
        with SequentialExecutor(num_gpus=1) as seq:
            seq.run(state.graph)
        assert np.allclose(state.credits, reference_credits(state))

    def test_report_fields(self, state):
        with Executor(2, 1) as ex:
            ex.run(state.graph).result(timeout=120)
        assert state.report["wns_cppr"] >= state.report["wns_pessimistic"]
        assert state.report["total_credit"] >= 0
        assert state.report["endpoints"] == state.n_pairs

    def test_graph_shape(self, state):
        from repro.core import TaskType

        hf = state.graph
        assert hf.num_tasks_of(TaskType.PULL) == 6
        assert hf.num_tasks_of(TaskType.KERNEL) == 1
        assert hf.num_tasks_of(TaskType.PUSH) == 1
        assert hf.num_tasks_of(TaskType.HOST) == 2
        hf.validate()
