#!/usr/bin/env python3
"""Quickstart: the paper's saxpy example (Fig. 1 / Listing 1).

Builds the canonical task graph — two host tasks create the data
vectors, two pull tasks ship them to a GPU, one kernel task runs
saxpy, two push tasks bring the results home — and runs it on an
executor with 4 CPU workers and 2 simulated GPUs.

Run:  python examples/quickstart.py
"""

import sys

from repro import Executor, Heteroflow


def saxpy(ctx, n, a, x, y):
    """The CUDA kernel of Listing 1, in guarded-index style."""
    i = ctx.flat_indices()  # blockIdx.x * blockDim.x + threadIdx.x
    i = i[i < n]  # if (i < n)
    y[i] = a * x[i] + y[i]


def build(n: int = 65536):
    """Construct the saxpy graph; returns (graph, x, y, kernel task).

    Kept separate from :func:`main` so tooling (``python -m repro
    lint``, the test corpus) can inspect the graph without running it.
    """
    x: list = []
    y: list = []

    hf = Heteroflow("saxpy")
    host_x = hf.host(lambda: x.extend([1] * n), name="host_x")
    host_y = hf.host(lambda: y.extend([2] * n), name="host_y")
    pull_x = hf.pull(x, name="pull_x")
    pull_y = hf.pull(y, name="pull_y")
    kernel = (
        hf.kernel(saxpy, n, 2, pull_x, pull_y, name="saxpy")
        .block_x(256)
        .grid_x((n + 255) // 256)
    )
    push_x = hf.push(pull_x, x, name="push_x")
    push_y = hf.push(pull_y, y, name="push_y")

    host_x.precede(pull_x)
    host_y.precede(pull_y)
    kernel.succeed(pull_x, pull_y).precede(push_x, push_y)
    return hf, x, y, kernel


def main() -> int:
    N = 65536
    hf, x, y, kernel = build(N)

    # inspect the graph in DOT before running (Listing 11)
    print("--- task graph (GraphViz DOT) ---")
    hf.dump(sys.stdout)

    with Executor(num_workers=4, num_gpus=2) as executor:
        future = executor.run(hf)  # non-blocking
        passes = future.result()  # block for completion

    print(f"\nran {passes} pass(es); saxpy placed on GPU {kernel.device}")
    print(f"y[:8] = {y[:8]}  (expected 2*1 + 2 = 4)")
    assert y == [4] * N and x == [1] * N
    print("saxpy OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
