#!/usr/bin/env python3
"""What-if timing analysis: incremental STA parallelized by Heteroflow.

A classic optimization-loop workload built on two pieces of this
library: the OpenTimer-2.0-style :class:`IncrementalTimer` (only the
changed cone re-propagates after an edit) and the Heteroflow runtime
(one host task per analysis view evaluates every candidate edit,
views run concurrently).

For each candidate arc, each view's task tries "speed this arc up 2x",
measures the WNS improvement, and reverts — the edit with the best
worst-view improvement wins.

Run:  python examples/incremental_whatif.py
"""

from types import SimpleNamespace

import numpy as np

from repro.apps.timing import (
    IncrementalTimer,
    TimingGraph,
    enumerate_views,
    generate_netlist,
    report_timing,
    run_sta,
)
from repro.core import Executor, Heteroflow


def build(num_gates: int = 400, num_views: int = 4, seed: int = 21):
    """Construct the what-if graph and its shared analysis state.

    Returns a namespace whose ``.graph`` is the Heteroflow (so the
    graph can be linted/inspected without running the analysis).
    """
    nl = generate_netlist(num_gates, seed=seed)
    tg = TimingGraph.from_netlist(nl)
    views = enumerate_views(num_views, seed=seed)
    base_period = run_sta(tg).clock_period

    # candidate edits: arcs on the worst paths (where gains can exist),
    # plus a few random arcs as controls
    from repro.apps.timing import k_worst_paths

    base_sta = run_sta(tg)
    rng = np.random.default_rng(seed)
    on_path = []
    for p in k_worst_paths(tg, base_sta, 3):
        for a, b in zip(p.nodes, p.nodes[1:]):
            arcs = np.nonzero((tg.arc_src == a) & (tg.arc_dst == b))[0]
            on_path.extend(int(x) for x in arcs)
    controls = [int(a) for a in rng.choice(tg.num_arcs, size=3, replace=False)]
    candidates = np.asarray(sorted(set(on_path[:9] + controls)))

    # improvement[e][v] = WNS gain of edit e in view v
    improvement = np.zeros((len(candidates), len(views)))
    timers = [None] * len(views)

    hf = Heteroflow("what-if")

    def make_view_task(vi):
        def evaluate() -> None:
            timer = IncrementalTimer(tg, views[vi], clock_period=base_period)
            timers[vi] = timer
            base_wns = timer.wns
            for ei, arc in enumerate(candidates):
                original = float(timer.delays[arc])
                timer.update_arc_delay(int(arc), original * 0.5)
                improvement[ei, vi] = timer.wns - base_wns
                timer.update_arc_delay(int(arc), original)
            timer.update_timing()

        return evaluate

    report = hf.host(lambda: None, name="join")
    for vi in range(len(views)):
        hf.host(make_view_task(vi), name=f"view_{vi}").precede(report)

    return SimpleNamespace(
        graph=hf,
        netlist=nl,
        timing_graph=tg,
        views=views,
        candidates=candidates,
        improvement=improvement,
        timers=timers,
    )


def main() -> int:
    wf = build()
    nl, tg, views = wf.netlist, wf.timing_graph, wf.views
    candidates, improvement, timers = wf.candidates, wf.improvement, wf.timers
    print(f"circuit: {nl.num_gates} gates, {tg.num_arcs} arcs, "
          f"{len(views)} views, {len(candidates)} candidate edits")

    with Executor(num_workers=4, num_gpus=0) as executor:
        executor.run(wf.graph).result()

    worst_view_gain = improvement.min(axis=1)
    best = int(np.argmax(worst_view_gain))
    print(f"\n{'edit(arc)':>10} {'min gain':>9} {'max gain':>9}")
    for ei, arc in enumerate(candidates):
        marker = "  <= best" if ei == best else ""
        print(f"{arc:>10} {improvement[ei].min():>9.3f} "
              f"{improvement[ei].max():>9.3f}{marker}")

    total_props = sum(t.total_propagations for t in timers)
    full_equiv = len(views) * (1 + 2 * len(candidates)) * tg.num_nodes
    print(f"\nincremental propagation: {total_props} node evaluations vs "
          f"{full_equiv} for full recomputes ({full_equiv / max(total_props,1):.1f}x saved)")

    print("\nworst path in view 0 after analysis:")
    print(report_timing(tg, timers[0].snapshot(), k=1))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
