#!/usr/bin/env python3
"""Distributed scheduling of Heteroflow graphs (EXT-DIST).

The paper's future work points at distributing the scheduler via the
authors' DtCraft engine.  This example partitions the two evaluation
workloads across simulated cluster nodes and reports speed-up, message
counts, and cut quality — showing which graph structures distribute
(view-parallel timing) and which do not (iteration-chained placement).

Run:  python examples/distributed_scheduling.py
"""

from repro.apps.placement import build_placement_flow
from repro.apps.timing import build_timing_flow
from repro.dist import ClusterSpec, DistSimExecutor, partition_graph
from repro.sim import paper_testbed


def sweep(name, flow):
    print(f"\n--- {name}: {flow.graph.num_nodes} tasks over N nodes "
          f"(10 cores + 1 GPU each) ---")
    print(f"{'nodes':>6} {'seconds':>9} {'speedup':>8} {'msgs':>6} {'cut':>6} {'net util':>9}")
    base = None
    for nn in (1, 2, 4, 8):
        cluster = ClusterSpec(nn, paper_testbed(10, 1))
        rep = DistSimExecutor(cluster, flow.cost_model).run(flow.graph)
        base = base or rep.makespan
        print(
            f"{nn:>6} {rep.makespan:>9.2f} {base / rep.makespan:>8.2f} "
            f"{rep.messages:>6} {rep.partition.cut_fraction:>6.2f} "
            f"{rep.network_utilization:>9.1%}"
        )


def build():
    """Construct both evaluation flows; returns ``(tflow, pflow)``."""
    tflow = build_timing_flow(num_views=256, num_gates=40, paths_per_view=4)
    pflow = build_placement_flow(num_cells=30, iterations=20, num_matchers=32, window_size=1)
    return tflow, pflow


def main() -> int:
    tflow, pflow = build()

    sweep("timing correlation (view-parallel)", tflow)
    sweep("detailed placement (iteration chain)", pflow)

    # inspect a partition directly
    part = partition_graph(tflow.graph.nodes, 4, tflow.cost_model)
    print("\n4-node partition of the timing graph:")
    print(f"  loads: {[round(l, 1) for l in part.loads]}")
    print(f"  cut edges: {part.cut_edges}/{part.total_edges} "
          f"({part.cut_fraction:.1%}), imbalance {part.load_imbalance:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
