#!/usr/bin/env python3
"""Multi-GPU pipeline: device placement, run_n, and run_until in action.

A four-stage image-sharpening pipeline over B independent tiles: each
tile is pulled to a GPU, convolved and normalized by two chained
kernels, and pushed back.  Independent tiles form independent
placement groups, so Algorithm 1 spreads them across all GPUs —
inspect the per-device task counts in the output.

Also demonstrates:
- ``run_n``: iterative stateful execution (repeated sharpening);
- ``run_until``: run until a convergence predicate holds;
- ``TraceObserver``: runtime introspection.

Run:  python examples/multi_gpu_pipeline.py
"""

import numpy as np

from repro.core import Executor, Heteroflow, TraceObserver

TILE = 64
TILES = 8


def blur3(ctx, n, src, dst):
    """1-D 3-tap box blur with clamped borders (guarded-index style)."""
    i = ctx.flat_indices()
    i = i[i < n]
    left = np.maximum(i - 1, 0)
    right = np.minimum(i + 1, n - 1)
    dst[i] = (src[left] + src[i] + src[right]) / 3.0


def sharpen(ctx, n, amount, blurred, img):
    """Unsharp mask: img += amount * (img - blurred)."""
    i = ctx.flat_indices()
    i = i[i < n]
    img[i] = img[i] + amount * (img[i] - blurred[i])


def build(num_tiles: int = TILES, tile: int = TILE, seed: int = 0):
    """Construct the pipeline; returns (graph, tiles, scratch, kernels).

    Separate from :func:`main` so ``python -m repro lint`` and the
    test corpus can inspect the graph without running it.
    """
    rng = np.random.default_rng(seed)
    tiles = [np.ascontiguousarray(rng.normal(0.0, 1.0, tile)) for _ in range(num_tiles)]
    scratch = [np.zeros(tile) for _ in range(num_tiles)]

    hf = Heteroflow("sharpen-pipeline")
    kernels = []
    for b in range(num_tiles):
        pull_img = hf.pull(tiles[b], name=f"pull_img_{b}")
        pull_tmp = hf.pull(scratch[b], name=f"pull_tmp_{b}")
        k_blur = hf.kernel(blur3, tile, pull_img, pull_tmp, name=f"blur_{b}")
        k_blur.reads(pull_img)  # blur only reads the image span
        k_sharp = hf.kernel(sharpen, tile, 0.5, pull_tmp, pull_img, name=f"sharpen_{b}")
        k_sharp.reads(pull_tmp)  # sharpen only reads the blurred span
        push = hf.push(pull_img, tiles[b], name=f"push_{b}")
        pull_img.precede(k_blur)
        pull_tmp.precede(k_blur)
        k_blur.precede(k_sharp)
        k_sharp.precede(push)
        kernels.append((k_blur, k_sharp))
    return hf, tiles, scratch, kernels


def main() -> int:
    hf, tiles, scratch, kernels = build()

    obs = TraceObserver()
    with Executor(num_workers=4, num_gpus=4, observers=[obs]) as executor:
        # one pass
        executor.run(hf).result()
        print("tasks per GPU after one pass:", dict(sorted(obs.tasks_per_device().items())))
        placements = {b: k[0].device for b, k in enumerate(kernels)}
        print("tile -> GPU placement:", placements)
        assert len(set(placements.values())) == 4, "groups should spread over all GPUs"

        # sharpen 3 more times: run_n with stateful spans
        executor.run_n(hf, 3).result()

        # keep sharpening until the signal variance passes a threshold
        def converged() -> bool:
            return float(np.var(np.concatenate(tiles))) > 8.0

        passes = executor.run_until(hf, converged).result()
        print(f"run_until took {passes} extra pass(es); "
              f"variance now {np.var(np.concatenate(tiles)):.2f}")

    total = obs.count_by_type()
    print("total executed tasks by type:", total)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
