#!/usr/bin/env python3
"""Sparse neural-network inference via task-graph parallelism (EXT-SNN).

The paper's future-work section points at the authors' sparse-DNN
inference engine ([47]/[48]); this example builds that workload on the
reproduced runtime: a Sparse-DNN-Challenge-style MLP, its batch split
into column blocks, blocks sharded across GPUs with replicated
weights, activations resident on-device through all layers, and a
final argmax readout.

Run:  python examples/sparse_inference.py [width] [layers] [batch]
"""

import sys

import numpy as np

from repro.apps.sparsenn import build_inference_flow
from repro.apps.sparsenn.flow import reference_categories
from repro.core import Executor, TraceObserver
from repro.sim import SimExecutor, paper_testbed


def build(width: int = 96, layers: int = 12, batch: int = 64):
    """Construct the example's flow (graph inspectable without running)."""
    return build_inference_flow(
        width=width,
        num_layers=layers,
        batch_size=batch,
        num_blocks=8,
        num_shards=4,
        nnz_per_row=8,
    )


def main() -> int:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    layers = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    batch = int(sys.argv[3]) if len(sys.argv) > 3 else 64

    print(f"sparse MLP: width={width}, layers={layers}, batch={batch}")
    flow = build(width, layers, batch)
    print(
        f"  {flow.model.nnz} nonzeros; task graph: {flow.graph.num_nodes} tasks "
        f"({flow.num_blocks} blocks over {flow.num_shards} shards)"
    )

    obs = TraceObserver()
    with Executor(num_workers=4, num_gpus=4, observers=[obs]) as executor:
        executor.run(flow.graph).result()

    ref = reference_categories(flow)
    assert np.array_equal(flow.categories, ref)
    print("\ninference matches the scipy reference")
    print("winning neurons (first 16 columns):", flow.categories[:16].tolist())
    print("tasks per GPU:", dict(sorted(obs.tasks_per_device().items())))

    # challenge-scale scaling shape on the virtual-time model
    print("\n--- virtual-time scaling (challenge-scale costs) ---")
    big = build_inference_flow(
        width=64,
        num_layers=24,
        batch_size=64,
        num_blocks=16,
        num_shards=4,
        paper_nnz_scale=2e4,
    )
    print(f"{'cores':>6} {'gpus':>5} {'seconds':>9}")
    for cores, gpus in [(1, 1), (4, 1), (4, 2), (4, 4), (8, 4)]:
        rep = SimExecutor(paper_testbed(cores, gpus), big.cost_model).run(big.graph)
        print(f"{cores:>6} {gpus:>5} {rep.makespan:>9.2f}")
    print("(GPU-bound: shards scale with GPUs; CPUs only dispatch)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
