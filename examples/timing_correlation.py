#!/usr/bin/env python3
"""VLSI timing correlation (the paper's first experiment, Fig. 5/6).

Functionally runs the multi-view correlation flow on the threaded
runtime at small scale — real STA, real critical paths, real CPPR,
real logistic regression on the simulated GPUs — then replays the same
graph *shape* at netcard scale on the virtual-time machine model to
show the Fig.-6 scaling behaviour.

Run:  python examples/timing_correlation.py [num_views]
"""

import sys

import numpy as np

from repro.apps.timing import build_timing_flow
from repro.core import Executor, TraceObserver
from repro.sim import SimExecutor, paper_testbed


def build(num_views: int = 8):
    """Construct the example's flow (graph inspectable without running)."""
    return build_timing_flow(num_views=num_views, num_gates=400, paths_per_view=64)


def main() -> int:
    num_views = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    print(f"building correlation flow: {num_views} views over a synthetic circuit")
    flow = build(num_views)
    print(
        f"  netlist: {flow.netlist.num_gates} gates, depth {flow.netlist.depth}, "
        f"{len(flow.timing_graph.outputs)} endpoints"
    )
    print(f"  task graph: {flow.graph.num_nodes} tasks")

    obs = TraceObserver()
    with Executor(num_workers=4, num_gpus=2, observers=[obs]) as executor:
        executor.run(flow.graph).result()

    print("\n--- functional results (threaded runtime, simulated GPUs) ---")
    print(f"mean model accuracy over views: {flow.mean_accuracy():.3f}")
    corr = flow.view_correlation()
    print("view-to-view model correlation (cosine of fitted weights):")
    with np.printoptions(precision=2, suppress=True):
        print(corr)
    print(f"tasks per device: {obs.tasks_per_device()}")

    print("\n--- Fig. 6 shape at paper scale (virtual-time model) ---")
    big = build_timing_flow(num_views=128, num_gates=60, paths_per_view=8)
    print(f"{'cores':>6} {'gpus':>5} {'minutes':>9}   (128 views, scale to 1024 by 8x)")
    for cores, gpus in [(1, 1), (1, 4), (8, 4), (40, 1), (40, 4)]:
        rep = SimExecutor(paper_testbed(cores, gpus), big.cost_model).run(big.graph)
        print(f"{cores:>6} {gpus:>5} {rep.makespan_minutes * 8:>9.1f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
