#!/usr/bin/env python3
"""Matching-based detailed placement (the paper's second experiment).

Runs K flattened iterations of the MIS -> partition -> bipartite-
matching pipeline (Fig. 7/8) on the threaded runtime: the maximal
independent set is computed by a GPU kernel, partitioning runs as a
sequential host task, and the per-window matchings run as parallel
host tasks.  HPWL decreases monotonically — printed per iteration.

Run:  python examples/detailed_placement.py [cells] [iterations]
"""

import sys

from repro.apps.placement import build_placement_flow
from repro.core import Executor
from repro.sim import SimExecutor, paper_testbed


def build(cells: int = 300, iterations: int = 6):
    """Construct the example's flow (graph inspectable without running)."""
    return build_placement_flow(num_cells=cells, iterations=iterations, window_size=8)


def main() -> int:
    cells = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    print(f"building placement flow: {cells} cells, {iterations} iterations")
    flow = build(cells, iterations)
    print(f"  nets: {flow.db.num_nets}, grid: {flow.db.num_sites}x{flow.db.num_rows}")
    print(f"  task graph: {flow.graph.num_nodes} tasks")

    with Executor(num_workers=4, num_gpus=2) as executor:
        executor.run(flow.graph).result()

    print("\n--- functional results ---")
    print(f"{'iter':>5} {'HPWL':>12} {'MIS size':>9} {'gain':>9}")
    print(f"{0:>5} {flow.hpwl_trace[0]:>12.1f} {'-':>9} {'-':>9}")
    for i in range(iterations):
        print(
            f"{i + 1:>5} {flow.hpwl_trace[i + 1]:>12.1f} "
            f"{flow.mis_sizes[i]:>9} {flow.improvements[i]:>9.1f}"
        )
    pct = 100 * flow.total_improvement() / flow.initial_hpwl
    print(f"total wirelength recovered: {flow.total_improvement():.1f} ({pct:.1f}%)")

    print("\n--- Fig. 9 shape at bigblue4 scale (virtual-time model) ---")
    big = build_placement_flow(num_cells=40, iterations=50, num_matchers=32, window_size=1)
    print(f"{'cores':>6} {'gpus':>5} {'seconds':>9}")
    for cores, gpus in [(1, 1), (8, 1), (20, 1), (40, 1), (40, 4)]:
        rep = SimExecutor(paper_testbed(cores, gpus), big.cost_model).run(big.graph)
        print(f"{cores:>6} {gpus:>5} {rep.makespan:>9.2f}")
    print("(note: 4 GPUs buy almost nothing — every MIS kernel groups")
    print(" with the shared adjacency pull, landing the flow on one GPU)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
