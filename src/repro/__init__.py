"""repro — a Python reproduction of Heteroflow (Huang & Lin).

Heteroflow is a task-based programming model for concurrent CPU-GPU
computing: applications are expressed as dependency graphs of **host**,
**pull**, **push**, and **kernel** tasks, and an executor maps them
onto CPU workers and GPUs with automatic device placement, pooled
device memory, and work stealing.

Quickstart (the paper's saxpy, Listing 1)::

    import numpy as np
    from repro import Executor, Heteroflow

    N = 65536
    x, y = [], []

    def saxpy(ctx, n, a, xv, yv):
        i = ctx.flat_indices()
        i = i[i < n]
        yv[i] = a * xv[i] + yv[i]

    hf = Heteroflow("saxpy")
    host_x = hf.host(lambda: x.extend([1] * N))
    host_y = hf.host(lambda: y.extend([2] * N))
    pull_x = hf.pull(x)
    pull_y = hf.pull(y)
    kernel = (hf.kernel(saxpy, N, 2, pull_x, pull_y)
                .block_x(256).grid_x((N + 255) // 256))
    push_x = hf.push(pull_x, x)
    push_y = hf.push(pull_y, y)
    host_x.precede(pull_x)
    host_y.precede(pull_y)
    kernel.succeed(pull_x, pull_y).precede(push_x, push_y)

    with Executor(num_workers=8, num_gpus=4) as executor:
        executor.run(hf).result()

Subpackages:

- :mod:`repro.core` — graphs, tasks, executor, placement, stealing;
- :mod:`repro.gpu` — the simulated multi-GPU runtime (streams, events,
  buddy-pooled memory, kernel launches);
- :mod:`repro.sim` — the virtual-time machine model behind the paper's
  scaling figures;
- :mod:`repro.apps.timing` / :mod:`repro.apps.placement` — the two
  VLSI CAD evaluation workloads, built from scratch;
- :mod:`repro.baselines` — sequential oracle and ablation baselines.
"""

from repro.core.executor import Executor
from repro.core.heteroflow import Heteroflow
from repro.core.node import TaskType
from repro.core.observer import TraceObserver
from repro.core.task import HostTask, KernelTask, PullTask, PushTask, Task
from repro.core.topology import FrozenTopology
from repro.errors import (
    AllocationError,
    CycleError,
    DeviceError,
    EmptyTaskError,
    ExecutorError,
    FrozenTopologyError,
    GraphError,
    HeteroflowError,
    KernelError,
    SimulationError,
    ValidationError,
)
from repro.utils.span import Late, Span

__version__ = "1.0.0"

__all__ = [
    "AllocationError",
    "CycleError",
    "DeviceError",
    "EmptyTaskError",
    "Executor",
    "ExecutorError",
    "FrozenTopology",
    "FrozenTopologyError",
    "GraphError",
    "Heteroflow",
    "HeteroflowError",
    "HostTask",
    "KernelError",
    "KernelTask",
    "Late",
    "PullTask",
    "PushTask",
    "SimulationError",
    "Span",
    "Task",
    "TaskType",
    "TraceObserver",
    "ValidationError",
    "__version__",
]
