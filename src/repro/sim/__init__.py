"""Virtual-time performance model.

The paper evaluates Heteroflow on a 40-core, 4-GPU testbed by measuring
wall-clock makespan of task graphs at different CPU/GPU counts.  This
machine has one core and a GIL, so those curves are physically
unobservable here; instead this package replays a Heteroflow graph on a
calibrated discrete-event machine model that mirrors the real runtime's
semantics:

- every task is dispatched by a CPU *worker* (host tasks occupy the
  worker for their full duration; GPU tasks occupy it only for the
  dispatch overhead, matching the asynchronous stream semantics);
- each GPU op runs on the dispatching worker's per-device *stream*
  (ops on one stream serialize — this is what couples GPU concurrency
  to worker count, the effect behind Fig. 6's 40-core × 1-GPU point);
- each device caps concurrent kernels (``kernel_slots``) and has one
  copy engine per direction;
- device placement reuses the *same* Algorithm-1 implementation the
  real executor uses.

See DESIGN.md ("Hardware substitutions") for the calibration argument.
"""

from repro.sim.cost import CostModel, TaskCost
from repro.sim.events import EventQueue
from repro.sim.machine import MachineSpec, paper_testbed
from repro.sim.simulator import SimExecutor, SimReport
from repro.sim.sweep import SweepResult, sweep_machines, sweep_workloads

__all__ = [
    "CostModel",
    "EventQueue",
    "MachineSpec",
    "SimExecutor",
    "SimReport",
    "SweepResult",
    "TaskCost",
    "paper_testbed",
    "sweep_machines",
    "sweep_workloads",
]
