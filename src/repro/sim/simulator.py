"""The discrete-event executor: replay a Heteroflow graph in virtual time.

:class:`SimExecutor` mirrors the real runtime's scheduling semantics on
a :class:`~repro.sim.machine.MachineSpec`:

- ready tasks are taken by free CPU workers (FIFO — a faithful
  approximation of the work-stealing executor's greedy behaviour, whose
  makespan matches list scheduling for these graphs);
- a host task occupies its worker for ``cpu_seconds``;
- a GPU task occupies the worker for ``dispatch_overhead`` only, then
  becomes an op on the **dispatching worker's per-device stream**;
  ops on one stream serialize (exactly like the real per-(worker,
  device) streams), and the device additionally caps concurrent
  kernels / copies via its engine servers;
- successors release when the GPU op *completes* (the event-callback
  semantics of the real executor).

The same :class:`~repro.core.placement.DevicePlacement` pass assigns
devices before the clock starts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.heteroflow import Heteroflow
from repro.core.node import Node, TaskType
from repro.core.placement import DevicePlacement, PlacementResult
from repro.errors import SimulationError
from repro.sim.cost import CostModel, TaskCost
from repro.sim.events import EventQueue
from repro.sim.machine import MachineSpec

#: placement strategy signature: (nodes, num_gpus) -> PlacementResult
PlacementFn = Callable[[Sequence[Node], int], PlacementResult]


@dataclass
class SimTaskRecord:
    """One executed task in the virtual-time trace."""

    name: str
    type: str
    resource: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimReport:
    """Outcome of one simulated run."""

    makespan: float
    num_tasks: int
    machine: MachineSpec
    core_busy: List[float]
    gpu_busy: List[float]
    placement: Optional[PlacementResult] = None
    trace: List[SimTaskRecord] = field(default_factory=list)

    @property
    def core_utilization(self) -> float:
        """Mean fraction of the makespan each core spent busy."""
        if self.makespan <= 0 or not self.core_busy:
            return 0.0
        return sum(self.core_busy) / (len(self.core_busy) * self.makespan)

    @property
    def gpu_utilization(self) -> float:
        """GPU busy-time over (gpus x makespan).

        With ``kernel_slots > 1`` a device can exceed 1.0 (multiple
        concurrent kernels count their full durations); the metric is
        comparable across runs of the same machine spec.
        """
        if self.makespan <= 0 or not self.gpu_busy:
            return 0.0
        return sum(self.gpu_busy) / (len(self.gpu_busy) * self.makespan)

    @property
    def makespan_minutes(self) -> float:
        return self.makespan / 60.0


class _Server:
    """Capacity-limited resource with FIFO admission."""

    __slots__ = ("capacity", "busy", "waiting")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.busy = 0
        self.waiting: Deque[Callable[[], None]] = deque()

    def acquire(self, start: Callable[[], None]) -> None:
        if self.busy < self.capacity:
            self.busy += 1
            start()
        else:
            self.waiting.append(start)

    def release(self) -> None:
        if self.waiting:
            self.waiting.popleft()()
        else:
            self.busy -= 1


class _Stream:
    """In-order op queue bound to one (worker, device) pair."""

    __slots__ = ("ops", "active")

    def __init__(self) -> None:
        self.ops: Deque = deque()
        self.active = False


class SimExecutor:
    """Schedules Heteroflow graphs onto a virtual machine."""

    def __init__(
        self,
        machine: MachineSpec,
        cost_model: Optional[CostModel] = None,
        *,
        placement: Optional[PlacementFn] = None,
        record_trace: bool = False,
        dedicated_gpu_workers: bool = False,
        ready_policy: str = "lifo",
    ) -> None:
        """*dedicated_gpu_workers*: reserve one worker per GPU that only
        dispatches GPU ops (the StarPU-style design the paper rejects);
        used by the ABL-DEDIC ablation.

        *ready_policy*: ``"lifo"`` (default) models the work-stealing
        executor's owner-side LIFO pop — depth-first progress that
        pipelines each dependency chain onto the GPU quickly.
        ``"fifo"`` models a central breadth-first queue (the
        ABL-STEAL ablation baseline), which drains whole graph levels
        before descending and so delays GPU occupancy.
        """
        self.machine = machine
        self.cost_model = cost_model or CostModel()
        self._placement = placement or DevicePlacement().place
        self.record_trace = record_trace
        self.dedicated_gpu_workers = dedicated_gpu_workers
        if ready_policy not in ("lifo", "fifo"):
            raise SimulationError(f"unknown ready policy {ready_policy!r}")
        self.ready_policy = ready_policy
        if dedicated_gpu_workers and machine.num_cores <= machine.num_gpus:
            raise SimulationError(
                "dedicated GPU workers require more cores than GPUs"
            )

    # ------------------------------------------------------------------
    def run(self, graph: Heteroflow) -> SimReport:
        """Simulate one pass of *graph*; returns the makespan report."""
        graph.validate()
        nodes = graph.nodes
        placement = self._placement(nodes, self.machine.num_gpus)

        m = self.machine
        q = EventQueue()
        join: Dict[int, int] = {n.nid: len(n.dependents) for n in nodes}
        done_count = 0

        core_busy = [0.0] * m.num_cores
        gpu_busy = [0.0] * max(m.num_gpus, 1)
        trace: List[SimTaskRecord] = []

        # worker pools: FIFO of free worker ids.  With dedicated mode,
        # workers [0, num_gpus) serve GPU dispatch only and the rest
        # serve host tasks only.
        if self.dedicated_gpu_workers:
            gpu_workers: Deque[int] = deque(range(m.num_gpus))
            cpu_workers: Deque[int] = deque(range(m.num_gpus, m.num_cores))
        else:
            gpu_workers = cpu_workers = deque(range(m.num_cores))

        # two ready queues (host vs GPU dispatch) tagged with arrival
        # sequence so the uniform-worker mode serves them in global
        # FIFO order, like the real executor's single logical pool
        ready_cpu: Deque[Tuple[int, Node]] = deque()
        ready_gpu: Deque[Tuple[int, Node]] = deque()
        arrival = 0

        # stream key: (worker-slot, device, op-class).  Copies and
        # kernels use separate streams so GPU memory operations overlap
        # kernel execution ("concurrent GPU memory and kernel
        # operations", paper §III-C) instead of head-of-line blocking
        # behind them.  There are as many streams per (device, class)
        # as workers; an op lands on the least-loaded one — the DES
        # approximation of work stealing redistributing GPU tasks
        # across worker streams instead of piling them onto whichever
        # worker happened to be free.
        streams: Dict[Tuple[int, int, str], _Stream] = {}

        def pick_stream(dev: int, klass: str) -> _Stream:
            best: Optional[_Stream] = None
            best_load = -1
            for slot in range(m.num_cores):
                s = streams.get((slot, dev, klass))
                if s is None:
                    s = streams[(slot, dev, klass)] = _Stream()
                load = len(s.ops) + (1 if s.active else 0)
                if load == 0:
                    return s
                if best is None or load < best_load:
                    best, best_load = s, load
            assert best is not None
            return best
        kernel_engines = [_Server(m.kernel_slots) for _ in range(m.num_gpus)]
        h2d_engines = [_Server(m.h2d_engines) for _ in range(m.num_gpus)]
        d2h_engines = [_Server(m.d2h_engines) for _ in range(m.num_gpus)]

        def record(name: str, type_: str, resource: str, start: float, end: float) -> None:
            if self.record_trace:
                trace.append(SimTaskRecord(name, type_, resource, start, end))

        def complete(node: Node) -> None:
            nonlocal done_count
            done_count += 1
            for succ in node.successors:
                join[succ.nid] -= 1
                if join[succ.nid] == 0:
                    task_ready(succ)

        # -- GPU op pipeline ------------------------------------------
        def op_duration(node: Node, cost: TaskCost) -> float:
            if node.type is TaskType.PULL:
                return m.h2d_seconds(cost.copy_bytes)
            if node.type is TaskType.PUSH:
                return m.d2h_seconds(cost.copy_bytes)
            return m.kernel_launch_overhead + cost.gpu_seconds

        def engine_for(node: Node) -> _Server:
            dev = node.device
            assert dev is not None
            if node.type is TaskType.PULL:
                return h2d_engines[dev]
            if node.type is TaskType.PUSH:
                return d2h_engines[dev]
            return kernel_engines[dev]

        def advance_stream(stream: _Stream) -> None:
            if stream.active or not stream.ops:
                return
            stream.active = True
            node, duration = stream.ops.popleft()
            engine = engine_for(node)
            dev = node.device
            assert dev is not None

            def start() -> None:
                begin = q.now

                def finish() -> None:
                    gpu_busy[dev] += duration
                    record(node.name, node.type.value, f"gpu{dev}", begin, q.now)
                    complete(node)
                    engine.release()
                    stream.active = False
                    advance_stream(stream)

                q.schedule_after(duration, finish)

            engine.acquire(start)

        # -- worker phase -------------------------------------------------
        def task_ready(node: Node) -> None:
            nonlocal arrival
            arrival += 1
            if node.type is TaskType.HOST:
                ready_cpu.append((arrival, node))
            else:
                ready_gpu.append((arrival, node))
            pump()

        lifo = self.ready_policy == "lifo"

        def _take(queue_: Deque[Tuple[int, Node]]) -> Node:
            return (queue_.pop() if lifo else queue_.popleft())[1]

        def pump() -> None:
            if self.dedicated_gpu_workers:
                while cpu_workers and ready_cpu:
                    _start_on_worker(cpu_workers.popleft(), _take(ready_cpu))
                while gpu_workers and ready_gpu:
                    _start_on_worker(gpu_workers.popleft(), _take(ready_gpu))
                return
            # uniform workers: serve both queues in one global order —
            # newest-first for lifo, oldest-first for fifo
            while cpu_workers and (ready_cpu or ready_gpu):
                if lifo:
                    if not ready_gpu or (ready_cpu and ready_cpu[-1][0] > ready_gpu[-1][0]):
                        node = _take(ready_cpu)
                    else:
                        node = _take(ready_gpu)
                else:
                    if not ready_gpu or (ready_cpu and ready_cpu[0][0] < ready_gpu[0][0]):
                        node = _take(ready_cpu)
                    else:
                        node = _take(ready_gpu)
                _start_on_worker(cpu_workers.popleft(), node)

        def _start_on_worker(worker: int, node: Node) -> None:
            cost = self.cost_model.cost_of(node)
            begin = q.now
            if node.type is TaskType.HOST:
                duration = cost.cpu_seconds

                def host_done() -> None:
                    core_busy[worker] += duration
                    record(node.name, "host", f"core{worker}", begin, q.now)
                    # successors first, then the worker: the freed worker
                    # must see work this task just enabled (the real
                    # executor pushes successors before popping again)
                    complete(node)
                    _release_worker(worker)

                q.schedule_after(duration, host_done)
            else:
                dispatch = m.dispatch_overhead
                dev = node.device
                if dev is None:
                    raise SimulationError(f"GPU task {node.name!r} was not placed")
                duration = op_duration(node, cost)

                klass = "kernel" if node.type is TaskType.KERNEL else "copy"

                def dispatched() -> None:
                    core_busy[worker] += dispatch
                    stream = pick_stream(dev, klass)
                    record(
                        node.name,
                        f"{node.type.value}-enqueued",
                        f"stream-d{dev}-{klass}",
                        q.now,
                        q.now,
                    )
                    stream.ops.append((node, duration))
                    advance_stream(stream)
                    _release_worker(worker)

                q.schedule_after(dispatch, dispatched)

        def _release_worker(worker: int) -> None:
            if self.dedicated_gpu_workers and worker < m.num_gpus:
                gpu_workers.append(worker)
            else:
                cpu_workers.append(worker)
            pump()

        # -- kick off --------------------------------------------------
        for n in nodes:
            if not n.dependents:
                task_ready(n)
        makespan = q.run()
        if done_count != len(nodes):
            raise SimulationError(
                f"simulation stalled: {done_count}/{len(nodes)} tasks completed"
            )
        return SimReport(
            makespan=makespan,
            num_tasks=len(nodes),
            machine=m,
            core_busy=core_busy,
            gpu_busy=gpu_busy[: m.num_gpus],
            placement=placement,
            trace=trace,
        )
