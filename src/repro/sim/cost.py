"""Cost annotations: how long each task takes on the virtual machine.

Applications attach a :class:`TaskCost` to each task; the simulator
combines it with the :class:`~repro.sim.machine.MachineSpec` rates to
obtain virtual durations.  Costs describe *paper-scale* work (the real
1.5M-gate / 2.2M-cell workloads), while the functional graphs executed
by the threaded runtime run at test scale — the same graph topology at
two fidelities.

Defaulting rules when a task carries no annotation:

- host tasks: :attr:`CostModel.default_host_seconds`;
- pull/push tasks: bytes from the span if resolvable (else
  :attr:`CostModel.default_copy_bytes`);
- kernel tasks: :attr:`CostModel.default_kernel_seconds`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.node import Node, TaskType
from repro.core.task import Task
from repro.errors import SimulationError


@dataclass(frozen=True)
class TaskCost:
    """Virtual-resource demand of one task.

    Only the fields relevant to the task's type are read:

    - host: ``cpu_seconds``;
    - pull: ``copy_bytes`` (H2D);
    - push: ``copy_bytes`` (D2H);
    - kernel: ``gpu_seconds``.
    """

    cpu_seconds: float = 0.0
    gpu_seconds: float = 0.0
    copy_bytes: float = 0.0

    def __post_init__(self) -> None:
        if min(self.cpu_seconds, self.gpu_seconds, self.copy_bytes) < 0:
            raise SimulationError("task costs must be non-negative")


class CostModel:
    """Maps nodes to :class:`TaskCost` annotations with sane defaults."""

    def __init__(
        self,
        *,
        default_host_seconds: float = 1e-4,
        default_kernel_seconds: float = 1e-4,
        default_copy_bytes: float = 1 << 20,
    ) -> None:
        self._costs: Dict[int, TaskCost] = {}
        self.default_host_seconds = default_host_seconds
        self.default_kernel_seconds = default_kernel_seconds
        self.default_copy_bytes = default_copy_bytes

    def annotate(self, task: Union[Task, Node], cost: TaskCost) -> None:
        """Attach *cost* to *task* (handle or node)."""
        node = task.node if isinstance(task, Task) else task
        self._costs[node.nid] = cost

    def annotate_host(self, task: Union[Task, Node], seconds: float) -> None:
        self.annotate(task, TaskCost(cpu_seconds=seconds))

    def annotate_kernel(self, task: Union[Task, Node], seconds: float) -> None:
        self.annotate(task, TaskCost(gpu_seconds=seconds))

    def annotate_copy(self, task: Union[Task, Node], nbytes: float) -> None:
        self.annotate(task, TaskCost(copy_bytes=nbytes))

    def cost_of(self, node: Node) -> TaskCost:
        """The annotation for *node*, or a type-appropriate default."""
        cost = self._costs.get(node.nid)
        if cost is not None:
            return cost
        if node.type is TaskType.HOST:
            return TaskCost(cpu_seconds=self.default_host_seconds)
        if node.type is TaskType.KERNEL:
            return TaskCost(gpu_seconds=self.default_kernel_seconds)
        if node.type in (TaskType.PULL, TaskType.PUSH):
            nbytes: Optional[float] = None
            if node.span is not None:
                try:
                    nbytes = float(node.span.size_bytes())
                except Exception:
                    nbytes = None
            return TaskCost(copy_bytes=self.default_copy_bytes if nbytes is None else nbytes)
        raise SimulationError(f"cannot cost a task of type {node.type}")

    def __len__(self) -> int:
        return len(self._costs)
