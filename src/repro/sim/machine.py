"""Machine models for the virtual-time simulator.

A :class:`MachineSpec` describes the resources the DES schedules onto.
:func:`paper_testbed` returns the calibration used for the reproduction
figures — it models the paper's 40-core Xeon Gold 6138 + 4× RTX 2080
machine at the granularity the scheduler cares about.

Calibration notes (see DESIGN.md):

- ``kernel_slots = 3``: the effective number of application kernels an
  RTX 2080 overlaps for this workload mix.  Derived from the paper's
  Fig. 6 anchors: (1 core, 1 GPU) = 99 min vs (40 cores, 1 GPU) =
  36 min implies the GPU serviced ~2.75× more concurrent work once
  enough worker streams fed it.
- copy engines: one per direction, matching the device's DMA engines.
- ``dispatch_overhead``: CPU time a worker spends submitting one GPU
  op (driver call + bookkeeping); tens of microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class MachineSpec:
    """Resource counts and rate parameters for one simulated machine."""

    num_cores: int
    num_gpus: int
    #: host-to-device bandwidth, bytes/second (PCIe 3.0 x16 ~ 12 GB/s)
    h2d_bandwidth: float = 12e9
    #: device-to-host bandwidth, bytes/second
    d2h_bandwidth: float = 12e9
    #: fixed latency per copy operation, seconds
    copy_latency: float = 10e-6
    #: fixed latency per kernel launch, seconds
    kernel_launch_overhead: float = 8e-6
    #: CPU time a worker spends dispatching one GPU op, seconds
    dispatch_overhead: float = 30e-6
    #: concurrent kernels one device sustains (stream multiplexing cap)
    kernel_slots: int = 3
    #: concurrent H2D copies per device (DMA engines)
    h2d_engines: int = 1
    #: concurrent D2H copies per device
    d2h_engines: int = 1

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise SimulationError("machine needs at least one core")
        if self.num_gpus < 0:
            raise SimulationError("GPU count must be non-negative")
        if self.h2d_bandwidth <= 0 or self.d2h_bandwidth <= 0:
            raise SimulationError("bandwidths must be positive")
        if self.kernel_slots < 1 or self.h2d_engines < 1 or self.d2h_engines < 1:
            raise SimulationError("engine counts must be >= 1")
        if min(self.copy_latency, self.kernel_launch_overhead, self.dispatch_overhead) < 0:
            raise SimulationError("overheads must be non-negative")

    def with_resources(self, num_cores: int, num_gpus: int) -> "MachineSpec":
        """Copy of this spec with different core/GPU counts (sweeps)."""
        return MachineSpec(
            num_cores=num_cores,
            num_gpus=num_gpus,
            h2d_bandwidth=self.h2d_bandwidth,
            d2h_bandwidth=self.d2h_bandwidth,
            copy_latency=self.copy_latency,
            kernel_launch_overhead=self.kernel_launch_overhead,
            dispatch_overhead=self.dispatch_overhead,
            kernel_slots=self.kernel_slots,
            h2d_engines=self.h2d_engines,
            d2h_engines=self.d2h_engines,
        )

    def h2d_seconds(self, nbytes: float) -> float:
        """Virtual duration of an H2D copy of *nbytes*."""
        return self.copy_latency + nbytes / self.h2d_bandwidth

    def d2h_seconds(self, nbytes: float) -> float:
        """Virtual duration of a D2H copy of *nbytes*."""
        return self.copy_latency + nbytes / self.d2h_bandwidth


def paper_testbed(num_cores: int = 40, num_gpus: int = 4) -> MachineSpec:
    """The calibrated model of the paper's evaluation machine."""
    return MachineSpec(num_cores=num_cores, num_gpus=num_gpus)
