"""Parameter sweeps over the virtual-time simulator.

The evaluation figures are all sweeps of (cores, gpus, workload-size);
this module packages that pattern for downstream users: declare the
axes, get back a tidy result table with makespans, speed-ups, and
utilizations, ready for printing or plotting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.heteroflow import Heteroflow
from repro.sim.cost import CostModel
from repro.sim.machine import MachineSpec
from repro.sim.simulator import SimExecutor, SimReport


@dataclass
class SweepPoint:
    """One simulated configuration."""

    cores: int
    gpus: int
    params: Dict[str, object]
    report: SimReport

    @property
    def makespan(self) -> float:
        return self.report.makespan


@dataclass
class SweepResult:
    """All points of one sweep, with convenience accessors."""

    points: List[SweepPoint] = field(default_factory=list)

    def makespan(self, cores: int, gpus: int, **params) -> float:
        for p in self.points:
            if p.cores == cores and p.gpus == gpus and all(
                p.params.get(k) == v for k, v in params.items()
            ):
                return p.report.makespan
        raise KeyError((cores, gpus, params))

    def speedups(self, baseline: Optional[Tuple[int, int]] = None) -> Dict[tuple, float]:
        """makespan(baseline) / makespan(point) per (cores, gpus, ...).

        Default baseline: the smallest (cores, gpus) point.
        """
        if not self.points:
            return {}
        if baseline is None:
            base_point = min(self.points, key=lambda p: (p.cores, p.gpus))
            base = base_point.report.makespan
        else:
            base = self.makespan(*baseline)
        return {
            (p.cores, p.gpus, tuple(sorted(p.params.items()))): base / p.report.makespan
            for p in self.points
        }

    def rows(self) -> List[tuple]:
        """(cores, gpus, *param-values, makespan, core-util) rows."""
        out = []
        for p in sorted(self.points, key=lambda p: (p.cores, p.gpus)):
            out.append(
                (
                    p.cores,
                    p.gpus,
                    *[v for _, v in sorted(p.params.items())],
                    p.report.makespan,
                    round(p.report.core_utilization, 3),
                )
            )
        return out


def sweep_machines(
    graph: Heteroflow,
    cost_model: CostModel,
    cores: Sequence[int],
    gpus: Sequence[int],
    *,
    base_machine: Optional[MachineSpec] = None,
    **sim_kwargs,
) -> SweepResult:
    """Simulate *graph* at every (cores x gpus) point."""
    result = SweepResult()
    for c, g in itertools.product(cores, gpus):
        machine = (
            base_machine.with_resources(c, g)
            if base_machine is not None
            else MachineSpec(c, g)
        )
        rep = SimExecutor(machine, cost_model, **sim_kwargs).run(graph)
        result.points.append(SweepPoint(c, g, {}, rep))
    return result


def sweep_workloads(
    build: Callable[..., Tuple[Heteroflow, CostModel]],
    param_grid: Dict[str, Sequence],
    cores: Sequence[int],
    gpus: Sequence[int],
    *,
    base_machine: Optional[MachineSpec] = None,
    **sim_kwargs,
) -> SweepResult:
    """Sweep workload parameters x machine sizes.

    *build* is called with one kwargs combination from *param_grid*
    and must return ``(graph, cost_model)``; every machine point then
    simulates that graph.
    """
    result = SweepResult()
    keys = sorted(param_grid)
    for values in itertools.product(*(param_grid[k] for k in keys)):
        params = dict(zip(keys, values))
        graph, cm = build(**params)
        for c, g in itertools.product(cores, gpus):
            machine = (
                base_machine.with_resources(c, g)
                if base_machine is not None
                else MachineSpec(c, g)
            )
            rep = SimExecutor(machine, cm, **sim_kwargs).run(graph)
            result.points.append(SweepPoint(c, g, dict(params), rep))
    return result
