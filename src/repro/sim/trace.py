"""Trace analysis: Gantt rendering, utilization breakdown, bottlenecks.

Consumes the ``trace`` of a :class:`~repro.sim.simulator.SimReport`
(``record_trace=True``) or any list of records exposing ``name``,
``type``, ``resource``, ``start``, ``end`` — the
:class:`~repro.core.observer.TraceObserver` records satisfy the same
shape after :func:`records_from_observer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.sim.simulator import SimTaskRecord


def records_from_observer(observer) -> List[SimTaskRecord]:
    """Adapt :class:`~repro.core.observer.TraceObserver` records.

    Wall-clock stamps are rebased to the earliest record; the resource
    label is the worker id (host view of execution).
    """
    recs = observer.records
    if not recs:
        return []
    t0 = min(r.begin for r in recs)
    return [
        SimTaskRecord(
            name=r.name,
            type=r.type,
            resource=f"worker{r.worker_id}" if r.device is None else f"gpu{r.device}",
            start=r.begin - t0,
            end=r.end - t0,
        )
        for r in recs
    ]


@dataclass
class UtilizationRow:
    resource: str
    busy: float
    span: float

    @property
    def utilization(self) -> float:
        return self.busy / self.span if self.span > 0 else 0.0


def utilization_by_resource(
    trace: Sequence[SimTaskRecord], makespan: float | None = None
) -> List[UtilizationRow]:
    """Busy time and utilization per resource, sorted by name."""
    events = [r for r in trace if r.end > r.start]
    if not events:
        return []
    span = makespan if makespan is not None else max(r.end for r in events)
    busy: Dict[str, float] = {}
    for r in events:
        busy[r.resource] = busy.get(r.resource, 0.0) + r.duration
    return [UtilizationRow(res, b, span) for res, b in sorted(busy.items())]


def busiest_tasks(trace: Sequence[SimTaskRecord], k: int = 10) -> List[SimTaskRecord]:
    """The *k* longest-running task instances."""
    return sorted(trace, key=lambda r: -r.duration)[:k]


def concurrency_profile(
    trace: Sequence[SimTaskRecord], type_filter: str | None = None
) -> List[Tuple[float, int]]:
    """Step function of in-flight task count over time.

    Returns (time, level-after-time) breakpoints; useful for checking
    e.g. how many kernels a GPU sustained.
    """
    events: List[Tuple[float, int]] = []
    for r in trace:
        if type_filter is not None and r.type != type_filter:
            continue
        if r.end > r.start:
            events.append((r.start, +1))
            events.append((r.end, -1))
    events.sort()
    out: List[Tuple[float, int]] = []
    level = 0
    for t, d in events:
        level += d
        if out and out[-1][0] == t:
            out[-1] = (t, level)
        else:
            out.append((t, level))
    return out


def peak_concurrency(trace: Sequence[SimTaskRecord], type_filter: str | None = None) -> int:
    prof = concurrency_profile(trace, type_filter)
    return max((lvl for _, lvl in prof), default=0)


def render_gantt(
    trace: Sequence[SimTaskRecord],
    *,
    width: int = 80,
    makespan: float | None = None,
) -> str:
    """ASCII Gantt chart: one row per resource, one glyph per time cell.

    Glyphs: ``#`` host, ``K`` kernel, ``<`` pull (H2D), ``>`` push
    (D2H), ``*`` mixed occupancy within a cell.
    """
    events = [r for r in trace if r.end > r.start]
    if not events:
        return "(empty trace)"
    span = makespan if makespan is not None else max(r.end for r in events)
    if span <= 0:
        return "(zero-length trace)"
    glyph = {"host": "#", "kernel": "K", "pull": "<", "push": ">"}
    rows: Dict[str, List[str]] = {}
    for r in events:
        row = rows.setdefault(r.resource, [" "] * width)
        lo = min(int(r.start / span * width), width - 1)
        hi = min(int(r.end / span * width), width - 1)
        g = glyph.get(r.type, "?")
        for cell in range(lo, hi + 1):
            row[cell] = g if row[cell] in (" ", g) else "*"
    name_w = max(len(n) for n in rows)
    lines = [
        f"{'resource'.ljust(name_w)} |0{' ' * (width - 12)}{span:>9.3f}s|"
    ]
    for name in sorted(rows):
        lines.append(f"{name.ljust(name_w)} |{''.join(rows[name])}|")
    lines.append("legend: # host   K kernel   < pull   > push   * mixed")
    return "\n".join(lines)


def summarize(trace: Sequence[SimTaskRecord], makespan: float | None = None) -> str:
    """One-paragraph textual summary of a trace."""
    events = [r for r in trace if r.end > r.start]
    if not events:
        return "empty trace"
    span = makespan if makespan is not None else max(r.end for r in events)
    util = utilization_by_resource(events, span)
    by_type: Dict[str, int] = {}
    for r in events:
        by_type[r.type] = by_type.get(r.type, 0) + 1
    parts = [f"{len(events)} tasks over {span:.3f}s"]
    parts.append("counts: " + ", ".join(f"{t}={n}" for t, n in sorted(by_type.items())))
    parts.append(
        "utilization: "
        + ", ".join(f"{u.resource}={u.utilization:.0%}" for u in util)
    )
    return "; ".join(parts)
