"""Discrete-event calendar: a deterministic heap of timed callbacks."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple

from repro.errors import SimulationError


class EventQueue:
    """Min-heap event calendar with FIFO tie-breaking.

    Determinism matters: two events at the same virtual time fire in
    insertion order, so repeated simulations of the same graph produce
    identical makespans.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    def schedule_at(self, when: float, fn: Callable[[], None]) -> None:
        """Fire *fn* at absolute virtual time *when*."""
        if when < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < {self._now})"
            )
        heapq.heappush(self._heap, (when, next(self._seq), fn))

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Fire *fn* after *delay* seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, fn)

    def run(self, max_events: int = 100_000_000) -> float:
        """Drain the calendar; returns the final virtual time."""
        count = 0
        while self._heap:
            when, _, fn = heapq.heappop(self._heap)
            self._now = when
            fn()
            count += 1
            if count > max_events:
                raise SimulationError("event budget exceeded (livelock?)")
        return self._now

    @property
    def empty(self) -> bool:
        return not self._heap
