"""The hflint driver: run the rule set over a graph, pre-execution.

``lint(graph)`` is a pure inspection pass — it never mutates the graph,
never spins up an executor thread or simulated GPU, and completes in
milliseconds even for thousand-task graphs (the happens-before closure
is bitset-based).  It is wired into the stack at three levels:

- standalone:       ``report = repro.analysis.lint(hf)``
- graph method:     ``report = hf.lint()``
- executor gate:    ``executor.run(hf, lint=True)`` raises
                    :class:`~repro.errors.LintError` on error findings
- CLI:              ``python -m repro lint [--json] [--dot]``
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.diagnostics import LintReport
from repro.analysis.model import GraphModel
from repro.analysis.rules import ALL_RULES
from repro.gpu.device import DEFAULT_MEMORY_BYTES


def lint(
    graph,
    *,
    gpu_memory_bytes: Optional[int] = None,
    rules: Optional[Iterable[str]] = None,
) -> LintReport:
    """Statically analyze *graph*; returns a sorted :class:`LintReport`.

    *gpu_memory_bytes* is the per-device pool size the HF020 capacity
    prediction checks against (default: the runtime's default pool).
    *rules* optionally restricts the pass to a subset of rule codes.
    """
    pool = DEFAULT_MEMORY_BYTES if gpu_memory_bytes is None else int(gpu_memory_bytes)
    if pool <= 0:
        raise ValueError("gpu_memory_bytes must be positive")
    selected = set(ALL_RULES) if rules is None else set(rules)
    unknown = selected - set(ALL_RULES)
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")

    model = GraphModel(graph)
    report = LintReport(
        graph_name=graph.name,
        num_tasks=len(model.nodes),
        gpu_memory_bytes=pool,
    )
    for code, fn in ALL_RULES.items():
        if code not in selected:
            continue
        if code == "HF020":
            report.extend(fn(model, gpu_memory_bytes=pool))
        else:
            report.extend(fn(model))

    # anchor every diagnostic to graph-local node indices: the stable
    # ordering tiebreaker (sort by severity, code, then nid)
    index = {n.name: i for i, n in reversed(list(enumerate(model.nodes)))}
    for d in report.diagnostics:
        d.nids = tuple(index.get(name, -1) for name in d.tasks)

    # attach the inferred-effects summary when the effect rules ran
    # (schema v2); restricting `rules=` to pre-effect codes keeps the
    # pass byte-code-free and the summary empty
    if selected & {"HF014", "HF015", "HF016", "HF017"}:
        report.effects = {
            node.name: te.effects.as_dict()
            for node, te in model.effects().items()
        }
    return report.finalize()
