"""Diagnostic objects, severities, and the hflint rule catalog.

Every finding the analyzer can emit carries a stable rule code (the
``HFnnn`` identifiers documented in ``docs/analysis.md``), a severity
tier, the names of the tasks involved, and a structured ``data``
payload for machine consumers.  The catalog below is the single source
of truth: reporters, the CLI, tests, and the docs all key off it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Diagnostic tiers, ordered so comparisons read naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalog."""

    code: str
    title: str
    severity: Severity
    summary: str


#: The hflint rule catalog.  Codes are stable public API: they appear
#: in JSON output, CI logs, and the documentation, and must never be
#: renumbered.  HF00x are structural rules, HF01x span-dataflow rules,
#: HF02x capacity-prediction rules.
RULES: Dict[str, Rule] = {
    r.code: r
    for r in (
        Rule(
            "HF001",
            "cycle",
            Severity.ERROR,
            "the task graph contains a dependency cycle",
        ),
        Rule(
            "HF002",
            "dead task",
            Severity.WARNING,
            "a GPU task is disconnected, or a pull task's span is "
            "never consumed by any kernel or push task",
        ),
        Rule(
            "HF003",
            "unbound placeholder",
            Severity.ERROR,
            "a task reached lint with no work bound (placeholder, or a "
            "partially-configured host/pull/push/kernel task)",
        ),
        Rule(
            "HF010",
            "use before transfer",
            Severity.ERROR,
            "a kernel or push task accesses a pull task's device span "
            "with no dependency path from that pull task",
        ),
        Rule(
            "HF011",
            "span race",
            Severity.ERROR,
            "two unordered tasks access the same device span and at "
            "least one of them writes it",
        ),
        Rule(
            "HF012",
            "push of unwritten span",
            Severity.WARNING,
            "a push task copies back a span that no kernel ever writes",
        ),
        Rule(
            "HF013",
            "redundant edge",
            Severity.INFO,
            "a dependency edge duplicates another edge or an existing "
            "transitive path",
        ),
        Rule(
            "HF014",
            "undeclared span write",
            Severity.ERROR,
            "effect inference proves a kernel writes a span its "
            "reads() declaration marks read-only",
        ),
        Rule(
            "HF015",
            "host data race",
            Severity.ERROR,
            "two unordered host tasks share a captured Python object "
            "and at least one mutates it without a common lock",
        ),
        Rule(
            "HF016",
            "nondeterministic callable in frozen topology",
            Severity.WARNING,
            "a task inside a frozen/replayed topology calls a "
            "nondeterminism source (random/time/uuid, unordered-set "
            "iteration), so replays may diverge",
        ),
        Rule(
            "HF017",
            "stale access declaration",
            Severity.WARNING,
            "a reads()/writes() declaration names a span the kernel "
            "body provably never touches",
        ),
        Rule(
            "HF020",
            "placement group exceeds device pool",
            Severity.ERROR,
            "a union-find placement group's aggregate span footprint "
            "cannot fit any single simulated GPU memory pool",
        ),
    )
}


@dataclass
class Diagnostic:
    """One finding: a rule violation anchored to concrete tasks."""

    code: str
    message: str
    tasks: Tuple[str, ...] = ()
    #: structured details (rule-specific; JSON-serializable values only)
    data: Dict[str, Any] = field(default_factory=dict)
    #: severity override; defaults to the catalog severity
    severity: Optional[Severity] = None
    #: graph-local node indices of ``tasks`` (same order), assigned by
    #: the linter; the deterministic-ordering tiebreaker
    nids: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.code not in RULES:
            raise ValueError(f"unknown rule code {self.code!r}")
        if self.severity is None:
            self.severity = RULES[self.code].severity
        self.tasks = tuple(self.tasks)
        self.nids = tuple(self.nids)

    @property
    def rule(self) -> Rule:
        return RULES[self.code]

    def as_dict(self) -> Dict[str, Any]:
        """Stable JSON-ready form (documented in docs/analysis.md)."""
        return {
            "code": self.code,
            "rule": self.rule.title,
            "severity": self.severity.label,
            "message": self.message,
            "tasks": list(self.tasks),
            "nids": list(self.nids),
            "data": dict(sorted(self.data.items())),
        }

    def __str__(self) -> str:
        where = f" [{', '.join(self.tasks)}]" if self.tasks else ""
        return f"{self.code} {self.severity.label}: {self.message}{where}"


def sort_key(d: Diagnostic):
    """Deterministic report order: severity first, then rule code, then
    the graph-local node indices of the involved tasks (``nids``), with
    task names and the message as final tiebreakers.  The order is
    locked by the JSON golden test."""
    return (-int(d.severity), d.code, d.nids, d.tasks, d.message)


@dataclass
class LintReport:
    """The outcome of one :func:`repro.analysis.lint` pass."""

    graph_name: str
    num_tasks: int
    gpu_memory_bytes: int
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: per-task inferred-effects summary (task name -> effect dict),
    #: attached by the linter; part of the schema-v2 JSON document
    effects: Dict[str, Any] = field(default_factory=dict)

    def extend(self, diags: List[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def finalize(self) -> "LintReport":
        self.diagnostics.sort(key=sort_key)
        return self

    # -- filtering ---------------------------------------------------
    def at_least(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    def counts(self) -> Dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }

    # -- verdicts ----------------------------------------------------
    @property
    def ok(self) -> bool:
        """No error-severity findings (the executor-gate criterion)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No findings at warning severity or above ("lint-clean")."""
        return not self.at_least(Severity.WARNING)

    def raise_if_errors(self) -> None:
        """Raise :class:`repro.errors.LintError` on error findings."""
        if not self.ok:
            from repro.errors import LintError

            raise LintError(self)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "graph": self.graph_name,
            "num_tasks": self.num_tasks,
            "gpu_memory_bytes": self.gpu_memory_bytes,
            "ok": self.ok,
            "clean": self.clean,
            "counts": self.counts(),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "effects": {k: self.effects[k] for k in sorted(self.effects)},
        }

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        c = self.counts()
        return (
            f"LintReport({self.graph_name!r}, {c['error']}E/"
            f"{c['warning']}W/{c['info']}I)"
        )
