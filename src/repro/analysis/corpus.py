"""The lint-clean regression corpus: every shipped flow, buildable.

``python -m repro lint`` (and the CI lint job) run hflint over each
graph this module can construct: the Listing-1 saxpy graph, the three
application flows, and — when an ``examples/`` directory is reachable —
every example script that exposes a module-level ``build()`` function.
These graphs are maintained lint-clean (no warning-or-worse findings);
a regression here means either a real graph bug or an analyzer false
positive, and both are bugs.
"""

from __future__ import annotations

import importlib.util
import os
import sys
from typing import Callable, Dict, Iterator, List, Tuple

from repro.core.heteroflow import Heteroflow


def build_saxpy():
    """The paper's Listing-1 saxpy graph (also used by the CLI).

    Returns ``(graph, x, y, n)`` — the host containers are part of the
    return so runners can check the arithmetic.
    """
    from repro.core import Heteroflow

    n = 65536
    x: List[int] = []
    y: List[int] = []

    def saxpy(ctx, n, a, xv, yv):
        i = ctx.flat_indices()
        i = i[i < n]
        yv[i] = a * xv[i] + yv[i]

    hf = Heteroflow("saxpy")
    host_x = hf.host(lambda: x.extend([1] * n), name="host_x")
    host_y = hf.host(lambda: y.extend([2] * n), name="host_y")
    pull_x = hf.pull(x, name="pull_x")
    pull_y = hf.pull(y, name="pull_y")
    kernel = (
        hf.kernel(saxpy, n, 2, pull_x, pull_y, name="saxpy")
        .block_x(256)
        .grid_x((n + 255) // 256)
    )
    # y is read-modify-write; declaring both modes keeps the effect
    # rules (HF014/HF017) in agreement with the inferred body effects
    kernel.reads(pull_y).writes(pull_y)
    push_x = hf.push(pull_x, x, name="push_x")
    push_y = hf.push(pull_y, y, name="push_y")
    host_x.precede(pull_x)
    host_y.precede(pull_y)
    kernel.succeed(pull_x, pull_y).precede(push_x, push_y)
    return hf, x, y, n


def _saxpy_graph() -> Heteroflow:
    return build_saxpy()[0]


def _timing_graph() -> Heteroflow:
    from repro.apps.timing import build_timing_flow

    return build_timing_flow(num_views=4, num_gates=60, paths_per_view=8).graph


def _placement_graph() -> Heteroflow:
    from repro.apps.placement import build_placement_flow

    return build_placement_flow(num_cells=40, iterations=3).graph


def _sparsenn_graph() -> Heteroflow:
    from repro.apps.sparsenn import build_inference_flow

    return build_inference_flow(
        width=16, num_layers=3, batch_size=8, num_blocks=4, num_shards=2
    ).graph


#: name -> zero-arg builder returning a representative small instance
#: of each shipped flow (small keeps ``repro lint`` and CI fast; the
#: graph *shape* — and therefore every lint property — matches the
#: full-scale builds).
BUILTIN_CORPUS: Dict[str, Callable[[], Heteroflow]] = {
    "saxpy": _saxpy_graph,
    "timing": _timing_graph,
    "placement": _placement_graph,
    "sparsenn": _sparsenn_graph,
}


def iter_builtin(names=None) -> Iterator[Tuple[str, Heteroflow]]:
    """Yield ``(name, graph)`` for the requested builtin workloads."""
    for name in names or BUILTIN_CORPUS:
        if name not in BUILTIN_CORPUS:
            raise KeyError(
                f"unknown workload {name!r}; "
                f"available: {', '.join(BUILTIN_CORPUS)}"
            )
        yield name, BUILTIN_CORPUS[name]()


def _extract_graphs(obj) -> List[Heteroflow]:
    """Pull Heteroflow graphs out of whatever an example build() returns."""
    if isinstance(obj, Heteroflow):
        return [obj]
    graph = getattr(obj, "graph", None)
    if isinstance(graph, Heteroflow):
        return [graph]
    if isinstance(obj, (tuple, list)):
        out: List[Heteroflow] = []
        for item in obj:
            out.extend(_extract_graphs(item))
        return out
    return []


def iter_example_graphs(directory: str) -> Iterator[Tuple[str, Heteroflow]]:
    """Yield ``(name, graph)`` from every example exposing ``build()``.

    Each ``*.py`` file in *directory* is imported in isolation; modules
    without a ``build`` callable are skipped (they have no graph to
    lint without running).  ``build()`` may return a graph, a flow
    object with a ``.graph``, or any nesting of those in tuples/lists.
    """
    for fname in sorted(os.listdir(directory)):
        if not fname.endswith(".py") or fname.startswith("_"):
            continue
        path = os.path.join(directory, fname)
        modname = f"_hflint_example_{fname[:-3]}"
        spec = importlib.util.spec_from_file_location(modname, path)
        if spec is None or spec.loader is None:  # pragma: no cover
            continue
        module = importlib.util.module_from_spec(spec)
        sys.modules[modname] = module
        try:
            spec.loader.exec_module(module)
            build = getattr(module, "build", None)
            if not callable(build):
                continue
            graphs = _extract_graphs(build())
        finally:
            sys.modules.pop(modname, None)
        for i, graph in enumerate(graphs):
            suffix = "" if len(graphs) == 1 else f"#{i}"
            yield f"{fname[:-3]}{suffix}", graph


def find_examples_dir(start: str = ".") -> str:
    """Locate an ``examples/`` directory near *start* (cwd by default).

    Returns the empty string when none exists — callers then lint only
    the builtin corpus.
    """
    probe = os.path.abspath(start)
    for _ in range(4):
        cand = os.path.join(probe, "examples")
        if os.path.isdir(cand):
            return cand
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    return ""
