"""The hflint rules: HF001-HF003 (structure), HF010-HF013 (span
dataflow), HF014-HF017 (inferred effects), HF020 (capacity prediction).

Each rule is a pure function from a :class:`~repro.analysis.model.GraphModel`
to a list of :class:`~repro.analysis.diagnostics.Diagnostic` objects.
Rules that need the happens-before closure (HF010/HF011/HF013/HF015)
are skipped while the graph is cyclic — HF001 already makes the run
fail, and path queries are undefined on a cyclic graph.

The effect rules consume :meth:`GraphModel.effects` (bytecode-level
inference, :mod:`repro.analysis.effects`) and fire only on *confident*
facts: a callable the engine could not fully prove never produces an
HF014/HF017, and HF015 only reports mutations the engine actually saw.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.effects import UNKNOWN, RootEffect
from repro.analysis.model import GraphModel, SpanAccess
from repro.core.node import Node, TaskType

RuleFn = Callable[..., List[Diagnostic]]


def check_hf001_cycle(model: GraphModel) -> List[Diagnostic]:
    """HF001: dependency cycle, with a concrete witness path."""
    if model.cycle is None:
        return []
    witness = [n.name for n in model.cycle]
    return [
        Diagnostic(
            "HF001",
            "dependency cycle: " + " -> ".join(witness),
            tasks=model.names(*model.cycle[:-1]),
            data={"witness": witness},
        )
    ]


def check_hf002_dead_task(model: GraphModel) -> List[Diagnostic]:
    """HF002: disconnected GPU tasks and never-consumed pull spans.

    An isolated *host* task is idiomatic (independent parallel work)
    and stays silent; an isolated GPU task cannot be ordered against
    the data it serves, and a pull task nothing reads is a dead H2D
    transfer either way.
    """
    out: List[Diagnostic] = []
    for n in model.nodes:
        if n.type.is_gpu and not n.successors and not n.dependents:
            out.append(
                Diagnostic(
                    "HF002",
                    f"{n.type.value} task {n.name!r} has no dependency "
                    "edges at all; nothing orders it against the tasks "
                    "using its data",
                    tasks=(n.name,),
                    data={"kind": "disconnected"},
                )
            )
    for pull, accesses in model.span_accesses.items():
        if not accesses:
            out.append(
                Diagnostic(
                    "HF002",
                    f"span of pull task {pull.name!r} is never consumed "
                    "by any kernel or push task (dead H2D transfer)",
                    tasks=(pull.name,),
                    data={"kind": "dead-pull"},
                )
            )
    return out


def check_hf003_unbound(model: GraphModel) -> List[Diagnostic]:
    """HF003: tasks that would fail graph validation at submit time."""
    return [
        Diagnostic(
            "HF003",
            f"task {n.name!r}: {reason}",
            tasks=(n.name,),
            data={"type": n.type.value},
        )
        for n, reason in model.unbound.items()
    ]


def check_hf010_use_before_transfer(model: GraphModel) -> List[Diagnostic]:
    """HF010: span access with no dependency path from its pull task.

    The executor raises ``KernelError`` at run time when this schedule
    actually bites ("ran before its pull task; add the missing
    dependency") — but only on the interleavings that lose the race.
    Statically, *any* span consumer without a path from the pull is a
    latent use-before-transfer.
    """
    if not model.acyclic:
        return []
    out: List[Diagnostic] = []
    for pull, accesses in model.span_accesses.items():
        for acc in accesses:
            if not model.reaches(pull, acc.node):
                verb = "reads" if acc.node.type is TaskType.PUSH else "accesses"
                out.append(
                    Diagnostic(
                        "HF010",
                        f"{acc.node.type.value} task {acc.node.name!r} "
                        f"{verb} the span of pull task {pull.name!r} but "
                        "has no dependency path from it; add "
                        f"{pull.name!r}.precede({acc.node.name!r}) or an "
                        "equivalent transitive edge",
                        tasks=(pull.name, acc.node.name),
                        data={"span": pull.name},
                    )
                )
    return out


def _race_pair(model: GraphModel, pull: Node, a: SpanAccess, b: SpanAccess):
    kind = "write-write" if (a.writes and b.writes) else "read-write"
    return Diagnostic(
        "HF011",
        f"{kind} race on the span of pull task {pull.name!r}: "
        f"{a.node.name!r} ({a.mode}) and {b.node.name!r} ({b.mode}) "
        "have no dependency path between them; order them explicitly "
        "or declare read-only access with KernelTask.reads()",
        tasks=model.names(a.node, b.node),
        data={"span": pull.name, "kind": kind},
    )


def check_hf011_span_race(model: GraphModel) -> List[Diagnostic]:
    """HF011: unordered accesses to one span, at least one writing.

    Pairs where an access has no path from the pull at all are already
    HF010 findings; to avoid double reporting, only pairs in which both
    accesses are downstream of the pull are considered here.
    """
    if not model.acyclic:
        return []
    out: List[Diagnostic] = []
    for pull, accesses in model.span_accesses.items():
        placed = [a for a in accesses if model.reaches(pull, a.node)]
        for a, b in combinations(placed, 2):
            if not (a.writes or b.writes):
                continue
            if a.node is b.node or model.ordered(a.node, b.node):
                continue
            out.append(_race_pair(model, pull, a, b))
    return out


def check_hf012_push_unwritten(model: GraphModel) -> List[Diagnostic]:
    """HF012: push of a span no kernel ever writes (D2H of unchanged
    data — usually a forgotten kernel binding or a stale push)."""
    out: List[Diagnostic] = []
    for pull, accesses in model.span_accesses.items():
        written = any(
            a.writes for a in accesses if a.node.type is TaskType.KERNEL
        )
        if written:
            continue
        for a in accesses:
            if a.node.type is TaskType.PUSH:
                out.append(
                    Diagnostic(
                        "HF012",
                        f"push task {a.node.name!r} copies back the span "
                        f"of pull task {pull.name!r}, but no kernel ever "
                        "writes that span — the push returns the data "
                        "unchanged",
                        tasks=(a.node.name,),
                        data={"span": pull.name},
                    )
                )
    return out


def check_hf013_redundant_edge(model: GraphModel) -> List[Diagnostic]:
    """HF013: duplicate edges and transitively-implied edges.

    Both are semantically harmless (the runtime counts each edge as a
    dependency) but add join-counter traffic and obscure the graph's
    real structure, so they surface at info severity.
    """
    if not model.acyclic:
        return []
    out: List[Diagnostic] = []
    seen_dup = set()
    seen_trans = set()
    for u, v in model.edges:
        key = (id(u), id(v))
        if u.successors.count(v) > 1:
            if key not in seen_dup:
                seen_dup.add(key)
                out.append(
                    Diagnostic(
                        "HF013",
                        f"duplicate edge {u.name!r} -> {v.name!r} "
                        f"(declared {u.successors.count(v)} times)",
                        tasks=model.names(u, v),
                        data={"kind": "duplicate"},
                    )
                )
            continue
        if key in seen_trans:
            continue
        for s in u.successors:
            if s is v or id(s) not in model._index:
                continue
            if model.reaches(s, v):
                seen_trans.add(key)
                out.append(
                    Diagnostic(
                        "HF013",
                        f"edge {u.name!r} -> {v.name!r} is implied by the "
                        f"path through {s.name!r} and can be dropped",
                        tasks=model.names(u, v),
                        data={"kind": "transitive", "via": s.name},
                    )
                )
                break
    return out


def check_hf014_undeclared_write(model: GraphModel) -> List[Diagnostic]:
    """HF014: a kernel provably writes a span declared read-only.

    Fires only when the effect engine is *confident* about the span
    parameter: a direct subscript store, in-place operator, or mutating
    method on the bound argument.  Parameters that escape into opaque
    calls never fire (the write cannot be proven).
    """
    out: List[Diagnostic] = []
    for node, te in model.effects().items():
        if node.type is not TaskType.KERNEL:
            continue
        for pull, eff in te.span.items():
            declared_read = (
                pull in node.kernel_reads and pull not in node.kernel_writes
            )
            if not declared_read:
                continue
            if eff.writes and eff.confident:
                kinds = sorted({m.kind for m in eff.mutations})
                out.append(
                    Diagnostic(
                        "HF014",
                        f"kernel {node.name!r} declares the span of pull "
                        f"task {pull.name!r} read-only via reads(), but "
                        f"its body writes it ({', '.join(kinds)} on "
                        f"parameter {eff.name!r}); declare it with "
                        "writes() or fix the kernel",
                        tasks=(node.name, pull.name),
                        data={
                            "span": pull.name,
                            "param": eff.name,
                            "mutations": [m.as_dict() for m in eff.mutations],
                        },
                    )
                )
    return out


def _hf015_conflict(a: RootEffect, b: RootEffect) -> Optional[str]:
    """Why two unordered tasks' accesses to one object conflict.

    Returns None for the patterns that are idiomatically safe:

    - every access on both sides holds a common lock;
    - disjoint constant-key element/attribute stores;
    - unknown-key element stores on both sides (sharded outputs, e.g.
      ``results[widx] = ...`` across matcher tasks);
    - an element store against a pure read (atomic under the GIL).
    """
    if a.guarded & b.guarded:
        return None
    for w, o in ((a, b), (b, a)):
        for m in w.mutations:
            if m.whole:
                if o.accessed:
                    return f"{m.kind} clobbers the whole object"
            elif m.key is not UNKNOWN:
                for om in o.mutations:
                    if (
                        not om.whole
                        and om.kind == m.kind
                        and om.key is not UNKNOWN
                        and om.key == m.key
                    ):
                        return (
                            f"both tasks store {m.kind} key {m.detail}"
                        )
    return None


def check_hf015_host_race(model: GraphModel) -> List[Diagnostic]:
    """HF015: two unordered host tasks racing on captured state.

    The Python-level analogue of HF011: inferred captured-object
    effects replace the span dataflow, and the happens-before closure
    decides which pairs can actually overlap.
    """
    if not model.acyclic:
        return []
    effects = model.effects()
    # captured object -> [(node, effect)] over host tasks
    shared: Dict[int, List] = {}
    for node, te in effects.items():
        if node.type is not TaskType.HOST:
            continue
        for obj_id, eff in te.effects.captured.items():
            if eff.accessed:
                shared.setdefault(obj_id, []).append((node, eff))
    out: List[Diagnostic] = []
    seen = set()
    for obj_id, users in shared.items():
        if len(users) < 2:
            continue
        for (na, ea), (nb, eb) in combinations(users, 2):
            if na is nb or model.ordered(na, nb):
                continue
            why = _hf015_conflict(ea, eb)
            if why is None:
                continue
            key = (min(id(na), id(nb)), max(id(na), id(nb)), obj_id)
            if key in seen:
                continue
            seen.add(key)
            out.append(
                Diagnostic(
                    "HF015",
                    f"data race on captured {ea.obj_type} {ea.name!r}: "
                    f"host tasks {na.name!r} and {nb.name!r} have no "
                    f"dependency path between them and {why}; order "
                    "them explicitly or guard both accesses with one "
                    "lock",
                    tasks=model.names(na, nb),
                    data={
                        "object": ea.name,
                        "object_type": ea.obj_type,
                        "conflict": why,
                        "mutations_a": [m.as_dict() for m in ea.mutations],
                        "mutations_b": [m.as_dict() for m in eb.mutations],
                    },
                )
            )
    return out


def check_hf016_nondet_frozen(model: GraphModel) -> List[Diagnostic]:
    """HF016: nondeterminism inside a frozen/replayed topology.

    Frozen topologies exist to be replayed (docs/runtime.md, "Freeze
    and replay"), and the differential replay harness compares runs —
    a callable drawing from ``random``/``time`` or iterating an
    unordered set makes replays diverge by construction.  Unfrozen
    graphs stay silent: nondeterminism is only a hazard once the
    topology is compiled for replay.
    """
    if not getattr(model.graph, "frozen", False):
        return []
    out: List[Diagnostic] = []
    for node, te in model.effects().items():
        if not te.nondet:
            continue
        sources = sorted(set(te.nondet))
        out.append(
            Diagnostic(
                "HF016",
                f"{node.type.value} task {node.name!r} is "
                "nondeterministic inside a frozen topology "
                f"({sources[0]}{', ...' if len(sources) > 1 else ''}); "
                "replays of this graph may diverge — seed the source "
                "or move it out of the frozen graph",
                tasks=(node.name,),
                data={"sources": sources},
            )
        )
    return out


def check_hf017_stale_declaration(model: GraphModel) -> List[Diagnostic]:
    """HF017: a reads()/writes() declaration the body never uses.

    Fires only on *confident* analyses where the span-bound parameter
    is provably untouched — never read, never written, never escaping
    into an opaque call.  A stale declaration misleads both human
    readers and the HF011 race rule (a pull declared read-only races
    less), so it surfaces as a warning.
    """
    out: List[Diagnostic] = []
    for node, te in model.effects().items():
        if node.type is not TaskType.KERNEL:
            continue
        for pull, eff in te.span.items():
            declared = pull in node.kernel_reads or pull in node.kernel_writes
            if not declared:
                continue
            if eff.confident and not eff.accessed:
                out.append(
                    Diagnostic(
                        "HF017",
                        f"kernel {node.name!r} declares access to the "
                        f"span of pull task {pull.name!r}, but its body "
                        f"never touches parameter {eff.name!r}; drop "
                        "the stale declaration or fix the kernel",
                        tasks=(node.name, pull.name),
                        data={"span": pull.name, "param": eff.name},
                    )
                )
    return out


def check_hf020_group_capacity(
    model: GraphModel, *, gpu_memory_bytes: int
) -> List[Diagnostic]:
    """HF020: static OOM prediction against the per-device pool.

    Algorithm 1 must co-locate each union-find group on one GPU, and
    the executor frees pull buffers only at topology end — so a group
    whose buddy-rounded span footprint exceeds a single device pool is
    guaranteed to exhaust it, regardless of how many GPUs exist.
    """
    out: List[Diagnostic] = []
    for group in model.groups:
        if group.footprint_bytes <= gpu_memory_bytes:
            continue
        pulls = group.pulls
        shown = ", ".join(p.name for p in pulls[:6])
        if len(pulls) > 6:
            shown += f", ... ({len(pulls) - 6} more)"
        note = (
            f" ({len(group.unresolved)} span(s) unresolved and excluded)"
            if group.unresolved
            else ""
        )
        out.append(
            Diagnostic(
                "HF020",
                f"placement group rooted at {group.root.name!r} pulls "
                f"{group.footprint_bytes} bytes (buddy-rounded) across "
                f"[{shown}], exceeding the {gpu_memory_bytes}-byte "
                f"device pool every GPU has{note}; split the group or "
                "enlarge gpu_memory_bytes",
                tasks=model.names(*pulls),
                data={
                    "footprint_bytes": group.footprint_bytes,
                    "pool_bytes": gpu_memory_bytes,
                    "group_root": group.root.name,
                    "unresolved_spans": [p.name for p in group.unresolved],
                },
            )
        )
    return out


#: rule registry in execution order; HF020 takes the pool size.
ALL_RULES: Dict[str, RuleFn] = {
    "HF001": check_hf001_cycle,
    "HF002": check_hf002_dead_task,
    "HF003": check_hf003_unbound,
    "HF010": check_hf010_use_before_transfer,
    "HF011": check_hf011_span_race,
    "HF012": check_hf012_push_unwritten,
    "HF013": check_hf013_redundant_edge,
    "HF014": check_hf014_undeclared_write,
    "HF015": check_hf015_host_race,
    "HF016": check_hf016_nondet_frozen,
    "HF017": check_hf017_stale_declaration,
    "HF020": check_hf020_group_capacity,
}
