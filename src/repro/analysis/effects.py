"""Static effect inference over task callables ("what does it touch?").

hflint's span rules (HF010-HF012) trust what users *declare* via
:meth:`~repro.core.task.KernelTask.reads` / ``writes()``.  This module
closes the loop: it symbolically executes the **bytecode** of host and
kernel callables (CPython 3.11 opcode set) and computes each task's
memory effects without running it:

- **span parameters** — for a kernel, which pull-bound arguments the
  body reads, writes (direct subscript stores, in-place operators,
  mutating methods), or lets *escape* into opaque calls;
- **captured state** — closure cells, default arguments, and globals
  holding mutable objects (lists, dicts, sets, arrays, plain objects),
  with the concrete mutations applied to them and the lock guards held
  (``with lock:``) at each access site;
- **nondeterminism** — calls into ``random``/``time``/``secrets``/
  ``uuid`` (incl. ``numpy.random``) and iteration over unordered sets.

The engine is a worklist walk over the instruction graph: every
reachable instruction is interpreted once against an abstract stack
(CPython guarantees a static stack depth per offset), branches fork the
walk, and called *captured* Python callables are analyzed recursively
(bounded depth, cycle-guarded, stdlib callables stay opaque) so effects
compose through helper chains.  Anything the engine cannot prove —
unknown opcodes, ``*args`` forwarding, values escaping into opaque
calls — degrades **confidence** instead of guessing: rules only fire on
confident facts, and the runtime sanitizer (:mod:`repro.analysis.sanitize`)
treats unconfident roots as "anything allowed".

Consumed by lint rules HF014-HF017 (:mod:`repro.analysis.rules`) and by
the sanitizer's static/dynamic cross-check.  See docs/analysis.md,
"Effect inference".
"""

from __future__ import annotations

import dis
import sys
import threading
import types
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.node import Node, TaskType

#: sentinel for a subscript key that is not a static constant
UNKNOWN = object()

#: modules whose callables make a task nondeterministic (HF016)
NONDET_MODULES = ("random", "secrets", "uuid", "time", "numpy.random")

#: maximum depth of recursion into called captured callables
MAX_CALL_DEPTH = 8

_LOCK_TYPES = (type(threading.Lock()), type(threading.RLock()))

#: container methods that mutate the receiver in place
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "clear", "pop", "popitem",
    "setdefault", "update", "add", "discard", "sort", "reverse",
    "appendleft", "popleft", "rotate", "fill", "sort", "put", "itemset",
    "resize", "setflags", "partition_inplace", "__setitem__", "__delitem__",
})

#: methods known to leave the receiver unchanged
_PURE = frozenset({
    "copy", "count", "index", "get", "keys", "values", "items", "tolist",
    "sum", "mean", "std", "min", "max", "all", "any", "argmax", "argmin",
    "astype", "nonzero", "cumsum", "dot", "flatten", "round", "item",
    "tobytes", "union", "intersection", "difference", "isdisjoint",
    "issubset", "issuperset", "startswith", "endswith", "join", "split",
    "strip", "format", "encode", "decode", "most_common", "byteswap",
})

#: ndarray methods returning a view that writes through to the base
_VIEW_METHODS = frozenset({
    "reshape", "ravel", "view", "transpose", "swapaxes", "squeeze",
})

#: builtins that read their arguments without capturing them
_SAFE_BUILTINS = frozenset({
    "len", "range", "enumerate", "zip", "min", "max", "abs", "sum",
    "sorted", "isinstance", "issubclass", "repr", "str", "int", "float",
    "bool", "print", "hash", "id", "iter", "next", "divmod", "round",
    "all", "any", "ord", "chr", "format", "getattr", "hasattr", "callable",
})

#: types tracked as captured mutable state
_MUTABLE_TYPES = (list, dict, set, bytearray, np.ndarray)

_IMMUTABLE_TYPES = (
    int, float, complex, bool, str, bytes, frozenset, type(None),
    tuple, slice, range, types.CodeType,
)


def _is_stdlib(module: Optional[str]) -> bool:
    if not module:
        return False
    top = module.split(".", 1)[0]
    return top in sys.stdlib_module_names


def _nondet_module(module: Optional[str]) -> Optional[str]:
    if not module:
        return None
    for m in NONDET_MODULES:
        if module == m or module.startswith(m + "."):
            return m
    return None


def _callable_module(obj) -> Optional[str]:
    """Best-effort defining module of a callable.

    ``__module__`` alone misses bound builtin methods: ``random.random``
    is a method of a hidden ``Random`` instance and reports ``None``, so
    fall back to the bound receiver's class (or the receiver itself when
    it is a module, as for ``math.sin``-style builtins).
    """
    module = getattr(obj, "__module__", None)
    if module:
        return module
    owner = getattr(obj, "__self__", None)
    if owner is None:
        return None
    if isinstance(owner, types.ModuleType):
        return owner.__name__
    return getattr(type(owner), "__module__", None)


@dataclass
class Mutation:
    """One direct mutation of a tracked root."""

    kind: str  # "rebind" | "setattr" | "setitem" | "method" | "inplace"
    detail: str = ""  # attribute/method name, or a key repr
    key: Any = UNKNOWN  # constant subscript key, or :data:`UNKNOWN`
    whole: bool = False  # touches the whole object (slice/inplace/...)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "key": None if self.key is UNKNOWN else repr(self.key),
            "whole": self.whole,
        }


@dataclass
class RootEffect:
    """Inferred effects on one tracked object (a param or a capture)."""

    name: str
    source: str  # "param" | "cell" | "default" | "global"
    index: Optional[int] = None  # positional argument index (params)
    obj_id: Optional[int] = None  # id() of the live captured object
    obj_type: str = ""
    reads: bool = False
    writes: bool = False  # at least one *direct* mutation was proven
    escapes: bool = False  # aliased / passed to an opaque call / returned
    confident: bool = True
    mutations: List[Mutation] = field(default_factory=list)
    #: lock ids held at *every* access site (intersection); None until
    #: the first access is recorded
    guards: Optional[frozenset] = None

    def touch_guards(self, held: frozenset) -> None:
        self.guards = held if self.guards is None else (self.guards & held)

    @property
    def accessed(self) -> bool:
        return self.reads or self.writes or self.escapes

    @property
    def guarded(self) -> frozenset:
        return self.guards if self.guards else frozenset()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "source": self.source,
            "reads": self.reads,
            "writes": self.writes,
            "escapes": self.escapes,
            "confident": self.confident,
            "guarded": bool(self.guards),
            "mutations": [m.as_dict() for m in self.mutations],
        }


@dataclass
class CallableEffects:
    """The full inferred effect set of one callable."""

    params: Dict[str, RootEffect] = field(default_factory=dict)
    captured: Dict[Any, RootEffect] = field(default_factory=dict)
    nondet: List[str] = field(default_factory=list)
    confident: bool = True
    opaque: bool = False  # not analyzable at all (builtin, C callable)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "confident": self.confident,
            "opaque": self.opaque,
            "nondet": sorted(set(self.nondet)),
            "params": {k: v.as_dict() for k, v in sorted(self.params.items())},
            "captured": sorted(
                (v.as_dict() for v in self.captured.values()),
                key=lambda d: (d["name"], d["source"]),
            ),
        }


@dataclass
class TaskEffects:
    """Effects of one graph node's callable, bound to its arguments."""

    node: Node
    effects: CallableEffects
    #: pull node -> effect on the span-bound parameter (kernels only)
    span: Dict[Node, RootEffect] = field(default_factory=dict)

    @property
    def nondet(self) -> List[str]:
        return self.effects.nondet


# -- abstract values ---------------------------------------------------

class _V:
    """One abstract stack/local slot."""

    __slots__ = (
        "root", "direct", "through", "arr",
        "obj", "has_obj", "elems", "meth", "target", "code", "free", "cellname",
    )

    def __init__(
        self, root=None, direct=False, through=False, arr=False,
        obj=None, has_obj=False, elems=None, meth=None, target=None,
        code=None, free=None, cellname=None,
    ):
        self.root = root
        self.direct = direct
        self.through = through
        self.arr = arr
        self.obj = obj
        self.has_obj = has_obj
        self.elems = elems
        self.meth = meth
        self.target = target
        self.code = code
        self.free = free
        self.cellname = cellname

    @property
    def writes_root(self) -> bool:
        return self.root is not None and (self.direct or self.through)


_NULL = _V()  # the PUSH_NULL marker
_ANY = None  # untracked


def _untracked() -> Optional[_V]:
    return None


# -- the engine --------------------------------------------------------

class _Engine:
    def __init__(self) -> None:
        self.params: Dict[str, RootEffect] = {}
        self.captured: Dict[Any, RootEffect] = {}
        self.nondet: List[str] = []
        self.confident = True
        self._active: set = set()  # code ids on the recursion stack

    # -- root bookkeeping ---------------------------------------------
    def param_root(self, name: str, index: Optional[int], arr: bool) -> _V:
        eff = self.params.get(name)
        if eff is None:
            eff = RootEffect(name=name, source="param", index=index)
            self.params[name] = eff
        return _V(root=eff, direct=True, through=True, arr=arr)

    def capture_root(self, name: str, source: str, obj: Any) -> _V:
        key = id(obj)
        eff = self.captured.get(key)
        if eff is None:
            eff = RootEffect(
                name=name, source=source, obj_id=key,
                obj_type=type(obj).__name__,
            )
            self.captured[key] = eff
        return _V(
            root=eff, direct=True, through=True,
            arr=isinstance(obj, np.ndarray), obj=obj, has_obj=True,
        )

    def give_up(self, why: str = "") -> None:
        self.confident = False

    # -- access recording ---------------------------------------------
    def read(self, v: Optional[_V], guards: frozenset) -> None:
        if v is not None and v.root is not None:
            v.root.reads = True
            v.root.touch_guards(guards)

    def write(self, v: Optional[_V], mut: Mutation, guards: frozenset) -> None:
        if v is None or v.root is None:
            return
        if v.direct or v.through:
            v.root.writes = True
            v.root.mutations.append(mut)
        else:
            v.root.reads = True  # derived object mutated, not the root
        v.root.touch_guards(guards)

    def escape(self, v: Optional[_V], guards: frozenset) -> None:
        if v is None:
            return
        if v.root is not None:
            v.root.escapes = True
            v.root.reads = True
            v.root.confident = False
            v.root.touch_guards(guards)
        if v.elems:
            for e in v.elems:
                self.escape(e, guards)

    def finish(self) -> CallableEffects:
        eff = CallableEffects(
            params=self.params, captured=self.captured,
            nondet=self.nondet, confident=self.confident,
        )
        if not self.confident:
            for r in list(self.params.values()) + list(self.captured.values()):
                r.confident = False
        return eff


def _analyzable(fn) -> Optional[types.FunctionType]:
    """The plain function behind *fn*, or None when opaque."""
    if isinstance(fn, types.MethodType):
        fn = fn.__func__
    if not isinstance(fn, types.FunctionType):
        return None
    if _is_stdlib(getattr(fn, "__module__", None)):
        return None
    return fn


class _Frame:
    """One symbolic walk over one code object."""

    def __init__(
        self,
        engine: _Engine,
        code: types.CodeType,
        fn: Optional[types.FunctionType],
        init_locals: Dict[str, Optional[_V]],
        free_map: Dict[str, Optional[_V]],
        guards: frozenset,
        depth: int,
    ) -> None:
        self.e = engine
        self.code = code
        self.fn = fn
        self.locals: Dict[str, Optional[_V]] = dict(init_locals)
        self.derefs: Dict[str, Optional[_V]] = {}
        self.free_map = free_map
        self.guards = set(guards)
        self.depth = depth
        self.instrs = list(dis.get_instructions(code))
        self.by_offset = {ins.offset: i for i, ins in enumerate(self.instrs)}

    # -- deref resolution ---------------------------------------------
    def _load_deref(self, name: str) -> Optional[_V]:
        if name in self.code.co_cellvars:
            return self.derefs.get(name)
        if name in self.free_map:
            return self.free_map[name]
        if self.fn is not None and self.fn.__closure__:
            try:
                idx = self.code.co_freevars.index(name)
                cell = self.fn.__closure__[idx]
                obj = cell.cell_contents
            except (ValueError, IndexError):
                return _untracked()
            return self._bind_object(name, "cell", obj)
        return _untracked()

    def _bind_object(self, name: str, source: str, obj: Any) -> Optional[_V]:
        """Classify a live captured object into an abstract value."""
        if isinstance(obj, _IMMUTABLE_TYPES):
            return _V(obj=obj, has_obj=True)
        if isinstance(obj, types.ModuleType):
            return _V(obj=obj, has_obj=True)
        if isinstance(obj, _LOCK_TYPES):
            return _V(obj=obj, has_obj=True)
        if callable(obj) and not isinstance(obj, _MUTABLE_TYPES):
            return _V(obj=obj, has_obj=True)
        return self.e.capture_root(name, source, obj)

    def _store_deref(self, name: str, v: Optional[_V]) -> None:
        if name in self.code.co_cellvars:
            self.derefs[name] = v
            return
        # nonlocal rebinding of a captured cell is shared-state mutation
        target = None
        if name in self.free_map:
            target = self.free_map[name]
        elif self.fn is not None and self.fn.__closure__:
            target = self._load_deref(name)
        if target is not None and target.root is not None:
            self.e.write(
                target, Mutation("rebind", name, whole=True),
                frozenset(self.guards),
            )

    # -- global resolution --------------------------------------------
    def _load_global(self, name: str) -> Optional[_V]:
        if self.fn is not None:
            g = self.fn.__globals__
            if name in g:
                obj = g[name]
            else:
                import builtins

                obj = getattr(builtins, name, _V)  # _V as missing marker
                if obj is _V:
                    return _untracked()
            return self._bind_object(name, "global", obj)
        return _untracked()

    # -- call handling -------------------------------------------------
    def _call(self, callee: Optional[_V], args: List[Optional[_V]]) -> Optional[_V]:
        held = frozenset(self.guards)
        if callee is None:
            for a in args:
                self.e.escape(a, held)
            return _untracked()

        # method call on a tracked or known object
        if callee.meth is not None:
            name = callee.meth
            target = callee.target
            resolved = callee.obj if callee.has_obj else None
            if resolved is not None:
                return self._call(
                    _V(obj=resolved, has_obj=True), args[1:] if args else []
                )
            rest = args[1:] if args else []
            if target is not None and target.root is not None:
                if target.direct or target.through:
                    if name in _MUTATORS:
                        self.e.write(
                            target, Mutation("method", name, whole=True), held
                        )
                        for a in rest:
                            self.e.escape(a, held)
                        return _untracked()
                    if name in _PURE:
                        self.e.read(target, held)
                        for a in rest:
                            self.e.read(a, held)
                        return _untracked()
                    if name in _VIEW_METHODS and target.arr:
                        self.e.read(target, held)
                        for a in rest:
                            self.e.read(a, held)
                        return _V(
                            root=target.root, through=True, arr=True
                        )
                    # unknown method: may mutate, may capture
                    self.e.escape(target, held)
                else:
                    self.e.read(target, held)
            for a in rest:
                self.e.escape(a, held)
            return _untracked()

        # call of a locally-defined function (comprehension, nested def)
        if callee.code is not None:
            self._recurse_code(callee.code, callee.free or {}, args)
            return _untracked()

        if callee.has_obj:
            obj = callee.obj
            nd = _nondet_module(_callable_module(obj))
            if nd is None and isinstance(obj, types.ModuleType):
                nd = _nondet_module(obj.__name__)
            if nd is not None:
                qual = getattr(obj, "__qualname__", type(obj).__name__)
                self.e.nondet.append(f"{nd}: call of {qual}")
                for a in args:
                    self.e.read(a, held)
                return _untracked()
            fn = _analyzable(obj)
            if fn is not None and self.depth < MAX_CALL_DEPTH:
                self._recurse_fn(obj, fn, args)
                return _untracked()
            name = getattr(obj, "__name__", "")
            if (
                name in _SAFE_BUILTINS
                and getattr(obj, "__module__", None) == "builtins"
            ):
                for a in args:
                    self.e.read(a, held)
                return _untracked()

        for a in args:
            self.e.escape(a, held)
        return _untracked()

    def _bind_params(
        self, code: types.CodeType, fn, args: List[Optional[_V]]
    ) -> Dict[str, Optional[_V]]:
        names = code.co_varnames[: code.co_argcount]
        init: Dict[str, Optional[_V]] = {}
        for i, name in enumerate(names):
            if i < len(args):
                init[name] = args[i]
            elif fn is not None and fn.__defaults__:
                # trailing params fall back to default objects
                off = i - (code.co_argcount - len(fn.__defaults__))
                if 0 <= off < len(fn.__defaults__):
                    init[name] = self._bind_object(
                        name, "default", fn.__defaults__[off]
                    )
        if code.co_flags & 0x04:  # CO_VARARGS
            vname = code.co_varnames[code.co_argcount]
            extra = args[code.co_argcount:]
            init[vname] = _V(elems=tuple(extra)) if extra else _untracked()
        return init

    def _recurse_fn(self, obj, fn: types.FunctionType, args) -> None:
        key = id(fn.__code__)
        if key in self.e._active:
            return  # recursion cycle: effects already being collected
        if fn.__code__.co_flags & 0x220:  # generator / coroutine
            self.e.give_up("generator callee")
            return
        init = self._bind_params(fn.__code__, fn, args)
        self.e._active.add(key)
        try:
            _Frame(
                self.e, fn.__code__, fn, init, {}, frozenset(self.guards),
                self.depth + 1,
            ).run()
        finally:
            self.e._active.discard(key)

    def _recurse_code(self, code: types.CodeType, free, args) -> None:
        key = id(code)
        if key in self.e._active or self.depth >= MAX_CALL_DEPTH:
            return
        if code.co_flags & 0x220:
            self.e.give_up("generator comprehension")
            return
        init = self._bind_params(code, None, args)
        self.e._active.add(key)
        try:
            _Frame(
                self.e, code, self.fn, init, free, frozenset(self.guards),
                self.depth + 1,
            ).run()
        finally:
            self.e._active.discard(key)

    # -- the walk ------------------------------------------------------
    def run(self) -> None:
        if not self.instrs:
            return
        visited: set = set()
        work: List[Tuple[int, List[Optional[_V]]]] = [(0, [])]
        while work:
            idx, stack = work.pop()
            while 0 <= idx < len(self.instrs):
                if idx in visited:
                    break
                visited.add(idx)
                ins = self.instrs[idx]
                nxt = self._step(ins, stack, work, visited)
                if nxt is False:
                    break
                idx += 1

    def _jump_idx(self, ins) -> Optional[int]:
        tgt = ins.argval
        return self.by_offset.get(tgt)

    def _enqueue(self, work, visited, idx, stack) -> None:
        if idx is not None and idx not in visited:
            work.append((idx, list(stack)))

    def _pop(self, stack, n=1):
        out = []
        for _ in range(n):
            if not stack:
                self.e.give_up("stack underflow")
                out.append(_untracked())
            else:
                out.append(stack.pop())
        return out  # out[0] is TOS

    def _step(self, ins, stack, work, visited):
        """Interpret one instruction; False ends the current path."""
        op = ins.opname
        e = self.e
        held = frozenset(self.guards)

        if op in (
            "RESUME", "NOP", "CACHE", "PRECALL", "COPY_FREE_VARS",
            "KW_NAMES", "EXTENDED_ARG",
            "JUMP_BACKWARD_NO_INTERRUPT",
        ):
            return True
        if op == "MAKE_CELL":
            # a parameter (or local) promoted to a closure cell:
            # subsequent accesses use LOAD_DEREF/STORE_DEREF, so its
            # abstract value must migrate into the deref namespace or
            # nested-closure effects on it are silently lost
            name = ins.argval
            if name in self.locals:
                self.derefs[name] = self.locals[name]
            return True
        if op == "POP_TOP":
            self._pop(stack)
            return True
        if op == "PUSH_NULL":
            stack.append(_NULL)
            return True
        if op == "COPY":
            n = ins.arg
            stack.append(stack[-n] if len(stack) >= n else _untracked())
            return True
        if op == "SWAP":
            n = ins.arg
            if len(stack) >= n:
                stack[-1], stack[-n] = stack[-n], stack[-1]
            return True

        if op == "LOAD_CONST":
            val = ins.argval
            if isinstance(val, types.CodeType):
                stack.append(_V(code=val))
            else:
                stack.append(_V(obj=val, has_obj=True))
            return True
        if op == "LOAD_FAST":
            stack.append(self.locals.get(ins.argval))
            return True
        if op == "STORE_FAST":
            (v,) = self._pop(stack)
            self.locals[ins.argval] = v
            return True
        if op == "DELETE_FAST":
            self.locals.pop(ins.argval, None)
            return True
        if op in ("LOAD_DEREF", "LOAD_CLASSDEREF"):
            stack.append(self._load_deref(ins.argval))
            return True
        if op == "STORE_DEREF":
            (v,) = self._pop(stack)
            self._store_deref(ins.argval, v)
            return True
        if op == "LOAD_CLOSURE":
            stack.append(_V(cellname=ins.argval))
            return True
        if op == "LOAD_GLOBAL":
            if ins.arg & 1:
                stack.append(_NULL)
            stack.append(self._load_global(ins.argval))
            return True
        if op in ("STORE_GLOBAL", "DELETE_GLOBAL"):
            if op == "STORE_GLOBAL":
                self._pop(stack)
            e.give_up("global rebinding")
            return True

        if op == "LOAD_ATTR":
            (v,) = self._pop(stack)
            if v is not None and v.has_obj and isinstance(v.obj, types.ModuleType):
                attr = getattr(v.obj, ins.argval, None)
                stack.append(
                    _V(obj=attr, has_obj=True) if attr is not None
                    else _untracked()
                )
                return True
            if v is not None and v.root is not None:
                e.read(v, held)
                stack.append(_V(root=v.root, through=False))
                return True
            stack.append(_untracked())
            return True
        if op == "LOAD_METHOD":
            (v,) = self._pop(stack)
            resolved = None
            if v is not None and v.has_obj and isinstance(v.obj, types.ModuleType):
                resolved = getattr(v.obj, ins.argval, None)
            stack.append(
                _V(meth=ins.argval, target=v, obj=resolved,
                   has_obj=resolved is not None)
            )
            stack.append(v)
            return True
        if op == "STORE_ATTR":
            objv, val = self._pop(stack, 2)
            e.escape(val, held)
            if objv is not None and objv.root is not None:
                if objv.direct:
                    e.write(
                        objv, Mutation("setattr", ins.argval, key=ins.argval),
                        held,
                    )
                else:
                    e.read(objv, held)
            return True
        if op == "DELETE_ATTR":
            (objv,) = self._pop(stack)
            if objv is not None and objv.root is not None and objv.direct:
                e.write(
                    objv, Mutation("setattr", ins.argval, key=ins.argval), held
                )
            return True

        if op == "BINARY_SUBSCR":
            key, cont = self._pop(stack, 2)
            e.read(cont, held)
            e.read(key, held)
            if cont is not None and cont.elems is not None and key is not None \
                    and key.has_obj and isinstance(key.obj, int) \
                    and -len(cont.elems) <= key.obj < len(cont.elems):
                stack.append(cont.elems[key.obj])
                return True
            if cont is not None and cont.root is not None \
                    and (cont.direct or cont.through):
                stack.append(
                    _V(root=cont.root, through=cont.arr, arr=cont.arr)
                )
            else:
                stack.append(_untracked())
            return True
        if op in ("STORE_SUBSCR", "DELETE_SUBSCR"):
            if op == "STORE_SUBSCR":
                key, cont, val = self._pop(stack, 3)
                e.escape(val, held)
            else:
                key, cont = self._pop(stack, 2)
            e.read(key, held)
            if cont is not None and cont.root is not None:
                if cont.direct or cont.through:
                    if key is not None and key.has_obj:
                        if isinstance(key.obj, slice):
                            mut = Mutation("setitem", "[:]", whole=True)
                        else:
                            mut = Mutation(
                                "setitem", repr(key.obj), key=key.obj
                            )
                    else:
                        mut = Mutation("setitem", "[?]", key=UNKNOWN)
                    e.write(cont, mut, held)
                else:
                    e.read(cont, held)
            return True
        if op == "BUILD_SLICE":
            parts = self._pop(stack, ins.arg)[::-1]
            if all(p is not None and p.has_obj for p in parts):
                try:
                    stack.append(
                        _V(obj=slice(*[p.obj for p in parts]), has_obj=True)
                    )
                    return True
                except TypeError:
                    pass
            stack.append(_untracked())
            return True

        if op == "BINARY_OP":
            rhs, lhs = self._pop(stack, 2)
            e.read(lhs, held)
            e.read(rhs, held)
            inplace = ins.argrepr.endswith("=")
            if inplace and lhs is not None and lhs.writes_root:
                e.write(lhs, Mutation("inplace", ins.argrepr, whole=True), held)
                stack.append(lhs)
            else:
                stack.append(_untracked())
            return True
        if op in ("COMPARE_OP", "IS_OP", "CONTAINS_OP"):
            a, b = self._pop(stack, 2)
            e.read(a, held)
            e.read(b, held)
            stack.append(_untracked())
            return True
        if op in (
            "UNARY_POSITIVE", "UNARY_NEGATIVE", "UNARY_NOT", "UNARY_INVERT",
        ):
            (v,) = self._pop(stack)
            e.read(v, held)
            stack.append(_untracked())
            return True

        if op in ("BUILD_TUPLE", "BUILD_LIST", "BUILD_SET"):
            vs = self._pop(stack, ins.arg)[::-1]
            if op == "BUILD_SET":
                for v in vs:
                    e.read(v, held)
                stack.append(_untracked())
            else:
                stack.append(_V(elems=tuple(vs)))
            return True
        if op == "BUILD_MAP":
            vs = self._pop(stack, 2 * ins.arg)
            for v in vs:
                e.escape(v, held)
            stack.append(_untracked())
            return True
        if op == "BUILD_CONST_KEY_MAP":
            vs = self._pop(stack, ins.arg + 1)
            for v in vs[:-1]:
                e.escape(v, held)
            stack.append(_untracked())
            return True
        if op == "BUILD_STRING":
            self._pop(stack, ins.arg)
            stack.append(_untracked())
            return True
        if op in ("LIST_EXTEND", "SET_UPDATE", "DICT_UPDATE", "DICT_MERGE"):
            (v,) = self._pop(stack)
            e.escape(v, held)
            return True
        if op in ("LIST_APPEND", "SET_ADD"):
            (v,) = self._pop(stack)
            e.escape(v, held)
            return True
        if op == "MAP_ADD":
            a, b = self._pop(stack, 2)
            e.escape(a, held)
            e.escape(b, held)
            return True
        if op == "LIST_TO_TUPLE":
            (v,) = self._pop(stack)
            stack.append(v)
            return True
        if op == "FORMAT_VALUE":
            if (ins.arg or 0) & 0x04:
                self._pop(stack)
            (v,) = self._pop(stack)
            e.read(v, held)
            stack.append(_untracked())
            return True

        if op == "GET_ITER":
            (v,) = self._pop(stack)
            e.read(v, held)
            if v is not None and v.has_obj and isinstance(v.obj, (set, frozenset)):
                e.nondet.append(
                    "unordered-iteration: iterating a "
                    f"{type(v.obj).__name__} yields a nondeterministic order"
                )
            if v is not None and v.root is not None \
                    and v.root.obj_type in ("set", "frozenset"):
                e.nondet.append(
                    "unordered-iteration: iterating captured "
                    f"{v.root.source} {v.root.name!r} "
                    f"({v.root.obj_type}) yields a nondeterministic order"
                )
            stack.append(
                _V(root=v.root, through=False)
                if v is not None and v.root is not None else _untracked()
            )
            return True
        if op == "FOR_ITER":
            it = stack[-1] if stack else _untracked()
            after = list(stack)
            if after:
                after.pop()  # the exhausted branch pops the iterator
            self._enqueue(work, visited, self._jump_idx(ins), after)
            stack.append(
                _V(root=it.root, through=False)
                if it is not None and it.root is not None else _untracked()
            )
            return True
        if op == "UNPACK_SEQUENCE":
            (v,) = self._pop(stack)
            e.read(v, held)
            n = ins.arg
            if v is not None and v.elems is not None and len(v.elems) == n:
                for item in reversed(v.elems):
                    stack.append(item)
            else:
                src = (
                    _V(root=v.root, through=False)
                    if v is not None and v.root is not None else None
                )
                for _ in range(n):
                    stack.append(src)
            return True

        if op == "MAKE_FUNCTION":
            flags = ins.arg or 0
            (codev,) = self._pop(stack)
            free: Dict[str, Optional[_V]] = {}
            if flags & 0x08:
                (closv,) = self._pop(stack)
                if closv is not None and closv.elems:
                    for cellv in closv.elems:
                        if cellv is not None and cellv.cellname:
                            name = cellv.cellname
                            if name in self.code.co_cellvars:
                                free[name] = self.derefs.get(name)
                            else:
                                free[name] = self._load_deref(name)
            for bit in (0x04, 0x02, 0x01):
                if flags & bit:
                    self._pop(stack)
            if codev is not None and codev.code is not None:
                stack.append(_V(code=codev.code, free=free))
            else:
                stack.append(_untracked())
            return True

        if op == "CALL":
            argc = ins.arg or 0
            args = self._pop(stack, argc)[::-1]
            pair = self._pop(stack, 2)  # [self_or_callable, callable_or_null]
            second, first = pair[0], pair[1]
            if first is _NULL:
                callee, callargs = second, args
            else:
                callee, callargs = first, [second] + args
            stack.append(self._call(callee, callargs))
            return True
        if op == "CALL_FUNCTION_EX":
            flags = ins.arg or 0
            if flags & 0x01:
                (kw,) = self._pop(stack)
                e.escape(kw, held)
            (av,) = self._pop(stack)
            e.escape(av, held)
            pair = self._pop(stack, 2)
            callee = pair[0] if pair[1] is _NULL else pair[1]
            if callee is not None and callee.has_obj:
                nd = _nondet_module(_callable_module(callee.obj))
                if nd:
                    e.nondet.append(
                        f"{nd}: call of "
                        f"{getattr(callee.obj, '__qualname__', '?')}"
                    )
            stack.append(_untracked())
            return True

        if op == "BEFORE_WITH":
            (mgr,) = self._pop(stack)
            if mgr is not None and mgr.has_obj and isinstance(mgr.obj, _LOCK_TYPES):
                self.guards.add(id(mgr.obj))
            elif mgr is not None:
                e.read(mgr, held)
            stack.append(_untracked())  # __exit__
            stack.append(_untracked())  # __enter__ result
            return True

        if op == "IMPORT_NAME":
            self._pop(stack, 2)
            mod = sys.modules.get(ins.argval)
            stack.append(_V(obj=mod, has_obj=True) if mod else _untracked())
            return True
        if op == "IMPORT_FROM":
            top = stack[-1] if stack else None
            if top is not None and top.has_obj and isinstance(top.obj, types.ModuleType):
                attr = getattr(top.obj, ins.argval, None)
                stack.append(
                    _V(obj=attr, has_obj=True) if attr is not None
                    else _untracked()
                )
            else:
                stack.append(_untracked())
            return True
        if op == "IMPORT_STAR":
            self._pop(stack)
            e.give_up("import *")
            return True

        if op in ("JUMP_FORWARD", "JUMP_BACKWARD"):
            self._enqueue(work, visited, self._jump_idx(ins), stack)
            return False
        if op in (
            "POP_JUMP_FORWARD_IF_FALSE", "POP_JUMP_FORWARD_IF_TRUE",
            "POP_JUMP_BACKWARD_IF_FALSE", "POP_JUMP_BACKWARD_IF_TRUE",
            "POP_JUMP_FORWARD_IF_NONE", "POP_JUMP_FORWARD_IF_NOT_NONE",
            "POP_JUMP_BACKWARD_IF_NONE", "POP_JUMP_BACKWARD_IF_NOT_NONE",
        ):
            (v,) = self._pop(stack)
            e.read(v, held)
            self._enqueue(work, visited, self._jump_idx(ins), stack)
            return True
        if op in ("JUMP_IF_TRUE_OR_POP", "JUMP_IF_FALSE_OR_POP"):
            self._enqueue(work, visited, self._jump_idx(ins), stack)
            self._pop(stack)
            return True

        if op == "RETURN_VALUE":
            (v,) = self._pop(stack)
            e.escape(v, held)
            return False
        if op == "RAISE_VARARGS":
            self._pop(stack, ins.arg or 0)
            return False
        if op == "RERAISE":
            return False
        if op == "LOAD_ASSERTION_ERROR":
            stack.append(_untracked())
            return True
        if op == "GET_LEN":
            top = stack[-1] if stack else None
            e.read(top, held)
            stack.append(_untracked())
            return True

        # anything else (generators, pattern matching, async, exception
        # plumbing reached linearly, future opcodes): stop guessing
        e.give_up(f"unhandled opcode {op}")
        return False


# -- public entry points ----------------------------------------------

def infer_callable_effects(fn, args: Optional[Tuple[Any, ...]] = None) -> CallableEffects:
    """Infer the memory effects of *fn*.

    With *args* (kernel binding), positional parameters are modeled as
    span roots when the matching argument is a
    :class:`~repro.core.task.PullTask`, and as the concrete value
    otherwise.  With no *args* (host callable), parameters fall back to
    their default objects, which are tracked as captured state.
    """
    from repro.core.task import PullTask

    plain = _analyzable(fn)
    if plain is None:
        out = CallableEffects(confident=False, opaque=True)
        return out

    engine = _Engine()
    code = plain.__code__
    if code.co_flags & 0x220:  # generator / coroutine callables
        engine.give_up("generator")
        return engine.finish()

    names = list(code.co_varnames[: code.co_argcount])
    offset = 1 if names and names[0] == "ctx" else 0
    init: Dict[str, Optional[_V]] = {}
    if args is None:
        # host callable: executor invokes with no arguments
        frame = _Frame(engine, code, plain, {}, {}, frozenset(), 0)
        init = frame._bind_params(code, plain, [])
        frame.locals.update(init)
    else:
        frame = _Frame(engine, code, plain, {}, {}, frozenset(), 0)
        bound: List[Optional[_V]] = []
        if offset:
            bound.append(_untracked())  # the KernelContext
        for i, a in enumerate(args):
            pidx = i + offset
            if isinstance(a, PullTask):
                name = names[pidx] if pidx < len(names) else f"*args[{i}]"
                v = engine.param_root(name, i, arr=True)
                if pidx >= len(names):
                    # forwarded through *args: position unprovable
                    v.root.confident = False
                    v.root.escapes = True
                bound.append(v)
            else:
                try:
                    bound.append(_V(obj=a, has_obj=True))
                except Exception:  # pragma: no cover - defensive
                    bound.append(_untracked())
        init = frame._bind_params(code, plain, bound)
        frame.locals.update(init)
    frame.run()
    return engine.finish()


def infer_task_effects(node: Node) -> Optional[TaskEffects]:
    """Infer effects for one graph node's callable, or None for
    pull/push/placeholder nodes (their effects are structural and
    already modeled by the span dataflow)."""
    if node.type is TaskType.HOST:
        if node.callable is None:
            return None
        return TaskEffects(node=node, effects=infer_callable_effects(node.callable))
    if node.type is TaskType.KERNEL:
        if node.kernel_fn is None:
            return None
        eff = infer_callable_effects(node.kernel_fn, args=node.kernel_args)
        span: Dict[Node, RootEffect] = {}
        from repro.core.task import PullTask

        for i, a in enumerate(node.kernel_args):
            if not isinstance(a, PullTask):
                continue
            pull = a.node
            for r in eff.params.values():
                if r.index == i:
                    prev = span.get(pull)
                    if prev is None:
                        span[pull] = r
                    else:
                        # same span bound to several parameters: merge
                        prev.reads = prev.reads or r.reads
                        prev.writes = prev.writes or r.writes
                        prev.escapes = prev.escapes or r.escapes
                        prev.confident = prev.confident and r.confident
                        prev.mutations.extend(r.mutations)
                    break
            else:
                if not eff.opaque and eff.confident:
                    # parameter never materialized (e.g. fewer params
                    # than args): treat the span as unprovable
                    missing = RootEffect(
                        name=f"arg{i}", source="param", index=i,
                        confident=False, escapes=True,
                    )
                    span[pull] = missing
        if eff.opaque or not eff.confident:
            for r in span.values():
                r.confident = False
        return TaskEffects(node=node, effects=eff, span=span)
    return None
