"""The static model hflint rules run against.

:class:`GraphModel` snapshots one :class:`~repro.core.heteroflow.Heteroflow`
into three indexed views:

- **structure** — node list, edge multiset, cycle witness (if any),
  topological order, and the full reachability (happens-before) closure
  as per-node descendant bitsets (one Python int per node, bit *j* set
  when node *j* is reachable);
- **span dataflow** — for every pull task, the tasks that access its
  device span and in which mode: the pull itself writes it (H2D),
  kernels read/write it according to their argument bindings and any
  :meth:`~repro.core.task.KernelTask.reads` /
  :meth:`~repro.core.task.KernelTask.writes` declarations, and push
  tasks read it (D2H);
- **placement groups** — the union-find grouping of Algorithm 1
  (kernels unioned with their source pulls) plus each group's
  buddy-rounded span footprint, the basis of static OOM prediction
  (HF020) *and* of service-admission accounting — both consume the
  same :func:`predicted_footprint_bytes`, so they can never drift;
- **effects** (lazy) — per-task inferred memory effects from
  :mod:`repro.analysis.effects`, computed on first use so plain
  structural consumers (e.g. admission) never pay for bytecode
  analysis.

The model never executes user code beyond resolving span sizes (the
same late binding :meth:`repro.utils.span.Span.host_array` performs);
span factories that are not yet resolvable are skipped and counted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.node import Node, TaskType
from repro.gpu.memory import pooled_bytes

#: span access modes
READ = "r"
WRITE = "rw"


@dataclass(frozen=True)
class SpanAccess:
    """One task touching a pull task's device span."""

    node: Node
    mode: str  # READ or WRITE

    @property
    def writes(self) -> bool:
        return self.mode == WRITE


@dataclass
class PlacementGroup:
    """One Algorithm-1 co-location group and its memory footprint."""

    root: Node
    members: List[Node] = field(default_factory=list)
    #: sum of buddy-rounded span sizes over the group's pull tasks
    footprint_bytes: int = 0
    #: pull tasks whose span size could not be resolved statically
    unresolved: List[Node] = field(default_factory=list)

    @property
    def pulls(self) -> List[Node]:
        return [n for n in self.members if n.type is TaskType.PULL]


def predicted_footprint_bytes(graph) -> int:
    """Static device-memory footprint of *graph*, in bytes.

    Sums the buddy-rounded span footprints of the graph's Algorithm-1
    placement groups — the same quantity hflint's HF020 rule compares
    against a single device pool (docs/analysis.md).  Spans whose size
    cannot be resolved statically contribute zero (the runtime will
    still enforce the pools themselves at allocation time).

    This is the **single** definition shared by the analyzer and the
    service admission ledger (:mod:`repro.service.admission` re-exports
    it); frozen-graph replays charge the value cached on the
    :class:`~repro.core.topology.FrozenTopology`
    (``predicted_footprint()``) — same quantity, no per-replay model
    walk (docs/runtime.md, "Freeze and replay").
    """
    return sum(g.footprint_bytes for g in GraphModel(graph).groups)


def _unbound_reason(node: Node) -> Optional[str]:
    """Why *node* cannot execute, or None when fully bound."""
    if node.type is TaskType.PLACEHOLDER:
        return "placeholder was never assigned work"
    if node.type is TaskType.HOST and node.callable is None:
        return "host task has no callable"
    if node.type is TaskType.PULL and node.span is None:
        return "pull task has no span"
    if node.type is TaskType.PUSH and (node.source is None or node.span is None):
        return "push task is incompletely bound"
    if node.type is TaskType.KERNEL and node.kernel_fn is None:
        return "kernel task has no kernel"
    return None


def kernel_access_mode(kernel: Node, pull: Node) -> str:
    """Static access mode of *kernel* on *pull*'s span.

    Kernels are opaque callables, so without declarations the analyzer
    must assume every pull argument is read **and** written.  A
    :meth:`~repro.core.task.KernelTask.reads` declaration narrows a
    pull to read-only; :meth:`~repro.core.task.KernelTask.writes` (or
    no declaration) keeps the conservative read-write default.
    """
    if pull in kernel.kernel_writes:
        return WRITE
    if pull in kernel.kernel_reads:
        return READ
    return WRITE


class GraphModel:
    """Indexed static snapshot of one Heteroflow graph."""

    def __init__(self, graph) -> None:
        self.graph = graph
        self.nodes: List[Node] = list(graph.nodes)
        self._index: Dict[int, int] = {id(n): i for i, n in enumerate(self.nodes)}
        #: (src, dst) pairs, one entry per edge occurrence (parallel
        #: edges preserved), restricted to this graph's own nodes
        self.edges: List[Tuple[Node, Node]] = []
        #: unbound nodes -> human-readable reason
        self.unbound: Dict[Node, str] = {}
        #: a witness cycle (node sequence, first == last), or None
        self.cycle: Optional[List[Node]] = None
        self.topo_order: List[Node] = []
        self._desc: List[int] = []
        #: pull node -> accesses of its device span (pull excluded)
        self.span_accesses: Dict[Node, List[SpanAccess]] = {}
        self.groups: List[PlacementGroup] = []
        self._effects: Optional[Dict[Node, object]] = None
        self._build()

    # -- construction ------------------------------------------------
    def _build(self) -> None:
        for n in self.nodes:
            reason = _unbound_reason(n)
            if reason is not None:
                self.unbound[n] = reason
            for s in n.successors:
                if id(s) in self._index:
                    self.edges.append((n, s))
        self._build_order()
        if self.cycle is None:
            self._build_reachability()
        self._build_dataflow()
        self._build_groups()

    def _build_order(self) -> None:
        indeg = {id(n): 0 for n in self.nodes}
        for _, dst in self.edges:
            indeg[id(dst)] += 1
        ready = deque(n for n in self.nodes if indeg[id(n)] == 0)
        order: List[Node] = []
        while ready:
            n = ready.popleft()
            order.append(n)
            for s in n.successors:
                if id(s) not in self._index:
                    continue
                indeg[id(s)] -= 1
                if indeg[id(s)] == 0:
                    ready.append(s)
        if len(order) != len(self.nodes):
            stuck = [n for n in self.nodes if indeg[id(n)] > 0]
            self.cycle = self._find_cycle(stuck)
        else:
            self.topo_order = order

    def _find_cycle(self, stuck: List[Node]) -> List[Node]:
        """Extract one concrete cycle among the Kahn leftovers."""
        stuck_ids = {id(n) for n in stuck}
        on_path: Dict[int, int] = {}
        path: List[Node] = []

        def walk(start: Node) -> Optional[List[Node]]:
            stack: List[Tuple[Node, int]] = [(start, 0)]
            on_path[id(start)] = 0
            path.append(start)
            while stack:
                node, i = stack[-1]
                succs = [s for s in node.successors if id(s) in stuck_ids]
                if i < len(succs):
                    stack[-1] = (node, i + 1)
                    nxt = succs[i]
                    if id(nxt) in on_path:
                        return path[on_path[id(nxt)] :] + [nxt]
                    on_path[id(nxt)] = len(path)
                    path.append(nxt)
                    stack.append((nxt, 0))
                else:
                    stack.pop()
                    path.pop()
                    del on_path[id(node)]
            return None

        for n in stuck:
            found = walk(n)
            if found:
                return found
        return stuck + stuck[:1]  # pragma: no cover - defensive

    def _build_reachability(self) -> None:
        n = len(self.nodes)
        self._desc = [0] * n
        for node in reversed(self.topo_order):
            i = self._index[id(node)]
            mask = 0
            for s in node.successors:
                j = self._index.get(id(s))
                if j is not None:
                    mask |= (1 << j) | self._desc[j]
            self._desc[i] = mask

    def _build_dataflow(self) -> None:
        pulls = [n for n in self.nodes if n.type is TaskType.PULL]
        self.span_accesses = {p: [] for p in pulls}
        for n in self.nodes:
            if n.type is TaskType.KERNEL:
                for p in dict.fromkeys(n.kernel_sources):  # dedupe, keep order
                    if p in self.span_accesses:
                        self.span_accesses[p].append(
                            SpanAccess(n, kernel_access_mode(n, p))
                        )
            elif n.type is TaskType.PUSH and n.source is not None:
                if n.source in self.span_accesses:
                    self.span_accesses[n.source].append(SpanAccess(n, READ))

    def _build_groups(self) -> None:
        from repro.utils.union_find import UnionFind

        uf: UnionFind = UnionFind()
        for n in self.nodes:
            if n.type in (TaskType.PULL, TaskType.KERNEL):
                uf.add(n)
                if n.type is TaskType.KERNEL:
                    for p in n.kernel_sources:
                        if id(p) in self._index:
                            uf.union(n, p)
        for root, members in uf.groups().items():
            members = sorted(members, key=lambda m: self._index[id(m)])
            group = PlacementGroup(root=root, members=members)
            for p in group.pulls:
                if p.span is None:
                    continue
                try:
                    nbytes = p.span.size_bytes()
                except Exception:
                    group.unresolved.append(p)
                else:
                    group.footprint_bytes += pooled_bytes(nbytes)
            self.groups.append(group)
        self.groups.sort(key=lambda g: self._index[id(g.root)])

    # -- queries -----------------------------------------------------
    def effects(self) -> Dict[Node, object]:
        """Inferred per-task memory effects, computed lazily.

        Maps each host/kernel node to its
        :class:`~repro.analysis.effects.TaskEffects` (nodes whose
        callable could not be inferred at all map to an *opaque*
        record, never to a missing key).  Structural consumers that
        never call this pay nothing for bytecode analysis.
        """
        if self._effects is None:
            from repro.analysis.effects import infer_task_effects

            out = {}
            for n in self.nodes:
                if n.type in (TaskType.HOST, TaskType.KERNEL):
                    te = infer_task_effects(n)
                    if te is not None:
                        out[n] = te
            self._effects = out
        return self._effects

    @property
    def acyclic(self) -> bool:
        return self.cycle is None

    def reaches(self, a: Node, b: Node) -> bool:
        """True iff there is a dependency path a -> ... -> b."""
        j = self._index[id(b)]
        return bool((self._desc[self._index[id(a)]] >> j) & 1)

    def ordered(self, a: Node, b: Node) -> bool:
        """True iff a and b are happens-before related (either way)."""
        return self.reaches(a, b) or self.reaches(b, a)

    def names(self, *nodes: Node) -> Tuple[str, ...]:
        return tuple(n.name for n in nodes)
