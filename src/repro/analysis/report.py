"""Reporters: render lint reports as text, JSON, or a DOT overlay.

The JSON schema (version 1, documented in ``docs/analysis.md``) is
stable public output — CI and editor tooling parse it — so its field
set and ordering are pinned by a golden test.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.core.node import TaskType
from repro.utils.dot import DotWriter

#: bump only with a documented migration; consumers key off this.
#: v2: diagnostics carry ``nids`` (graph-local node indices, the
#: deterministic-ordering tiebreaker) and each graph report carries an
#: ``effects`` map with the per-task inferred memory effects
#: (docs/analysis.md, "Effect inference").
JSON_SCHEMA_VERSION = 2

_SEVERITY_FILL = {
    Severity.ERROR: "indianred1",
    Severity.WARNING: "orange",
    Severity.INFO: "khaki1",
}

_SHAPE = {
    TaskType.HOST: "ellipse",
    TaskType.PULL: "box",
    TaskType.PUSH: "box",
    TaskType.KERNEL: "box",
    TaskType.PLACEHOLDER: "ellipse",
}


def render_text(report: LintReport, *, verbose: bool = False) -> str:
    """Human-readable report, one finding per line."""
    lines: List[str] = []
    c = report.counts()
    lines.append(
        f"{report.graph_name}: {report.num_tasks} task(s), "
        f"{c['error']} error(s), {c['warning']} warning(s), "
        f"{c['info']} info(s)"
    )
    for d in report.diagnostics:
        lines.append(f"  {d}")
        if verbose and d.data:
            for k, v in sorted(d.data.items()):
                lines.append(f"      {k}: {v}")
    if not report.diagnostics:
        lines.append("  clean")
    return "\n".join(lines)


def report_as_dict(report: LintReport) -> Dict:
    return report.as_dict()


def render_json(reports: List[LintReport], *, indent: int = 2) -> str:
    """Stable JSON document over one or more graph reports."""
    doc = {
        "version": JSON_SCHEMA_VERSION,
        "ok": all(r.ok for r in reports),
        "clean": all(r.clean for r in reports),
        "graphs": [r.as_dict() for r in reports],
    }
    return json.dumps(doc, indent=indent, sort_keys=True)


def render_dot(report: LintReport, graph) -> str:
    """The graph's DOT dump with findings overlaid.

    Tasks named in a diagnostic are filled with their worst severity's
    colour and annotated with the rule codes that hit them; edges
    flagged HF013 are drawn dashed.  Clean tasks keep a neutral style,
    so the overlay highlights exactly what needs attention.
    """
    worst: Dict[str, Severity] = {}
    codes: Dict[str, List[str]] = {}
    for d in report.diagnostics:
        for name in d.tasks:
            if name not in worst or d.severity > worst[name]:
                worst[name] = d.severity
            if d.code not in codes.setdefault(name, []):
                codes[name].append(d.code)
    redundant = {
        tuple(d.tasks)
        for d in report.diagnostics
        if d.code == "HF013" and len(d.tasks) == 2
    }

    w = DotWriter(f"hflint:{graph.name}")
    for n in graph.nodes:
        label = n.name
        attrs = {"shape": _SHAPE[n.type], "style": "filled", "fillcolor": "white"}
        sev: Optional[Severity] = worst.get(n.name)
        if sev is not None:
            attrs["fillcolor"] = _SEVERITY_FILL[sev]
            # single-line: DotWriter escapes backslashes, so a DOT "\n"
            # would come out as a literal backslash in the label
            label = f"{n.name} [{','.join(codes[n.name])}]"
        w.add_node(id(n), label, **attrs)
    for n in graph.nodes:
        for s in n.successors:
            if (n.name, s.name) in redundant:
                w.add_edge(id(n), id(s), style="dashed", color="gray50")
            else:
                w.add_edge(id(n), id(s))
    return w.render()


def format_diagnostic(d: Diagnostic) -> str:
    """One-line rendering (CLI/log form)."""
    return str(d)
