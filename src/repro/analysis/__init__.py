"""repro.analysis — "hflint", pre-execution static analysis.

A static analyzer that runs over a constructed
:class:`~repro.core.heteroflow.Heteroflow` *before* submission.  It
computes the reachability/happens-before closure of the DAG and a
span-dataflow model (which tasks read and write each pull task's
device span, derived from pull/push/kernel argument bindings and the
:meth:`~repro.core.task.KernelTask.reads` /
:meth:`~repro.core.task.KernelTask.writes` declarations), then emits
severity-tiered diagnostics with stable ``HFnnn`` rule codes:

========  ========  ===============================================
code      severity  finding
========  ========  ===============================================
HF001     error     dependency cycle (with witness path)
HF002     warning   disconnected GPU task / never-consumed pull span
HF003     error     unbound placeholder or partially-bound task
HF010     error     span access with no path from its pull task
HF011     error     write-write / read-write race on a span
HF012     warning   push of a span no kernel ever writes
HF013     info      duplicate or transitively-implied edge
HF020     error     placement group footprint exceeds any GPU pool
========  ========  ===============================================

Entry points: :func:`lint`, ``Heteroflow.lint()``, the
``Executor.run(..., lint=True)`` gate, and ``python -m repro lint``.
The full rule catalog with examples and fixes is in
``docs/analysis.md``.
"""

from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    LintReport,
    Rule,
    Severity,
)
from repro.analysis.linter import lint
from repro.analysis.model import GraphModel, PlacementGroup, SpanAccess
from repro.analysis.report import (
    JSON_SCHEMA_VERSION,
    render_dot,
    render_json,
    render_text,
)
from repro.analysis.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "GraphModel",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "PlacementGroup",
    "RULES",
    "Rule",
    "Severity",
    "SpanAccess",
    "lint",
    "render_dot",
    "render_json",
    "render_text",
]
