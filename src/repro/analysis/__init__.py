"""repro.analysis — "hflint", pre-execution static analysis.

A static analyzer that runs over a constructed
:class:`~repro.core.heteroflow.Heteroflow` *before* submission.  It
computes the reachability/happens-before closure of the DAG and a
span-dataflow model (which tasks read and write each pull task's
device span, derived from pull/push/kernel argument bindings and the
:meth:`~repro.core.task.KernelTask.reads` /
:meth:`~repro.core.task.KernelTask.writes` declarations), plus a
bytecode-level **effect inference** engine
(:mod:`repro.analysis.effects`) that proves what each host/kernel
callable reads, writes, and captures, then emits severity-tiered
diagnostics with stable ``HFnnn`` rule codes:

========  ========  ===============================================
code      severity  finding
========  ========  ===============================================
HF001     error     dependency cycle (with witness path)
HF002     warning   disconnected GPU task / never-consumed pull span
HF003     error     unbound placeholder or partially-bound task
HF010     error     span access with no path from its pull task
HF011     error     write-write / read-write race on a span
HF012     warning   push of a span no kernel ever writes
HF013     info      duplicate or transitively-implied edge
HF014     error     kernel provably writes a span declared read-only
HF015     error     unordered host tasks race on a captured object
HF016     warning   nondeterministic callable in a frozen topology
HF017     warning   reads()/writes() names a span the body never uses
HF020     error     placement group footprint exceeds any GPU pool
========  ========  ===============================================

Entry points: :func:`lint`, ``Heteroflow.lint()``, the
``Executor.run(..., lint=True)`` gate, and ``python -m repro lint``.
The dynamic half — the hfsan runtime sanitizer
(:mod:`repro.analysis.sanitize`) behind
``Executor.run(..., sanitize=True)`` and ``python -m repro sanitize``
— cross-checks the inference against observed accesses at run time.
The full rule catalog with examples and fixes is in
``docs/analysis.md``.
"""

from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    LintReport,
    Rule,
    Severity,
)
from repro.analysis.effects import (
    CallableEffects,
    Mutation,
    RootEffect,
    TaskEffects,
    infer_callable_effects,
    infer_task_effects,
)
from repro.analysis.linter import lint
from repro.analysis.model import (
    GraphModel,
    PlacementGroup,
    SpanAccess,
    predicted_footprint_bytes,
)
from repro.analysis.report import (
    JSON_SCHEMA_VERSION,
    render_dot,
    render_json,
    render_text,
)
from repro.analysis.rules import ALL_RULES
from repro.analysis.sanitize import (
    Divergence,
    RecordingArray,
    SanitizeReport,
    SanitizerSession,
)

__all__ = [
    "ALL_RULES",
    "CallableEffects",
    "Diagnostic",
    "Divergence",
    "GraphModel",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "Mutation",
    "PlacementGroup",
    "RULES",
    "RecordingArray",
    "RootEffect",
    "Rule",
    "SanitizeReport",
    "SanitizerSession",
    "Severity",
    "SpanAccess",
    "TaskEffects",
    "infer_callable_effects",
    "infer_task_effects",
    "lint",
    "predicted_footprint_bytes",
    "render_dot",
    "render_json",
    "render_text",
]
