"""hfsan: the dynamic half of effect checking (docs/analysis.md).

The static engine (:mod:`repro.analysis.effects`) *predicts* what a
host or kernel callable touches; this module *observes* what it
actually touches during a real run and cross-checks the two.  An
``Executor.run(graph, sanitize=True)`` submission attaches a
:class:`SanitizerSession` to the topology:

- every kernel's device-span arguments are replaced by
  :class:`RecordingArray` views (same memory, zero copies) so element
  reads, writes, and in-place ufuncs are attributed to the
  (kernel, pull) pair they hit;
- mutable objects captured by host callables (closure cells and
  default arguments; lists, dicts, sets, bytearrays, and numpy arrays)
  are swapped for recording proxies that delegate every operation to
  the original object while attributing the access to whichever task
  is running on the current worker thread;
- when the run settles, :meth:`SanitizerSession.finish` restores the
  originals and produces a :class:`SanitizeReport`: every access the
  run *observed* that the inference engine — where it claimed
  confidence — failed to predict is a **divergence** (an inference
  soundness bug), and a kernel write to a span its ``reads()``
  declaration marks read-only is reported as a runtime ``HF014``
  confirmation.

Scope: module-level globals are checked statically only (swapping a
module attribute would leak the proxy to unrelated code), and degraded
host-fallback kernel shims run unsanitized.  The proxies serialize
recording through one session lock — sanitize mode is a debugging
harness, not a production fast path.
"""

from __future__ import annotations

import threading
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.effects import (
    _PURE,
    RootEffect,
    TaskEffects,
    _analyzable,
    infer_task_effects,
)
from repro.core.node import Node, TaskType
from repro.core.task import PullTask

#: report schema identifier; bump only with a documented migration
SCHEMA = "repro.sanitize-report/1"

#: captured types the session knows how to proxy (the same set the
#: static engine tracks as mutable roots, see effects._MUTABLE_TYPES)
_PROXYABLE = (list, dict, set, bytearray)


class _Observed:
    """Runtime access record for one (task, root) pair."""

    __slots__ = ("reads", "writes", "details")

    def __init__(self) -> None:
        self.reads = False
        self.writes = False
        #: operation names seen (method names, "getitem", "setitem", ...)
        self.details: set = set()

    def note(self, kind: str, detail: str) -> None:
        if kind == "write":
            self.writes = True
        else:
            self.reads = True
        self.details.add(detail)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "details": sorted(self.details),
        }


class RecordingArray(np.ndarray):
    """An ndarray view that reports element access to the session.

    Views share the parent's memory, so kernels operate on the real
    device bytes; slicing produces further recording views (the
    callback propagates through ``__array_finalize__``), which keeps
    writes through derived views — ``yv[i] = ...`` after ``v = yv[i:]``
    — attributed to the root span.
    """

    _san_cb: Optional[Callable[[str, str], None]]

    def __array_finalize__(self, obj) -> None:
        self._san_cb = getattr(obj, "_san_cb", None)

    def _note(self, kind: str, detail: str) -> None:
        cb = self._san_cb
        if cb is not None:
            cb(kind, detail)

    def __getitem__(self, key):
        self._note("read", "getitem")
        return super().__getitem__(key)

    def __setitem__(self, key, value) -> None:
        self._note("write", "setitem")
        super().__setitem__(key, value)

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        out = kwargs.get("out", ())
        for x in inputs:
            if isinstance(x, RecordingArray):
                x._note("read", ufunc.__name__)
        for x in out:
            if isinstance(x, RecordingArray):
                x._note("write", ufunc.__name__)
        conv = [
            x.view(np.ndarray) if isinstance(x, RecordingArray) else x
            for x in inputs
        ]
        if out:
            kwargs["out"] = tuple(
                x.view(np.ndarray) if isinstance(x, RecordingArray) else x
                for x in out
            )
        return getattr(ufunc, method)(*conv, **kwargs)


class _RecordingProxy:
    """Delegating wrapper around one captured mutable object.

    The proxy *is not* the target — it forwards every operation to the
    original object (so shared state stays shared with code holding a
    direct reference, e.g. the pull task bound to the same list) and
    records each access.  Method calls are classified with the same
    tables the static engine uses, so runtime and inference agree on
    what counts as a write; an unknown method records a write, the
    conservative direction (the engine marks such roots unconfident,
    which exempts them from the cross-check).
    """

    __slots__ = ("_san_target", "_san_note")

    def __init__(self, target, note: Callable[[str, str], None]) -> None:
        object.__setattr__(self, "_san_target", target)
        object.__setattr__(self, "_san_note", note)

    # -- attribute / method access ------------------------------------
    def __getattr__(self, name: str):
        target = object.__getattribute__(self, "_san_target")
        note = object.__getattribute__(self, "_san_note")
        attr = getattr(target, name)
        if not callable(attr):
            note("read", name)
            return attr
        kind = "read" if name in _PURE else "write"

        def call(*args, **kwargs):
            note(kind, name)
            return attr(*args, **kwargs)

        return call

    # -- container protocol -------------------------------------------
    def __getitem__(self, key):
        self._san_note("read", "getitem")
        return self._san_target[key]

    def __setitem__(self, key, value) -> None:
        self._san_note("write", "setitem")
        self._san_target[key] = value

    def __delitem__(self, key) -> None:
        self._san_note("write", "delitem")
        del self._san_target[key]

    def __iter__(self):
        self._san_note("read", "iter")
        return iter(self._san_target)

    def __len__(self) -> int:
        self._san_note("read", "len")
        return len(self._san_target)

    def __contains__(self, key) -> bool:
        self._san_note("read", "contains")
        return key in self._san_target

    def __bool__(self) -> bool:
        self._san_note("read", "bool")
        return bool(self._san_target)

    def __eq__(self, other) -> bool:
        self._san_note("read", "eq")
        if isinstance(other, _RecordingProxy):
            other = other._san_target
        return self._san_target == other

    def __iadd__(self, other):
        self._san_note("write", "iadd")
        target = self._san_target
        target += other
        return self

    def __repr__(self) -> str:
        return f"<sanitized {self._san_target!r}>"


@dataclass
class Divergence:
    """One access the static engine failed to predict (or a runtime
    confirmation of an undeclared span write)."""

    kind: str  # "unpredicted-write" | "unpredicted-read" |
    #            "untracked-access" | "undeclared-span-write"
    task: str
    root: str
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "task": self.task,
            "root": self.root,
            "detail": self.detail,
        }


@dataclass
class SanitizeReport:
    """Cross-check outcome of one sanitized submission."""

    graph_name: str
    tasks: List[Dict[str, Any]] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)
    #: tasks whose inference was confident (the checkable population)
    confident_tasks: int = 0
    checked_tasks: int = 0
    proxied_objects: int = 0

    @property
    def ok(self) -> bool:
        """No divergence: every observed access was predicted."""
        return not self.divergences

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "graph": self.graph_name,
            "ok": self.ok,
            "checked_tasks": self.checked_tasks,
            "confident_tasks": self.confident_tasks,
            "proxied_objects": self.proxied_objects,
            "divergences": [d.as_dict() for d in self.divergences],
            "tasks": self.tasks,
        }

    def to_json(self, *, indent: int = 2) -> str:
        import json

        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


class SanitizerSession:
    """One sanitized submission: proxy installation, runtime access
    recording, and the final static/dynamic cross-check.

    The session is created *before* submission (inference must see the
    original captured objects), installed into the graph's host
    closures, consulted by the executor on every host/kernel
    invocation, and finished exactly once when the run settles.
    """

    def __init__(self, graph) -> None:
        self.graph = graph
        #: node -> inferred TaskEffects (host + kernel tasks)
        self.effects: Dict[Node, TaskEffects] = {}
        for node in graph.nodes:
            te = infer_task_effects(node)
            if te is not None:
                self.effects[node] = te
        self._lock = threading.Lock()
        self._tls = threading.local()
        #: (nid, root key) -> observed record; root key is
        #: ("span", pull_nid) or ("obj", id(original))
        self.observed: Dict[Tuple[int, Tuple[str, int]], _Observed] = {}
        #: id(original) -> proxy (shared objects share one proxy, so
        #: cross-task aliasing is observed on the same record key)
        self._proxies: Dict[int, Any] = {}
        #: restore plan: ("cell", cell, original) / ("defaults", fn, original)
        self._restores: List[Tuple] = []
        self._kernel_cache: Dict[int, Callable] = {}
        self._finished = False
        self._install()

    # -- proxy installation -------------------------------------------
    def _proxy_for(self, obj) -> Optional[Any]:
        key = id(obj)
        proxy = self._proxies.get(key)
        if proxy is not None:
            return proxy
        if isinstance(obj, np.ndarray):
            view = obj.view(RecordingArray)
            view._san_cb = self._obj_callback(key)
            proxy = view
        elif isinstance(obj, _PROXYABLE):
            proxy = _RecordingProxy(obj, self._obj_callback(key))
        else:
            return None
        self._proxies[key] = proxy
        return proxy

    def _install(self) -> None:
        """Swap proxyable captured objects into host-callable closure
        cells and default tuples.  Only objects the inference tracked
        as captured roots are swapped — the cross-check can only match
        observations against inferred roots."""
        for node, te in self.effects.items():
            if node.type is not TaskType.HOST:
                continue
            fn = _analyzable(node.callable)
            if fn is None:
                continue
            tracked = te.effects.captured  # keyed by id(original)
            if fn.__closure__:
                for cell in fn.__closure__:
                    try:
                        obj = cell.cell_contents
                    except ValueError:  # pragma: no cover - empty cell
                        continue
                    if id(obj) not in tracked:
                        continue
                    proxy = self._proxy_for(obj)
                    if proxy is None:
                        continue
                    already = any(r[1] is cell for r in self._restores)
                    if not already:
                        self._restores.append(("cell", cell, obj))
                        cell.cell_contents = proxy
            if fn.__defaults__:
                new = []
                swapped = False
                for obj in fn.__defaults__:
                    proxy = (
                        self._proxy_for(obj) if id(obj) in tracked else None
                    )
                    new.append(obj if proxy is None else proxy)
                    swapped = swapped or proxy is not None
                if swapped:
                    already = any(
                        r[0] == "defaults" and r[1] is fn
                        for r in self._restores
                    )
                    if not already:
                        self._restores.append(
                            ("defaults", fn, fn.__defaults__)
                        )
                        fn.__defaults__ = tuple(new)

    def uninstall(self) -> None:
        """Restore the original captured objects (idempotent).  A cell
        or default the host rebound mid-run is left alone."""
        for kind, site, original in self._restores:
            if kind == "cell":
                try:
                    current = site.cell_contents
                except ValueError:  # pragma: no cover
                    continue
                if current is self._proxies.get(id(original)):
                    site.cell_contents = original
            else:  # defaults
                site.__defaults__ = original
        self._restores = []

    # -- runtime recording --------------------------------------------
    def _note(self, nid: int, root: Tuple[str, int], kind: str, detail: str) -> None:
        if self._finished:
            return
        with self._lock:
            rec = self.observed.get((nid, root))
            if rec is None:
                rec = self.observed[(nid, root)] = _Observed()
            rec.note(kind, detail)

    def _obj_callback(self, oid: int) -> Callable[[str, str], None]:
        def note(kind: str, detail: str) -> None:
            node = getattr(self._tls, "node", None)
            if node is None:
                return  # accessed outside any sanitized task
            self._note(node.nid, ("obj", oid), kind, detail)

        return note

    def _span_callback(
        self, kernel: Node, pull: Node
    ) -> Callable[[str, str], None]:
        knid, pnid = kernel.nid, pull.nid

        def note(kind: str, detail: str) -> None:
            self._note(knid, ("span", pnid), kind, detail)

        return note

    def wrap_host(self, node: Node, fn: Callable) -> Callable:
        """Attribute the callable's proxy accesses to *node* for the
        duration of the call (worker-thread-local)."""

        def wrapped():
            prev = getattr(self._tls, "node", None)
            self._tls.node = node
            try:
                return fn()
            finally:
                self._tls.node = prev

        return wrapped

    def wrap_kernel(self, node: Node) -> Callable:
        """A kernel shim that substitutes :class:`RecordingArray` views
        for the span arguments (positional alignment with
        ``kernel_args``); cached per node, so replay passes reuse it."""
        cached = self._kernel_cache.get(node.nid)
        if cached is not None:
            return cached
        fn = node.kernel_fn
        pulls: Dict[int, Node] = {
            i: a.node
            for i, a in enumerate(node.kernel_args)
            if isinstance(a, PullTask)
        }
        callbacks = {
            i: self._span_callback(node, pn) for i, pn in pulls.items()
        }

        def substitute(args: Tuple) -> List:
            out = list(args)
            for i, cb in callbacks.items():
                if i < len(out) and isinstance(out[i], np.ndarray):
                    view = out[i].view(RecordingArray)
                    view._san_cb = cb
                    out[i] = view
            return out

        if _wants_ctx(fn):
            def kernel(ctx, *args):
                return fn(ctx, *substitute(args))
        else:
            def kernel(*args):
                return fn(*substitute(args))

        self._kernel_cache[node.nid] = kernel
        return kernel

    # -- cross-check ---------------------------------------------------
    def finish(self) -> SanitizeReport:
        """Uninstall the proxies and cross-check observed vs inferred
        accesses.  Divergences are only charged where the engine claimed
        confidence — an unconfident root already admits any behavior."""
        self._finished = True
        self.uninstall()
        report = SanitizeReport(graph_name=self.graph.name)
        report.proxied_objects = len(self._proxies)
        by_nid: Dict[int, Dict[Tuple[str, int], _Observed]] = {}
        with self._lock:
            for (nid, root), rec in self.observed.items():
                by_nid.setdefault(nid, {})[root] = rec

        for node, te in self.effects.items():
            report.checked_tasks += 1
            if te.effects.confident:
                report.confident_tasks += 1
            roots = by_nid.get(node.nid, {})
            entry: Dict[str, Any] = {
                "task": node.name,
                "nid": node.nid,
                "type": node.type.name.lower(),
                "observed": {},
            }
            span_by_nid = {p.nid: (p, r) for p, r in te.span.items()}
            captured = te.effects.captured
            for root, rec in sorted(roots.items()):
                kind, key = root
                if kind == "span":
                    pull, inferred = span_by_nid.get(key, (None, None))
                    label = f"span:{pull.name}" if pull is not None else f"span:{key}"
                else:
                    inferred = captured.get(key)
                    label = (
                        f"captured:{inferred.name}"
                        if inferred is not None
                        else f"captured:{key}"
                    )
                    pull = None
                entry["observed"][label] = rec.as_dict()
                self._check_root(report, node, te, label, rec, inferred)
                if kind == "span" and pull is not None and rec.writes:
                    # runtime confirmation of HF014: the span was
                    # declared but not as a write target
                    if (
                        pull in node.kernel_reads
                        and pull not in node.kernel_writes
                    ):
                        report.divergences.append(
                            Divergence(
                                kind="undeclared-span-write",
                                task=node.name,
                                root=label,
                                detail=(
                                    "kernel wrote a span declared "
                                    "read-only via reads()"
                                ),
                            )
                        )
            report.tasks.append(entry)
        report.tasks.sort(key=lambda t: t["nid"])
        return report

    def _check_root(
        self,
        report: SanitizeReport,
        node: Node,
        te: TaskEffects,
        label: str,
        rec: _Observed,
        inferred: Optional[RootEffect],
    ) -> None:
        if inferred is None:
            if te.effects.confident:
                report.divergences.append(
                    Divergence(
                        kind="untracked-access",
                        task=node.name,
                        root=label,
                        detail="runtime access on a root inference never saw",
                    )
                )
            return
        if not inferred.confident:
            return
        if rec.writes and not inferred.writes:
            report.divergences.append(
                Divergence(
                    kind="unpredicted-write",
                    task=node.name,
                    root=label,
                    detail=", ".join(sorted(rec.details)),
                )
            )
        elif rec.reads and not inferred.accessed:
            report.divergences.append(
                Divergence(
                    kind="unpredicted-read",
                    task=node.name,
                    root=label,
                    detail=", ".join(sorted(rec.details)),
                )
            )


def _wants_ctx(fn: Callable) -> bool:
    """Mirror of the launch-layer convention: first parameter named
    ``ctx`` receives the KernelContext."""
    code = getattr(fn, "__code__", None)
    if code is None or isinstance(fn, types.BuiltinFunctionType):
        return False
    names = code.co_varnames[: code.co_argcount]
    return bool(names) and names[0] == "ctx"
