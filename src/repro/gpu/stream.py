"""Asynchronous streams and events for the simulated GPU runtime.

**What it models.** A :class:`Stream` is an in-order work queue
serviced by a dedicated dispatcher thread — the analogue of a CUDA
stream.  Operations enqueued on a stream run asynchronously with
respect to the enqueuing (host) thread but strictly in FIFO order with
respect to each other.  An :class:`Event` is a one-shot
synchronization marker: recording it on a stream completes it once
every previously enqueued operation has executed; other streams
(``wait_event``) and host threads (``synchronize``) can wait on it.
This reproduces the ``cudaEventRecord`` / ``cudaStreamWaitEvent``
pattern the executor uses to sequence GPU tasks (paper, Listing 13;
the executor's per-(worker, device) stream discipline is described in
``docs/runtime.md``).

**Threading contract.** Host-side methods (:meth:`enqueue`,
:meth:`record_event`, :meth:`wait_event`, :meth:`synchronize`) are
safe from any thread; each op and its completion callback run on the
stream's single dispatcher thread, in enqueue order.  Callbacks
therefore need no locking against *this* stream's other ops, but they
run concurrently with every other thread in the process — the
executor's completion callback (which releases successors into the
shared queue) is written for exactly that.  :meth:`destroy` drains the
queue and joins the dispatcher; it must not be called from the
dispatcher thread itself.

**Observability.** The dispatcher maintains :attr:`ops_executed`
(completed ops) and :attr:`busy_seconds` (wall time spent inside op
bodies) — both owned by the dispatcher thread and read, racily but
consistently (single writer), by the metrics layer as the per-device
``gpu<N>.ops_executed`` / ``gpu<N>.busy_seconds`` aggregates
(``docs/observability.md``).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import DeviceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Device

_event_ids = itertools.count()
_stream_ids = itertools.count()


class Event:
    """One-shot completion marker recordable on a stream."""

    __slots__ = ("eid", "_flag", "_error")

    def __init__(self) -> None:
        self.eid = next(_event_ids)
        self._flag = threading.Event()
        self._error: Optional[BaseException] = None

    def query(self) -> bool:
        """True once the event has completed (non-blocking)."""
        return self._flag.is_set()

    def synchronize(self, timeout: Optional[float] = None) -> None:
        """Block the host until the event completes.

        Re-raises any exception captured by the stream operation that
        preceded the event record.
        """
        if not self._flag.wait(timeout):
            raise DeviceError(f"timed out waiting on event {self.eid}")
        if self._error is not None:
            raise self._error

    def _complete(self, error: Optional[BaseException] = None) -> None:
        self._error = error
        self._flag.set()


class Stream:
    """In-order asynchronous operation queue bound to one device."""

    def __init__(self, device: "Device", name: str = "") -> None:
        self.device = device
        self.sid = next(_stream_ids)
        self.name = name or f"stream{self.sid}"
        self._ops: "queue.SimpleQueue" = queue.SimpleQueue()
        self._destroyed = False
        self._abandoned = False
        self._error: Optional[BaseException] = None
        self._ops_executed = 0
        self._busy_seconds = 0.0
        self._thread = threading.Thread(
            target=self._dispatch_loop,
            name=f"gpu{device.ordinal}-{self.name}",
            daemon=True,
        )
        self._thread.start()

    # -- dispatcher ---------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            item = self._ops.get()
            if item is None:  # shutdown sentinel
                return
            fn, callback = item
            err: Optional[BaseException] = None
            t0 = time.perf_counter()
            try:
                if self._abandoned:
                    raise DeviceError(
                        f"stream {self.name} quarantined; operation abandoned"
                    )
                # fault-injection / liveness gate: a dead device rejects
                # every op, an injected stall blocks here and never runs
                # the payload (docs/resilience.md)
                self.device.pre_op()
                fn()
            except BaseException as exc:  # noqa: BLE001 - deferred to sync
                err = exc
                if callback is None:
                    # no callback to consume the failure: keep it sticky
                    # until the next host synchronize
                    self._error = exc
            self._busy_seconds += time.perf_counter() - t0
            self._ops_executed += 1
            if callback is not None:
                try:
                    callback(err)
                except BaseException:  # pragma: no cover - callback bug
                    pass

    # -- host-side API --------------------------------------------------
    @property
    def ops_executed(self) -> int:
        """Operations completed so far (statistics/testing)."""
        return self._ops_executed

    @property
    def busy_seconds(self) -> float:
        """Wall time spent executing op bodies on the dispatcher."""
        return self._busy_seconds

    def enqueue(
        self,
        fn: Callable[[], None],
        callback: Optional[Callable[[Optional[BaseException]], None]] = None,
    ) -> None:
        """Append *fn* to the stream; returns immediately.

        *callback*, if given, runs on the dispatcher thread after *fn*
        with the exception raised (or ``None``) — the analogue of
        ``cudaLaunchHostFunc``.
        """
        if self._destroyed:
            raise DeviceError(f"enqueue on destroyed stream {self.name}")
        self._ops.put((fn, callback))

    def record_event(self, event: Optional[Event] = None) -> Event:
        """Record *event* (or a fresh one) at the current stream tail."""
        ev = event if event is not None else Event()

        def mark() -> None:
            pass

        def done(err: Optional[BaseException]) -> None:
            # runs on the dispatcher thread after all previously enqueued
            # ops, so self._error reflects any failure that preceded it
            ev._complete(err if err is not None else self._error)

        self.enqueue(mark, callback=done)
        return ev

    def wait_event(self, event: Event) -> None:
        """Make subsequent stream work wait for *event* to complete."""
        self.enqueue(lambda: event._flag.wait())

    def synchronize(self, timeout: Optional[float] = None) -> None:
        """Block the host until all enqueued work has run.

        Raises the first deferred operation error, if any, and clears
        it (mirroring CUDA's error-returned-on-sync behaviour).
        """
        ev = self.record_event()
        if not ev._flag.wait(timeout):
            raise DeviceError(f"timed out synchronizing stream {self.name}")
        err, self._error = self._error, None
        if err is not None:
            raise err

    def abandon(self) -> None:
        """Quarantine the stream: every op still queued (e.g. stuck
        behind an injected stall) and every later one is skipped — its
        callback receives a :class:`~repro.errors.DeviceError` and the
        payload never runs.  The executor calls this when a timeout
        poisons the stream's FIFO guarantee (docs/resilience.md), so
        abandoned work cannot re-execute when the stall releases."""
        self._abandoned = True

    def destroy(self) -> None:
        """Drain and stop the dispatcher thread (idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        self._ops.put(None)
        self._thread.join()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Stream(gpu={self.device.ordinal}, name={self.name!r})"
