"""Flat, CUDA-flavoured facade over the simulated GPU runtime.

Some users (and the examples) prefer the procedural CUDA idiom to the
object API; this module provides thin free functions mirroring the
driver-API names used in the paper's listings.  All functions take the
owning :class:`~repro.gpu.device.GpuRuntime` explicitly — there is no
hidden global runtime, which keeps tests hermetic.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.gpu.device import GpuRuntime, ScopedDeviceContext
from repro.gpu.kernel import LaunchConfig, launch_async
from repro.gpu.memory import DeviceBuffer
from repro.gpu.stream import Event, Stream


def device_count(rt: GpuRuntime) -> int:
    """``cudaGetDeviceCount``."""
    return rt.device_count


def set_device(rt: GpuRuntime, ordinal: int) -> ScopedDeviceContext:
    """``cudaSetDevice`` as a context manager (RAII in the paper)."""
    return rt.scoped(ordinal)


def stream_create(rt: GpuRuntime, ordinal: int, name: str = "") -> Stream:
    """``cudaStreamCreate`` on a specific device."""
    return rt.device(ordinal).create_stream(name)


def stream_synchronize(stream: Stream) -> None:
    """``cudaStreamSynchronize``."""
    stream.synchronize()


def event_create() -> Event:
    """``cudaEventCreate``."""
    return Event()


def event_record(event: Event, stream: Stream) -> None:
    """``cudaEventRecord``."""
    stream.record_event(event)


def stream_wait_event(stream: Stream, event: Event) -> None:
    """``cudaStreamWaitEvent``."""
    stream.wait_event(event)


def event_synchronize(event: Event) -> None:
    """``cudaEventSynchronize``."""
    event.synchronize()


def malloc(rt: GpuRuntime, ordinal: int, nbytes: int, dtype=np.uint8) -> DeviceBuffer:
    """``cudaMalloc`` from the device's buddy pool."""
    return rt.device(ordinal).allocate(nbytes, dtype=dtype)


def free(buffer: DeviceBuffer) -> None:
    """``cudaFree``."""
    buffer.free()


def memcpy_h2d_async(rt: GpuRuntime, dst: DeviceBuffer, src: np.ndarray, stream: Stream) -> None:
    """``cudaMemcpyAsync(dst, src, n, H2D, stream)``."""
    rt.memcpy_h2d_async(dst, src, stream)


def memcpy_d2h_async(rt: GpuRuntime, dst: np.ndarray, src: DeviceBuffer, stream: Stream) -> None:
    """``cudaMemcpyAsync(dst, src, n, D2H, stream)``."""
    rt.memcpy_d2h_async(dst, src, stream)


def launch_kernel(
    stream: Stream,
    config: LaunchConfig,
    fn: Callable,
    *args: Any,
    callback: Optional[Callable[[Optional[BaseException]], None]] = None,
) -> None:
    """``f<<<grid, block, shm, stream>>>(args...)``."""
    launch_async(stream, config, fn, *args, callback=callback)


def device_synchronize(rt: GpuRuntime, ordinal: int) -> None:
    """``cudaDeviceSynchronize``."""
    rt.device(ordinal).synchronize()
