"""Devices, the GPU runtime, and scoped device contexts.

:class:`GpuRuntime` owns a fixed set of :class:`Device` objects — the
analogue of the CUDA driver's device enumeration.  Each executor
creates its own runtime so tests and applications are isolated.

:class:`ScopedDeviceContext` reproduces the RAII mechanism the paper
describes for scoping task execution under an assigned GPU (Listing
13): entering the context makes the device "current" for the calling
thread; exiting restores the previous device.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from repro.errors import DeviceError, DeviceFailedError
from repro.gpu.memory import DeviceBuffer, DeviceHeap
from repro.gpu.stream import Event, Stream
from repro.metrics.registry import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.faults import FaultProfile, FaultState

#: Default simulated global-memory size per device (64 MiB). Small by
#: real-GPU standards but ample for the reproduction workloads; tests
#: exercise pool exhaustion by shrinking it.
DEFAULT_MEMORY_BYTES = 64 * 1024 * 1024

_tls = threading.local()


def current_device() -> Optional["Device"]:
    """The calling thread's current device, or ``None`` outside a scope."""
    return getattr(_tls, "device", None)


class Device:
    """One simulated GPU: an ordinal, a memory heap, and streams."""

    def __init__(self, ordinal: int, memory_bytes: int = DEFAULT_MEMORY_BYTES) -> None:
        self.ordinal = ordinal
        # liveness/fault state must exist before the heap: the heap's
        # allocation path consults pre_alloc()
        self._alive = True
        self._fault_state: Optional["FaultState"] = None
        self.heap = DeviceHeap(self, memory_bytes)
        self._streams: List[Stream] = []
        self._lock = threading.Lock()
        # traffic counters (docs/observability.md): copy bytes count on
        # the dispatcher thread when the op actually runs; kernel
        # launches count at enqueue.  Sharded counters — safe from any
        # mix of worker and dispatcher threads, no locks.
        self.h2d_bytes = Counter(f"gpu{ordinal}.h2d_bytes")
        self.d2h_bytes = Counter(f"gpu{ordinal}.d2h_bytes")
        self.d2d_bytes = Counter(f"gpu{ordinal}.d2d_bytes")
        self.memset_ops = Counter(f"gpu{ordinal}.memset_ops")
        self.kernel_launches = Counter(f"gpu{ordinal}.kernel_launches")

    def create_stream(self, name: str = "") -> Stream:
        """Create a new in-order stream on this device."""
        s = Stream(self, name=name)
        with self._lock:
            self._streams.append(s)
        return s

    @property
    def streams(self) -> List[Stream]:
        with self._lock:
            return list(self._streams)

    # -- convenience memory ops (synchronous wrappers) --------------
    def allocate(self, nbytes: int, dtype: np.dtype = np.uint8) -> DeviceBuffer:
        return self.heap.allocate(nbytes, dtype=dtype)

    def synchronize(self) -> None:
        """Wait for every stream on this device to drain.

        A failed device is skipped: its streams only reject work, and
        the executor has already quarantined them.
        """
        if not self._alive:
            return
        for s in self.streams:
            s.synchronize()

    # -- liveness & fault injection (docs/resilience.md) -------------
    @property
    def alive(self) -> bool:
        """False once the device has failed (injected or quarantined)."""
        return self._alive

    def fail(self) -> None:
        """Declare the whole device dead (idempotent).

        Any dispatcher blocked in an injected stall is released so the
        stream can drain and tear down; the released op raises instead
        of running its payload.
        """
        self._alive = False
        fs = self._fault_state
        if fs is not None:
            fs.release()

    def configure_faults(self, profile: "FaultProfile", seed: int = 0) -> "FaultState":
        """Arm a seeded fault profile on this device.

        The profile's triggers draw from a child seed derived per
        ordinal, so one (profile, seed) pair arms a whole runtime with
        distinct but reproducible per-device fault streams.
        """
        from repro.resilience.faults import FaultState
        from repro.utils.rng import derive_seed

        state = FaultState(profile, derive_seed(seed, "gpu", self.ordinal))
        self._fault_state = state
        return state

    def clear_faults(self) -> None:
        """Disarm fault injection (releases any held stall)."""
        fs = self._fault_state
        self._fault_state = None
        if fs is not None:
            fs.release()

    @property
    def fault_state(self) -> Optional["FaultState"]:
        return self._fault_state

    def pre_op(self) -> None:
        """Dispatcher hook before every stream op payload."""
        if not self._alive:
            raise DeviceFailedError(self.ordinal)
        fs = self._fault_state
        if fs is not None:
            fs.on_op(self)

    def pre_kernel(self) -> None:
        """Hook inside every kernel-launch op body."""
        if not self._alive:
            raise DeviceFailedError(self.ordinal)
        fs = self._fault_state
        if fs is not None:
            fs.on_kernel(self)

    def pre_alloc(self) -> None:
        """Hook before every heap pool allocation."""
        if not self._alive:
            raise DeviceFailedError(self.ordinal)
        fs = self._fault_state
        if fs is not None:
            fs.on_alloc(self)

    def stats(self) -> dict:
        """JSON-ready device statistics snapshot.

        Aggregates stream activity (op counts, busy seconds), transfer
        traffic, kernel launches, and the buddy pool's footprint; this
        is the value of the executor's ``gpu<N>`` metric callback
        (docs/observability.md).
        """
        streams = self.streams
        return {
            "streams": len(streams),
            "ops_executed": sum(s.ops_executed for s in streams),
            "busy_seconds": sum(s.busy_seconds for s in streams),
            "h2d_bytes": self.h2d_bytes.value,
            "d2h_bytes": self.d2h_bytes.value,
            "d2d_bytes": self.d2d_bytes.value,
            "memset_ops": self.memset_ops.value,
            "kernel_launches": self.kernel_launches.value,
            "pool": self.heap.stats(),
        }

    def destroy(self) -> None:
        # release any dispatcher held in an injected stall first, or
        # the sentinel join below would deadlock
        fs = self._fault_state
        if fs is not None:
            fs.release()
        for s in self.streams:
            s.destroy()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Device(ordinal={self.ordinal})"


class ScopedDeviceContext:
    """RAII-style device scoping (``cudaSetDevice`` analogue)."""

    def __init__(self, device: Device) -> None:
        self._device = device
        self._previous: Optional[Device] = None

    def __enter__(self) -> Device:
        self._previous = getattr(_tls, "device", None)
        _tls.device = self._device
        return self._device

    def __exit__(self, *exc) -> None:
        _tls.device = self._previous


class GpuRuntime:
    """A private enumeration of simulated devices.

    Mirrors the executor-owned GPU state in the paper: per-device
    memory pools and per-(worker, device) streams are all reachable
    from here.
    """

    def __init__(
        self,
        num_devices: int,
        memory_bytes: int = DEFAULT_MEMORY_BYTES,
    ) -> None:
        if num_devices < 0:
            raise DeviceError("device count must be non-negative")
        self._devices = [Device(i, memory_bytes) for i in range(num_devices)]
        self._destroyed = False

    @property
    def device_count(self) -> int:
        return len(self._devices)

    def device(self, ordinal: int) -> Device:
        if not 0 <= ordinal < len(self._devices):
            raise DeviceError(
                f"invalid device ordinal {ordinal} "
                f"(runtime has {len(self._devices)} devices)"
            )
        return self._devices[ordinal]

    @property
    def devices(self) -> List[Device]:
        return list(self._devices)

    def scoped(self, ordinal: int) -> ScopedDeviceContext:
        """Context manager scoping the caller under device *ordinal*."""
        return ScopedDeviceContext(self.device(ordinal))

    # -- async memory movement (host <-> device) --------------------
    def memcpy_h2d_async(
        self,
        dst: DeviceBuffer,
        src: np.ndarray,
        stream: Stream,
        callback: Optional[Callable[[Optional[BaseException]], None]] = None,
    ) -> None:
        """``cudaMemcpyAsync(..., H2D, stream)`` analogue.

        *src* is snapshot-copied on the dispatcher thread when the op
        runs, preserving stream ordering semantics.
        """
        if stream.device is not dst.device:
            raise DeviceError("H2D copy stream must live on the destination device")

        def op() -> None:
            flat = np.ascontiguousarray(src).reshape(-1)
            raw = flat.view(np.uint8)
            n = min(raw.nbytes, dst.nbytes)
            dst.device.heap.raw[dst.offset : dst.offset + n] = raw[:n]
            dst.device.h2d_bytes.inc(n)

        stream.enqueue(op, callback=callback)

    def memcpy_d2h_async(
        self,
        dst: np.ndarray,
        src: DeviceBuffer,
        stream: Stream,
        callback: Optional[Callable[[Optional[BaseException]], None]] = None,
    ) -> None:
        """``cudaMemcpyAsync(..., D2H, stream)`` analogue."""
        if stream.device is not src.device:
            raise DeviceError("D2H copy stream must live on the source device")

        def op() -> None:
            raw = src.device.heap.raw[src.offset : src.offset + src.nbytes]
            flat = dst.reshape(-1)
            view = flat.view(np.uint8)
            n = min(raw.nbytes, view.nbytes)
            view[:n] = raw[:n]
            src.device.d2h_bytes.inc(n)

        stream.enqueue(op, callback=callback)

    def memcpy_d2d_async(
        self,
        dst: DeviceBuffer,
        src: DeviceBuffer,
        stream: Stream,
        callback: Optional[Callable[[Optional[BaseException]], None]] = None,
    ) -> None:
        """Peer copy between device buffers (same or different GPUs)."""

        def op() -> None:
            raw = src.device.heap.raw[src.offset : src.offset + src.nbytes]
            n = min(src.nbytes, dst.nbytes)
            dst.device.heap.raw[dst.offset : dst.offset + n] = raw[:n]
            dst.device.d2d_bytes.inc(n)

        stream.enqueue(op, callback=callback)

    def memset_async(
        self,
        dst: DeviceBuffer,
        value: int,
        stream: Stream,
        callback: Optional[Callable[[Optional[BaseException]], None]] = None,
    ) -> None:
        """``cudaMemsetAsync`` analogue: fill the buffer's bytes."""
        if not 0 <= int(value) <= 255:
            raise DeviceError("memset value must be a byte (0-255)")
        if stream.device is not dst.device:
            raise DeviceError("memset stream must live on the buffer's device")

        def op() -> None:
            dst.device.heap.raw[dst.offset : dst.offset + dst.nbytes] = int(value)
            dst.device.memset_ops.inc()

        stream.enqueue(op, callback=callback)

    def synchronize(self) -> None:
        """Drain every stream on every device."""
        for d in self._devices:
            d.synchronize()

    def destroy(self) -> None:
        """Stop all dispatcher threads (idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        for d in self._devices:
            d.destroy()

    def __enter__(self) -> "GpuRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()
