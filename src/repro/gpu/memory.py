"""Per-device memory: heaps, buffers, and the pooled allocator facade.

A :class:`DeviceHeap` is the device's global memory — one contiguous
numpy byte arena carved up by a :class:`~repro.gpu.buddy.BuddyAllocator`.
A :class:`DeviceBuffer` is the analogue of a raw device pointer: it
records (device, offset, nbytes) and exposes typed numpy views into the
arena.  Buffers are only meaningful on their owning device; the kernel
launcher enforces this, mirroring CUDA's per-context pointers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import AllocationError, DeviceError
from repro.gpu.buddy import BuddyAllocator, _ceil_pow2

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Device

#: default buddy granularity used by every device heap
DEFAULT_MIN_BLOCK = 256


def pooled_bytes(nbytes: int, min_block: int = DEFAULT_MIN_BLOCK) -> int:
    """Pool bytes a request of *nbytes* actually consumes.

    The static mirror of :meth:`BuddyAllocator.block_size`: requests
    round up to the nearest power-of-two block no smaller than
    *min_block*.  Used by the hflint capacity prediction (HF020) to
    compute placement-group footprints without touching a real pool.
    """
    need = max(int(nbytes), 1)
    return max(_ceil_pow2(need), min_block)


class DeviceBuffer:
    """A device-pointer analogue: a typed slice of a device heap."""

    __slots__ = ("device", "offset", "nbytes", "dtype", "_freed")

    def __init__(self, device: "Device", offset: int, nbytes: int, dtype: np.dtype) -> None:
        self.device = device
        self.offset = offset
        self.nbytes = nbytes
        self.dtype = np.dtype(dtype)
        self._freed = False

    @property
    def size(self) -> int:
        """Number of elements of :attr:`dtype` the buffer holds."""
        return self.nbytes // self.dtype.itemsize

    def view(self, dtype: Optional[np.dtype] = None) -> np.ndarray:
        """Typed numpy view of the device bytes (no copy).

        This is the "dereference" operation kernels use; it is only
        valid while the buffer is live.
        """
        if self._freed:
            raise DeviceError("use of freed device buffer")
        dt = self.dtype if dtype is None else np.dtype(dtype)
        raw = self.device.heap.raw[self.offset : self.offset + self.nbytes]
        n = self.nbytes - (self.nbytes % dt.itemsize)
        return raw[:n].view(dt)

    def free(self) -> None:
        """Return the block to the device pool (idempotent)."""
        if not self._freed:
            self.device.heap.free(self)
            self._freed = True

    @property
    def freed(self) -> bool:
        return self._freed

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DeviceBuffer(gpu={self.device.ordinal}, off={self.offset}, "
            f"nbytes={self.nbytes}, dtype={self.dtype})"
        )


class DeviceHeap:
    """A device's global memory arena + pooled buddy allocator."""

    def __init__(
        self, device: "Device", capacity: int, min_block: int = DEFAULT_MIN_BLOCK
    ) -> None:
        self.device = device
        self.allocator = BuddyAllocator(capacity, min_block=min_block)
        self.raw = np.zeros(self.allocator.capacity, dtype=np.uint8)
        self._alloc_count = 0
        self._free_count = 0

    @property
    def capacity(self) -> int:
        return self.allocator.capacity

    @property
    def bytes_in_use(self) -> int:
        return self.allocator.bytes_in_use

    @property
    def alloc_count(self) -> int:
        """Number of successful allocations (pool-hit statistics)."""
        return self._alloc_count

    @property
    def free_count(self) -> int:
        """Number of buffers returned to the pool so far."""
        return self._free_count

    @property
    def outstanding(self) -> int:
        """Live buffer count; nonzero at teardown indicates a leak."""
        return self._alloc_count - self._free_count

    def allocate(self, nbytes: int, dtype: np.dtype = np.uint8) -> DeviceBuffer:
        """Allocate *nbytes* from the pool and wrap it in a buffer."""
        dt = np.dtype(dtype)
        if nbytes < 0:
            raise AllocationError("allocation size must be non-negative")
        # fault-injection / liveness gate (docs/resilience.md)
        self.device.pre_alloc()
        nbytes = max(int(nbytes), 1)
        offset = self.allocator.allocate(nbytes)
        self._alloc_count += 1
        return DeviceBuffer(self.device, offset, nbytes, dt)

    def allocate_like(self, host_array: np.ndarray) -> DeviceBuffer:
        """Allocate a buffer shaped to hold *host_array*'s bytes."""
        return self.allocate(max(int(host_array.nbytes), 1), dtype=host_array.dtype)

    def stats(self) -> dict:
        """JSON-ready pool snapshot: heap-level buffer accounting on
        top of the allocator's block-level statistics
        (:meth:`BuddyAllocator.stats`)."""
        out = self.allocator.stats()
        out["buffer_allocs"] = self.alloc_count
        out["buffer_frees"] = self.free_count
        out["outstanding"] = self.outstanding
        return out

    def free(self, buffer: DeviceBuffer) -> None:
        if buffer.device is not self.device:
            raise DeviceError(
                f"buffer belongs to GPU {buffer.device.ordinal}, "
                f"not GPU {self.device.ordinal}"
            )
        self.allocator.free(buffer.offset)
        self._free_count += 1
