"""OpenCL-flavoured facade over the simulated GPU runtime.

Paper footnote 1: "While the current implementation is based on CUDA,
our task interface can accept other GPU programming libraries
[OpenCL]."  This module demonstrates that portability claim: the same
substrate behind OpenCL's vocabulary — contexts, command queues,
buffers, NDRange kernel enqueues, and events with wait lists.

The semantic mapping:

| OpenCL                     | substrate                               |
|----------------------------|-----------------------------------------|
| ``clCreateContext``        | :class:`Context` over a GpuRuntime device |
| ``clCreateCommandQueue``   | a :class:`~repro.gpu.stream.Stream`     |
| ``clCreateBuffer``         | a pooled :class:`DeviceBuffer`          |
| ``clEnqueueWriteBuffer``   | async H2D (optionally blocking)         |
| ``clEnqueueReadBuffer``    | async D2H (optionally blocking)         |
| ``clEnqueueNDRangeKernel`` | kernel launch with global/local sizes   |
| ``clWaitForEvents``        | event synchronize                       |
| ``clFinish``               | queue synchronize                       |
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.errors import DeviceError, KernelError
from repro.gpu.device import Device, GpuRuntime
from repro.gpu.kernel import LaunchConfig, launch_async
from repro.gpu.memory import DeviceBuffer
from repro.gpu.stream import Event, Stream


class Context:
    """One device's OpenCL-style context."""

    def __init__(self, runtime: GpuRuntime, device_ordinal: int = 0) -> None:
        self.runtime = runtime
        self.device: Device = runtime.device(device_ordinal)

    def create_command_queue(self, name: str = "") -> "CommandQueue":
        return CommandQueue(self, name)

    def create_buffer(self, nbytes: int, dtype=np.uint8) -> DeviceBuffer:
        """``clCreateBuffer`` from the device's pooled heap."""
        return self.device.allocate(nbytes, dtype=dtype)


class CommandQueue:
    """An in-order command queue (a stream underneath)."""

    def __init__(self, context: Context, name: str = "") -> None:
        self.context = context
        self._stream: Stream = context.device.create_stream(name or "clqueue")

    # -- data movement -------------------------------------------------
    def enqueue_write_buffer(
        self,
        buffer: DeviceBuffer,
        host: np.ndarray,
        *,
        blocking: bool = False,
    ) -> Event:
        """``clEnqueueWriteBuffer``; returns the completion event."""
        self.context.runtime.memcpy_h2d_async(buffer, host, self._stream)
        ev = self._stream.record_event()
        if blocking:
            ev.synchronize()
        return ev

    def enqueue_read_buffer(
        self,
        buffer: DeviceBuffer,
        host: np.ndarray,
        *,
        blocking: bool = False,
    ) -> Event:
        """``clEnqueueReadBuffer``; returns the completion event."""
        self.context.runtime.memcpy_d2h_async(host, buffer, self._stream)
        ev = self._stream.record_event()
        if blocking:
            ev.synchronize()
        return ev

    # -- kernels -------------------------------------------------------
    def enqueue_nd_range_kernel(
        self,
        kernel: Callable,
        global_size: int,
        *args: Any,
        local_size: Optional[int] = None,
        wait_for: Sequence[Event] = (),
    ) -> Event:
        """``clEnqueueNDRangeKernel`` over a 1-D NDRange.

        *global_size* work-items run in work-groups of *local_size*
        (default 256, clamped to the block limit); *wait_for* events
        gate the launch (cross-queue dependencies).
        """
        if global_size < 1:
            raise KernelError("global size must be positive")
        local = int(local_size) if local_size else 256
        groups = max(math.ceil(global_size / local), 1)
        config = LaunchConfig(grid=(groups, 1, 1), block=(local, 1, 1))
        for ev in wait_for:
            self._stream.wait_event(ev)
        launch_async(self._stream, config, kernel, *args)
        return self._stream.record_event()

    def enqueue_marker(self) -> Event:
        """``clEnqueueMarker``."""
        return self._stream.record_event()

    def flush(self) -> None:
        """``clFlush`` — a no-op here (enqueue already submits)."""

    def finish(self) -> None:
        """``clFinish`` — block until the queue drains."""
        self._stream.synchronize()


def wait_for_events(events: Sequence[Event]) -> None:
    """``clWaitForEvents``."""
    for ev in events:
        ev.synchronize()


def release(obj: Any) -> None:
    """``clRelease*`` — frees buffers, destroys queues (idempotent)."""
    if isinstance(obj, DeviceBuffer):
        obj.free()
    elif isinstance(obj, CommandQueue):
        obj._stream.destroy()
    elif isinstance(obj, (Context, GpuRuntime)):
        pass  # contexts borrow the runtime; the runtime owns teardown
    else:
        raise DeviceError(f"cannot release {type(obj).__name__}")
