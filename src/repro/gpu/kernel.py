"""Kernel launches: grid/block configs, contexts, argument conversion.

Heteroflow launches *native* CUDA kernels (``f<<<grid, block, shm,
stream>>>(convert(args)...)``).  The Python analogue launches ordinary
callables onto a device stream:

- a :class:`LaunchConfig` carries the grid/block/shared-memory shape —
  it parameterizes the cost model and the vectorized thread-index
  helpers;
- :class:`PointerCaster` reproduces the paper's argument conversion
  (Listing 9): device buffers become typed numpy views of device
  memory, everything else is forwarded untouched;
- kernels whose first parameter is named ``ctx`` receive a
  :class:`KernelContext` exposing vectorized ``blockIdx``/``threadIdx``
  index arrays, so classic guarded-index CUDA kernels port directly::

      def saxpy(ctx, n, a, x, y):
          i = ctx.flat_indices()          # one entry per CUDA thread
          i = i[i < n]                    # the `if (i < n)` guard
          y[i] = a * x[i] + y[i]

  Kernels without a ``ctx`` parameter are treated as whole-array
  (numpy-vectorized) kernels and simply invoked on the views.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.errors import KernelError
from repro.gpu.memory import DeviceBuffer
from repro.gpu.stream import Stream
from repro.utils.span import Late

#: Hardware-style cap on threads per block (matches CUDA's 1024).
MAX_THREADS_PER_BLOCK = 1024


@dataclass
class LaunchConfig:
    """Grid/block geometry and dynamic shared memory for a launch."""

    grid: Tuple[int, int, int] = (1, 1, 1)
    block: Tuple[int, int, int] = (1, 1, 1)
    shm: int = 0

    def __post_init__(self) -> None:
        self.grid = tuple(int(v) for v in self.grid)  # type: ignore[assignment]
        self.block = tuple(int(v) for v in self.block)  # type: ignore[assignment]
        if len(self.grid) != 3 or len(self.block) != 3:
            raise KernelError("grid and block must be 3-tuples")
        if any(v <= 0 for v in self.grid) or any(v <= 0 for v in self.block):
            raise KernelError("grid/block dimensions must be positive")
        if self.threads_per_block > MAX_THREADS_PER_BLOCK:
            raise KernelError(
                f"block of {self.threads_per_block} threads exceeds the "
                f"{MAX_THREADS_PER_BLOCK}-thread limit"
            )
        if self.shm < 0:
            raise KernelError("shared memory size must be non-negative")

    @property
    def threads_per_block(self) -> int:
        bx, by, bz = self.block
        return bx * by * bz

    @property
    def num_blocks(self) -> int:
        gx, gy, gz = self.grid
        return gx * gy * gz

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    def with_x(self, grid_x: Optional[int] = None, block_x: Optional[int] = None) -> "LaunchConfig":
        """Copy with updated x dimensions (builder-style helper)."""
        g = list(self.grid)
        b = list(self.block)
        if grid_x is not None:
            g[0] = grid_x
        if block_x is not None:
            b[0] = block_x
        return LaunchConfig(tuple(g), tuple(b), self.shm)


class KernelContext:
    """Vectorized thread-index helpers for one kernel launch."""

    __slots__ = ("config", "device_ordinal")

    def __init__(self, config: LaunchConfig, device_ordinal: int) -> None:
        self.config = config
        self.device_ordinal = device_ordinal

    @property
    def grid(self) -> Tuple[int, int, int]:
        return self.config.grid

    @property
    def block(self) -> Tuple[int, int, int]:
        return self.config.block

    @property
    def total_threads(self) -> int:
        return self.config.total_threads

    def flat_indices(self) -> np.ndarray:
        """Global linear thread index, one entry per launched thread.

        Equivalent to ``blockIdx.x * blockDim.x + threadIdx.x`` for a
        1-D launch, generalized to the flattened 3-D geometry.
        """
        return np.arange(self.config.total_threads, dtype=np.int64)

    def block_indices_x(self) -> np.ndarray:
        """``blockIdx.x`` per thread (1-D geometry helpers)."""
        return self.flat_indices() // self.config.threads_per_block

    def thread_indices_x(self) -> np.ndarray:
        """``threadIdx.x`` per thread (1-D geometry helpers)."""
        return self.flat_indices() % self.config.threads_per_block

    def grid_indices_2d(self) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized 2-D global indices ``(ix, iy)``.

        Covers ``grid.x * block.x`` columns by ``grid.y * block.y``
        rows — one (ix, iy) pair per launched thread of a 2-D launch,
        flattened row-major.  The standard tiled-matrix idiom::

            ix, iy = ctx.grid_indices_2d()
            keep = (ix < w) & (iy < h)
            out[iy[keep] * w + ix[keep]] = ...
        """
        gx, gy, _ = self.config.grid
        bx, by, _ = self.config.block
        nx, ny = gx * bx, gy * by
        iy, ix = np.divmod(np.arange(nx * ny, dtype=np.int64), nx)
        return ix, iy


class PointerCaster:
    """Argument conversion from a device buffer to a kernel pointer.

    The paper's ``PointerCaster`` casts a raw ``void*`` to whatever
    pointer type the kernel parameter declares.  Here the "pointer" is
    a typed numpy view of device memory; :meth:`cast` reinterprets the
    underlying bytes just as a C pointer cast would.
    """

    __slots__ = ("buffer",)

    def __init__(self, buffer: DeviceBuffer) -> None:
        self.buffer = buffer

    def cast(self, dtype: Optional[np.dtype] = None) -> np.ndarray:
        return self.buffer.view(dtype)


def convert_argument(arg: Any) -> Any:
    """Paper Listing 9: device buffers decay to views, :class:`Late`
    arguments resolve, everything else is forwarded untouched."""
    if isinstance(arg, DeviceBuffer):
        return PointerCaster(arg).cast()
    if isinstance(arg, PointerCaster):
        return arg.cast()
    if isinstance(arg, Late):
        return arg.resolve()
    return arg


def _wants_context(fn: Callable) -> bool:
    try:
        params = list(inspect.signature(fn).parameters)
    except (TypeError, ValueError):
        return False
    return bool(params) and params[0] == "ctx"


def launch_async(
    stream: Stream,
    config: LaunchConfig,
    fn: Callable,
    *args: Any,
    callback: Optional[Callable[[Optional[BaseException]], None]] = None,
) -> None:
    """Enqueue kernel *fn* on *stream* with *config* (non-blocking).

    Device-buffer arguments must live on the stream's device — the
    analogue of CUDA's unified-addressing checks; violating this raises
    :class:`KernelError` eagerly, before anything is enqueued.
    """
    for a in args:
        if isinstance(a, DeviceBuffer) and a.device is not stream.device:
            raise KernelError(
                f"kernel argument lives on GPU {a.device.ordinal} but the "
                f"launch targets GPU {stream.device.ordinal}"
            )
    wants_ctx = _wants_context(fn)
    ordinal = stream.device.ordinal
    stream.device.kernel_launches.inc()

    def op() -> None:
        # kernel-level fault-injection gate (docs/resilience.md)
        stream.device.pre_kernel()
        converted = [convert_argument(a) for a in args]
        if wants_ctx:
            fn(KernelContext(config, ordinal), *converted)
        else:
            fn(*converted)

    stream.enqueue(op, callback=callback)


def launch_sync(stream: Stream, config: LaunchConfig, fn: Callable, *args: Any) -> None:
    """Launch and wait; convenience for tests and simple examples."""
    launch_async(stream, config, fn, *args)
    stream.synchronize()


def config_for(n: int, block_x: int = 256) -> LaunchConfig:
    """1-D launch covering *n* elements: the ``(N+255)/256`` idiom."""
    if n < 0:
        raise KernelError("element count must be non-negative")
    blocks = max((n + block_x - 1) // block_x, 1)
    return LaunchConfig(grid=(blocks, 1, 1), block=(block_x, 1, 1))
