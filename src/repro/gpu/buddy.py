"""Knowlton's Buddy allocator (CACM 1965).

The paper: *"our executor keeps a memory pool for each GPU device to
reduce the scheduling overhead of frequent allocations by pull tasks.
We implement the famous Buddy allocator algorithm."*

The allocator manages a contiguous arena of ``capacity`` bytes
(rounded up to a power of two).  Requests are rounded up to the nearest
power-of-two block no smaller than ``min_block``.  Blocks split
recursively on allocation and coalesce with their buddy on free.

All offsets are relative to the arena base; callers map them onto a
backing store (:class:`repro.gpu.memory.DeviceHeap`).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.errors import AllocationError

#: Trace-hook signature: ``hook(kind, offset, block_size, requested)``
#: with ``kind`` in {"alloc", "free"}; ``requested`` is the caller's
#: byte count for allocs and the block size for frees.  Hooks run
#: *inside* the allocator lock so the event stream is linearized with
#: the actual alloc/free order; they must be fast and must not call
#: back into the allocator.
TraceHook = Callable[[str, int, int, int], None]


def _ceil_pow2(n: int) -> int:
    """Smallest power of two >= n (n >= 1)."""
    return 1 << (n - 1).bit_length()


class BuddyAllocator:
    """Power-of-two buddy allocator over a byte arena.

    Thread-safe: a single lock guards the free lists, matching the
    per-device pool the executor shares among workers.
    """

    def __init__(self, capacity: int, min_block: int = 256) -> None:
        if capacity <= 0:
            raise AllocationError("capacity must be positive")
        if min_block <= 0 or (min_block & (min_block - 1)) != 0:
            raise AllocationError("min_block must be a positive power of two")
        self.capacity = _ceil_pow2(capacity)
        self.min_block = min_block
        if self.capacity < min_block:
            self.capacity = min_block
        self._max_order = (self.capacity // min_block).bit_length() - 1
        # free[k] holds offsets of free blocks of size min_block << k
        self._free: List[List[int]] = [[] for _ in range(self._max_order + 1)]
        self._free[self._max_order].append(0)
        # offset -> order, for every *allocated* block
        self._allocated: Dict[int, int] = {}
        self._free_set: set = {(0, self._max_order)}
        self._lock = threading.Lock()
        self._in_use = 0
        self._peak = 0
        # lifetime counters, updated inside the lock the operation
        # already holds (docs/observability.md)
        self._num_allocs = 0
        self._num_frees = 0
        self._num_splits = 0
        self._num_merges = 0
        #: optional audit hook (see :data:`TraceHook`); set by the
        #: allocator auditor in :mod:`repro.check.audit`
        self.trace_hook: Optional[TraceHook] = None

    # -- introspection ----------------------------------------------
    @property
    def bytes_in_use(self) -> int:
        """Bytes currently allocated (block-rounded)."""
        return self._in_use

    @property
    def peak_bytes(self) -> int:
        """High-water mark of :attr:`bytes_in_use`."""
        return self._peak

    @property
    def num_allocs(self) -> int:
        """Successful :meth:`allocate` calls over the pool's lifetime."""
        return self._num_allocs

    @property
    def num_frees(self) -> int:
        """Successful :meth:`free` calls over the pool's lifetime."""
        return self._num_frees

    @property
    def num_splits(self) -> int:
        """Block splits performed while allocating (pool churn)."""
        return self._num_splits

    @property
    def num_merges(self) -> int:
        """Buddy coalescing merges performed while freeing."""
        return self._num_merges

    @property
    def free_bytes(self) -> int:
        """Bytes currently free (capacity minus block-rounded in-use)."""
        return self.capacity - self._in_use

    @property
    def largest_free_block(self) -> int:
        """Size of the largest currently-free block."""
        with self._lock:
            for k in range(self._max_order, -1, -1):
                if self._free[k]:
                    return self.min_block << k
            return 0

    def fragmentation(self) -> float:
        """External fragmentation in [0, 1].

        ``1 - largest_free_block / free_bytes``: 0 when all free space
        is one contiguous block (or nothing is free), approaching 1
        when free space is shattered into small blocks — the condition
        under which a large pull would fail despite sufficient total
        free bytes.
        """
        free = self.free_bytes
        if free <= 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    def stats(self) -> dict:
        """JSON-ready lifetime + footprint snapshot of the pool."""
        return {
            "capacity": self.capacity,
            "bytes_in_use": self.bytes_in_use,
            "peak_bytes": self.peak_bytes,
            "free_bytes": self.free_bytes,
            "largest_free_block": self.largest_free_block,
            "fragmentation": self.fragmentation(),
            "allocs": self.num_allocs,
            "frees": self.num_frees,
            "splits": self.num_splits,
            "merges": self.num_merges,
        }

    @property
    def fully_coalesced(self) -> bool:
        """True when nothing is allocated and every split has merged
        back into the single arena-sized root block."""
        with self._lock:
            return (
                not self._allocated
                and len(self._free[self._max_order]) == 1
                and all(not lst for lst in self._free[: self._max_order])
            )

    def block_size(self, nbytes: int) -> int:
        """Rounded block size that a request of *nbytes* consumes."""
        need = max(int(nbytes), 1)
        return max(_ceil_pow2(need), self.min_block)

    def _order_of(self, nbytes: int) -> int:
        return (self.block_size(nbytes) // self.min_block).bit_length() - 1

    # -- allocate / free --------------------------------------------
    def allocate(self, nbytes: int) -> int:
        """Allocate a block of at least *nbytes*; return its offset.

        Raises :class:`AllocationError` when the arena cannot satisfy
        the request (either too large or fragmented/exhausted).
        """
        order = self._order_of(nbytes)
        if order > self._max_order:
            raise AllocationError(
                f"request of {nbytes} bytes exceeds arena capacity {self.capacity}"
            )
        with self._lock:
            k = order
            while k <= self._max_order and not self._free[k]:
                k += 1
            if k > self._max_order:
                raise AllocationError(
                    f"out of device memory: {nbytes} bytes requested, "
                    f"{self.capacity - self._in_use} free (fragmented)"
                )
            offset = self._free[k].pop()
            self._free_set.discard((offset, k))
            # split down to the requested order
            while k > order:
                k -= 1
                buddy = offset + (self.min_block << k)
                self._free[k].append(buddy)
                self._free_set.add((buddy, k))
                self._num_splits += 1
            self._allocated[offset] = order
            size = self.min_block << order
            self._in_use += size
            self._peak = max(self._peak, self._in_use)
            self._num_allocs += 1
            if self.trace_hook is not None:
                self.trace_hook("alloc", offset, size, int(nbytes))
            return offset

    def free(self, offset: int) -> None:
        """Release the block at *offset*, coalescing with free buddies."""
        with self._lock:
            if offset not in self._allocated:
                raise AllocationError(f"invalid free at offset {offset}")
            order = self._allocated.pop(offset)
            self._in_use -= self.min_block << order
            self._num_frees += 1
            if self.trace_hook is not None:
                size = self.min_block << order
                self.trace_hook("free", offset, size, size)
            while order < self._max_order:
                size = self.min_block << order
                buddy = offset ^ size
                if (buddy, order) not in self._free_set:
                    break
                self._free[order].remove(buddy)
                self._free_set.discard((buddy, order))
                offset = min(offset, buddy)
                order += 1
                self._num_merges += 1
            self._free[order].append(offset)
            self._free_set.add((offset, order))

    def allocation_size(self, offset: int) -> int:
        """Block size of the live allocation at *offset*."""
        with self._lock:
            if offset not in self._allocated:
                raise AllocationError(f"no live allocation at offset {offset}")
            return self.min_block << self._allocated[offset]

    def check_invariants(self) -> None:
        """Debug/testing hook: verify free+allocated tile the arena."""
        with self._lock:
            covered = []
            for k, lst in enumerate(self._free):
                for off in lst:
                    covered.append((off, self.min_block << k))
            for off, k in self._allocated.items():
                covered.append((off, self.min_block << k))
            covered.sort()
            pos = 0
            for off, size in covered:
                if off != pos:
                    raise AssertionError(f"gap/overlap at offset {off}, expected {pos}")
                pos = off + size
            if pos != self.capacity:
                raise AssertionError(f"arena not fully covered: {pos} != {self.capacity}")
