"""Simulated multi-GPU runtime (the CUDA substrate substitute).

The paper's runtime is built on CUDA streams, events, asynchronous
memcpys, pooled device memory, and scoped device contexts.  This
package reimplements those primitives in pure Python over numpy-backed
per-device address spaces, preserving the *semantics* the Heteroflow
scheduler depends on:

- per-device address spaces (buffers are only valid on their device),
- in-order asynchronous streams serviced by dispatcher threads,
- events for stream-to-stream and host synchronization,
- a Knowlton Buddy allocator behind a per-device memory pool,
- grid/block kernel launches with ``PointerCaster``-style argument
  conversion.

Kernels are ordinary Python callables operating on numpy views of
device memory; see :mod:`repro.gpu.kernel`.
"""

from repro.gpu.buddy import BuddyAllocator
from repro.gpu.device import Device, GpuRuntime, ScopedDeviceContext, current_device
from repro.gpu.kernel import KernelContext, LaunchConfig, PointerCaster
from repro.gpu.memory import DeviceBuffer, DeviceHeap
from repro.gpu.stream import Event, Stream

__all__ = [
    "BuddyAllocator",
    "Device",
    "DeviceBuffer",
    "DeviceHeap",
    "Event",
    "GpuRuntime",
    "KernelContext",
    "LaunchConfig",
    "PointerCaster",
    "ScopedDeviceContext",
    "Stream",
    "current_device",
]
