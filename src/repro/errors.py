"""Exception hierarchy for the repro (Heteroflow reproduction) library.

Heteroflow's C++ implementation reports user errors through assertions
and exceptions; this module centralizes the Python equivalents so that
callers can catch a single base class, :class:`HeteroflowError`, or the
specific subclass relevant to a subsystem.
"""

from __future__ import annotations


class HeteroflowError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(HeteroflowError):
    """Malformed task graph: cycles, empty placeholders at run time,
    cross-graph dependency links, and similar construction mistakes."""


class CycleError(GraphError):
    """The task dependency graph contains a directed cycle."""

    def __init__(self, cycle):
        self.cycle = list(cycle)
        names = " -> ".join(str(n) for n in self.cycle)
        super().__init__(f"task graph contains a cycle: {names}")


class EmptyTaskError(GraphError):
    """A placeholder task reached execution without being assigned work."""


class LintError(GraphError):
    """The hflint static analyzer (:mod:`repro.analysis`) found
    error-severity diagnostics and the caller asked for a hard gate
    (``Executor.run(..., lint=True)`` or ``LintReport.raise_if_errors``).

    The offending report is available as :attr:`report`.
    """

    def __init__(self, report) -> None:
        self.report = report
        findings = "; ".join(str(d) for d in report.errors[:5])
        more = len(report.errors) - 5
        if more > 0:
            findings += f"; ... and {more} more"
        super().__init__(
            f"hflint found {len(report.errors)} error(s) in graph "
            f"{report.graph_name!r}: {findings}"
        )


class ExecutorError(HeteroflowError):
    """Executor misuse: invalid worker/GPU counts, running a graph that
    requires GPUs on a GPU-less executor, use after shutdown."""


class DeviceError(HeteroflowError):
    """Simulated GPU runtime errors (bad device ordinal, destroyed
    stream, cross-device buffer access)."""


class AllocationError(DeviceError):
    """Device memory pool exhaustion or invalid free."""


class KernelError(DeviceError):
    """Kernel launch failures: bad launch configuration, argument
    conversion failure, or an exception raised inside a kernel."""


class ValidationError(HeteroflowError):
    """A whole-execution invariant was violated: a task ran the wrong
    number of times, began before a predecessor ended, broke in-order
    stream semantics, landed on the wrong device, or the allocator
    auditor found an overlap/leak (see :mod:`repro.check`)."""


class SimulationError(HeteroflowError):
    """Virtual-time simulator errors: missing cost annotations, invalid
    machine specifications, or non-quiescent event queues."""
