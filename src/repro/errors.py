"""Exception hierarchy for the repro (Heteroflow reproduction) library.

Heteroflow's C++ implementation reports user errors through assertions
and exceptions; this module centralizes the Python equivalents so that
callers can catch a single base class, :class:`HeteroflowError`, or the
specific subclass relevant to a subsystem.
"""

from __future__ import annotations


class HeteroflowError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(HeteroflowError):
    """Malformed task graph: cycles, empty placeholders at run time,
    cross-graph dependency links, and similar construction mistakes."""


class CycleError(GraphError):
    """The task dependency graph contains a directed cycle."""

    def __init__(self, cycle):
        self.cycle = list(cycle)
        names = " -> ".join(str(n) for n in self.cycle)
        super().__init__(f"task graph contains a cycle: {names}")


class EmptyTaskError(GraphError):
    """A placeholder task reached execution without being assigned work."""


class LintError(GraphError):
    """The hflint static analyzer (:mod:`repro.analysis`) found
    error-severity diagnostics and the caller asked for a hard gate
    (``Executor.run(..., lint=True)`` or ``LintReport.raise_if_errors``).

    The offending report is available as :attr:`report`.
    """

    def __init__(self, report) -> None:
        self.report = report
        findings = "; ".join(str(d) for d in report.errors[:5])
        more = len(report.errors) - 5
        if more > 0:
            findings += f"; ... and {more} more"
        super().__init__(
            f"hflint found {len(report.errors)} error(s) in graph "
            f"{report.graph_name!r}: {findings}"
        )


class FrozenTopologyError(GraphError):
    """A mutation was attempted on a graph after ``Heteroflow.freeze()``.

    Freezing compiles the graph into an immutable
    :class:`~repro.core.topology.FrozenTopology` whose placement plan,
    ready-order slots, and footprint are cached by the executor; any
    later structural or payload mutation would silently invalidate that
    compiled plan, so every mutation entry point (task creation,
    dependency edges, work rebinding, retry/timeout/launch-shape
    configuration, ``clear()``) raises this error instead.

    Structured fields: :attr:`operation` (the refused method, e.g.
    ``"precede"``) and :attr:`target` (the task or graph name).  Use
    ``Executor.run(frozen, bindings=...)`` to swap host callables per
    submission without thawing the graph (docs/runtime.md, "Freeze and
    replay").
    """

    def __init__(self, operation: str, target: str = "") -> None:
        self.operation = operation
        self.target = target
        where = f" on {target!r}" if target else ""
        super().__init__(
            f"cannot {operation}{where}: the graph is frozen "
            f"(Heteroflow.freeze()); rebuild a new graph to mutate, or "
            f"use run(frozen, bindings=...) to swap host callables"
        )


class ExecutorError(HeteroflowError):
    """Executor misuse: invalid worker/GPU counts, running a graph that
    requires GPUs on a GPU-less executor, use after shutdown."""


class AdmissionRejectedError(ExecutorError):
    """The overload-protection layer (:mod:`repro.service`) refused a
    submission.

    Raised synchronously from ``Executor.run``/``run_n``/``run_until``
    when the attached :class:`~repro.service.AdmissionController` is at
    capacity under the ``reject`` policy, when a ``block``-policy
    submitter times out waiting for capacity, or when a ``shed``-policy
    submission cannot find a lower-priority victim to evict.  It also
    resolves the future of a queued topology that was *evicted* by a
    higher-priority ``shed`` admission.

    Structured fields: :attr:`reason` (``"capacity"``, ``"timeout"``,
    ``"shed"``, or ``"never_fits"``), :attr:`policy`, the submission's
    :attr:`priority` and predicted :attr:`footprint_bytes`, and the
    controller's :attr:`in_use_topologies` / :attr:`in_use_bytes` at
    decision time (see docs/runtime.md, "Submission lifecycle").
    """

    def __init__(
        self,
        reason: str,
        *,
        policy: str = "",
        priority: int = 0,
        footprint_bytes: int = 0,
        in_use_topologies: int = 0,
        in_use_bytes: int = 0,
        message: str = "",
    ) -> None:
        self.reason = reason
        self.policy = policy
        self.priority = priority
        self.footprint_bytes = footprint_bytes
        self.in_use_topologies = in_use_topologies
        self.in_use_bytes = in_use_bytes
        super().__init__(
            message
            or f"admission {reason} (policy={policy!r}, priority={priority}, "
            f"footprint={footprint_bytes}B, in use: "
            f"{in_use_topologies} topologies / {in_use_bytes}B)"
        )


class TaskFailedError(ExecutorError):
    """A task exhausted its resilience budget (retries/timeouts/device
    recovery) and failed the topology.

    Raised through the submission future whenever a
    :class:`repro.resilience.RetryPolicy` or timeout was in play, so the
    caller can distinguish "the task function raised" (the raw exception,
    backward-compatible) from "the runtime gave up after trying".  The
    full per-attempt error history is :attr:`attempts` (oldest first);
    the final error is ``attempts[-1]``.

    :attr:`attempt_log` is the structured per-attempt record (one dict
    per attempt, oldest first): the error class, and — for attempts
    the policy retried — the backoff delay actually slept
    (``retry_delay_s``), whether the exponential had saturated at the
    policy's cap (``backoff_saturated``), and the effective
    ``max_delay_s``, so operators can see *when* backoff stopped
    growing.  The terminal attempt has no delay fields.
    """

    def __init__(self, task_name: str, nid: int, attempts, attempt_log=()) -> None:
        self.task_name = task_name
        self.nid = nid
        self.attempts = tuple(attempts)
        self.attempt_log = tuple(dict(entry) for entry in attempt_log)
        last = self.attempts[-1] if self.attempts else None
        saturated = sum(
            1 for entry in self.attempt_log if entry.get("backoff_saturated")
        )
        tail = f"; backoff saturated on {saturated} attempt(s)" if saturated else ""
        super().__init__(
            f"task {task_name!r} failed after {len(self.attempts)} "
            f"attempt(s); last error: {last!r}{tail}"
        )


class TaskTimeoutError(ExecutorError):
    """A task exceeded its per-task or per-run timeout.

    For asynchronous GPU work the watchdog fires mid-flight (the stale
    stream completion is discarded and the stream quarantined); host
    callables cannot be interrupted, so their timeouts are detected when
    the callable returns (see docs/resilience.md).
    """

    def __init__(self, task_name: str, timeout_s: float) -> None:
        self.task_name = task_name
        self.timeout_s = timeout_s
        super().__init__(
            f"task {task_name!r} exceeded its {timeout_s:g}s timeout"
        )


class DeviceError(HeteroflowError):
    """Simulated GPU runtime errors (bad device ordinal, destroyed
    stream, cross-device buffer access)."""


class AllocationError(DeviceError):
    """Device memory pool exhaustion or invalid free."""


class KernelError(DeviceError):
    """Kernel launch failures: bad launch configuration, argument
    conversion failure, or an exception raised inside a kernel."""


class DeviceFailedError(DeviceError):
    """A whole simulated GPU died (or was quarantined).

    Carries the :attr:`ordinal` of the failed device so the executor's
    recovery path can quarantine it, re-place surviving work, and replay
    lost spans (docs/resilience.md).
    """

    def __init__(self, ordinal: int, message: str = "") -> None:
        self.ordinal = ordinal
        super().__init__(message or f"device {ordinal} failed")


class GatewayError(HeteroflowError):
    """Multiprocess gateway misuse or failure (:mod:`repro.gateway`):
    submitting to a draining/closed gateway, an unknown frozen handle,
    or a submission the gateway had to force-settle at shutdown."""


class WorkerDiedError(GatewayError):
    """A gateway worker process died (crash, SIGKILL, or heartbeat
    silence) with this submission in flight and no replan budget left.

    Carries the :attr:`wid` of the dead worker and the detection
    :attr:`reason` (``"exited"``, ``"heartbeat"``, or ``"pipe"``) so
    operators can distinguish a crashed process from a wedged one
    (docs/gateway.md, "Failure handling").
    """

    def __init__(self, wid: int, reason: str = "exited", message: str = "") -> None:
        self.wid = wid
        self.reason = reason
        super().__init__(
            message or f"gateway worker {wid} died ({reason}) mid-submission"
        )


class JournalError(HeteroflowError):
    """Durable submission journal misuse or failure (:mod:`repro.durability`):
    appending to a closed journal, settling an unknown or already-settled
    entry, or recovering against a journal the gateway cannot use."""


class JournalWriteError(JournalError):
    """A journal append could not be made durable.

    Raised from :meth:`repro.durability.Journal.append_accepted` /
    ``append_settled`` / ``append_frozen`` when the underlying write or
    fsync fails — a full disk, a failing device, a short write.  The
    journal rolls the segment back to its pre-append offset (best
    effort) so the torn bytes never masquerade as a committed record,
    and the caller gets a *structured* error instead of silent loss.

    Structured fields: :attr:`reason` (``"write"``, ``"short_write"``,
    ``"fsync"``, ``"enospc"``, ``"rotate"``, or ``"rename"`` — the
    compaction commit), the :attr:`segment` file the append targeted,
    and the original :attr:`errno_code` (0 when the failure carried no
    errno).
    """

    def __init__(
        self,
        reason: str,
        *,
        segment: str = "",
        errno_code: int = 0,
        message: str = "",
    ) -> None:
        self.reason = reason
        self.segment = segment
        self.errno_code = errno_code
        super().__init__(
            message
            or f"journal append failed ({reason}) on segment {segment!r}"
            + (f" [errno {errno_code}]" if errno_code else "")
        )


class JournalCorruptError(JournalError):
    """The journal failed validation where truncation cannot help.

    A torn *tail* (an interrupted final append) is expected after a
    crash and is silently truncated on open; corruption anywhere else —
    a checksum mismatch mid-segment, a bad frame in a non-final
    segment, a sequence regression — means the log can no longer prove
    exactly-once settlement, so open refuses with this error instead
    of guessing (``repro fsck`` reports the same findings read-only).

    Structured fields: :attr:`segment`, byte :attr:`offset`, and the
    finding :attr:`kind` (``"checksum"``, ``"frame"``, ``"marker"``,
    or ``"sequence"``).
    """

    def __init__(self, kind: str, segment: str, offset: int, message: str = "") -> None:
        self.kind = kind
        self.segment = segment
        self.offset = offset
        super().__init__(
            message
            or f"journal corrupt ({kind}) in segment {segment!r} at "
            f"byte {offset}"
        )


class ValidationError(HeteroflowError):
    """A whole-execution invariant was violated: a task ran the wrong
    number of times, began before a predecessor ended, broke in-order
    stream semantics, landed on the wrong device, or the allocator
    auditor found an overlap/leak (see :mod:`repro.check`)."""


class SimulationError(HeteroflowError):
    """Virtual-time simulator errors: missing cost annotations, invalid
    machine specifications, or non-quiescent event queues."""
