"""Differential replay harness: frozen-graph replays vs fresh runs.

The freeze-and-replay fast path (docs/runtime.md, "Freeze and replay")
re-implements dispatch for frozen graphs: a compiled slot table, a
cached placement plan, and (for host-only graphs) a chunked slot loop
that bypasses the per-node scheduling machinery entirely.  That is
exactly the kind of duplicated logic that drifts, so this harness runs
every stress-generator graph **both ways** and cross-checks them:

1. generate the same seeded graph twice (identical structure and
   arithmetic — everything derives from the seed);
2. run one copy fresh (``run_n(graph, N)``) and the other frozen
   (``freeze()`` + N serialized ``run(frozen)`` submissions), each
   under its own :class:`~repro.core.executor.Executor` with a
   :class:`~repro.core.observer.TraceObserver` attached;
3. feed **both** trace streams through
   :func:`~repro.check.validate.validate_schedule` (exact-once,
   happens-before, stream FIFO, placement consistency) — N serialized
   one-pass replays must validate exactly like one N-pass run;
4. check **both** result sets against the generator's host-replay
   oracle, then compare the two runs' final chain arrays and host-task
   counts against each other;
5. require the two validator verdicts to agree (both clean, or the
   fresh path already broken — a frozen-only violation is a replay
   bug by construction).

Scenario modes (``seed % 4``) also drive cancellation, submission
deadlines, and device fault injection *through the replay path*, plus
a clean follow-up replay proving the frozen graph survives a
cancelled/expired submission.  Exposed via
``python -m repro check --replay`` (``--replay-smoke`` in CI).
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import CancelledError
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.check.generator import GeneratedGraph, generate_graph
from repro.check.stress import STRESS_POOL_BYTES, _RESULT_TIMEOUT
from repro.check.validate import validate_schedule
from repro.core.executor import Executor
from repro.core.observer import TraceObserver
from repro.resilience import FaultProfile, RetryPolicy

#: default sweep: a host-only config (slot fast path) plus the stress
#: GPU configs (general frozen path, cached placement plan)
REPLAY_CONFIGS: Tuple[Tuple[int, int], ...] = ((2, 0), (1, 1), (2, 2), (4, 2))

#: scenario modes, chosen per seed; ``fault`` degrades to ``normal``
#: on host-only configs (nothing to inject)
_MODES = ("normal", "cancel", "deadline", "fault")

#: deadline armed for deadline-mode scenarios; the gate holds the graph
#: at the starting line well past this
_DEADLINE_S = 0.05


@dataclass
class ReplayOutcome:
    """One fresh-vs-frozen differential scenario."""

    workers: int
    gpus: int
    seed: int
    mode: str  # "normal" | "cancel" | "deadline" | "fault"
    passes: int
    num_nodes: int
    fast: bool  # frozen side used the slot fast path
    records_fresh: int = 0
    records_frozen: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ReplayReport:
    """Aggregated differential-sweep outcome (``repro.replay-report/1``)."""

    schema: str = "repro.replay-report/1"
    outcomes: List[ReplayOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def num_scenarios(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for o in self.outcomes:
            out.extend(
                f"[{o.workers}w x {o.gpus}g seed={o.seed} {o.mode}] {v}"
                for v in o.violations
            )
        return out

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "ok": self.ok,
            "num_scenarios": self.num_scenarios,
            "scenarios": [
                {
                    "workers": o.workers,
                    "gpus": o.gpus,
                    "seed": o.seed,
                    "mode": o.mode,
                    "passes": o.passes,
                    "num_nodes": o.num_nodes,
                    "fast": o.fast,
                    "records_fresh": o.records_fresh,
                    "records_frozen": o.records_frozen,
                    "violations": o.violations,
                }
                for o in self.outcomes
            ],
        }


def _make_executor(workers: int, gpus: int, seed: int) -> Executor:
    return Executor(
        num_workers=workers,
        num_gpus=gpus,
        gpu_memory_bytes=STRESS_POOL_BYTES,
        seed=seed,
    )


def _inject_faults(ex: Executor, gpus: int, seed: int) -> None:
    # one-shot kernel fault on every device: whichever GPU the cached
    # plan picks, the first launch there fails and the retry policy
    # must recover — through the frozen path on the replay side
    for ordinal in range(gpus):
        ex.gpu_runtime.device(ordinal).configure_faults(
            FaultProfile(kernel_fault_at=1), seed=seed
        )


def _cross_compare(
    fresh: GeneratedGraph, frozen: GeneratedGraph, outcome: ReplayOutcome
) -> None:
    """Compare the two runs' terminal state against each other."""
    fresh_counts = sorted(fresh.host_log)
    frozen_counts = sorted(frozen.host_log)
    if fresh_counts != frozen_counts:
        outcome.violations.append(
            f"host-task execution multiset differs: fresh ran "
            f"{len(fresh_counts)} tasks, frozen ran {len(frozen_counts)}"
        )
    for ca, cb in zip(fresh.chains, frozen.chains):
        if not np.allclose(ca.array, cb.array, rtol=1e-12, atol=1e-12):
            outcome.violations.append(
                f"chain {ca.index}: frozen replay result differs from "
                f"the fresh run"
            )


def _run_differential(
    workers: int, gpus: int, seed: int, mode: str, passes: int
) -> ReplayOutcome:
    gated = mode in ("cancel", "deadline")
    fresh = generate_graph(seed, num_gpus=gpus, gate=gated)
    frozen_gen = generate_graph(seed, num_gpus=gpus, gate=gated)
    frozen = frozen_gen.graph.freeze()
    outcome = ReplayOutcome(
        workers=workers,
        gpus=gpus,
        seed=seed,
        mode=mode,
        passes=passes,
        num_nodes=fresh.num_nodes,
        fast=frozen.fast_capable,
    )
    if len(fresh.graph) != len(frozen_gen.graph):
        outcome.violations.append(
            "generator is not seed-deterministic; differential is void"
        )
        return outcome

    policy = (
        RetryPolicy(max_attempts=3, base_delay=0.0) if mode == "fault" else None
    )

    def drive(
        gen: GeneratedGraph,
        ex: Executor,
        obs: TraceObserver,
        side: str,
        submit: Callable,
    ) -> None:
        """Run one side through the scenario mode."""
        if mode in ("normal", "fault"):
            if mode == "fault":
                _inject_faults(ex, gpus, seed)
            for fut in submit(passes, policy):
                try:
                    fut.result(timeout=_RESULT_TIMEOUT)
                except Exception as exc:  # noqa: BLE001 - harness boundary
                    outcome.violations.append(
                        f"{side}: unexpected failure: {exc!r}"
                    )
            report = validate_schedule(
                gen.graph,
                obs.records,
                passes=passes,
                num_gpus=gpus,
            )
            outcome.violations.extend(f"{side}: {v}" for v in report.violations)
            outcome.violations.extend(
                f"{side}: oracle: {p}" for p in gen.verify(passes)
            )
            _record(side, report.num_records)
            return
        # cancel/deadline: one gated submission is killed mid-flight,
        # then a clean follow-up run proves the graph still replays
        (fut,) = submit(1, None) if mode == "cancel" else submit(1, None, True)
        if mode == "cancel":
            ex.cancel(fut)
            gen.gate.set()
        else:
            # hold the graph at the gate until the deadline fires (the
            # ``service.deadline_exceeded`` counter ticks on the timer
            # thread), then release it so the flush can finish
            give_up = time.monotonic() + 10.0
            while (
                ex.metrics.snapshot().get("service.deadline_exceeded", 0) == 0
                and time.monotonic() < give_up
            ):
                time.sleep(0.005)
            gen.gate.set()
        try:
            fut.result(timeout=_RESULT_TIMEOUT)
            outcome.violations.append(f"{side}: {mode} run resolved cleanly")
        except CancelledError:
            pass
        except Exception as exc:  # noqa: BLE001 - harness boundary
            outcome.violations.append(f"{side}: unexpected failure: {exc!r}")
        partial = validate_schedule(
            gen.graph,
            obs.records,
            passes=1,
            num_gpus=gpus,
            allow_partial=True,
        )
        outcome.violations.extend(f"{side}: {v}" for v in partial.violations)
        # the gate stays set, so the follow-up runs unimpeded
        obs2 = TraceObserver()
        ex.remove_observer(obs)
        ex.add_observer(obs2)
        (fut2,) = submit(1, None)
        try:
            fut2.result(timeout=_RESULT_TIMEOUT)
        except Exception as exc:  # noqa: BLE001 - harness boundary
            outcome.violations.append(
                f"{side}: follow-up after {mode} failed: {exc!r}"
            )
        strict = validate_schedule(
            gen.graph, obs2.records, passes=1, num_gpus=gpus
        )
        outcome.violations.extend(f"{side}: {v}" for v in strict.violations)
        _record(side, partial.num_records + strict.num_records)

    def _record(side: str, n: int) -> None:
        if side == "fresh":
            outcome.records_fresh = n
        else:
            outcome.records_frozen = n

    # fresh side: classic run_n submission
    obs_a = TraceObserver()
    ex_a = _make_executor(workers, gpus, seed)
    ex_a.add_observer(obs_a)
    try:
        drive(
            fresh,
            ex_a,
            obs_a,
            "fresh",
            lambda n, pol, dl=False: [
                ex_a.run_n(
                    fresh.graph,
                    n,
                    policy=pol,
                    deadline=_DEADLINE_S if dl else None,
                )
            ],
        )
    finally:
        ex_a.shutdown()

    # frozen side: N serialized single-pass replays of the compiled
    # topology — the graph FIFO orders them, so the trace must
    # validate exactly like one N-pass run
    obs_b = TraceObserver()
    ex_b = _make_executor(workers, gpus, seed)
    ex_b.add_observer(obs_b)
    try:
        drive(
            frozen_gen,
            ex_b,
            obs_b,
            "frozen",
            lambda n, pol, dl=False: [
                ex_b.run(
                    frozen,
                    policy=pol,
                    deadline=_DEADLINE_S if dl else None,
                )
                for _ in range(n)
            ],
        )
    finally:
        ex_b.shutdown()

    if mode in ("normal", "fault"):
        _cross_compare(fresh, frozen_gen, outcome)
        if outcome.records_fresh != outcome.records_frozen:
            outcome.violations.append(
                f"trace length differs: fresh committed "
                f"{outcome.records_fresh} records, frozen "
                f"{outcome.records_frozen}"
            )
    return outcome


def run_replay_check(
    seeds: int = 13,
    configs: Optional[Sequence[Tuple[int, int]]] = None,
    *,
    log: Optional[Callable[[str], None]] = None,
) -> ReplayReport:
    """Sweep *seeds* differential scenarios over every config.

    Each (config, seed) pair runs one scenario whose mode derives from
    the seed (``seed % 4``): plain multi-pass replay, cancellation
    mid-replay, a firing submission deadline, or device fault injection
    with retries through the frozen path (GPU configs; host-only
    configs substitute a normal scenario).  The default sweep is
    ``13 seeds x 4 configs = 52`` scenarios.  Never raises on
    violations — the caller decides (CLI exits nonzero, tests assert).
    """
    configs = tuple(configs) if configs else REPLAY_CONFIGS
    report = ReplayReport()
    for workers, gpus in configs:
        for seed in range(seeds):
            mode = _MODES[seed % len(_MODES)]
            if mode == "fault" and gpus == 0:
                mode = "normal"
            rng = random.Random((seed << 8) ^ (workers * 37) ^ (gpus * 101))
            passes = rng.randint(2, 3) if mode in ("normal", "fault") else 1
            outcome = _run_differential(workers, gpus, seed, mode, passes)
            report.outcomes.append(outcome)
        if log is not None:
            runs = [
                o for o in report.outcomes
                if o.workers == workers and o.gpus == gpus
            ]
            bad = sum(len(o.violations) for o in runs)
            log(
                f"  {workers} worker(s) x {gpus} GPU(s): "
                f"{len(runs)} scenario(s), "
                f"{sum(o.records_frozen for o in runs)} replay records, "
                f"{bad} violation(s)"
            )
    return report
