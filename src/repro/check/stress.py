"""Stress/soak harness: sweep configs x seeds through the validators.

For every (workers, gpus) configuration and every seed, the runner

1. generates a seeded random graph (:mod:`repro.check.generator`),
2. runs it 1-3 passes under a real :class:`~repro.core.executor.Executor`
   with a :class:`~repro.core.observer.TraceObserver` attached and an
   :class:`~repro.check.audit.AllocatorAuditor` hooked into every
   device pool,
3. validates the trace against the schedule invariants, the results
   against the generator's oracle, and the allocator event stream
   against the pool invariants.

Fault-injection mode additionally runs every graph through three
failure paths, checking that the recovery machinery
(:mod:`repro.errors`, topology flushing, buffer reclamation) leaves
partial traces and pools consistent:

- ``fault`` — a seeded one-shot kernel fault on every device
  (:class:`~repro.resilience.FaultProfile`); with no retry policy the
  raw :class:`~repro.errors.KernelError` must reach the future;
- ``retry`` — the same fault profile under a run-level
  :class:`~repro.resilience.RetryPolicy`; the run must *succeed*, the
  trace must stay strictly exact-once, and the oracle must match;
- ``cancel`` — the graph is cancelled at the starting line.

Exposed via ``python -m repro check --stress``.
"""

from __future__ import annotations

import random
from concurrent.futures import CancelledError
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis import Severity, lint
from repro.check.audit import AllocatorAuditor
from repro.check.generator import generate_graph
from repro.check.validate import validate_schedule
from repro.core.executor import Executor
from repro.core.observer import TraceObserver
from repro.errors import KernelError
from repro.resilience import FaultProfile, RetryPolicy

#: default sweep: ≥3 worker/GPU configurations, per the roadmap's
#: "correct DAG execution across N CPU workers and M GPUs" claim
DEFAULT_CONFIGS: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 2), (4, 2))

#: small per-device pool so the sweep also squeezes the buddy pools
STRESS_POOL_BYTES = 1 << 21

_RESULT_TIMEOUT = 120.0


@dataclass
class RunOutcome:
    """One validated execution."""

    workers: int
    gpus: int
    seed: int
    mode: str  # "normal" | "fault" | "retry" | "cancel"
    passes: int
    num_nodes: int
    num_records: int
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class StressReport:
    """Aggregated sweep outcome."""

    outcomes: List[RunOutcome] = field(default_factory=list)
    num_allocs: int = 0
    num_frees: int = 0

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def num_runs(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for o in self.outcomes:
            out.extend(
                f"[{o.workers}w x {o.gpus}g seed={o.seed} {o.mode}] {v}"
                for v in o.violations
            )
        return out


def _run_one(
    workers: int,
    gpus: int,
    seed: int,
    mode: str,
    report: StressReport,
) -> RunOutcome:
    rng = random.Random((seed << 8) ^ (workers * 37) ^ (gpus * 101))
    passes = rng.randint(1, 3) if mode == "normal" else 1
    gen = generate_graph(
        seed,
        num_gpus=gpus,
        gate=(mode == "cancel"),
    )
    obs = TraceObserver()
    auditor = AllocatorAuditor(keep_events=False)
    outcome = RunOutcome(
        workers=workers,
        gpus=gpus,
        seed=seed,
        mode=mode,
        passes=passes,
        num_nodes=gen.num_nodes,
        num_records=0,
    )
    # cross-validation: generated graphs are well-formed by construction,
    # so hflint must agree — a warning-or-worse finding here is either a
    # generator bug or an analyzer false positive, and both must surface
    static = lint(gen.graph, gpu_memory_bytes=STRESS_POOL_BYTES)
    outcome.violations.extend(
        f"hflint: {d}" for d in static.at_least(Severity.WARNING)
    )
    ex = Executor(
        num_workers=workers,
        num_gpus=gpus,
        gpu_memory_bytes=STRESS_POOL_BYTES,
        observers=[obs],
        seed=seed,
    )
    try:
        auditor.attach_runtime(ex.gpu_runtime)
        if mode in ("fault", "retry"):
            # seed a one-shot kernel fault on every device: whichever
            # GPU the placement pass picks, the first launch there fails
            for ordinal in range(gpus):
                ex.gpu_runtime.device(ordinal).configure_faults(
                    FaultProfile(kernel_fault_at=1), seed=seed
                )
        policy = (
            RetryPolicy(max_attempts=3, base_delay=0.0)
            if mode == "retry" else None
        )
        fut = ex.run_n(gen.graph, passes, policy=policy)
        if mode == "cancel":
            ex.cancel(fut)
            gen.gate.set()
        try:
            fut.result(timeout=_RESULT_TIMEOUT)
            if mode == "fault":
                outcome.violations.append(
                    "injected kernel fault did not propagate to the future"
                )
            if mode == "cancel":
                outcome.violations.append(
                    "cancelled run resolved successfully"
                )
        except CancelledError:
            if mode != "cancel":
                outcome.violations.append("run unexpectedly cancelled")
        except KernelError as exc:
            if mode != "fault" or "injected" not in str(exc):
                outcome.violations.append(f"unexpected task failure: {exc!r}")
        except Exception as exc:  # noqa: BLE001 - harness boundary
            outcome.violations.append(f"unexpected task failure: {exc!r}")
    finally:
        ex.shutdown()
    partial = mode in ("fault", "cancel")
    schedule = validate_schedule(
        gen.graph,
        obs.records,
        passes=passes,
        num_gpus=gpus,
        allow_partial=partial,
    )
    outcome.num_records = schedule.num_records
    outcome.violations.extend(str(v) for v in schedule.violations)
    if mode in ("normal", "retry"):
        # retry runs recover from the injected fault, so the oracle
        # must hold exactly as for a clean run
        outcome.violations.extend(gen.verify(passes))
    audit = auditor.finish()
    outcome.violations.extend(audit.violations)
    report.num_allocs += audit.num_allocs
    report.num_frees += audit.num_frees
    return outcome


def run_stress(
    seeds: int = 25,
    configs: Optional[Sequence[Tuple[int, int]]] = None,
    *,
    faults: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> StressReport:
    """Sweep *seeds* random graphs over every (workers, gpus) config.

    With ``faults=True`` every third seed additionally runs the
    device-level fault-injection modes (``fault``/``retry``, GPU
    configs only) and cancellation mode.  Returns a
    :class:`StressReport`; the sweep never raises on violations — the
    caller decides (CLI exits nonzero, tests assert).
    """
    configs = tuple(configs) if configs else DEFAULT_CONFIGS
    report = StressReport()
    for workers, gpus in configs:
        config_violations = 0
        for seed in range(seeds):
            modes = ["normal"]
            if faults and seed % 3 == 0:
                if gpus > 0:
                    modes += ["fault", "retry"]
                modes += ["cancel"]
            for mode in modes:
                outcome = _run_one(workers, gpus, seed, mode, report)
                report.outcomes.append(outcome)
                config_violations += len(outcome.violations)
        if log is not None:
            runs = [
                o for o in report.outcomes
                if o.workers == workers and o.gpus == gpus
            ]
            log(
                f"  {workers} worker(s) x {gpus} GPU(s): "
                f"{len(runs)} run(s), "
                f"{sum(o.num_records for o in runs)} task records, "
                f"{config_violations} violation(s)"
            )
    return report


def run_determinism_check(
    seed: int = 0, *, passes: int = 2
) -> Tuple[bool, List[str], List[str]]:
    """Run the same host-only graph twice on one worker; compare traces.

    Returns ``(identical, order_a, order_b)`` where the orders are the
    task-name sequences in execution order.  Only host-only graphs on a
    single worker are deterministic: GPU tasks complete on stream
    dispatcher threads that race with the worker for queue order (see
    docs/testing.md).
    """
    orders: List[List[str]] = []
    for _ in range(2):
        gen = generate_graph(seed, num_gpus=0)
        obs = TraceObserver()
        with Executor(num_workers=1, num_gpus=0, observers=[obs], seed=seed) as ex:
            ex.run_n(gen.graph, passes).result(timeout=_RESULT_TIMEOUT)
        validate_schedule(
            gen.graph, obs.records, passes=passes, num_gpus=0
        ).raise_if_failed()
        if gen.verify(passes):
            raise AssertionError("determinism check graph failed its oracle")
        orders.append([r.name for r in obs.records])
    return orders[0] == orders[1], orders[0], orders[1]
