"""Schedule validation: whole-execution invariants over a trace.

Consumes a graph plus the :class:`~repro.core.observer.TaskRecord` list
a :class:`~repro.core.observer.TraceObserver` collected while the real
executor ran it, and checks the programming model's execution
invariants:

1. **Exact-once** — every node produced exactly ``passes`` records
   (at most ``passes`` under ``allow_partial``, for cancelled/failed
   runs), and no record refers to a node outside the graph.
2. **Happens-before** — for every dependency edge ``u -> v`` and every
   pass, ``end(u) <= begin(v)`` on the shared monotonic clock.  Passes
   are time-separated by the executor (a pass dispatches only after
   the previous one fully drained), so the k-th record of each node by
   begin time belongs to pass k.
3. **Stream order** — records sharing a (device, stream) pair carry
   unique, stream-local sequence numbers, and both their dispatch
   (begin) and completion (end) stamps are monotone in sequence order:
   an in-order stream never completes ops out of FIFO order.
4. **Placement consistency** — recomputing Algorithm 1's union-find
   groups from the graph (kernel unioned with its source pull tasks),
   every member of a group ran on the same device, every push ran on
   its source pull's device, device ordinals are in range, and host
   tasks never carry a device.

Violations are collected, not raised; :meth:`ScheduleReport.raise_if_failed`
escalates to :class:`~repro.errors.ValidationError`.

Resilience-aware relaxations (docs/resilience.md): records flagged
``fallback`` ran on the host after every GPU failed, so they carry no
device and are exempt from device/placement checks; records flagged
``replayed`` were re-executed after a device failure retracted the
committed first run, so their timestamps are shifted relative to
already-committed neighbours and their device may legitimately differ
from pre-failure records — happens-before and cross-record placement
checks skip edges/groups touching them.  Exact-once counting is *never*
relaxed: retraction keeps the trace at one record per node per pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.heteroflow import Heteroflow
from repro.core.node import Node, TaskType
from repro.core.observer import TaskRecord
from repro.errors import ValidationError
from repro.utils.union_find import UnionFind


@dataclass
class Violation:
    """One broken invariant."""

    kind: str  # "count" | "happens-before" | "stream-order" | "placement"
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.kind}] {self.message}"


@dataclass
class ScheduleReport:
    """Outcome of one validation pass."""

    violations: List[Violation] = field(default_factory=list)
    num_records: int = 0
    num_edges_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        if self.violations:
            lines = "\n  ".join(str(v) for v in self.violations[:20])
            more = len(self.violations) - 20
            suffix = f"\n  ... and {more} more" if more > 0 else ""
            raise ValidationError(
                f"{len(self.violations)} schedule invariant violation(s):\n  "
                f"{lines}{suffix}"
            )

    def add(self, kind: str, message: str) -> None:
        self.violations.append(Violation(kind, message))


def _check_counts(
    report: ScheduleReport,
    by_nid: Dict[int, List[TaskRecord]],
    nodes: Sequence[Node],
    passes: int,
    allow_partial: bool,
) -> None:
    known = {n.nid for n in nodes}
    for nid, recs in by_nid.items():
        if nid not in known:
            report.add("count", f"trace contains unknown node nid={nid} "
                                f"({recs[0].name!r})")
    for n in nodes:
        got = len(by_nid.get(n.nid, ()))
        if got > passes:
            report.add(
                "count",
                f"task {n.name!r} ran {got} times in {passes} pass(es)",
            )
        elif got < passes and not allow_partial:
            report.add(
                "count",
                f"task {n.name!r} ran {got} times, expected {passes}",
            )


def _check_happens_before(
    report: ScheduleReport,
    by_nid: Dict[int, List[TaskRecord]],
    nodes: Sequence[Node],
) -> None:
    for u in nodes:
        u_recs = by_nid.get(u.nid, [])
        for v in u.successors:
            v_recs = by_nid.get(v.nid, [])
            for k, v_rec in enumerate(v_recs):
                if k >= len(u_recs):
                    # v ran a pass its predecessor never completed
                    report.add(
                        "happens-before",
                        f"task {v.name!r} ran pass {k} but predecessor "
                        f"{u.name!r} has no record for that pass",
                    )
                    continue
                u_rec = u_recs[k]
                if u_rec.replayed or v_rec.replayed:
                    # device-failure replay time-shifted this record
                    # relative to neighbours committed before the fault
                    continue
                report.num_edges_checked += 1
                if u_rec.end > v_rec.begin:
                    report.add(
                        "happens-before",
                        f"task {v.name!r} began {1e6 * (u_rec.end - v_rec.begin):.1f}us "
                        f"before predecessor {u.name!r} ended (pass {k})",
                    )


def _check_stream_order(
    report: ScheduleReport, records: Sequence[TaskRecord]
) -> None:
    streams: Dict[tuple, List[TaskRecord]] = {}
    for r in records:
        if r.stream is None:
            continue
        if r.stream_seq is None:
            report.add(
                "stream-order",
                f"GPU task {r.name!r} has a stream id but no sequence number",
            )
            continue
        streams.setdefault((r.device, r.stream), []).append(r)
    for (device, stream), recs in streams.items():
        seqs = [r.stream_seq for r in recs]
        if len(set(seqs)) != len(seqs):
            report.add(
                "stream-order",
                f"duplicate sequence numbers on gpu{device} stream {stream}",
            )
            continue
        recs = sorted(recs, key=lambda r: r.stream_seq)
        for a, b in zip(recs, recs[1:]):
            if a.begin > b.begin:
                report.add(
                    "stream-order",
                    f"gpu{device} stream {stream}: {b.name!r} (seq {b.stream_seq}) "
                    f"was dispatched before {a.name!r} (seq {a.stream_seq})",
                )
            if a.end > b.end:
                report.add(
                    "stream-order",
                    f"gpu{device} stream {stream}: {b.name!r} (seq {b.stream_seq}) "
                    f"completed before {a.name!r} (seq {a.stream_seq}) — "
                    f"in-order stream executed out of order",
                )


def _check_placement(
    report: ScheduleReport,
    by_nid: Dict[int, List[TaskRecord]],
    nodes: Sequence[Node],
    num_gpus: Optional[int],
) -> None:
    device_of: Dict[int, Optional[int]] = {}
    # nodes that ran degraded on the host (no device) or were replayed
    # onto a surviving device after a failure; cross-record placement
    # checks touching them are skipped (docs/resilience.md)
    fellback: set = set()
    moved: set = set()
    for n in nodes:
        recs = by_nid.get(n.nid, [])
        if any(r.fallback for r in recs):
            fellback.add(n.nid)
        if any(r.replayed for r in recs):
            moved.add(n.nid)
        placed = [r for r in recs if not r.fallback]
        devices = {r.device for r in placed}
        if len(devices) > 1 and n.nid not in moved:
            report.add(
                "placement",
                f"task {n.name!r} ran on multiple devices {sorted(devices)} "
                f"across passes",
            )
        if placed:
            device_of[n.nid] = placed[0].device
    for n in nodes:
        dev = device_of.get(n.nid)
        if n.nid not in device_of:
            continue
        if n.type is TaskType.HOST and dev is not None:
            report.add("placement", f"host task {n.name!r} carries device {dev}")
        if n.type.is_gpu:
            if dev is None:
                if n.nid not in fellback:
                    report.add(
                        "placement", f"GPU task {n.name!r} has no device"
                    )
            elif num_gpus is not None and not 0 <= dev < num_gpus:
                report.add(
                    "placement",
                    f"task {n.name!r} ran on device {dev}, but only "
                    f"{num_gpus} GPU(s) exist",
                )
    # union-find grouping must be respected: a kernel and all its
    # source pull tasks land on one device (paper Algorithm 1)
    uf: UnionFind = UnionFind()
    for n in nodes:
        if n.type in (TaskType.PULL, TaskType.KERNEL):
            uf.add(n)
            if n.type is TaskType.KERNEL:
                for p in n.kernel_sources:
                    uf.union(n, p)
    for root, members in uf.groups().items():
        if any(m.nid in moved or m.nid in fellback for m in members):
            # a fault moved part of this group mid-run; the pre-failure
            # records legitimately disagree with the replayed ones
            continue
        devices = {
            device_of[m.nid] for m in members
            if m.nid in device_of and device_of[m.nid] is not None
        }
        if len(devices) > 1:
            names = ", ".join(repr(m.name) for m in members)
            report.add(
                "placement",
                f"placement group [{names}] split across devices "
                f"{sorted(devices)}",
            )
    for n in nodes:
        if n.type is TaskType.PUSH and n.source is not None:
            if (
                n.nid in moved or n.nid in fellback
                or n.source.nid in moved or n.source.nid in fellback
            ):
                continue
            pdev = device_of.get(n.nid)
            sdev = device_of.get(n.source.nid)
            if pdev is not None and sdev is not None and pdev != sdev:
                report.add(
                    "placement",
                    f"push task {n.name!r} ran on device {pdev} but its "
                    f"source pull {n.source.name!r} ran on device {sdev}",
                )


def validate_schedule(
    graph: Heteroflow,
    records: Sequence[TaskRecord],
    *,
    passes: int = 1,
    num_gpus: Optional[int] = None,
    allow_partial: bool = False,
) -> ScheduleReport:
    """Validate *records* of a run of *graph* against all invariants.

    *passes* is the submitted repeat count (``run`` is 1).  With
    ``allow_partial`` (cancelled or failed runs) tasks may have run
    fewer times than *passes*, but never more, and every record that
    exists must still respect happens-before, stream, and placement
    invariants.
    """
    report = ScheduleReport(num_records=len(records))
    nodes = graph.nodes
    by_nid: Dict[int, List[TaskRecord]] = {}
    for r in records:
        by_nid.setdefault(r.nid, []).append(r)
    for recs in by_nid.values():
        recs.sort(key=lambda r: r.begin)

    _check_counts(report, by_nid, nodes, passes, allow_partial)
    _check_happens_before(report, by_nid, nodes)
    _check_stream_order(report, records)
    _check_placement(report, by_nid, nodes, num_gpus)
    return report
