"""Deliberately-buggy executors: proof that the validator has teeth.

A checker that never fires is indistinguishable from a checker that
cannot fire.  :class:`MutantExecutor` plants a classic scheduler bug —
a *premature dependency release* (equivalent to skipping one join-
counter decrement): any task with two or more predecessors is scheduled
as soon as its **first** predecessor finishes, instead of its last.
Each task still runs exactly once (the pass accounting stays intact),
so the bug is invisible to result-less smoke tests; only a
happens-before check over the trace can see it.

:func:`run_mutant_selftest` runs a graph engineered to expose the bug
deterministically — a diamond whose second predecessor sleeps, so the
join task provably begins while that predecessor is still running —
under both the mutant and the reference executor, and reports whether
the validator caught the mutant (it must) while passing the reference
run (it must, too).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.executor import Executor
from repro.core.heteroflow import Heteroflow
from repro.core.node import Node
from repro.core.observer import TraceObserver
from repro.core.topology import Topology
from repro.check.validate import ScheduleReport, validate_schedule


class MutantExecutor(Executor):
    """Executor with a seeded premature-release scheduling bug.

    Do not use outside the checker self-test.
    """

    def _finish_node(
        self, topology: Topology, node: Node, gen: Optional[int] = None
    ) -> None:
        for succ in node.successors:
            with succ._lock:
                succ.join_counter -= 1
                remaining = succ.join_counter
            # BUG (deliberate): multi-dependency successors are released
            # one decrement early — after their first finished
            # predecessor instead of their last
            threshold = 1 if len(succ.dependents) >= 2 else 0
            if remaining == threshold:
                self._schedule(topology, succ, gen)
        if topology.node_finished():
            if topology.pass_completed():
                self._finalize_topology(topology)
            else:
                self._dispatch_pass(topology)


def _diamond_graph(delay: float) -> Heteroflow:
    """fast + slow predecessors joining into one task, plus a tail."""
    hf = Heteroflow("mutant-selftest")
    fast = hf.host(lambda: None, name="fast")
    slow = hf.host(lambda: time.sleep(delay), name="slow")
    join = hf.host(lambda: None, name="join")
    tail = hf.host(lambda: None, name="tail")
    fast.precede(join)
    slow.precede(join)
    join.precede(tail)
    return hf


@dataclass
class SelftestResult:
    """Validator verdicts for the mutant and the reference executor."""

    reports: Dict[str, ScheduleReport]

    @property
    def caught(self) -> bool:
        """True iff the validator flagged the mutant and not the
        correct executor — the checker demonstrably has teeth."""
        return (not self.reports["mutant"].ok) and self.reports["reference"].ok


def run_mutant_selftest(delay: float = 0.25) -> SelftestResult:
    """Run the seeded-bug graph under both executors and validate.

    *delay* is the slow predecessor's sleep; the mutant schedules the
    join task immediately after the fast predecessor, so the join's
    begin stamp lands well inside the slow task's interval and the
    happens-before check must fire.
    """
    reports: Dict[str, ScheduleReport] = {}
    for label, cls in (("mutant", MutantExecutor), ("reference", Executor)):
        hf = _diamond_graph(delay)
        obs = TraceObserver()
        with cls(num_workers=2, num_gpus=0, observers=[obs]) as ex:
            ex.run(hf).result(timeout=60)
        reports[label] = validate_schedule(hf, obs.records, passes=1, num_gpus=0)
    return SelftestResult(reports=reports)
