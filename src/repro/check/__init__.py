"""repro.check — schedule validation and stress testing.

A race/invariant checker for the executor, GPU runtime, and allocator:

- :mod:`repro.check.generator` — seeded random Heteroflow graphs with
  host-side reference oracles;
- :mod:`repro.check.validate` — whole-execution invariants (exact-once,
  happens-before, stream FIFO order, placement consistency) over
  :class:`~repro.core.observer.TraceObserver` traces;
- :mod:`repro.check.audit` — allocator auditing (alignment, no-overlap,
  matched frees, zero leaks, full coalescing) via buddy trace hooks;
- :mod:`repro.check.mutants` — deliberately-buggy executors proving the
  validator catches real scheduler bugs;
- :mod:`repro.check.stress` — the config x seed sweep behind
  ``python -m repro check --stress``;
- :mod:`repro.check.replay` — the fresh-vs-frozen differential sweep
  behind ``python -m repro check --replay`` (docs/runtime.md, "Freeze
  and replay");
- :mod:`repro.check.sanitize` — the effect-inference soundness sweep
  behind ``python -m repro check --sanitize``: seeded graphs run under
  the hfsan runtime sanitizer and must report zero static/dynamic
  divergence (docs/analysis.md, "Sanitizer").
"""

from repro.check.audit import AllocatorAuditor, AuditReport, AllocEvent
from repro.check.generator import GeneratedGraph, generate_graph
from repro.check.mutants import MutantExecutor, SelftestResult, run_mutant_selftest
from repro.check.replay import (
    REPLAY_CONFIGS,
    ReplayOutcome,
    ReplayReport,
    run_replay_check,
)
from repro.check.sanitize import (
    SWEEP_SCHEMA,
    SanitizeOutcome,
    SanitizeSweepReport,
    run_sanitize_sweep,
)
from repro.check.stress import (
    DEFAULT_CONFIGS,
    RunOutcome,
    StressReport,
    run_determinism_check,
    run_stress,
)
from repro.check.validate import (
    ScheduleReport,
    Violation,
    validate_schedule,
)

__all__ = [
    "AllocEvent",
    "AllocatorAuditor",
    "AuditReport",
    "DEFAULT_CONFIGS",
    "GeneratedGraph",
    "MutantExecutor",
    "REPLAY_CONFIGS",
    "ReplayOutcome",
    "ReplayReport",
    "RunOutcome",
    "SWEEP_SCHEMA",
    "SanitizeOutcome",
    "SanitizeSweepReport",
    "ScheduleReport",
    "SelftestResult",
    "StressReport",
    "Violation",
    "generate_graph",
    "run_determinism_check",
    "run_mutant_selftest",
    "run_replay_check",
    "run_sanitize_sweep",
    "run_stress",
    "validate_schedule",
]
