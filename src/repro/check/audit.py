"""Allocator auditing: record every pool alloc/free and check them.

Attaches to :class:`~repro.gpu.buddy.BuddyAllocator` instances through
their ``trace_hook`` (installed by :mod:`repro.gpu.memory` pools under
every simulated device), records the linearized alloc/free event
stream, and checks the pool invariants *online*:

- **alignment** — every block is a power-of-two multiple of
  ``min_block`` bytes, naturally aligned (``offset % size == 0``), and
  inside the arena;
- **fit** — the block is at least as large as the request;
- **no-overlap** — a new block never intersects a live block;
- **matched frees** — every free names a live block of the recorded
  size (no double free, no foreign free);

and at :meth:`finish` time, *post-mortem*:

- **zero leaks** — no block is live once the run is over;
- **full coalescing** — with nothing allocated, every split block has
  merged back into the single arena-sized root.

Events arrive from worker threads; the allocator invokes hooks inside
its own lock, so the stream is linearized per allocator, and the
auditor adds its own lock to merge streams from multiple pools.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.errors import ValidationError
from repro.gpu.buddy import BuddyAllocator
from repro.gpu.memory import DeviceHeap


@dataclass
class AllocEvent:
    """One recorded pool operation."""

    pool: str
    kind: str  # "alloc" | "free"
    offset: int
    size: int
    requested: int


@dataclass
class AuditReport:
    """Outcome of one audited run."""

    violations: List[str] = field(default_factory=list)
    num_allocs: int = 0
    num_frees: int = 0
    num_pools: int = 0
    peak_bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        if self.violations:
            lines = "\n  ".join(self.violations[:20])
            more = len(self.violations) - 20
            suffix = f"\n  ... and {more} more" if more > 0 else ""
            raise ValidationError(
                f"{len(self.violations)} allocator invariant violation(s):\n  "
                f"{lines}{suffix}"
            )


class _PoolState:
    __slots__ = ("label", "allocator", "live")

    def __init__(self, label: str, allocator: BuddyAllocator) -> None:
        self.label = label
        self.allocator = allocator
        self.live: Dict[int, int] = {}  # offset -> block size


class AllocatorAuditor:
    """Records and checks alloc/free streams from one or more pools."""

    def __init__(self, keep_events: bool = True) -> None:
        self._lock = threading.Lock()
        self._pools: List[_PoolState] = []
        self._violations: List[str] = []
        self._num_allocs = 0
        self._num_frees = 0
        self.keep_events = keep_events
        self.events: List[AllocEvent] = []

    # -- wiring ------------------------------------------------------
    def attach(
        self, target: Union[BuddyAllocator, DeviceHeap], label: str = ""
    ) -> None:
        """Install the audit hook on a pool (heap or raw allocator)."""
        allocator = target.allocator if isinstance(target, DeviceHeap) else target
        if allocator.trace_hook is not None:
            raise ValidationError(
                "allocator already has a trace hook; detach the other "
                "auditor first"
            )
        state = _PoolState(label or f"pool{len(self._pools)}", allocator)
        with self._lock:
            self._pools.append(state)

        def hook(kind: str, offset: int, size: int, requested: int) -> None:
            self._on_event(state, kind, offset, size, requested)

        allocator.trace_hook = hook

    def attach_runtime(self, runtime) -> None:
        """Attach to every device pool of a :class:`GpuRuntime`."""
        for device in runtime.devices:
            self.attach(device.heap, label=f"gpu{device.ordinal}")

    def detach_all(self) -> None:
        with self._lock:
            pools = list(self._pools)
        for state in pools:
            state.allocator.trace_hook = None

    # -- event recording / online checks -----------------------------
    def _on_event(
        self, state: _PoolState, kind: str, offset: int, size: int, requested: int
    ) -> None:
        with self._lock:
            if self.keep_events:
                self.events.append(
                    AllocEvent(state.label, kind, offset, size, requested)
                )
            if kind == "alloc":
                self._num_allocs += 1
                self._check_alloc(state, offset, size, requested)
                state.live[offset] = size
            elif kind == "free":
                self._num_frees += 1
                known = state.live.pop(offset, None)
                if known is None:
                    self._violations.append(
                        f"{state.label}: free of unknown/already-freed block "
                        f"at offset {offset}"
                    )
                elif known != size:
                    self._violations.append(
                        f"{state.label}: free at offset {offset} returned "
                        f"{size} bytes but the block was {known} bytes"
                    )
            else:  # pragma: no cover - future-proofing
                self._violations.append(
                    f"{state.label}: unknown event kind {kind!r}"
                )

    def _check_alloc(
        self, state: _PoolState, offset: int, size: int, requested: int
    ) -> None:
        alloc = state.allocator
        if size < alloc.min_block or size & (size - 1) != 0:
            self._violations.append(
                f"{state.label}: block of {size} bytes at offset {offset} is "
                f"not a power-of-two multiple of min_block={alloc.min_block}"
            )
        if size and offset % size != 0:
            self._violations.append(
                f"{state.label}: block at offset {offset} is not naturally "
                f"aligned to its size {size}"
            )
        if offset < 0 or offset + size > alloc.capacity:
            self._violations.append(
                f"{state.label}: block [{offset}, {offset + size}) escapes "
                f"the {alloc.capacity}-byte arena"
            )
        if size < requested:
            self._violations.append(
                f"{state.label}: request of {requested} bytes got a "
                f"{size}-byte block"
            )
        if offset in state.live:
            self._violations.append(
                f"{state.label}: offset {offset} allocated twice without a free"
            )
        end = offset + size
        for o, s in state.live.items():
            if o < end and offset < o + s:
                self._violations.append(
                    f"{state.label}: new block [{offset}, {end}) overlaps "
                    f"live block [{o}, {o + s})"
                )

    # -- post-mortem -------------------------------------------------
    def finish(self, detach: bool = True) -> AuditReport:
        """Run teardown checks (leaks, coalescing) and build the report."""
        with self._lock:
            report = AuditReport(
                violations=list(self._violations),
                num_allocs=self._num_allocs,
                num_frees=self._num_frees,
                num_pools=len(self._pools),
            )
            pools = list(self._pools)
        for state in pools:
            report.peak_bytes[state.label] = state.allocator.peak_bytes
            with self._lock:
                leaked = sorted(state.live.items())
            for offset, size in leaked:
                report.violations.append(
                    f"{state.label}: leaked {size}-byte block at offset "
                    f"{offset} (never freed)"
                )
            if state.allocator.bytes_in_use != 0:
                report.violations.append(
                    f"{state.label}: allocator reports "
                    f"{state.allocator.bytes_in_use} bytes still in use at "
                    f"teardown"
                )
            elif not state.allocator.fully_coalesced:
                report.violations.append(
                    f"{state.label}: free blocks failed to coalesce back "
                    f"into the arena root"
                )
            try:
                state.allocator.check_invariants()
            except AssertionError as exc:
                report.violations.append(f"{state.label}: {exc}")
        if detach:
            self.detach_all()
        return report
