"""Seeded random Heteroflow graphs with known-good reference results.

The stress harness needs graphs that (a) mix all four task types, (b)
exercise the placement grouping (kernels sharing pull tasks), (c) have
enough structural randomness to shake out scheduler races, and (d) ship
with an *oracle*: a host-side replay of the exact arithmetic the GPU
chains perform, so every run can be checked for data correctness, not
just schedule shape.

A generated graph is built from:

- ``H`` host tasks, each appending its id to a shared log (exact-once
  accounting across passes);
- ``C`` GPU *chains*: ``pull -> kernel... -> push`` over a per-chain
  float64 array, where each kernel applies an affine update
  ``x = x * c + d`` (bitwise-reproducible on the host oracle);
- optional *join* kernels reading a second chain's pulled data (unions
  two placement groups, the Algorithm-1 stress case);
- host-*filled* chains whose data is written by an upstream host task
  (exercises stateful/late-bound spans);
- random extra forward edges over a fixed topological creation order
  (acyclic by construction).

Everything derives from one integer seed via :mod:`random.Random`, so a
failing stress case is reproducible from its seed alone.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.heteroflow import Heteroflow
from repro.core.task import Task


@dataclass
class _Chain:
    """One pull -> kernels -> push chain and its oracle description."""

    index: int
    array: np.ndarray
    #: snapshot of ``array`` at generation time — ``array`` itself is
    #: overwritten with results by push tasks, so the oracle replays
    #: from this copy
    init: np.ndarray
    base: Optional[np.ndarray]  # host-filled chains: value written each pass
    #: kernel op list: ("affine", c, d) or ("join", src_chain_index, c)
    ops: List[Tuple] = field(default_factory=list)


@dataclass
class GeneratedGraph:
    """A random graph plus the state needed to verify a run of it."""

    graph: Heteroflow
    seed: int
    num_hosts: int
    chains: List[_Chain]
    host_log: List[int]
    #: set for gated graphs: the first task blocks until this event
    gate: Optional[threading.Event] = None

    @property
    def num_nodes(self) -> int:
        return len(self.graph.nodes)

    def expected_arrays(self, passes: int = 1) -> Dict[int, np.ndarray]:
        """Replay the chain arithmetic on the host for *passes* runs."""
        host: Dict[int, np.ndarray] = {
            c.index: c.init.copy() for c in self.chains
        }
        for _ in range(passes):
            dev: Dict[int, np.ndarray] = {}
            for c in self.chains:
                if c.base is not None:
                    host[c.index] = c.base.copy()
            for c in self.chains:
                dev[c.index] = host[c.index].copy()
            # chains are processed in index order; join kernels only
            # reference lower-indexed chains, whose device state is
            # final by then (their own kernels never read other chains)
            for c in self.chains:
                x = dev[c.index]
                for op in c.ops:
                    if op[0] == "affine":
                        _, cmul, dadd = op
                        x *= cmul
                        x += dadd
                    else:
                        _, src, cmul = op
                        x += dev[src][0] * cmul
            for c in self.chains:
                host[c.index] = dev[c.index].copy()
        return host

    def verify(self, passes: int = 1) -> List[str]:
        """Check run results against the oracle; returns violations."""
        problems: List[str] = []
        counts: Dict[int, int] = {}
        for hid in self.host_log:
            counts[hid] = counts.get(hid, 0) + 1
        for hid in range(self.num_hosts):
            got = counts.pop(hid, 0)
            if got != passes:
                problems.append(
                    f"host task {hid} ran {got} times, expected {passes}"
                )
        for hid, got in counts.items():
            problems.append(f"unknown host task id {hid} ran {got} times")
        expected = self.expected_arrays(passes)
        for c in self.chains:
            if not np.allclose(c.array, expected[c.index], rtol=1e-12, atol=1e-12):
                bad = int(np.sum(~np.isclose(c.array, expected[c.index]))) or len(c.array)
                problems.append(
                    f"chain {c.index}: {bad}/{c.array.size} elements differ "
                    f"from the reference result"
                )
        return problems


def _affine_kernel(cmul: float, dadd: float) -> Callable:
    def affine(x):
        x *= cmul
        x += dadd

    return affine


def _join_kernel(cmul: float) -> Callable:
    def join(x, y):
        x += y[0] * cmul

    return join


def generate_graph(
    seed: int,
    num_gpus: int,
    *,
    max_hosts: int = 8,
    max_chains: int = 4,
    max_kernels: int = 3,
    max_len: int = 512,
    extra_edge_prob: float = 0.15,
    fallbacks: bool = True,
    gate: bool = False,
) -> GeneratedGraph:
    """Build a seeded random graph (see module docstring).

    ``num_gpus == 0`` produces a host-only graph.  With ``fallbacks``
    (the default) every kernel registers its own callable as host
    fallback — the simulated kernels are plain numpy functions of their
    views, so graceful degradation (docs/resilience.md) reproduces the
    oracle arithmetic bit-for-bit; pass ``fallbacks=False`` to test the
    no-survivor failure path.  With ``gate=True`` a blocking first task
    is prepended so the caller can hold the whole graph at the starting
    line (cancellation tests).  Fault injection is no longer a
    generator concern: seed fault profiles on the devices instead
    (:meth:`repro.gpu.device.Device.configure_faults`).
    """
    rng = random.Random(seed)
    hf = Heteroflow(f"check-seed{seed}")
    log: List[int] = []
    log_lock = threading.Lock()

    num_hosts = rng.randint(3, max(3, max_hosts))
    num_chains = rng.randint(1, max_chains) if num_gpus > 0 else 0

    def make_host(hid: int) -> Callable:
        def work() -> None:
            with log_lock:
                log.append(hid)

        return work

    ordered: List[Task] = []  # topological creation order for extra edges
    hosts = []
    for hid in range(num_hosts):
        t = hf.host(make_host(hid), name=f"h{hid}")
        hosts.append(t)
        ordered.append(t)

    chains: List[_Chain] = []
    # chain index -> (pull handle, last kernel handle), for join kernels
    chain_handles: Dict[int, Tuple[Task, Task]] = {}
    for ci in range(num_chains):
        length = rng.randint(16, max_len)
        values = np.asarray(
            [rng.uniform(-4.0, 4.0) for _ in range(length)], dtype=np.float64
        )
        host_filled = rng.random() < 0.5
        if host_filled:
            base = values
            array = np.zeros(length, dtype=np.float64)
            filler = rng.choice(hosts)
        else:
            base = None
            array = values.copy()
            filler = None
        chain = _Chain(index=ci, array=array, init=array.copy(), base=base)

        pull = hf.pull(array, name=f"c{ci}.pull")
        if host_filled:
            # rebind the chosen host task to also (re)fill the data;
            # wrap instead so the log accounting stays intact
            fill_src = base

            def make_filler(prev: Callable, dst=array, src=fill_src) -> Callable:
                def fill() -> None:
                    dst[:] = src
                    prev()

                return fill

            node = filler.node
            node.callable = make_filler(node.callable)
            filler.precede(pull)
        ordered.append(pull)

        prev: Task = pull
        num_kernels = rng.randint(1, max_kernels)
        for ki in range(num_kernels):
            join_candidates = [c for c in chains if c.index < ci]
            if join_candidates and rng.random() < 0.3:
                src = rng.choice(join_candidates)
                cmul = rng.uniform(-1.0, 1.0)
                src_pull, src_last_kernel = chain_handles[src.index]
                k = hf.kernel(
                    _join_kernel(cmul), pull, src_pull, name=f"c{ci}.k{ki}.join{src.index}"
                )
                # the joined chain's data is only read; declaring it
                # keeps concurrent joins off the same source chain
                # race-free under hflint (HF011)
                k.reads(src_pull)
                k.succeed(prev, src_last_kernel)
                chain.ops.append(("join", src.index, cmul))
            else:
                cmul = rng.uniform(0.5, 1.5)
                dadd = rng.uniform(-1.0, 1.0)
                k = hf.kernel(_affine_kernel(cmul, dadd), pull, name=f"c{ci}.k{ki}")
                k.succeed(prev)
                chain.ops.append(("affine", cmul, dadd))
            if fallbacks:
                k.host_fallback()
            ordered.append(k)
            prev = k

        push = hf.push(pull, array, name=f"c{ci}.push")
        push.succeed(prev)
        ordered.append(push)
        chain_handles[ci] = (pull, prev)
        chains.append(chain)

    # random extra forward edges (creation order is topological)
    n = len(ordered)
    budget = max(2, n)
    for _ in range(budget):
        if rng.random() >= extra_edge_prob * 2:
            continue
        i = rng.randrange(n - 1)
        j = rng.randrange(i + 1, n)
        a, b = ordered[i], ordered[j]
        if b.node in a.node.successors:
            continue
        # keep push/pull data semantics: extra edges are ordering-only,
        # which is always safe because only same-chain tasks touch a
        # chain's data and their order is already fixed by chain edges
        a.precede(b)

    gen = GeneratedGraph(
        graph=hf,
        seed=seed,
        num_hosts=num_hosts,
        chains=chains,
        host_log=log,
    )
    if gate:
        ev = threading.Event()
        gate_task = hf.host(ev.wait, name="gate")
        for t in ordered:
            if t.node.is_source and t.node is not gate_task.node:
                gate_task.precede(t)
        gen.gate = ev
    return gen
