"""Sanitizer soundness sweep: static inference vs runtime observation.

For every seed, the sweep generates a seeded random graph
(:mod:`repro.check.generator`), runs it under the hfsan runtime
sanitizer (``Executor.run(..., sanitize=True)``), and checks that

1. the run reports **zero static/dynamic divergence** — every access
   the recording proxies observed was predicted by the effect
   inference engine wherever it claimed confidence (its soundness
   contract, docs/analysis.md);
2. the generator's arithmetic oracle still holds — the proxies are
   transparent (same memory, delegated operations), so sanitized runs
   must produce byte-identical results;
3. the captured-object proxies were uninstalled — the host closures
   hold their original objects again after the future resolves.

A divergence here is a real bug: either the inference engine missed an
access path (unsound) or a proxy misattributed one.  Exposed via
``python -m repro sanitize --sweep`` and ``repro check --sanitize``;
the CI ``sanitize`` job commits the report as a schema-versioned
artifact (``repro.sanitize-sweep/1``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.check.generator import generate_graph
from repro.core.executor import Executor

#: sweep report schema; bump only with a documented migration
SWEEP_SCHEMA = "repro.sanitize-sweep/1"

_RESULT_TIMEOUT = 120.0


@dataclass
class SanitizeOutcome:
    """One sanitized execution of one generated graph."""

    seed: int
    num_nodes: int
    checked_tasks: int
    confident_tasks: int
    proxied_objects: int
    divergences: List[Dict] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.violations

    def as_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "num_nodes": self.num_nodes,
            "checked_tasks": self.checked_tasks,
            "confident_tasks": self.confident_tasks,
            "proxied_objects": self.proxied_objects,
            "divergences": self.divergences,
            "violations": self.violations,
        }


@dataclass
class SanitizeSweepReport:
    """Aggregated sweep outcome (``repro.sanitize-sweep/1``)."""

    num_workers: int = 0
    num_gpus: int = 0
    outcomes: List[SanitizeOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def num_runs(self) -> int:
        return len(self.outcomes)

    @property
    def num_divergences(self) -> int:
        return sum(len(o.divergences) for o in self.outcomes)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for o in self.outcomes:
            out.extend(f"[seed={o.seed}] {v}" for v in o.violations)
            out.extend(
                f"[seed={o.seed}] divergence: {d}" for d in o.divergences
            )
        return out

    def as_dict(self) -> Dict:
        return {
            "schema": SWEEP_SCHEMA,
            "ok": self.ok,
            "num_runs": self.num_runs,
            "num_divergences": self.num_divergences,
            "num_workers": self.num_workers,
            "num_gpus": self.num_gpus,
            "checked_tasks": sum(o.checked_tasks for o in self.outcomes),
            "confident_tasks": sum(o.confident_tasks for o in self.outcomes),
            "proxied_objects": sum(o.proxied_objects for o in self.outcomes),
            "outcomes": [o.as_dict() for o in self.outcomes],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


def run_sanitize_sweep(
    seeds: int = 25,
    *,
    num_workers: int = 4,
    num_gpus: int = 2,
    log: Optional[Callable[[str], None]] = None,
) -> SanitizeSweepReport:
    """Run *seeds* generated graphs sanitized; returns the sweep report.

    Never raises on divergences — the caller decides (the CLI exits
    nonzero, tests assert ``report.ok``).
    """
    report = SanitizeSweepReport(num_workers=num_workers, num_gpus=num_gpus)
    ex = Executor(num_workers=num_workers, num_gpus=num_gpus)
    try:
        for seed in range(seeds):
            gen = generate_graph(seed, num_gpus=num_gpus)
            outcome = SanitizeOutcome(
                seed=seed,
                num_nodes=gen.num_nodes,
                checked_tasks=0,
                confident_tasks=0,
                proxied_objects=0,
            )
            try:
                fut = ex.run(gen.graph, sanitize=True)
                fut.result(timeout=_RESULT_TIMEOUT)
            except Exception as exc:  # noqa: BLE001 - harness boundary
                outcome.violations.append(
                    f"sanitized run failed: {exc!r}"
                )
                report.outcomes.append(outcome)
                continue
            san = fut.sanitize_report
            if san is None:
                outcome.violations.append("no sanitize report attached")
            else:
                outcome.checked_tasks = san.checked_tasks
                outcome.confident_tasks = san.confident_tasks
                outcome.proxied_objects = san.proxied_objects
                outcome.divergences = [
                    d.as_dict() for d in san.divergences
                ]
            # transparency: the sanitized run must satisfy the same
            # arithmetic oracle an unsanitized run does
            outcome.violations.extend(gen.verify(1))
            report.outcomes.append(outcome)
            if log is not None and not outcome.ok:
                log(f"  seed {seed}: {len(outcome.divergences)} "
                    f"divergence(s), {len(outcome.violations)} violation(s)")
        if log is not None:
            log(
                f"  {report.num_runs} sanitized run(s), "
                f"{sum(o.checked_tasks for o in report.outcomes)} task(s) "
                f"checked, {report.num_divergences} divergence(s)"
            )
    finally:
        ex.shutdown()
    return report
