"""Dedicated-GPU-worker scheduling (ablation baseline).

StarPU-style runtimes pin one CPU worker per GPU as its manager; the
paper explicitly rejects this ("we do not dedicate a worker to manage
a target GPU") because it wastes the pinned cores whenever GPU work is
scarce and throttles GPU dispatch whenever it is abundant.  The
virtual-time simulator can run either discipline; this module provides
the configured baseline (ABL-DEDIC).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.cost import CostModel
from repro.sim.machine import MachineSpec
from repro.sim.simulator import SimExecutor


def dedicated_sim_executor(
    machine: MachineSpec,
    cost_model: Optional[CostModel] = None,
    **kw,
) -> SimExecutor:
    """A simulator whose first ``num_gpus`` workers only dispatch GPU
    ops and whose remaining workers only run host tasks."""
    return SimExecutor(machine, cost_model, dedicated_gpu_workers=True, **kw)
