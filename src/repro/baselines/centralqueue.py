"""Central-queue (breadth-first) scheduling (ablation baseline).

The work-stealing executor's owner-side LIFO pop makes progress
depth-first: a worker finishing a task immediately runs the successor
it just spawned, pushing each view/iteration pipeline toward its GPU
stage quickly.  A single central FIFO queue instead drains whole graph
levels breadth-first, delaying GPU occupancy and inflating memory
residency.  The simulator exposes both disciplines; this module
provides the FIFO-configured baseline (ABL-STEAL).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.cost import CostModel
from repro.sim.machine import MachineSpec
from repro.sim.simulator import SimExecutor


def central_queue_sim_executor(
    machine: MachineSpec,
    cost_model: Optional[CostModel] = None,
    **kw,
) -> SimExecutor:
    """A simulator serving ready tasks in global FIFO (level) order."""
    return SimExecutor(machine, cost_model, ready_policy="fifo", **kw)
