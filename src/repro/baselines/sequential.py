"""Sequential reference executor.

Runs a Heteroflow graph on the calling thread in topological order,
using the same device placement and simulated GPU runtime as the
parallel executor but performing every GPU operation synchronously.
Because it shares no scheduling machinery with
:class:`repro.core.executor.Executor`, it makes a strong differential
oracle: any divergence between the two on the same graph is a real
runtime bug, not a shared-code artifact.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.core.heteroflow import Heteroflow
from repro.core.node import Node, TaskType
from repro.core.placement import CostMetric, DevicePlacement
from repro.core.task import PullTask
from repro.errors import KernelError
from repro.gpu.device import DEFAULT_MEMORY_BYTES, GpuRuntime, ScopedDeviceContext
from repro.gpu.kernel import launch_async


class SequentialExecutor:
    """Single-threaded topological-order executor."""

    def __init__(
        self,
        num_gpus: int = 0,
        *,
        gpu_memory_bytes: int = DEFAULT_MEMORY_BYTES,
        cost_metric: Optional[CostMetric] = None,
    ) -> None:
        self._gpu = GpuRuntime(num_gpus, gpu_memory_bytes)
        self._placement = DevicePlacement(cost_metric)
        self._streams = {}

    @property
    def num_gpus(self) -> int:
        return self._gpu.device_count

    def _stream(self, device: int):
        if device not in self._streams:
            self._streams[device] = self._gpu.device(device).create_stream("seq")
        return self._streams[device]

    def run(self, graph: Heteroflow, passes: int = 1) -> None:
        """Execute *graph* to completion, *passes* times (blocking)."""
        graph.validate()
        order: List[Node] = graph.topological_order()
        self._placement.place(graph.nodes, self.num_gpus)
        try:
            for _ in range(passes):
                for node in order:
                    self._invoke(node)
        finally:
            for node in graph.nodes:
                if node.buffer is not None:
                    node.buffer.free()
                    node.buffer = None

    # -- per-type synchronous visitors ---------------------------------
    def _invoke(self, node: Node) -> None:
        if node.type is TaskType.HOST:
            assert node.callable is not None
            node.callable()
            return
        assert node.device is not None or node.type is TaskType.PUSH
        if node.type is TaskType.PULL:
            self._invoke_pull(node)
        elif node.type is TaskType.KERNEL:
            self._invoke_kernel(node)
        elif node.type is TaskType.PUSH:
            self._invoke_push(node)

    def _invoke_pull(self, node: Node) -> None:
        device = self._gpu.device(node.device)
        with ScopedDeviceContext(device):
            stream = self._stream(node.device)
            host = node.span.host_array()
            need = max(int(host.nbytes), 1)
            if node.buffer is not None and (
                node.buffer.device is not device or node.buffer.nbytes < need
            ):
                node.buffer.free()
                node.buffer = None
            if node.buffer is None:
                node.buffer = device.heap.allocate(need, dtype=host.dtype)
            else:
                node.buffer.dtype = host.dtype
            self._gpu.memcpy_h2d_async(node.buffer, host, stream)
            stream.synchronize()

    def _invoke_kernel(self, node: Node) -> None:
        device = self._gpu.device(node.device)
        converted: List[Any] = []
        for arg in node.kernel_args:
            if isinstance(arg, PullTask):
                if arg.node.buffer is None:
                    raise KernelError(
                        f"kernel {node.name!r} ordered before pull {arg.node.name!r}"
                    )
                converted.append(arg.node.buffer)
            else:
                converted.append(arg)
        with ScopedDeviceContext(device):
            stream = self._stream(node.device)
            launch_async(stream, node.launch, node.kernel_fn, *converted)
            stream.synchronize()

    def _invoke_push(self, node: Node) -> None:
        src = node.source.buffer
        if src is None:
            raise KernelError(f"push {node.name!r} ordered before its pull task")
        device = src.device
        with ScopedDeviceContext(device):
            stream = self._stream(device.ordinal)
            staging = np.empty(src.size, dtype=src.dtype)
            self._gpu.memcpy_d2h_async(staging, src, stream)
            stream.synchronize()
            node.span.write_back(staging)

    def shutdown(self) -> None:
        self._gpu.destroy()

    def __enter__(self) -> "SequentialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
