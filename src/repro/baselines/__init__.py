"""Baselines and ablation counterparts.

- :class:`~repro.baselines.sequential.SequentialExecutor` — a
  single-threaded, topological-order executor over the same simulated
  GPU runtime; the correctness oracle for differential tests and the
  "1 core" discipline of the scaling studies;
- :class:`~repro.baselines.roundrobin.RoundRobinPlacement` — naive
  device placement ignoring load (ablation against Algorithm 1);
- :func:`~repro.baselines.dedicated.dedicated_sim_executor` — the
  StarPU-style dedicated-GPU-worker scheduler (the design the paper
  explicitly rejects), as a simulator configuration;
- :func:`~repro.baselines.centralqueue.central_queue_sim_executor` —
  breadth-first central-queue scheduling (ablation against the
  work-stealing LIFO discipline).
"""

from repro.baselines.centralqueue import central_queue_sim_executor
from repro.baselines.dedicated import dedicated_sim_executor
from repro.baselines.roundrobin import RoundRobinPlacement
from repro.baselines.sequential import SequentialExecutor

__all__ = [
    "RoundRobinPlacement",
    "SequentialExecutor",
    "central_queue_sim_executor",
    "dedicated_sim_executor",
]
