"""Round-robin device placement (ablation baseline).

Keeps the union-find grouping (required for correctness — a kernel and
its pull tasks must share a device) but assigns groups to GPUs in
creation order round-robin, ignoring group cost.  Against Algorithm
1's balanced-load bin packing this shows how skewed group sizes
translate directly into GPU load imbalance (ABL-PLACE).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.node import Node, TaskType
from repro.core.placement import PlacementResult, default_cost_metric
from repro.errors import ExecutorError
from repro.utils.union_find import UnionFind


class RoundRobinPlacement:
    """Group like Algorithm 1, pack by counter instead of by load."""

    def place(self, nodes: Sequence[Node], num_gpus: int) -> PlacementResult:
        gpu_nodes = [n for n in nodes if n.type.is_gpu]
        result = PlacementResult(loads=[0.0] * num_gpus)
        if not gpu_nodes:
            return result
        if num_gpus <= 0:
            raise ExecutorError("graph contains GPU tasks but no GPUs available")

        uf: UnionFind = UnionFind()
        for n in gpu_nodes:
            if n.type in (TaskType.PULL, TaskType.KERNEL):
                uf.add(n)
            if n.type is TaskType.KERNEL:
                for p in n.kernel_sources:
                    uf.union(n, p)

        counter = 0
        # creation order (node id) — what a naive implementation does
        for root, members in sorted(uf.groups().items(), key=lambda kv: kv[0].nid):
            bin_ = counter % num_gpus
            counter += 1
            result.loads[bin_] += default_cost_metric(members)
            result.groups[root.nid] = [m.nid for m in members]
            for m in members:
                m.device = bin_
                result.assignment[m.nid] = bin_

        for n in gpu_nodes:
            if n.type is TaskType.PUSH:
                if n.source is None or n.source.device is None:
                    raise ExecutorError(f"push task {n.name!r} has no placed source")
                n.device = n.source.device
                result.assignment[n.nid] = n.source.device
        return result
