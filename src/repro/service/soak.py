"""Soak harness: multi-tenant overload scenarios against one executor.

Where the chaos harness (:mod:`repro.resilience.chaos`) stresses the
*fault* path one submission at a time, the soak harness stresses the
*submission* path many tenants at a time: each scenario starts one
executor with a bounded :class:`~repro.service.AdmissionController`
(the policy cycles ``block``/``reject``/``shed`` over the scenario
index), then lets several submitter threads race mixed workloads at
it — ``run``/``run_n``/``run_until`` over seeded generated graphs
(:mod:`repro.check.generator`), stacked resubmissions of the same
graph (so queued siblings exist to shed, cancel, and deadline), random
priorities, random deadlines (some armed to fire, some generous), and
random caller-side cancels.

Every scenario is then checked three ways:

1. **Reconciliation** — every submission reaches exactly one terminal
   outcome, so ``submitted == rejected + admitted`` and ``admitted ==
   completed + shed + deadline_exceeded + cancelled + failed`` must
   hold *exactly*, and the executor's ``service.*`` counters must
   agree; a future still unresolved after the sweep is a stranded
   future and a violation.
2. **Trace validation** — the run's :class:`TraceObserver` records are
   filtered per graph (node ids are globally unique) and checked by the
   schedule validator; graphs with cancelled/shed/deadline submissions
   validate with ``allow_partial``.
3. **Oracle** — graphs whose every submission completed must produce
   bit-identical results to the generator's host-side replay.

The harness records per-submission latency (submit call and
end-to-end) and emits p50/p95/p99 percentiles; ``python -m repro soak
--json`` writes the whole report with schema
:data:`SOAK_REPORT_SCHEMA` (the CI artifact
``BENCH_service_soak.json``).
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.check.generator import GeneratedGraph, generate_graph
from repro.check.validate import validate_schedule
from repro.core.executor import Executor
from repro.core.observer import TraceObserver
from repro.errors import AdmissionRejectedError, ExecutorError
from repro.service.admission import POLICIES, AdmissionController
from repro.utils.rng import derive_seed

#: schema identifier of the serialized report; bump on layout changes
SOAK_REPORT_SCHEMA = "repro.soak-report/1"

#: per-future settle deadline — an unresolved future is itself a
#: stranded-future violation
_RESULT_TIMEOUT = 60.0

#: the terminal outcome classes every submission reconciles into
OUTCOMES = (
    "completed",
    "rejected",
    "shed",
    "deadline_exceeded",
    "cancelled",
    "failed",
)

#: service counters aggregated across the sweep
_COUNTER_KEYS = (
    "service.admitted",
    "service.rejected",
    "service.shed",
    "service.deadline_exceeded",
    "service.admission_blocked",
    "service.drain_cancelled",
)


def _percentiles(samples: List[float]) -> Dict[str, float]:
    """p50/p95/p99 by nearest-rank over *samples* (empty -> zeros)."""
    if not samples:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    ordered = sorted(samples)
    last = len(ordered) - 1

    def at(q: float) -> float:
        return ordered[min(last, int(round(q * last)))]

    return {"p50": at(0.50), "p95": at(0.95), "p99": at(0.99)}


@dataclass
class _Submission:
    """One ``run*`` call a submitter thread made (admitted or not)."""

    graph_key: tuple
    mode: str
    priority: int
    deadline: Optional[float]
    expected_passes: int
    submit_latency: float
    future: Optional[object] = None  # None: rejected at submission
    reject_reason: str = ""
    cancel_requested: bool = False
    outcome: str = ""
    wall_latency: float = 0.0


@dataclass
class SoakScenario:
    """One executed soak scenario."""

    index: int
    policy: str
    seed: int
    workers: int
    gpus: int
    max_topologies: int
    submitters: int
    num_graphs: int = 0
    num_records: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    submit_latency: Dict[str, float] = field(default_factory=dict)
    wall_latency: Dict[str, float] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def submitted(self) -> int:
        return sum(self.counts.values())

    @property
    def admitted(self) -> int:
        return self.submitted - self.counts.get("rejected", 0)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "policy": self.policy,
            "seed": self.seed,
            "workers": self.workers,
            "gpus": self.gpus,
            "max_topologies": self.max_topologies,
            "submitters": self.submitters,
            "num_graphs": self.num_graphs,
            "num_records": self.num_records,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "counts": {k: self.counts.get(k, 0) for k in OUTCOMES},
            "counters": dict(sorted(self.counters.items())),
            "submit_latency_s": dict(self.submit_latency),
            "wall_latency_s": dict(self.wall_latency),
            "violations": list(self.violations),
        }


@dataclass
class SoakReport:
    """Aggregated outcome of one soak sweep."""

    seed: int
    scenarios: List[SoakScenario] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    #: end-to-end latencies of every admitted submission, sweep-wide
    wall_samples: List[float] = field(default_factory=list)
    submit_samples: List[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios)

    @property
    def num_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def totals(self) -> Dict[str, int]:
        out = {k: 0 for k in OUTCOMES}
        for s in self.scenarios:
            for k in OUTCOMES:
                out[k] += s.counts.get(k, 0)
        out["submitted"] = sum(s.submitted for s in self.scenarios)
        out["admitted"] = sum(s.admitted for s in self.scenarios)
        return out

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for s in self.scenarios:
            out.extend(
                f"[#{s.index} {s.policy} seed={s.seed}] {v}"
                for v in s.violations
            )
        return out

    def to_dict(self) -> dict:
        return {
            "schema": SOAK_REPORT_SCHEMA,
            "seed": self.seed,
            "num_scenarios": self.num_scenarios,
            "ok": self.ok,
            "totals": self.totals,
            "counters": dict(sorted(self.counters.items())),
            "submit_latency_s": _percentiles(self.submit_samples),
            "wall_latency_s": _percentiles(self.wall_samples),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def _classify(sub: _Submission, violations: List[str]) -> None:
    """Resolve one submission's terminal outcome (mutates ``sub``)."""
    if sub.future is None:
        sub.outcome = "rejected"
        return
    try:
        sub.future.result(timeout=_RESULT_TIMEOUT)
        sub.outcome = "completed"
        return
    except AdmissionRejectedError as exc:
        sub.outcome = "shed"
        if exc.reason != "shed":
            violations.append(
                f"future resolved with AdmissionRejectedError "
                f"reason={exc.reason!r}; only 'shed' may reach a future"
            )
        return
    except FutureTimeoutError:
        sub.outcome = "failed"
        violations.append(
            f"stranded future: submission ({sub.mode}, "
            f"priority={sub.priority}) unresolved after "
            f"{_RESULT_TIMEOUT:.0f}s"
        )
        return
    except CancelledError:
        if sub.cancel_requested:
            sub.outcome = "cancelled"
        elif sub.deadline is not None:
            sub.outcome = "deadline_exceeded"
        else:
            sub.outcome = "cancelled"
            violations.append(
                f"unexpected CancelledError: no cancel requested and "
                f"no deadline set ({sub.mode}, priority={sub.priority})"
            )
        return
    except BaseException as exc:  # noqa: BLE001 - harness boundary
        sub.outcome = "failed"
        violations.append(
            f"submission failed unexpectedly: {exc!r} ({sub.mode})"
        )


def run_scenario(index: int, seed: int = 0) -> SoakScenario:
    """Run soak scenario *index* of the sweep seeded with *seed*.

    Graph shapes, workload mix, priorities, deadlines, and cancel
    choices all derive deterministically from ``(index, seed)``; only
    thread interleavings vary between runs.
    """
    sseed = derive_seed(seed, "soak", index)
    rng = random.Random(sseed)
    policy = POLICIES[index % len(POLICIES)]
    workers = rng.choice((2, 4))
    gpus = rng.choice((1, 2))
    max_topologies = rng.randint(3, 6)
    submitters = rng.randint(3, 5)

    scenario = SoakScenario(
        index=index,
        policy=policy,
        seed=sseed % (1 << 31),
        workers=workers,
        gpus=gpus,
        max_topologies=max_topologies,
        submitters=submitters,
    )
    ctrl = AdmissionController(
        max_topologies=max_topologies,
        policy=policy,
        block_timeout=5.0 if policy == "block" else None,
    )
    obs = TraceObserver()
    ex = Executor(
        num_workers=workers,
        num_gpus=gpus,
        observers=[obs],
        seed=scenario.seed,
        admission=ctrl,
    )

    graphs: Dict[tuple, GeneratedGraph] = {}
    graphs_lock = threading.Lock()
    submissions: List[_Submission] = []
    subs_lock = threading.Lock()
    violations: List[str] = []

    def submitter(tid: int) -> None:
        srng = random.Random(derive_seed(sseed, "tenant", tid))
        for g in range(srng.randint(2, 3)):
            gseed = derive_seed(sseed, "graph", tid, g) % (1 << 31)
            gen = generate_graph(
                gseed,
                num_gpus=gpus,
                max_hosts=4,
                max_chains=2,
                max_kernels=2,
                max_len=64,
            )
            key = (tid, g)
            with graphs_lock:
                graphs[key] = gen
            # stacked submissions of the same graph create the queued
            # siblings that shedding, deadlines, and cancels act on
            for _ in range(srng.randint(1, 3)):
                mode = srng.choice(("run", "run_n", "run_until"))
                priority = srng.randint(0, 3)
                roll = srng.random()
                deadline = (
                    0.003 if roll < 0.15 else 30.0 if roll < 0.30 else None
                )
                expected = 1
                t0 = time.monotonic()
                try:
                    if mode == "run":
                        fut = ex.run(
                            gen.graph, priority=priority, deadline=deadline
                        )
                    elif mode == "run_n":
                        expected = srng.randint(1, 2)
                        fut = ex.run_n(
                            gen.graph,
                            expected,
                            priority=priority,
                            deadline=deadline,
                        )
                    else:
                        expected = srng.randint(1, 2)
                        state = {"n": 0}

                        def pred(state=state, target=expected) -> bool:
                            state["n"] += 1
                            return state["n"] >= target

                        fut = ex.run_until(
                            gen.graph,
                            pred,
                            priority=priority,
                            deadline=deadline,
                        )
                except AdmissionRejectedError as exc:
                    with subs_lock:
                        submissions.append(
                            _Submission(
                                graph_key=key,
                                mode=mode,
                                priority=priority,
                                deadline=deadline,
                                expected_passes=0,
                                submit_latency=time.monotonic() - t0,
                                reject_reason=exc.reason,
                            )
                        )
                    continue
                sub = _Submission(
                    graph_key=key,
                    mode=mode,
                    priority=priority,
                    deadline=deadline,
                    expected_passes=expected,
                    submit_latency=time.monotonic() - t0,
                    future=fut,
                )
                fut.add_done_callback(
                    lambda f, sub=sub, t0=t0: setattr(
                        sub, "wall_latency", time.monotonic() - t0
                    )
                )
                with subs_lock:
                    submissions.append(sub)
                if srng.random() < 0.15:
                    time.sleep(srng.random() * 0.004)
                    sub.cancel_requested = ex.cancel(fut)

    threads = [
        threading.Thread(target=submitter, args=(tid,), name=f"soak-t{tid}")
        for tid in range(submitters)
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # settle every future and classify its terminal outcome
        for sub in submissions:
            _classify(sub, violations)
        if not ex.drain(timeout=_RESULT_TIMEOUT):
            violations.append("drain timed out after every future settled")
        for sub in submissions:
            if sub.future is not None and not sub.future.done():
                violations.append(
                    f"stranded future after drain ({sub.mode}, "
                    f"outcome={sub.outcome})"
                )
        snapshot = ex.metrics.snapshot()
    finally:
        ex.shutdown(wait=False)

    # -- reconciliation ----------------------------------------------
    counts = {k: 0 for k in OUTCOMES}
    for sub in submissions:
        counts[sub.outcome] += 1
    scenario.counts = counts
    admitted = len(submissions) - counts["rejected"]
    settled = sum(counts[k] for k in OUTCOMES if k != "rejected")
    if settled != admitted:  # pragma: no cover - counts are exhaustive
        violations.append(
            f"outcome reconciliation broke: {settled} settled vs "
            f"{admitted} admitted"
        )
    for key in _COUNTER_KEYS:
        val = snapshot.get(key)
        if isinstance(val, int):
            scenario.counters[key] = val
    for key, want in (
        ("service.admitted", admitted),
        ("service.rejected", counts["rejected"]),
        ("service.shed", counts["shed"]),
    ):
        got = scenario.counters.get(key, 0)
        if got != want:
            violations.append(
                f"counter {key} = {got}, but the harness observed {want}"
            )
    # the deadline counter may exceed the classified count: a deadline
    # can fire in the race window where the run is completing anyway
    if scenario.counters.get("service.deadline_exceeded", 0) < counts[
        "deadline_exceeded"
    ]:
        violations.append(
            f"counter service.deadline_exceeded = "
            f"{scenario.counters.get('service.deadline_exceeded', 0)} < "
            f"{counts['deadline_exceeded']} classified deadline outcomes"
        )

    # -- per-graph trace validation + oracle --------------------------
    scenario.num_graphs = len(graphs)
    by_graph: Dict[tuple, List[_Submission]] = {}
    for sub in submissions:
        by_graph.setdefault(sub.graph_key, []).append(sub)
    for key, gen in graphs.items():
        subs = by_graph.get(key, [])
        nids = {n.nid for n in gen.graph.nodes}
        records = [r for r in obs.records if r.nid in nids]
        scenario.num_records += len(records)
        expected = sum(
            s.expected_passes for s in subs if s.outcome != "rejected"
        )
        all_completed = all(s.outcome == "completed" for s in subs)
        report = validate_schedule(
            gen.graph,
            records,
            passes=max(expected, 1),
            num_gpus=gpus,
            allow_partial=not all_completed,
        )
        violations.extend(
            f"graph {key}: {v}" for v in report.violations
        )
        if all_completed and expected > 0:
            violations.extend(
                f"graph {key}: {v}" for v in gen.verify(passes=expected)
            )

    scenario.violations = violations
    wall = [s.wall_latency for s in submissions if s.future is not None]
    submit = [s.submit_latency for s in submissions]
    scenario.wall_latency = _percentiles(wall)
    scenario.submit_latency = _percentiles(submit)
    # stash raw samples for sweep-wide percentiles via a side channel
    scenario._wall_samples = wall  # type: ignore[attr-defined]
    scenario._submit_samples = submit  # type: ignore[attr-defined]
    return scenario


def run_soak(
    scenarios: int = 50,
    *,
    seed: int = 0,
    log: Optional[Callable[[str], None]] = None,
) -> SoakReport:
    """Sweep *scenarios* seeded overload scenarios; returns a report.

    The sweep never raises on violations — the caller decides (the CLI
    exits nonzero, tests assert on :attr:`SoakReport.ok`).
    """
    report = SoakReport(seed=seed)
    for i in range(scenarios):
        scenario = run_scenario(i, seed)
        for key, val in scenario.counters.items():
            report.counters[key] = report.counters.get(key, 0) + val
        report.wall_samples.extend(
            getattr(scenario, "_wall_samples", ())
        )
        report.submit_samples.extend(
            getattr(scenario, "_submit_samples", ())
        )
        report.scenarios.append(scenario)
        if log is not None:
            c = scenario.counts
            state = "ok" if scenario.ok else "VIOLATION"
            log(
                f"  #{scenario.index:>3} {scenario.policy:<7} "
                f"seed={scenario.seed:<11} {scenario.workers}w x "
                f"{scenario.gpus}g cap={scenario.max_topologies}  "
                f"{scenario.submitted:>2} submitted "
                f"{c.get('completed', 0):>2} done "
                f"{c.get('rejected', 0)} rej {c.get('shed', 0)} shed "
                f"{c.get('deadline_exceeded', 0)} ddl "
                f"{c.get('cancelled', 0)} cancel  {state}"
            )
    return report
