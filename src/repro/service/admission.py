"""Bounded admission: the capacity ledger behind overload protection.

The paper's executor (§III-B/C) assumes a single cooperative caller:
``run``/``run_n``/``run_until`` admit unboundedly, so a burst of
submissions grows the outstanding-topology set without limit and the
device pools become the first thing to fall over.  The
:class:`AdmissionController` puts a configurable ceiling in front of the
submission path — a maximum number of outstanding topologies and a
maximum *predicted device-memory footprint* — and decides what happens
at the ceiling via one of three backpressure policies:

- ``"block"`` — the submitting thread waits (optionally bounded by
  ``block_timeout``) until capacity frees; waiters are served strictly
  highest-priority-first, FIFO within a priority;
- ``"reject"`` — ``Executor.run*`` raises a structured
  :class:`~repro.errors.AdmissionRejectedError` immediately;
- ``"shed"`` — the executor evicts the lowest-priority *queued* (not
  yet started) topology to make room for a higher-priority submission;
  the victim's future resolves with ``AdmissionRejectedError``.

The footprint of a submission is predicted **statically**, reusing the
hflint HF020 capacity model (:mod:`repro.analysis.model`): the sum of
buddy-rounded span footprints over the graph's Algorithm-1 placement
groups — exactly the bytes the graph's pull tasks will pin in the
device pools while it runs (see :func:`predicted_footprint_bytes`).

The controller itself is a pure ledger: it never touches the executor.
The executor acquires on submission, releases on finalization (or on
eviction/cancellation of a queued topology), and implements ``shed``
victim selection itself, under its own queue lock, so a victim can
never be concurrently promoted and evicted.  One controller instance
must not be shared between executors (the ledger would conflate their
capacity).  See docs/runtime.md, "Submission lifecycle".
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Optional

from repro.errors import AdmissionRejectedError

# The buddy-rounded static footprint model is owned by the analyzer —
# one definition for lint rule HF020 and for this ledger, so the two
# can never drift.  Re-exported here because the service layer is the
# historical import site (repro.core.topology and user code import it
# from repro.service.admission).
from repro.analysis.model import predicted_footprint_bytes  # noqa: F401

#: the three backpressure policies
POLICIES = ("block", "reject", "shed")


class AdmissionController:
    """Capacity ledger + backpressure policy for executor submissions.

    *max_topologies* bounds concurrently outstanding submissions;
    *max_footprint_bytes* bounds the sum of their predicted device
    footprints.  Either may be ``None`` (unbounded on that axis).
    *policy* is one of :data:`POLICIES`; *block_timeout* bounds how
    long a ``block``-policy submitter waits (``None`` = forever).
    """

    def __init__(
        self,
        *,
        max_topologies: Optional[int] = None,
        max_footprint_bytes: Optional[int] = None,
        policy: str = "block",
        block_timeout: Optional[float] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; expected one of "
                f"{', '.join(POLICIES)}"
            )
        if max_topologies is not None and max_topologies < 1:
            raise ValueError("max_topologies must be >= 1")
        if max_footprint_bytes is not None and max_footprint_bytes < 0:
            raise ValueError("max_footprint_bytes must be >= 0")
        self.policy = policy
        self.max_topologies = max_topologies
        self.max_footprint_bytes = max_footprint_bytes
        self.block_timeout = block_timeout
        self._cv = threading.Condition()
        self._in_use = 0
        self._in_use_bytes = 0
        #: blocked submitters: {(neg_priority, seq)} — min() is the
        #: highest-priority, oldest waiter and is served first
        self._waiters: set = set()
        self._seq = itertools.count()

    # -- inspection ---------------------------------------------------
    @property
    def in_use_topologies(self) -> int:
        with self._cv:
            return self._in_use

    @property
    def in_use_bytes(self) -> int:
        with self._cv:
            return self._in_use_bytes

    @property
    def waiting(self) -> int:
        """Submitter threads currently blocked for capacity."""
        with self._cv:
            return len(self._waiters)

    @property
    def saturated(self) -> bool:
        """True when a zero-footprint submission could not be admitted."""
        with self._cv:
            return not self._fits(0)

    # -- ledger -------------------------------------------------------
    def _fits(self, footprint_bytes: int) -> bool:
        if (
            self.max_topologies is not None
            and self._in_use + 1 > self.max_topologies
        ):
            return False
        if (
            self.max_footprint_bytes is not None
            and self._in_use_bytes + footprint_bytes > self.max_footprint_bytes
        ):
            return False
        return True

    def would_ever_fit(self, footprint_bytes: int) -> bool:
        """True when an empty controller could admit this footprint."""
        return (
            self.max_footprint_bytes is None
            or footprint_bytes <= self.max_footprint_bytes
        )

    def try_acquire(self, footprint_bytes: int) -> bool:
        """Admit immediately if capacity allows; never blocks.

        Waiting ``block``-policy submitters have priority over new
        arrivals only via :meth:`acquire`; ``try_acquire`` is the
        building block the executor's shed/reject paths use directly.
        """
        with self._cv:
            if not self._fits(footprint_bytes):
                return False
            self._in_use += 1
            self._in_use_bytes += footprint_bytes
            return True

    def acquire(
        self,
        footprint_bytes: int,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> float:
        """Block until admitted; returns seconds waited.

        Among concurrent waiters the highest *priority* is admitted
        first (FIFO within a priority).  Raises
        :class:`~repro.errors.AdmissionRejectedError` (``"timeout"``)
        when *timeout* (or the controller's ``block_timeout``) elapses
        first.
        """
        if timeout is None:
            timeout = self.block_timeout
        t0 = time.monotonic()
        deadline = None if timeout is None else t0 + timeout
        me = (-priority, next(self._seq))
        with self._cv:
            self._waiters.add(me)
            try:
                while True:
                    # admit only the best waiter so releases wake
                    # submitters in priority order, not arrival order
                    if self._fits(footprint_bytes) and min(self._waiters) == me:
                        self._in_use += 1
                        self._in_use_bytes += footprint_bytes
                        return time.monotonic() - t0
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise AdmissionRejectedError(
                                "timeout",
                                policy=self.policy,
                                priority=priority,
                                footprint_bytes=footprint_bytes,
                                in_use_topologies=self._in_use,
                                in_use_bytes=self._in_use_bytes,
                            )
                        self._cv.wait(remaining)
                    else:
                        self._cv.wait()
            finally:
                self._waiters.discard(me)
                # our admission (or departure) may unblock a worse-
                # priority waiter that min() was holding back
                self._cv.notify_all()

    def release(self, footprint_bytes: int) -> None:
        """Return one admitted submission's capacity to the ledger."""
        with self._cv:
            self._in_use -= 1
            self._in_use_bytes -= footprint_bytes
            self._cv.notify_all()

    def rejection(
        self, reason: str, *, priority: int, footprint_bytes: int
    ) -> AdmissionRejectedError:
        """Build a structured rejection carrying a ledger snapshot."""
        with self._cv:
            return AdmissionRejectedError(
                reason,
                policy=self.policy,
                priority=priority,
                footprint_bytes=footprint_bytes,
                in_use_topologies=self._in_use,
                in_use_bytes=self._in_use_bytes,
            )
