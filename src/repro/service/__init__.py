"""Overload protection: bounded admission, deadlines, priority
shedding, and graceful drain.

The production-facing layer in front of the executor's submission path
(docs/runtime.md, "Submission lifecycle"):

- :class:`AdmissionController` — bounded admission by outstanding
  topology count and predicted device-memory footprint (the hflint
  HF020 static model), with ``block`` / ``reject`` / ``shed``
  backpressure policies (:mod:`repro.service.admission`);
- deadlines and priorities ride on the executor itself:
  ``Executor.run(..., deadline=, priority=)``, plus
  ``Executor.drain(timeout=)`` and ``shutdown(drain_timeout=)`` for
  graceful teardown;
- :func:`run_soak` — the multi-tenant soak harness behind
  ``python -m repro soak`` (imported lazily: it drives the executor,
  which itself imports this package).

Everything the layer does is observable through the ``service.*``
metrics and structured events cataloged in docs/observability.md.
"""

from __future__ import annotations

from repro.service.admission import (
    POLICIES,
    AdmissionController,
    predicted_footprint_bytes,
)

__all__ = [
    "AdmissionController",
    "POLICIES",
    "predicted_footprint_bytes",
    "SoakReport",
    "run_soak",
]


def __getattr__(name: str):
    if name in ("run_soak", "SoakReport"):
        from repro.service import soak

        return getattr(soak, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
