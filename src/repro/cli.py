"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info`` — library version and system inventory;
- ``figures [names...] [--views N]`` — regenerate the paper's
  evaluation tables on the virtual-time model (all by default);
- ``saxpy`` — run the Listing-1 program on the threaded runtime;
- ``dot {saxpy,timing,placement,sparsenn}`` — print a workload's task
  graph in GraphViz DOT;
- ``trace OUTPUT.json`` — run saxpy under a trace observer and write a
  chrome://tracing / Perfetto JSON file;
- ``check [--stress] [--replay|--replay-smoke] [--sanitize]`` — run
  the schedule-validation subsystem: the mutant self-test, optionally
  the full config x seed stress sweep, optionally the fresh-vs-frozen
  differential replay sweep, and optionally the effect-inference
  soundness sweep (see docs/testing.md, docs/runtime.md "Freeze and
  replay", and docs/analysis.md "Sanitizer");
- ``lint [workloads...] [--json|--dot]`` — run the hflint static
  analyzer over the shipped flows (and, with ``--examples DIR`` or an
  auto-detected ``examples/`` directory, the example graphs); exits
  nonzero on error-severity findings (see docs/analysis.md);
- ``sanitize [workloads...] [--sweep N] [--json OUT]`` — run workloads
  under the hfsan runtime sanitizer and cross-check every observed
  span/captured-object access against the static effect inference;
  exits nonzero on any static/dynamic divergence (docs/analysis.md,
  "Sanitizer");
- ``profile {saxpy,timing,placement,sparsenn}`` — run a workload on
  the threaded runtime with metrics enabled and print its
  :class:`~repro.metrics.RunReport` (``--json`` for the stable
  schema-v1 document, ``--trace OUT.json`` for a chrome-trace of the
  same run; see docs/observability.md);
- ``chaos [--scenarios N] [--seed S] [--smoke] [--json OUT]`` — sweep
  seeded device-fault scenarios (allocation failures, kernel faults,
  stream stalls, device death, zero-GPU degradation) through the
  resilience layer and validate every recovery
  (see docs/resilience.md);
- ``soak [--scenarios N] [--seed S] [--smoke] [--json OUT]
  [--gateway [--workers N] [--kill-every K] [--gray]]`` — sweep seeded
  multi-tenant overload scenarios (bounded admission under
  block/reject/shed backpressure, priorities, deadlines, caller-side
  cancels, graceful drain) through the service layer, reconcile every
  submission outcome, and validate every trace (see docs/runtime.md,
  "Submission lifecycle"); with ``--gateway`` the same discipline runs
  against a pool of spawned worker processes, with SIGKILL chaos and a
  gateway-vs-single-process throughput comparison, with
  ``--gateway --gray`` the gray-failure sweep: recv-loop stalls that
  must breaker-eject and re-admit, hedged submissions, and a
  retry-budget exhaustion drill (docs/gateway.md), and with
  ``--gateway --crash`` the durability sweep: SIGKILL the *gateway*
  process mid-stream, recover a fresh one from the journal, and
  reconcile exactly-once settlement (docs/durability.md);
- ``fsck JOURNAL [--json] [--strict]`` — validate a durable submission
  journal read-only: checksums, sequence numbers, duplicate/orphan
  settles, torn tails; ``--strict`` also fails on unsettled entries
  (docs/durability.md);
- ``serve [--workers N] [--duration S] [--traffic] [--chaos]
  [--journal DIR]`` — bring up the multiprocess gateway, optionally
  write through a durable journal (recovering whatever a previous
  incarnation left unsettled), optionally self-drive frozen-replay
  traffic and inject seeded protocol chaos, print one status line per
  tick, then drain and exit; SIGTERM/SIGINT trigger the same graceful
  drain + journal flush instead of killing the process (the operator
  entry point; see docs/gateway.md and docs/durability.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} — Heteroflow reproduction (Huang & Lin)")
    print("subsystems:")
    print("  repro.core        task graphs + work-stealing CPU-GPU executor")
    print("  repro.gpu         simulated multi-GPU runtime (streams/events/pools)")
    print("  repro.sim         virtual-time machine model (scaling figures)")
    print("  repro.apps        timing correlation, detailed placement, sparse-NN")
    print("  repro.dist        distributed scheduling extension")
    print("  repro.baselines   sequential oracle + ablation schedulers")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.figures import ALL_FIGURES, fig6a_table, format_table

    names = args.names or list(ALL_FIGURES)
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_FIGURES)}", file=sys.stderr)
        return 2
    for name in names:
        if name == "fig6a" and args.views:
            table = fig6a_table(num_views=args.views)
        else:
            table = ALL_FIGURES[name]()
        print(format_table(name.upper(), table))
        print()
    return 0


def _build_saxpy():
    from repro.analysis.corpus import build_saxpy

    return build_saxpy()


def _cmd_saxpy(args: argparse.Namespace) -> int:
    from repro.core import Executor

    hf, x, y, n = _build_saxpy()
    with Executor(num_workers=args.workers, num_gpus=args.gpus) as ex:
        ex.run(hf).result()
    ok = y == [4] * n
    print(f"saxpy over {n} elements on {args.workers} workers / {args.gpus} GPUs: "
          f"{'OK' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def _cmd_dot(args: argparse.Namespace) -> int:
    if args.workload == "saxpy":
        hf, *_ = _build_saxpy()
    elif args.workload == "timing":
        from repro.apps.timing import build_timing_flow

        hf = build_timing_flow(num_views=2, num_gates=60, paths_per_view=8).graph
    elif args.workload == "placement":
        from repro.apps.placement import build_placement_flow

        hf = build_placement_flow(num_cells=40, iterations=2).graph
    else:
        from repro.apps.sparsenn import build_inference_flow

        hf = build_inference_flow(
            width=16, num_layers=2, batch_size=8, num_blocks=2, num_shards=2
        ).graph
    sys.stdout.write(hf.dump())
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from repro.sim import SimExecutor, paper_testbed
    from repro.sim.trace import render_gantt, summarize

    if args.workload == "timing":
        from repro.apps.timing import build_timing_flow

        flow = build_timing_flow(num_views=args.size or 8, num_gates=60, paths_per_view=8)
    elif args.workload == "placement":
        from repro.apps.placement import build_placement_flow

        flow = build_placement_flow(
            num_cells=40, iterations=args.size or 4, num_matchers=32, window_size=1
        )
    else:
        from repro.apps.sparsenn import build_inference_flow

        flow = build_inference_flow(
            width=32,
            num_layers=args.size or 6,
            batch_size=16,
            num_blocks=4,
            num_shards=2,
            paper_nnz_scale=1e4,
        )
    sim = SimExecutor(
        paper_testbed(args.cores, args.gpus), flow.cost_model, record_trace=True
    )
    rep = sim.run(flow.graph)
    print(summarize(rep.trace, rep.makespan))
    print()
    print(render_gantt(rep.trace, width=args.width, makespan=rep.makespan))
    print(f"\nmakespan: {rep.makespan:.3f}s on {args.cores} cores / {args.gpus} GPUs")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core import Executor, TraceObserver
    from repro.core.tracing import write_chrome_trace

    hf, x, y, n = _build_saxpy()
    obs = TraceObserver()
    with Executor(num_workers=2, num_gpus=2, observers=[obs]) as ex:
        ex.run(hf).result()
    write_chrome_trace(obs, args.output)
    print(f"wrote {len(obs.records)} events to {args.output} "
          f"(open in chrome://tracing or Perfetto)")
    return 0


def _parse_configs(spec: str):
    """Parse ``"1x1,2x2,4x2"`` into ``[(1, 1), (2, 2), (4, 2)]``."""
    configs = []
    for part in spec.split(","):
        part = part.strip().lower()
        if not part:
            continue
        try:
            workers, gpus = (int(v) for v in part.split("x"))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad config {part!r}: expected WORKERSxGPUS, e.g. 2x2"
            )
        if workers < 1 or gpus < 0:
            raise argparse.ArgumentTypeError(
                f"bad config {part!r}: need >=1 worker and >=0 GPUs"
            )
        configs.append((workers, gpus))
    if not configs:
        raise argparse.ArgumentTypeError("empty config list")
    return configs


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import run_mutant_selftest, run_stress

    failures = 0

    print("mutant self-test: validating a deliberately-buggy scheduler ...")
    selftest = run_mutant_selftest()
    mutant = selftest.reports["mutant"]
    reference = selftest.reports["reference"]
    if selftest.caught:
        print(f"  caught: {len(mutant.violations)} violation(s) flagged on the "
              f"mutant, 0 on the reference executor")
        for v in mutant.violations[:4]:
            print(f"    {v}")
    else:
        failures += 1
        print("  FAILED: the validator did not distinguish the buggy "
              "scheduler from the correct one")
        print(f"    mutant: {len(mutant.violations)} violation(s), "
              f"reference: {len(reference.violations)}")
        for v in reference.violations[:4]:
            print(f"    [reference] {v}")

    if args.stress:
        configs = args.configs or None
        n_cfg = len(configs) if configs else 3
        seeds = args.seeds if args.seeds is not None else 25
        print(f"\nstress sweep: {seeds} seed(s) x {n_cfg} config(s)"
              f"{' with fault injection' if args.faults else ''} ...")
        report = run_stress(
            seeds, configs, faults=args.faults, log=print
        )
        print(f"  total: {report.num_runs} run(s), "
              f"{report.num_allocs} allocation(s) / {report.num_frees} free(s) "
              f"audited, {len(report.violations)} violation(s)")
        if not report.ok:
            failures += 1
            for v in report.violations[:20]:
                print(f"    {v}")
            more = len(report.violations) - 20
            if more > 0:
                print(f"    ... and {more} more")

    if args.sanitize:
        from repro.check import run_sanitize_sweep

        seeds = args.seeds if args.seeds is not None else 25
        print(f"\nsanitize sweep: {seeds} seed(s), static effect "
              f"inference vs observed accesses ...")
        san_report = run_sanitize_sweep(seeds, log=print)
        if not san_report.ok:
            failures += 1
            for v in san_report.violations[:20]:
                print(f"    {v}")
            more = len(san_report.violations) - 20
            if more > 0:
                print(f"    ... and {more} more")

    if args.replay or args.replay_smoke:
        from repro.check import run_replay_check

        if args.replay_smoke:
            seeds, configs = 4, [(2, 0), (2, 2)]
        else:
            seeds = args.seeds if args.seeds is not None else 13
            configs = args.configs or None
        n_cfg = len(configs) if configs else 4
        print(f"\ndifferential replay sweep: {seeds} seed(s) x "
              f"{n_cfg} config(s), fresh vs frozen ...")
        replay_report = run_replay_check(seeds, configs, log=print)
        print(f"  total: {replay_report.num_scenarios} scenario(s), "
              f"{len(replay_report.violations)} violation(s)")
        if not replay_report.ok:
            failures += 1
            for v in replay_report.violations[:20]:
                print(f"    {v}")
            more = len(replay_report.violations) - 20
            if more > 0:
                print(f"    ... and {more} more")

    print(f"\ncheck: {'OK' if failures == 0 else 'FAILED'}")
    return 0 if failures == 0 else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience import run_chaos

    scenarios = 10 if args.smoke else args.scenarios
    print(f"chaos sweep: {scenarios} seeded fault scenario(s), "
          f"seed={args.seed} ...")
    report = run_chaos(scenarios, seed=args.seed, log=print)
    print(f"  total: {report.num_scenarios} scenario(s), "
          f"{report.num_completed} recovered, "
          f"{report.num_failed_as_expected} failed as expected, "
          f"{len(report.violations)} violation(s)")
    for key, val in sorted(report.counters.items()):
        print(f"    {key:<36} {val}")
    if not report.ok:
        for v in report.violations[:20]:
            print(f"    {v}")
        more = len(report.violations) - 20
        if more > 0:
            print(f"    ... and {more} more")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"wrote scenario report to {args.json}")
    print(f"\nchaos: {'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _cmd_gateway_soak(args: argparse.Namespace) -> int:
    from repro.gateway import run_gateway_soak

    scenarios = 6 if args.smoke else args.scenarios
    throughput = 40 if args.smoke else 200
    print(f"gateway soak sweep: {scenarios} serving scenario(s) against "
          f"{args.workers} worker process(es), seed={args.seed} ...")
    report = run_gateway_soak(
        scenarios,
        workers=args.workers,
        seed=args.seed,
        kill_every=args.kill_every,
        throughput_repeats=throughput,
        log=print,
    )
    totals = report.totals
    print(f"  total: {totals['submitted']} submitted = "
          f"{totals['completed']} completed + {totals['rejected']} rejected + "
          f"{totals['shed']} shed + {totals['deadline_exceeded']} deadline + "
          f"{totals['cancelled']} cancelled + {totals['failed']} failed + "
          f"{totals['worker_lost']} worker_lost; {totals['kills']} kill(s)")
    for key in ("gateway.submits", "gateway.settled", "gateway.cancels",
                "gateway.worker_deaths", "gateway.respawns",
                "gateway.replans"):
        print(f"    {key:<36} {report.gateway_counters.get(key, 0):.0f}")
    if report.throughput:
        t = report.throughput
        print(f"    throughput: gateway {t['gateway_runs_per_s']:.1f} runs/s "
              f"vs single-process {t['single_runs_per_s']:.1f} runs/s "
              f"(speedup {t['speedup']:.2f}x on "
              f"{report.to_dict()['cpu_count']} core(s))")
    if not report.ok:
        for v in report.violations[:20]:
            print(f"    {v}")
        more = len(report.violations) - 20
        if more > 0:
            print(f"    ... and {more} more")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"wrote gateway soak report to {args.json}")
    print(f"\ngateway soak: {'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _cmd_gateway_gray_soak(args: argparse.Namespace) -> int:
    from repro.gateway import run_gateway_gray_soak

    scenarios = 10 if args.smoke else args.scenarios
    print(f"gateway gray soak sweep: {scenarios} gray-failure "
          f"scenario(s) against {args.workers} worker process(es), "
          f"seed={args.seed} ...")
    report = run_gateway_gray_soak(
        scenarios,
        workers=args.workers,
        seed=args.seed,
        kill_every=args.kill_every,
        log=print,
    )
    totals = report.totals
    print(f"  total: {totals['submitted']} submitted = "
          f"{totals['completed']} completed + {totals['rejected']} rejected + "
          f"{totals['shed']} shed + {totals['deadline_exceeded']} deadline + "
          f"{totals['cancelled']} cancelled + {totals['failed']} failed + "
          f"{totals['worker_lost']} worker_lost; "
          f"{totals['stalls']} stall(s), {totals['kills']} kill(s), "
          f"{totals['hedged']} targeted hedge(s)")
    for key in ("gateway.submits", "gateway.settled",
                "gateway.worker_deaths", "gateway.respawns",
                "gateway.replans", "gateway.health.stalls",
                "gateway.breaker.opened", "gateway.breaker.closed",
                "gateway.breaker.rerouted", "gateway.hedge.launched",
                "gateway.hedge.wins", "gateway.hedge.losses",
                "gateway.hedge.dropped", "gateway.retry_budget.spent",
                "gateway.retry_budget.exhausted"):
        print(f"    {key:<36} {report.gateway_counters.get(key, 0):.0f}")
    d = report.budget_drill
    print(f"    budget drill: {d.get('worker_lost_budget', 0):.0f} "
          f"over-budget worker_lost, "
          f"{d.get('denied', 0):.0f} denial(s) counted")
    if not report.ok:
        for v in report.violations[:20]:
            print(f"    {v}")
        more = len(report.violations) - 20
        if more > 0:
            print(f"    ... and {more} more")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"wrote gateway gray soak report to {args.json}")
    print(f"\ngateway gray soak: {'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _cmd_gateway_crash_soak(args: argparse.Namespace) -> int:
    from repro.durability import run_gateway_crash_soak

    scenarios = 10 if args.smoke else args.scenarios
    print(f"gateway crash soak sweep: {scenarios} scenario(s), "
          f"{args.workers} shared worker process(es), seed={args.seed} "
          f"...")
    report = run_gateway_crash_soak(
        scenarios,
        workers=args.workers,
        seed=args.seed,
        journal_dir=args.journal_dir or None,
        log=print,
    )
    totals = report.totals
    print(f"  total: {totals['scenarios']} scenario(s) = "
          f"{totals['crash_cycles']} crash cycle(s) "
          f"({totals['kills']} gateway SIGKILL(s)) + "
          f"{totals['fault_injections']} journal fault(s) + "
          f"clean keyed traffic; {totals['submitted']} key(s) "
          f"submitted, {totals['dedup_hits']} dedup hit(s), "
          f"{totals['resubmitted']} recovered resubmission(s), "
          f"{totals['not_replayable']} settled not_replayable")
    for key in ("journal.appends", "journal.fsyncs", "journal.errors",
                "journal.dedup_hits", "journal.torn_truncations",
                "gateway.submits", "gateway.settled"):
        print(f"    {key:<36} "
              f"{report.gateway_counters.get(key, 0):.0f}")
    if not report.ok:
        for v in report.all_violations[:20]:
            print(f"    {v}")
        more = len(report.all_violations) - 20
        if more > 0:
            print(f"    ... and {more} more")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"wrote gateway crash soak report to {args.json}")
    print(f"\ngateway crash soak: {'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.durability import fsck

    report = fsck(args.journal)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    if not report.clean:
        return 1
    if args.strict and report.unsettled:
        return 1
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    if args.gateway and args.crash:
        return _cmd_gateway_crash_soak(args)
    if args.gateway and args.gray:
        return _cmd_gateway_gray_soak(args)
    if args.gateway:
        return _cmd_gateway_soak(args)
    from repro.service import run_soak

    scenarios = 6 if args.smoke else args.scenarios
    print(f"soak sweep: {scenarios} seeded overload scenario(s), "
          f"seed={args.seed} ...")
    report = run_soak(scenarios, seed=args.seed, log=print)
    totals = report.totals
    print(f"  total: {totals['submitted']} submitted = "
          f"{totals['rejected']} rejected + {totals['admitted']} admitted; "
          f"admitted = {totals['completed']} completed + "
          f"{totals['shed']} shed + "
          f"{totals['deadline_exceeded']} deadline + "
          f"{totals['cancelled']} cancelled + {totals['failed']} failed")
    for key, val in sorted(report.counters.items()):
        print(f"    {key:<36} {val}")
    wall = report.to_dict()["wall_latency_s"]
    submit = report.to_dict()["submit_latency_s"]
    print(f"    wall latency p50/p95/p99 (s):      "
          f"{wall['p50']:.4f} / {wall['p95']:.4f} / {wall['p99']:.4f}")
    print(f"    submit latency p50/p95/p99 (s):    "
          f"{submit['p50']:.4f} / {submit['p95']:.4f} / {submit['p99']:.4f}")
    if not report.ok:
        for v in report.violations[:20]:
            print(f"    {v}")
        more = len(report.violations) - 20
        if more > 0:
            print(f"    ... and {more} more")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"wrote soak report to {args.json}")
    print(f"\nsoak: {'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal as _signal

    from repro.gateway import BurstSpec, ChaosProfile, Gateway, WorkerConfig

    async def session() -> int:
        chaos = ChaosProfile.mild(seed=0) if args.chaos else None
        config = WorkerConfig(
            threads=args.threads, gpus=args.gpus, chaos=chaos
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()

        def _request_stop(signame: str) -> None:
            # idempotent: a second signal while draining is ignored
            # rather than killing the process with journal buffers hot
            if not stop.is_set():
                print(f"  {signame}: graceful drain requested ...")
            stop.set()

        installed = []
        for sig in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, _request_stop, _signal.Signals(sig).name
                )
                installed.append(sig)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop: fall back to KeyboardInterrupt
        try:
            async with Gateway(
                args.workers,
                worker=config,
                journal=args.journal or None,
            ) as gw:
                print(f"gateway up: {args.workers} worker(s), each "
                      f"{args.threads} thread(s) / {args.gpus} simulated GPU(s)"
                      + (" — protocol chaos ON" if chaos else "")
                      + " — pids "
                      + ", ".join(str(h.proc.pid) for h in gw._workers))
                if gw.journal is not None:
                    rec = await gw.recover()
                    counts = gw.journal.counts()
                    print(f"  journal {args.journal}: "
                          f"{counts['entries']} entr(ies) "
                          f"({counts['unsettled']} unsettled), "
                          f"{rec.frozen_reshipped} frozen re-shipped, "
                          f"{rec.resubmitted} resubmitted, "
                          f"{rec.not_replayable} settled not_replayable")
                fh = await gw.freeze(BurstSpec(width=16))
                outstanding: list = []
                deadline = loop.time() + args.duration
                while loop.time() < deadline and not stop.is_set():
                    if args.traffic:
                        outstanding.extend(
                            gw.submit(fh) for _ in range(args.rate)
                        )
                        outstanding = [s for s in outstanding if not s.done()]
                    snap = gw.snapshot()
                    print(f"  alive={snap['gateway.workers_alive']:.0f}"
                          f"/{args.workers} "
                          f"inflight={snap['gateway.inflight']:.0f} "
                          f"submits={snap['gateway.submits']:.0f} "
                          f"settled={snap['gateway.settled']:.0f} "
                          f"stalled={snap['gateway.health.stalled']:.0f} "
                          f"breaker_open={snap['gateway.breaker.open']:.0f} "
                          f"budget={snap['gateway.retry_budget.tokens']:.1f} "
                          f"deaths={snap['gateway.worker_deaths']:.0f} "
                          f"respawns={snap['gateway.respawns']:.0f}")
                    try:
                        await asyncio.wait_for(
                            stop.wait(), timeout=args.tick
                        )
                    except asyncio.TimeoutError:
                        pass
                print("draining ...")
                ok = await gw.drain(timeout=30.0)
                if gw.journal is not None:
                    gw.journal.flush()
                    counts = gw.journal.counts()
                    print(f"  journal flushed: {counts['entries']} "
                          f"entr(ies), {counts['unsettled']} unsettled "
                          f"(verify with: python -m repro fsck "
                          f"{args.journal})")
                snap = gw.snapshot()
                print(f"served {snap['gateway.submits']:.0f} submission(s), "
                      f"{snap['gateway.settled']:.0f} settled, "
                      f"{snap['gateway.worker_deaths']:.0f} worker death(s)")
                print(f"\nserve: {'OK' if ok else 'DRAIN TIMED OUT'}")
                return 0 if ok else 1
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)

    return asyncio.run(session())


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import Severity, lint, render_dot, render_json, render_text
    from repro.analysis.corpus import (
        BUILTIN_CORPUS,
        find_examples_dir,
        iter_builtin,
        iter_example_graphs,
    )

    unknown = [w for w in args.workloads if w not in BUILTIN_CORPUS]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(BUILTIN_CORPUS)}", file=sys.stderr)
        return 2

    targets = list(iter_builtin(args.workloads or None))
    if not args.workloads:
        examples = args.examples or find_examples_dir()
        if examples:
            targets.extend(iter_example_graphs(examples))
    elif args.examples:
        targets.extend(iter_example_graphs(args.examples))

    reports = [
        lint(graph, gpu_memory_bytes=args.gpu_memory) for _, graph in targets
    ]
    if args.json:
        print(render_json(reports))
    elif args.dot:
        for (_, graph), report in zip(targets, reports):
            sys.stdout.write(render_dot(report, graph))
    else:
        for report in reports:
            print(render_text(report, verbose=args.verbose))
    gate = Severity.WARNING if args.strict else Severity.ERROR
    flagged = sum(len(r.at_least(gate)) for r in reports)
    if not args.json and not args.dot:
        print(
            f"lint: {len(reports)} graph(s), "
            f"{sum(len(r.diagnostics) for r in reports)} finding(s), "
            f"{flagged} at gate severity -> "
            f"{'FAILED' if flagged else 'OK'}"
        )
    return 1 if flagged else 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.corpus import BUILTIN_CORPUS
    from repro.core import Executor

    unknown = [w for w in args.workloads if w not in BUILTIN_CORPUS]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(BUILTIN_CORPUS)}", file=sys.stderr)
        return 2

    names = args.workloads or list(BUILTIN_CORPUS)
    failures = 0
    doc = {"schema": "repro.sanitize-cli/1", "workloads": {}, "sweep": None}
    with Executor(num_workers=args.workers, num_gpus=args.gpus) as ex:
        for name in names:
            graph = BUILTIN_CORPUS[name]()
            fut = ex.run(graph, sanitize=True)
            fut.result()
            rep = fut.sanitize_report
            doc["workloads"][name] = rep.as_dict()
            status = "OK" if rep.ok else "DIVERGED"
            print(f"{name}: {rep.checked_tasks} task(s) checked, "
                  f"{rep.confident_tasks} confident, "
                  f"{rep.proxied_objects} object(s) proxied, "
                  f"{len(rep.divergences)} divergence(s) -> {status}")
            for d in rep.divergences[:8]:
                print(f"    {d.kind}: {d.task} / {d.root} ({d.detail})")
            if not rep.ok:
                failures += 1

    if args.sweep:
        from repro.check import run_sanitize_sweep

        print(f"\nsanitize sweep: {args.sweep} seeded graph(s) ...")
        sweep = run_sanitize_sweep(args.sweep, log=print)
        doc["sweep"] = sweep.as_dict()
        if not sweep.ok:
            failures += 1
            for v in sweep.violations[:20]:
                print(f"    {v}")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote sanitize report to {args.json}")
    print(f"\nsanitize: {'OK' if failures == 0 else 'FAILED'}")
    return 0 if failures == 0 else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.analysis.corpus import BUILTIN_CORPUS
    from repro.core import Executor, TraceObserver
    from repro.metrics import render_report_text

    hf = BUILTIN_CORPUS[args.workload]()
    obs = TraceObserver() if args.trace else None
    with Executor(
        num_workers=args.workers,
        num_gpus=args.gpus,
        observers=[obs] if obs else (),
    ) as ex:
        fut = ex.run(hf, metrics=True)
        fut.result()
    report = fut.run_report
    report.workload = args.workload
    if args.trace:
        from repro.core.tracing import write_chrome_trace

        write_chrome_trace(obs, args.trace)
        print(
            f"wrote {len(obs.records)} events to {args.trace} "
            f"(open in chrome://tracing or Perfetto)",
            file=sys.stderr,
        )
    if args.json:
        print(report.to_json())
    else:
        print(render_report_text(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Heteroflow reproduction: tools and figure regeneration",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("info", help="version and subsystem inventory")

    figures = sub.add_parser("figures", help="regenerate evaluation tables")
    figures.add_argument("names", nargs="*", help="fig4 fig6a fig6b fig9a fig9b")
    figures.add_argument(
        "--views", type=int, default=0,
        help="view count for fig6a (default 1024; smaller is faster)",
    )

    saxpy = sub.add_parser("saxpy", help="run Listing 1 on the threaded runtime")
    saxpy.add_argument("--workers", type=int, default=4)
    saxpy.add_argument("--gpus", type=int, default=2)

    dot = sub.add_parser("dot", help="print a workload graph as DOT")
    dot.add_argument(
        "workload", choices=["saxpy", "timing", "placement", "sparsenn"]
    )

    trace = sub.add_parser("trace", help="write a chrome-trace of a saxpy run")
    trace.add_argument("output", help="output .json path")

    gantt = sub.add_parser(
        "gantt", help="simulate a workload and render an ASCII Gantt chart"
    )
    gantt.add_argument("workload", choices=["timing", "placement", "sparsenn"])
    gantt.add_argument("--cores", type=int, default=8)
    gantt.add_argument("--gpus", type=int, default=2)
    gantt.add_argument("--size", type=int, default=0, help="views/iterations/layers")
    gantt.add_argument("--width", type=int, default=100)

    check = sub.add_parser(
        "check", help="run the schedule/allocator invariant checker"
    )
    check.add_argument(
        "--stress", action="store_true",
        help="sweep random graphs over worker/GPU configs and validate "
             "every trace",
    )
    check.add_argument(
        "--seeds", type=int, default=None,
        help="random graphs per configuration (default: 25 for "
             "--stress, 13 for --replay)",
    )
    check.add_argument(
        "--configs", type=_parse_configs, default=None, metavar="WxG,...",
        help="worker/GPU configurations, e.g. 1x1,2x2,4x2 (the default)",
    )
    check.add_argument(
        "--faults", action="store_true",
        help="also run fault-injection and cancellation variants",
    )
    check.add_argument(
        "--replay", action="store_true",
        help="differential replay sweep: every generated graph runs "
             "fresh and frozen-replayed; traces, oracles, and results "
             "must agree (docs/runtime.md, \"Freeze and replay\")",
    )
    check.add_argument(
        "--replay-smoke", action="store_true",
        help="quick 8-scenario differential replay sweep for CI",
    )
    check.add_argument(
        "--sanitize", action="store_true",
        help="sanitizer soundness sweep: run generated graphs under "
             "hfsan and require zero static/dynamic divergence "
             "(docs/analysis.md, \"Sanitizer\")",
    )

    chaos = sub.add_parser(
        "chaos",
        help="sweep seeded device-fault scenarios through the "
             "resilience layer",
    )
    chaos.add_argument(
        "--scenarios", type=int, default=50,
        help="number of fault scenarios (default 50)",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="sweep seed; every scenario derives deterministically "
             "from it (default 0)",
    )
    chaos.add_argument(
        "--smoke", action="store_true",
        help="quick 10-scenario sweep for CI smoke jobs",
    )
    chaos.add_argument(
        "--json", default="", metavar="OUT.json",
        help="also write the full scenario report as JSON",
    )

    soak = sub.add_parser(
        "soak",
        help="sweep seeded multi-tenant overload scenarios through "
             "the service layer",
    )
    soak.add_argument(
        "--scenarios", type=int, default=50,
        help="number of overload scenarios (default 50)",
    )
    soak.add_argument(
        "--seed", type=int, default=0,
        help="sweep seed; every scenario derives deterministically "
             "from it (default 0)",
    )
    soak.add_argument(
        "--smoke", action="store_true",
        help="quick 6-scenario sweep for CI smoke jobs",
    )
    soak.add_argument(
        "--json", default="", metavar="OUT.json",
        help="also write the full soak report as JSON "
             "(schema repro.soak-report/1)",
    )
    soak.add_argument(
        "--gateway", action="store_true",
        help="run the sweep against the multiprocess gateway instead "
             "of one in-process executor: worker-process pool, SIGKILL "
             "chaos, throughput comparison (schema "
             "repro.gateway-soak-report/1; docs/gateway.md)",
    )
    soak.add_argument(
        "--workers", type=int, default=4,
        help="gateway worker processes for --gateway (default 4)",
    )
    soak.add_argument(
        "--kill-every", type=int, default=5, metavar="K",
        help="SIGKILL a worker every K-th --gateway scenario "
             "(0 disables chaos; default 5)",
    )
    soak.add_argument(
        "--gray", action="store_true",
        help="with --gateway: the gray-failure sweep — recv-loop "
             "stalls that must breaker-eject and re-admit (never "
             "kill), hedged submissions, and a retry-budget "
             "exhaustion drill (schema repro.gateway-gray-soak-"
             "report/1; docs/gateway.md)",
    )
    soak.add_argument(
        "--crash", action="store_true",
        help="with --gateway: the durability sweep — SIGKILL the "
             "gateway process mid-stream, recover a fresh one from "
             "the journal, reconcile exactly-once settlement, and "
             "inject seeded journal faults (schema "
             "repro.gateway-crash-soak-report/1; docs/durability.md)",
    )
    soak.add_argument(
        "--journal-dir", default="", metavar="DIR",
        help="with --gateway --crash: keep the per-scenario journals "
             "and recovery results in DIR for post-mortem (default: a "
             "temp directory)",
    )

    fsck_p = sub.add_parser(
        "fsck",
        help="validate a durable submission journal read-only",
    )
    fsck_p.add_argument(
        "journal", help="journal directory (as passed to --journal)"
    )
    fsck_p.add_argument(
        "--json", action="store_true",
        help="emit the structured report instead of text",
    )
    fsck_p.add_argument(
        "--strict", action="store_true",
        help="also fail (exit 1) when entries are unsettled, not only "
             "on corruption",
    )

    serve = sub.add_parser(
        "serve",
        help="bring up the multiprocess gateway and report status "
             "until drained",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker processes (default 2)",
    )
    serve.add_argument("--threads", type=int, default=2,
                       help="executor threads per worker (default 2)")
    serve.add_argument("--gpus", type=int, default=1,
                       help="simulated GPUs per worker (default 1)")
    serve.add_argument(
        "--duration", type=float, default=3.0,
        help="seconds to serve before draining (default 3)",
    )
    serve.add_argument(
        "--traffic", action="store_true",
        help="self-drive frozen burst replays while serving",
    )
    serve.add_argument(
        "--rate", type=int, default=4,
        help="submissions per tick with --traffic (default 4)",
    )
    serve.add_argument(
        "--tick", type=float, default=0.5,
        help="status-line interval in seconds (default 0.5)",
    )
    serve.add_argument(
        "--chaos", action="store_true",
        help="inject seeded protocol chaos into every worker (message "
             "delay/drop, recv-loop stalls, submit spins) to exercise "
             "health scoring and breakers live (docs/gateway.md)",
    )
    serve.add_argument(
        "--journal", default="", metavar="DIR",
        help="write every submission through a durable journal in DIR "
             "and recover whatever a previous incarnation left "
             "unsettled; SIGTERM/SIGINT drain gracefully and flush it "
             "(docs/durability.md)",
    )

    lint = sub.add_parser(
        "lint", help="statically analyze task graphs with hflint"
    )
    lint.add_argument(
        "workloads", nargs="*",
        help="builtin graphs to lint: saxpy timing placement sparsenn "
             "(default: all, plus any auto-detected examples/)",
    )
    lint.add_argument(
        "--examples", default="", metavar="DIR",
        help="also lint example scripts exposing build() in DIR",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit the stable JSON report (docs/analysis.md)",
    )
    lint.add_argument(
        "--dot", action="store_true",
        help="emit DOT graphs with findings overlaid",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too, not only errors",
    )
    lint.add_argument(
        "--verbose", action="store_true",
        help="show structured diagnostic details in text output",
    )
    lint.add_argument(
        "--gpu-memory", type=int, default=None, metavar="BYTES",
        help="per-device pool size for the HF020 capacity prediction "
             "(default: the runtime default of 64 MiB)",
    )

    sanitize = sub.add_parser(
        "sanitize",
        help="run workloads under the hfsan runtime sanitizer",
    )
    sanitize.add_argument(
        "workloads", nargs="*",
        help="builtin graphs to sanitize: saxpy timing placement "
             "sparsenn (default: all)",
    )
    sanitize.add_argument("--workers", type=int, default=4)
    sanitize.add_argument("--gpus", type=int, default=2)
    sanitize.add_argument(
        "--sweep", type=int, default=0, metavar="N",
        help="also run N seeded random graphs sanitized "
             "(schema repro.sanitize-sweep/1)",
    )
    sanitize.add_argument(
        "--json", default="", metavar="OUT.json",
        help="also write the full sanitize report as JSON",
    )

    profile = sub.add_parser(
        "profile",
        help="run a workload with metrics and print its RunReport",
    )
    profile.add_argument(
        "workload", choices=["saxpy", "timing", "placement", "sparsenn"]
    )
    profile.add_argument("--workers", type=int, default=2)
    profile.add_argument("--gpus", type=int, default=2)
    profile.add_argument(
        "--json", action="store_true",
        help="emit the stable schema-v1 RunReport JSON "
             "(docs/observability.md)",
    )
    profile.add_argument(
        "--trace", default="", metavar="OUT.json",
        help="also write a chrome-trace of the profiled run",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "figures": _cmd_figures,
        "saxpy": _cmd_saxpy,
        "dot": _cmd_dot,
        "trace": _cmd_trace,
        "gantt": _cmd_gantt,
        "check": _cmd_check,
        "chaos": _cmd_chaos,
        "soak": _cmd_soak,
        "fsck": _cmd_fsck,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
        "sanitize": _cmd_sanitize,
        "profile": _cmd_profile,
    }
    if args.command is None:
        parser.print_help()
        return 2
    return handlers[args.command](args)
