"""Fault-tolerant execution: policies, fault injection, degradation.

Public surface:

- :class:`RetryPolicy` / :class:`ResiliencePolicy` — per-task and
  per-run retry/timeout policies (``task.retry``, ``task.timeout``,
  ``Executor.run(..., policy=...)``);
- :class:`CircuitBreaker` / :class:`RetryBudget` — shared gray-failure
  primitives (closed/open/half-open breaker with seeded probe timing,
  token-bucket retry budget) used by the gateway's worker health layer
  (docs/gateway.md);
- :class:`FaultProfile` — seeded device fault plans, armed via
  ``Device.configure_faults``;
- :func:`run_chaos` — the seeded chaos sweep behind
  ``python -m repro chaos`` (imported lazily: it drives the executor,
  which itself imports this package).

See docs/resilience.md for the full model.
"""

from __future__ import annotations

from repro.resilience.breaker import (
    BREAKER_STATES,
    CircuitBreaker,
    RetryBudget,
)
from repro.resilience.faults import FaultProfile, FaultState
from repro.resilience.policy import (
    ResiliencePolicy,
    RetryDelay,
    RetryPolicy,
    normalize_policy,
)

__all__ = [
    "RetryPolicy",
    "RetryDelay",
    "ResiliencePolicy",
    "normalize_policy",
    "BREAKER_STATES",
    "CircuitBreaker",
    "RetryBudget",
    "FaultProfile",
    "FaultState",
    "ChaosReport",
    "run_chaos",
]


def __getattr__(name: str):
    if name in ("run_chaos", "ChaosReport"):
        from repro.resilience import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
