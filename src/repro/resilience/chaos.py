"""Chaos harness: seeded fault-scenario sweeps over the resilience layer.

Each scenario builds a seeded random Heteroflow graph
(:mod:`repro.check.generator`), arms one fault class on the simulated
devices (:class:`~repro.resilience.FaultProfile`), runs the graph under
a real executor, and checks the contract of docs/resilience.md:

- **alloc** — the first 1-2 buddy-pool allocations fail; a run-level
  :class:`~repro.resilience.RetryPolicy` must absorb them and the run
  must complete.
- **kernel** — a one-shot kernel fault on every device; retries must
  recover it.
- **stall** — one stream op hangs forever; the per-run timeout must
  fire, the stream must be quarantined, and the retried task must
  complete on a fresh stream.
- **device** — one of two GPUs dies mid-run; the executor must
  re-place stranded groups onto the survivor, replay lost spans, and
  complete.
- **degrade** — the only GPU dies.  With host fallbacks registered the
  run must complete on the CPU; without them it must fail with a
  structured :class:`~repro.errors.TaskFailedError` (alternating per
  degrade scenario).

Every completed scenario is cross-checked by the schedule validator
(exact-once must hold across retries and replays) and by the
generator's host-side oracle — the recovered results must be
bit-identical to a fault-free run.  Failed scenarios must still leave
a partially-valid trace.  Exposed via ``python -m repro chaos``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.check.generator import generate_graph
from repro.check.validate import validate_schedule
from repro.core.executor import Executor
from repro.core.observer import TraceObserver
from repro.errors import TaskFailedError
from repro.resilience.faults import FaultProfile
from repro.resilience.policy import ResiliencePolicy, RetryPolicy
from repro.utils.rng import derive_seed

#: schema identifier of the serialized report; bump on layout changes
CHAOS_REPORT_SCHEMA = "repro.chaos-report/1"

#: fault classes, cycled over the scenario index
KINDS = ("alloc", "kernel", "stall", "device", "degrade")

#: per-scenario deadline — a hang is itself a failed scenario
_RESULT_TIMEOUT = 60.0

#: injected-stall scenarios use this per-run task deadline (seconds)
_STALL_TIMEOUT = 0.5

#: resilience counters aggregated across the sweep
_COUNTER_KEYS = (
    "resilience.retries",
    "resilience.timeouts",
    "resilience.exhausted",
    "resilience.device_failures",
    "resilience.streams_quarantined",
    "resilience.replayed_tasks",
    "resilience.fallback_tasks",
    "resilience.degraded_topologies",
)


@dataclass
class ScenarioOutcome:
    """One executed fault scenario."""

    index: int
    kind: str
    seed: int
    workers: int
    gpus: int
    num_nodes: int
    num_records: int = 0
    expect_failure: bool = False
    completed: bool = False
    error: str = ""
    num_events: int = 0
    violations: List[str] = field(default_factory=list)
    #: this scenario's ``resilience.*`` counter snapshot
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "seed": self.seed,
            "workers": self.workers,
            "gpus": self.gpus,
            "num_nodes": self.num_nodes,
            "num_records": self.num_records,
            "expect_failure": self.expect_failure,
            "completed": self.completed,
            "error": self.error,
            "num_events": self.num_events,
            "violations": list(self.violations),
            "counters": dict(sorted(self.counters.items())),
        }


@dataclass
class ChaosReport:
    """Aggregated outcome of one chaos sweep."""

    seed: int
    scenarios: List[ScenarioOutcome] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios)

    @property
    def num_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def num_completed(self) -> int:
        return sum(1 for s in self.scenarios if s.completed)

    @property
    def num_failed_as_expected(self) -> int:
        return sum(
            1 for s in self.scenarios if s.expect_failure and not s.completed
        )

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for s in self.scenarios:
            out.extend(
                f"[#{s.index} {s.kind} seed={s.seed}] {v}"
                for v in s.violations
            )
        return out

    def to_dict(self) -> dict:
        return {
            "schema": CHAOS_REPORT_SCHEMA,
            "seed": self.seed,
            "num_scenarios": self.num_scenarios,
            "num_completed": self.num_completed,
            "num_failed_as_expected": self.num_failed_as_expected,
            "ok": self.ok,
            "counters": dict(sorted(self.counters.items())),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def _profile_for(kind: str, rng: random.Random) -> FaultProfile:
    if kind == "alloc":
        return FaultProfile(alloc_failures=rng.randint(1, 2))
    if kind == "kernel":
        return FaultProfile(kernel_fault_at=rng.randint(1, 2))
    if kind == "stall":
        return FaultProfile(stall_at_op=rng.randint(1, 3))
    if kind == "device":
        return FaultProfile(die_at_op=rng.randint(1, 4))
    assert kind == "degrade"
    return FaultProfile(die_at_op=rng.randint(1, 3))


def run_scenario(index: int, seed: int = 0) -> ScenarioOutcome:
    """Run chaos scenario *index* of the sweep seeded with *seed*.

    Fully deterministic given ``(index, seed)``: the graph shape, the
    fault profile, the device RNGs, and the retry jitter all derive
    from one blake2b child seed, so a red scenario reproduces from the
    two integers in its report line alone.
    """
    sseed = derive_seed(seed, "chaos", index)
    rng = random.Random(sseed)
    kind = KINDS[index % len(KINDS)]
    workers = rng.choice((1, 2, 4))
    if kind == "device":
        gpus = 2
    elif kind == "degrade":
        gpus = 1
    else:
        gpus = rng.choice((1, 2))
    # alternate degrade scenarios drop the fallbacks: those must fail
    # with a structured TaskFailedError instead of completing
    fallbacks = not (kind == "degrade" and (index // len(KINDS)) % 2 == 1)
    graph_seed = sseed % (1 << 31)
    gen = generate_graph(graph_seed, num_gpus=gpus, fallbacks=fallbacks)
    outcome = ScenarioOutcome(
        index=index,
        kind=kind,
        seed=graph_seed,
        workers=workers,
        gpus=gpus,
        num_nodes=gen.num_nodes,
        expect_failure=not fallbacks,
    )

    profile = _profile_for(kind, rng)
    if kind in ("device", "degrade"):
        victims = [rng.randrange(gpus)] if kind == "device" else [0]
    elif kind == "stall":
        victims = [0]
    else:
        # placement decides which GPU runs what; arm them all so the
        # fault fires regardless
        victims = list(range(gpus))

    policy: Optional[object] = None
    if kind in ("alloc", "kernel"):
        policy = RetryPolicy(max_attempts=4, base_delay=0.0, seed=graph_seed)
    elif kind == "stall":
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=4, base_delay=0.0, seed=graph_seed),
            timeout=_STALL_TIMEOUT,
        )

    snapshot: Dict[str, object] = {}
    obs = TraceObserver()
    ex = Executor(
        num_workers=workers, num_gpus=gpus, observers=[obs], seed=graph_seed
    )
    try:
        for ordinal in victims:
            ex.gpu_runtime.device(ordinal).configure_faults(
                profile, seed=graph_seed
            )
        fut = ex.run(gen.graph, metrics=True, policy=policy)
        try:
            fut.result(timeout=_RESULT_TIMEOUT)
            outcome.completed = True
            if outcome.expect_failure:
                outcome.violations.append(
                    "no-fallback degradation scenario completed; expected "
                    "TaskFailedError"
                )
        except TaskFailedError as exc:
            outcome.error = repr(exc)
            if not outcome.expect_failure:
                outcome.violations.append(
                    f"scenario should have recovered, got {exc!r}"
                )
        except Exception as exc:  # noqa: BLE001 - harness boundary
            # anything but a structured TaskFailedError is a contract
            # violation, whatever the scenario expected
            outcome.error = repr(exc)
            outcome.violations.append(
                f"unstructured failure escaped the resilience layer: {exc!r}"
            )
        report = getattr(fut, "run_report", None)
        if report is not None:
            outcome.num_events = len(report.events)
        schedule = validate_schedule(
            gen.graph,
            obs.records,
            passes=1,
            num_gpus=gpus,
            allow_partial=not outcome.completed,
        )
        outcome.num_records = schedule.num_records
        outcome.violations.extend(str(v) for v in schedule.violations)
        if outcome.completed:
            # recovered results must be bit-identical to a fault-free
            # run: the oracle replays the exact chain arithmetic
            outcome.violations.extend(gen.verify(passes=1))
        snapshot = ex.metrics.snapshot()
    finally:
        ex.shutdown()
    outcome.counters = {
        k: snapshot[k] for k in _COUNTER_KEYS  # type: ignore[misc]
        if isinstance(snapshot.get(k), int)
    }
    return outcome


def run_chaos(
    scenarios: int = 50,
    *,
    seed: int = 0,
    log: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Sweep *scenarios* seeded fault scenarios; returns a report.

    The sweep never raises on violations — the caller decides (the CLI
    exits nonzero, tests assert on :attr:`ChaosReport.ok`).
    """
    report = ChaosReport(seed=seed)
    for i in range(scenarios):
        outcome = run_scenario(i, seed)
        for key, val in outcome.counters.items():
            report.counters[key] = report.counters.get(key, 0) + val
        report.scenarios.append(outcome)
        if log is not None:
            state = (
                "ok" if outcome.ok and outcome.completed
                else "failed-as-expected" if outcome.ok
                else "VIOLATION"
            )
            log(
                f"  #{outcome.index:>3} {outcome.kind:<8} "
                f"seed={outcome.seed:<11} {outcome.workers}w x "
                f"{outcome.gpus}g  {outcome.num_records:>3} records  "
                f"{state}"
            )
    return report
