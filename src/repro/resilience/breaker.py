"""Shared gray-failure primitives: circuit breaker + retry budget.

Dead components are easy — a process that exits or a device that
raises is detected and replaced (docs/resilience.md, docs/gateway.md).
*Gray* failures are the production-hard case: a component that is
alive but stalled, slow, or flaky keeps absorbing work, and naive
unconditional retries turn one sick component into a cluster-wide
retry storm.  This module holds the two primitives every tier reuses:

- :class:`CircuitBreaker` — the classic closed → open → half-open
  state machine.  Consecutive failures trip it open; after a
  *deterministic, seeded* cooldown (jittered via
  :func:`repro.utils.rng.derive_seed`, so two runs with the same seed
  probe at the same offsets) it admits probes in half-open; enough
  probe successes close it, one probe failure re-opens it with an
  escalated (capped) cooldown.  The breaker never kills anything — it
  only answers "should new work route here?";
- :class:`RetryBudget` — a token bucket capping how much replayed /
  rerouted work a tier may generate.  Every retry *spends* a token;
  every successful settlement *refills* a fraction.  Under correlated
  failure the bucket empties and over-budget work fails fast with a
  structured reason instead of amplifying load.

Both are clock-injectable (``clock=``) so state-machine tests are
deterministic, and thread-safe (one small lock each — these sit on
control paths, not hot paths).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import ExecutorError
from repro.utils.rng import derive_seed

#: jitter resolution for the deterministic cooldown spread
_JITTER_STEPS = 1_000_000

#: the three breaker states
BREAKER_STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """Closed → open → half-open breaker with seeded probe timing.

    ``record_failure()`` and ``record_success()`` feed the state
    machine; :meth:`allow` answers whether new work may route through
    (and performs the open → half-open transition once the cooldown
    deadline passes).  Cooldowns escalate ``cooldown * backoff**(n-1)``
    per consecutive trip, capped at ``max_cooldown``, and are spread by
    a deterministic ±``jitter`` fraction derived from ``seed`` and the
    trip ordinal — no wall-clock or global RNG, so transition timing is
    reproducible under a fake clock.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        backoff: float = 2.0,
        max_cooldown: float = 30.0,
        probe_successes: int = 2,
        jitter: float = 0.1,
        seed: int = 0,
        name: str = "",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ExecutorError("breaker needs failure_threshold >= 1")
        if cooldown < 0 or max_cooldown < 0:
            raise ExecutorError("breaker cooldowns must be non-negative")
        if backoff < 1.0:
            raise ExecutorError("breaker backoff must be >= 1")
        if probe_successes < 1:
            raise ExecutorError("breaker needs probe_successes >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ExecutorError("breaker jitter must be in [0, 1)")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.backoff = backoff
        self.max_cooldown = max_cooldown
        self.probe_successes = probe_successes
        self.jitter = jitter
        self.seed = seed
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0          # consecutive failures while closed
        self._probes_ok = 0         # successes while half-open
        self._trips = 0             # consecutive trips (cooldown escalation)
        self._reopen_at = 0.0       # deadline of the current cooldown
        self.opened_total = 0       # lifetime trips (metrics)
        self.closed_total = 0       # lifetime recoveries (metrics)
        self.last_cooldown = 0.0    # seconds of the most recent cooldown

    # -- state ---------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing open → half-open if the cooldown
        deadline has passed (read-only peek; same rule as allow())."""
        with self._lock:
            self._advance(self._clock())
            return self._state

    @property
    def routable(self) -> bool:
        """True when ordinary (non-probe) work may route through."""
        return self.state == "closed"

    def remaining_cooldown(self, now: Optional[float] = None) -> float:
        """Seconds until the open breaker admits probes (0 otherwise)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            t = self._clock() if now is None else now
            return max(0.0, self._reopen_at - t)

    def _advance(self, now: float) -> None:
        if self._state == "open" and now >= self._reopen_at:
            self._state = "half_open"
            self._probes_ok = 0

    # -- transitions ---------------------------------------------------
    def allow(self, now: Optional[float] = None) -> bool:
        """May a unit of work (or a probe) pass right now?

        Closed: always.  Open: only once the cooldown deadline passes,
        which transitions to half-open.  Half-open: yes — callers in
        half-open should send *probes* and feed the verdict back via
        record_success / record_failure.
        """
        with self._lock:
            t = self._clock() if now is None else now
            self._advance(t)
            return self._state != "open"

    def record_success(self, now: Optional[float] = None) -> None:
        """One unit of work (or probe) succeeded."""
        with self._lock:
            t = self._clock() if now is None else now
            self._advance(t)
            if self._state == "closed":
                self._failures = 0
            elif self._state == "half_open":
                self._probes_ok += 1
                if self._probes_ok >= self.probe_successes:
                    self._state = "closed"
                    self._failures = 0
                    self._trips = 0
                    self.closed_total += 1
            # open: a stale success from before the trip — ignore

    def record_failure(self, now: Optional[float] = None) -> None:
        """One unit of work (or probe) failed / looked sick."""
        with self._lock:
            t = self._clock() if now is None else now
            self._advance(t)
            if self._state == "closed":
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._trip(t)
            elif self._state == "half_open":
                self._trip(t)
            # open: already tripped; the cooldown clock keeps running

    def _trip(self, now: float) -> None:
        self._trips += 1
        self.opened_total += 1
        self._state = "open"
        self._failures = 0
        base = min(
            self.cooldown * self.backoff ** (self._trips - 1),
            self.max_cooldown,
        )
        if self.jitter > 0:
            u = (
                derive_seed(self.seed, "probe", self.name, self._trips)
                % _JITTER_STEPS
            ) / _JITTER_STEPS
            base *= 1.0 + self.jitter * (2.0 * u - 1.0)
        self.last_cooldown = base
        self._reopen_at = now + base

    def reset(self) -> None:
        """Force-close (a replacement component took the slot)."""
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probes_ok = 0
            self._trips = 0
            self._reopen_at = 0.0


class RetryBudget:
    """Token bucket bounding replayed / rerouted work.

    Starts with ``initial`` tokens (default: full ``capacity``).  Each
    retry-shaped action calls :meth:`try_spend`; each successful
    settlement calls :meth:`record_success`, refilling
    ``refill_per_success`` tokens up to ``capacity``.  When the bucket
    is empty, ``try_spend`` returns False and the caller must settle
    the work with a structured over-budget reason instead of retrying —
    correlated failure then degrades to fast failures, never to a
    retry storm.
    """

    def __init__(
        self,
        capacity: float = 16.0,
        *,
        initial: Optional[float] = None,
        refill_per_success: float = 0.5,
    ) -> None:
        if capacity <= 0:
            raise ExecutorError("retry budget needs capacity > 0")
        if refill_per_success < 0:
            raise ExecutorError("retry budget refill must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_success = float(refill_per_success)
        self._tokens = self.capacity if initial is None else float(initial)
        self._tokens = min(self._tokens, self.capacity)
        self._lock = threading.Lock()
        self.spent_total = 0.0      # lifetime tokens spent (metrics)
        self.denied_total = 0       # lifetime over-budget denials

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def try_spend(self, n: float = 1.0) -> bool:
        """Take *n* tokens; False (and no change) when short."""
        with self._lock:
            if self._tokens + 1e-9 < n:
                self.denied_total += 1
                return False
            self._tokens -= n
            self.spent_total += n
            return True

    def record_success(self) -> None:
        """A settlement succeeded: refill a fraction of a token."""
        with self._lock:
            self._tokens = min(
                self.capacity, self._tokens + self.refill_per_success
            )


__all__ = ["BREAKER_STATES", "CircuitBreaker", "RetryBudget"]
