"""Graceful degradation: surviving-GPU re-placement and host fallback.

Two recovery levels, both driven by the executor (docs/resilience.md):

1. **Survivor re-placement** — when a device dies mid-run,
   :func:`replan` re-packs only the union-find placement groups that
   were assigned to dead devices onto the surviving ordinals, seeding
   the bin loads from the groups that stay put (Algorithm 1's balanced
   packing, restricted to what actually moved).

2. **Host shadow execution** — with zero survivors, GPU tasks run on
   the CPU against *shadow* arrays: a degraded pull materializes its
   host span (or its captured replay snapshot) into ``node.host_shadow``,
   a degraded kernel runs its registered ``.host_fallback(fn)`` callable
   over the shadows, and a degraded push writes the shadow back through
   the ordinary span write-back.  The data flow is bit-identical to the
   device path because the simulated device views and the shadows are
   both numpy arrays over the same bytes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.node import Node, TaskType
from repro.core.placement import CostMetric, PlacementResult
from repro.core.task import PullTask
from repro.errors import KernelError
from repro.gpu.kernel import KernelContext, _wants_context
from repro.gpu.memory import DeviceBuffer
from repro.utils.span import Late


def kernels_without_fallback(nodes: Iterable[Node]) -> List[Node]:
    """Kernel nodes that cannot degrade to host execution."""
    return [
        n
        for n in nodes
        if n.type is TaskType.KERNEL and n.fallback_fn is None
    ]


def replan(
    nodes: Sequence[Node],
    result: PlacementResult,
    alive: Iterable[int],
    cost_metric: CostMetric,
) -> List[int]:
    """Re-pack placement groups stranded on dead devices onto *alive*
    ordinals, mutating ``node.device`` and ``result.assignment`` in
    place.  Returns the nids that moved.

    Groups already on surviving devices keep their placement; their
    costs seed the per-survivor loads so the moved groups balance
    against real occupancy, not an empty machine.
    """
    alive_sorted = sorted(set(alive))
    if not alive_sorted:
        raise ValueError("replan requires at least one surviving device")
    nid_map: Dict[int, Node] = {n.nid: n for n in nodes}
    loads: Dict[int, float] = {o: 0.0 for o in alive_sorted}

    stranded: List[Tuple[float, int, List[Node]]] = []
    for root, member_ids in result.groups.items():
        members = [nid_map[i] for i in member_ids if i in nid_map]
        if not members:
            continue
        cost = cost_metric(members)
        dev = result.assignment.get(member_ids[0])
        if dev in loads:
            loads[dev] += cost
        else:
            stranded.append((cost, root, members))

    moved: List[int] = []
    for cost, root, members in sorted(stranded, key=lambda t: (-t[0], t[1])):
        bin_ = min(alive_sorted, key=lambda o: (loads[o], o))
        loads[bin_] += cost
        for m in members:
            m.device = bin_
            result.assignment[m.nid] = bin_
            moved.append(m.nid)

    # push tasks re-inherit their (possibly moved) source pull's device
    for n in nodes:
        if n.type is TaskType.PUSH and n.source is not None:
            if n.device != n.source.device:
                moved.append(n.nid)
            n.device = n.source.device
            result.assignment[n.nid] = n.source.device
    return moved


# -- host shadow execution (zero survivors) -------------------------

def run_degraded_pull(node: Node, use_snapshot: bool) -> None:
    """Materialize the pull's data into a host shadow array.

    A *replayed* pull (its device copy was lost after it already ran)
    reads the snapshot captured at H2D completion time, not the live
    span — a completed push may have overwritten the host array since.
    """
    if use_snapshot and node.pull_snapshot is not None:
        src = node.pull_snapshot
    else:
        src = node.span.host_array()
    node.host_shadow = np.array(src, copy=True)


def run_degraded_kernel(node: Node) -> None:
    """Run the kernel's registered host fallback over shadow arrays."""
    fn = node.fallback_fn
    if fn is None:
        raise KernelError(
            f"kernel task {node.name!r} has no host fallback registered"
        )
    converted = []
    for a in node.kernel_args:
        if isinstance(a, PullTask):
            shadow = a.node.host_shadow
            if shadow is None:
                raise KernelError(
                    f"kernel task {node.name!r} reads pull task "
                    f"{a.node.name!r}, which has no degraded host data"
                )
            converted.append(shadow)
        elif isinstance(a, DeviceBuffer):
            raise KernelError(
                f"kernel task {node.name!r} takes a raw device buffer "
                f"argument and cannot degrade to host execution"
            )
        elif isinstance(a, Late):
            converted.append(a.resolve())
        else:
            converted.append(a)
    if _wants_context(fn):
        fn(KernelContext(node.launch, -1), *converted)
    else:
        fn(*converted)


def run_degraded_push(node: Node) -> None:
    """Write the source pull's shadow back into the push target span."""
    src = node.source
    if src is None or src.host_shadow is None:
        raise KernelError(
            f"push task {node.name!r} has no degraded source data"
        )
    node.span.write_back(src.host_shadow)
