"""Seeded device fault profiles: first-class fault injection.

A :class:`FaultProfile` describes *what* should go wrong on a simulated
GPU; ``Device.configure_faults(profile, seed)`` arms it.  All triggers
are deterministic functions of the profile, the seed, and the device's
own operation counters — replaying a seed replays the exact fault
sequence, which is what makes the chaos harness
(:mod:`repro.resilience.chaos`) and the stress sweep reproducible.

Injection points:

- **allocation failures** surface as :class:`~repro.errors.AllocationError`
  from the buddy-pool heap (``DeviceHeap.allocate``) — transient when
  ``alloc_failures`` bounds them, so a retry policy recovers;
- **kernel faults** surface as :class:`~repro.errors.KernelError` from
  the launch's op body on the stream dispatcher thread;
- **stream stalls** block the dispatcher *before* the op payload runs;
  a stalled op never executes — when released (device failure or
  teardown) it raises instead, so retried work is never double-applied;
- **whole-device death** fails the device (``Device.fail()``) and
  raises :class:`~repro.errors.DeviceFailedError`, which the executor's
  recovery path consumes (docs/resilience.md).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import (
    AllocationError,
    DeviceError,
    DeviceFailedError,
    ExecutorError,
    KernelError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Device


@dataclass(frozen=True)
class FaultProfile:
    """Deterministic fault plan for one device.

    Counter-based triggers are 1-based: ``die_at_op=3`` kills the device
    when its third stream operation starts.  Rate-based triggers draw
    from a :class:`random.Random` seeded per device, so they are equally
    reproducible.
    """

    #: first N heap allocations raise (transient — retries recover)
    alloc_failures: int = 0
    #: per-allocation failure probability (seeded)
    alloc_fail_rate: float = 0.0
    #: the k-th kernel launch raises KernelError (single-shot)
    kernel_fault_at: Optional[int] = None
    #: per-launch kernel fault probability (seeded)
    kernel_fault_rate: float = 0.0
    #: the k-th stream op stalls until the device fails or tears down
    stall_at_op: Optional[int] = None
    #: the k-th stream op kills the whole device
    die_at_op: Optional[int] = None

    def __post_init__(self) -> None:
        if self.alloc_failures < 0:
            raise ExecutorError("alloc_failures must be non-negative")
        for name in ("alloc_fail_rate", "kernel_fault_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ExecutorError(f"{name} must be in [0, 1]")
        for name in ("kernel_fault_at", "stall_at_op", "die_at_op"):
            v = getattr(self, name)
            if v is not None and v < 1:
                raise ExecutorError(f"{name} is 1-based; got {v}")

    @property
    def empty(self) -> bool:
        return (
            self.alloc_failures == 0
            and self.alloc_fail_rate == 0.0
            and self.kernel_fault_at is None
            and self.kernel_fault_rate == 0.0
            and self.stall_at_op is None
            and self.die_at_op is None
        )


class FaultState:
    """Armed per-device fault engine (mutable counters + RNG).

    Hooks are called from worker threads (allocations) and stream
    dispatcher threads (ops/kernels); a small lock guards the counters,
    and the potentially-blocking stall wait happens outside it.
    """

    def __init__(self, profile: FaultProfile, seed: int) -> None:
        self.profile = profile
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._ops = 0
        self._kernels = 0
        self._allocs = 0
        #: set to release any dispatcher blocked in an injected stall
        self.resume = threading.Event()
        # observability: how many of each fault actually fired
        self.injected_alloc_faults = 0
        self.injected_kernel_faults = 0
        self.injected_stalls = 0
        self.injected_deaths = 0

    # -- hooks (called by Device) -----------------------------------
    def on_op(self, device: "Device") -> None:
        """Stream-dispatcher hook, before every op payload."""
        p = self.profile
        with self._lock:
            self._ops += 1
            k = self._ops
            die = p.die_at_op == k
            stall = p.stall_at_op == k
            if die:
                self.injected_deaths += 1
            if stall:
                self.injected_stalls += 1
        if die:
            device.fail()
            raise DeviceFailedError(
                device.ordinal, f"injected device failure at op {k}"
            )
        if stall:
            # the payload of a stalled op NEVER runs: when released we
            # raise, so a timed-out-and-retried task cannot be applied
            # twice by the original op waking up later
            self.resume.wait()
            if not device.alive:
                raise DeviceFailedError(
                    device.ordinal, f"injected stall at op {k}; device failed"
                )
            raise DeviceError(
                f"injected stall at op {k} on device {device.ordinal} "
                f"released; operation abandoned"
            )

    def on_kernel(self, device: "Device") -> None:
        """Kernel-launch hook, inside the launch op body."""
        p = self.profile
        with self._lock:
            self._kernels += 1
            k = self._kernels
            hit = p.kernel_fault_at == k
            if not hit and p.kernel_fault_rate > 0:
                hit = self._rng.random() < p.kernel_fault_rate
            if hit:
                self.injected_kernel_faults += 1
        if hit:
            raise KernelError(
                f"injected kernel fault (launch {k} on device {device.ordinal})"
            )

    def on_alloc(self, device: "Device") -> None:
        """Heap hook, before every pool allocation."""
        p = self.profile
        with self._lock:
            self._allocs += 1
            k = self._allocs
            hit = k <= p.alloc_failures
            if not hit and p.alloc_fail_rate > 0:
                hit = self._rng.random() < p.alloc_fail_rate
            if hit:
                self.injected_alloc_faults += 1
        if hit:
            raise AllocationError(
                f"injected allocation failure (alloc {k} on device "
                f"{device.ordinal})"
            )

    def release(self) -> None:
        """Unblock any dispatcher held by an injected stall."""
        self.resume.set()

    def stats(self) -> dict:
        with self._lock:
            return {
                "ops_seen": self._ops,
                "kernels_seen": self._kernels,
                "allocs_seen": self._allocs,
                "injected_alloc_faults": self.injected_alloc_faults,
                "injected_kernel_faults": self.injected_kernel_faults,
                "injected_stalls": self.injected_stalls,
                "injected_deaths": self.injected_deaths,
            }
