"""Retry/timeout policies for fault-tolerant execution.

A :class:`RetryPolicy` bounds how many times the executor re-runs a
failed task and how long it waits between attempts (exponential backoff
with *deterministic* seeded jitter — two runs with the same seed see the
same delays, via :func:`repro.utils.rng.derive_seed`).  A
:class:`ResiliencePolicy` bundles a retry policy with a per-task
deadline and is what ``Executor.run(..., policy=...)`` accepts for a
whole submission; individual tasks override it with ``task.retry(...)``
and ``task.timeout(...)``.

Failed attempts never commit a trace record — the validator's
exact-once invariant holds across retries (docs/resilience.md).
"""

from __future__ import annotations

from concurrent.futures import CancelledError
from dataclasses import dataclass
from typing import Optional, Tuple, Type, Union

from repro.errors import ExecutorError
from repro.utils.rng import derive_seed

#: jitter resolution: derived seeds are reduced modulo this to a
#: uniform fraction in [0, 1)
_JITTER_STEPS = 1_000_000


@dataclass(frozen=True)
class RetryDelay:
    """One computed backoff delay, with its saturation provenance.

    ``seconds`` is the jittered delay actually slept; ``saturated`` is
    True when the uncapped exponential ``base_delay * backoff**(n-1)``
    exceeded the policy's ``max_delay`` cap (operators reading a
    :class:`repro.errors.TaskFailedError` attempt history use this to
    see that backoff had stopped growing); ``max_delay`` echoes the
    effective cap.
    """

    seconds: float
    saturated: bool
    max_delay: float

    def as_dict(self) -> dict:
        return {
            "retry_delay_s": self.seconds,
            "backoff_saturated": self.saturated,
            "max_delay_s": self.max_delay,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) to re-run a failed task.

    ``max_attempts`` counts the first execution: ``max_attempts=3``
    means one run plus up to two retries.  Delays follow
    ``base_delay * backoff**(attempt-1)`` capped at ``max_delay``, then
    spread by ``jitter`` (a +/- fraction) using a deterministic child
    seed of ``seed`` — no wall-clock or global RNG involved.
    ``retry_on`` restricts which exception types are retryable;
    cancellation is never retried.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    backoff: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.1
    seed: int = 0
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExecutorError("retry policy needs max_attempts >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ExecutorError("retry delays must be non-negative")
        if self.backoff < 1.0:
            raise ExecutorError("retry backoff must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ExecutorError("retry jitter must be in [0, 1)")

    def retryable(self, exc: BaseException) -> bool:
        """True if *exc* is worth another attempt under this policy."""
        if isinstance(exc, CancelledError):
            return False
        return isinstance(exc, self.retry_on)

    def delay_for(self, attempt: int, key: Union[str, int] = 0) -> float:
        """Seconds to wait before re-running after failed *attempt*
        (1-based).  *key* individualizes the jitter stream per task so
        co-failing tasks don't retry in lockstep."""
        return self.delay_info(attempt, key).seconds

    def delay_info(self, attempt: int, key: Union[str, int] = 0) -> RetryDelay:
        """Like :meth:`delay_for`, but also reports whether the
        exponential hit the ``max_delay`` cap — the structured form the
        executor records in the per-attempt history of
        :class:`repro.errors.TaskFailedError`."""
        if self.base_delay <= 0:
            return RetryDelay(0.0, False, self.max_delay)
        raw = self.base_delay * self.backoff ** (attempt - 1)
        delay = min(raw, self.max_delay)
        if self.jitter > 0:
            u = (derive_seed(self.seed, "retry", key, attempt) % _JITTER_STEPS) / _JITTER_STEPS
            delay *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return RetryDelay(delay, raw > self.max_delay, self.max_delay)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Run-level resilience: a retry policy plus a per-task deadline.

    ``timeout`` is a per-task budget in seconds applied to every task of
    the submission that doesn't set its own ``task.timeout(...)``.  Both
    fields are optional; ``ResiliencePolicy()`` is a no-op policy.
    """

    retry: Optional[RetryPolicy] = None
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ExecutorError("policy timeout must be positive")


def normalize_policy(
    policy: Union[ResiliencePolicy, RetryPolicy, None]
) -> ResiliencePolicy:
    """Accept either policy flavor (or ``None``) and canonicalize."""
    if policy is None:
        return ResiliencePolicy()
    if isinstance(policy, RetryPolicy):
        return ResiliencePolicy(retry=policy)
    if isinstance(policy, ResiliencePolicy):
        return policy
    raise ExecutorError(
        f"policy must be a RetryPolicy or ResiliencePolicy, got {type(policy).__name__}"
    )
