"""Lock-cheap metric primitives and the registry that names them.

Hot-path design: the executor increments counters on every task, steal
attempt, and sleep transition, so an instrument must cost roughly one
dict/list store — never a shared lock.  Two sharding strategies keep
updates contention-free under CPython:

- **per-thread shards** (:class:`Counter`, :class:`MaxGauge`,
  :class:`Histogram`): each updating thread writes only its own cell
  (keyed by ``threading.get_ident()``); readers aggregate across
  cells.  Distinct-key dict stores are atomic under the GIL, so
  updates need no lock and never contend;
- **per-lane slots** (:class:`LaneCounter`): a fixed list indexed by
  worker id, where lane *i* is only ever written by worker *i* — the
  natural shape for the executor's per-worker statistics, and the
  per-lane breakdown is itself the interesting output.

Reads (``value`` / ``snapshot``) are taken while writers may still be
running; they are *eventually consistent* — each cell is read
atomically, but the aggregate may straddle concurrent updates.  That
is the standard monitoring trade-off; quiesce the executor (e.g.
``wait_for_all``) for exact numbers.

A :class:`MetricsRegistry` names instruments (dotted, e.g.
``executor.tasks_executed``) and also accepts **callback gauges** —
zero-cost "pull" metrics read from live objects (stream op counts,
buddy-pool footprints) only when a snapshot is taken.  The full metric
catalog lives in ``docs/observability.md``.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence, Union

MetricValue = Union[int, float, List[int], List[float], Dict[str, float]]


class Counter:
    """Monotonic counter; per-thread shards, no lock on increment."""

    __slots__ = ("name", "_cells")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._cells: Dict[int, float] = {}

    def inc(self, n: Union[int, float] = 1) -> None:
        """Add *n* (>= 0); safe to call from any thread."""
        tid = threading.get_ident()
        cells = self._cells
        cells[tid] = cells.get(tid, 0) + n

    @property
    def value(self) -> Union[int, float]:
        """Sum across all updating threads."""
        return sum(self._cells.values())


class LaneCounter:
    """Per-lane counter where lane *i* is written by one thread only.

    The executor's shape: ``lanes == num_workers`` and worker *i*
    increments only lane *i*, so updates are plain list stores with no
    sharing at all.  ``value`` sums the lanes; :meth:`per_lane` exposes
    the breakdown (the steal/imbalance statistics of the report).
    """

    __slots__ = ("name", "_cells")

    def __init__(self, lanes: int, name: str = "") -> None:
        self.name = name
        self._cells: List[int] = [0] * lanes

    def inc(self, lane: int, n: int = 1) -> None:
        self._cells[lane] += n

    @property
    def value(self) -> int:
        return sum(self._cells)

    def per_lane(self) -> List[int]:
        return list(self._cells)


class Gauge:
    """Last-write-wins scalar (a single store; atomic under the GIL)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str = "", initial: float = 0) -> None:
        self.name = name
        self._value: Union[int, float] = initial

    def set(self, v: Union[int, float]) -> None:
        self._value = v

    @property
    def value(self) -> Union[int, float]:
        return self._value


class MaxGauge:
    """High-water-mark gauge; per-thread shards, no lock on observe."""

    __slots__ = ("name", "_cells")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._cells: Dict[int, float] = {}

    def observe(self, v: Union[int, float]) -> None:
        tid = threading.get_ident()
        cells = self._cells
        prev = cells.get(tid)
        if prev is None or v > prev:
            cells[tid] = v

    @property
    def value(self) -> Union[int, float]:
        return max(self._cells.values(), default=0)


#: default histogram bucket upper bounds (seconds): 1us .. 10s, log-ish
DEFAULT_BOUNDS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Histogram:
    """Fixed-bucket histogram; per-thread shards, no lock on observe.

    Each thread owns a ``[count, sum, min, max, b0, b1, ...]`` cell
    (one bucket per bound, plus a final overflow bucket); a snapshot
    merges the cells.  Bounds are upper-inclusive.
    """

    __slots__ = ("name", "bounds", "_cells")

    def __init__(self, name: str = "", bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.name = name
        self.bounds: List[float] = sorted(float(b) for b in bounds)
        self._cells: Dict[int, List[float]] = {}

    def observe(self, v: float) -> None:
        tid = threading.get_ident()
        cell = self._cells.get(tid)
        if cell is None:
            cell = [0, 0.0, float("inf"), float("-inf")] + [0] * (len(self.bounds) + 1)
            self._cells[tid] = cell
        cell[0] += 1
        cell[1] += v
        if v < cell[2]:
            cell[2] = v
        if v > cell[3]:
            cell[3] = v
        # bucket index: first bound >= v (upper-inclusive), else overflow
        idx = bisect_right(self.bounds, v)
        if idx > 0 and self.bounds[idx - 1] == v:
            idx -= 1
        cell[4 + idx] += 1

    def snapshot(self) -> Dict[str, float]:
        """Merged ``{count, sum, min, max, buckets}`` view."""
        count = 0
        total = 0.0
        vmin, vmax = float("inf"), float("-inf")
        buckets = [0] * (len(self.bounds) + 1)
        for cell in list(self._cells.values()):
            count += int(cell[0])
            total += cell[1]
            vmin = min(vmin, cell[2])
            vmax = max(vmax, cell[3])
            for i, b in enumerate(cell[4:]):
                buckets[i] += int(b)
        return {
            "count": count,
            "sum": total,
            "min": vmin if count else 0.0,
            "max": vmax if count else 0.0,
            "buckets": buckets,  # type: ignore[dict-item]
        }


class MetricsRegistry:
    """Named instruments + pull-style callbacks, snapshotted together.

    Creation methods are idempotent on the name (the existing
    instrument is returned), so layers can grab a handle without
    coordinating.  Registration takes a lock; updates never do.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}
        self._callbacks: Dict[str, Callable[[], MetricValue]] = {}

    # -- instrument factories ---------------------------------------
    def counter(self, name: str) -> Counter:
        return self._get_or_make(name, lambda: Counter(name), Counter)

    def lane_counter(self, name: str, lanes: int) -> LaneCounter:
        return self._get_or_make(name, lambda: LaneCounter(lanes, name), LaneCounter)

    def gauge(self, name: str, initial: float = 0) -> Gauge:
        return self._get_or_make(name, lambda: Gauge(name, initial), Gauge)

    def max_gauge(self, name: str) -> MaxGauge:
        return self._get_or_make(name, lambda: MaxGauge(name), MaxGauge)

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        return self._get_or_make(name, lambda: Histogram(name, bounds), Histogram)

    def register_callback(self, name: str, fn: Callable[[], MetricValue]) -> None:
        """Register a pull metric evaluated only at snapshot time."""
        with self._lock:
            self._callbacks[name] = fn

    def _get_or_make(self, name, factory, cls):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = factory()
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    # -- reading -----------------------------------------------------
    def snapshot(self) -> Dict[str, MetricValue]:
        """Flat ``name -> value`` dict of every instrument + callback.

        Lane counters snapshot as their per-lane list (sum it for the
        total); histograms as their merged summary dict.  Callback
        failures surface as the exception — a broken pull metric is a
        bug, not a gap in the data.
        """
        with self._lock:
            instruments = dict(self._instruments)
            callbacks = dict(self._callbacks)
        out: Dict[str, MetricValue] = {}
        for name, inst in instruments.items():
            if isinstance(inst, LaneCounter):
                out[name] = inst.per_lane()
            elif isinstance(inst, Histogram):
                out[name] = inst.snapshot()
            else:
                out[name] = inst.value  # type: ignore[union-attr]
        for name, fn in callbacks.items():
            out[name] = fn()
        return out
