"""Runtime metrics and profiling (docs/observability.md).

The paper's evaluation is entirely about runtime behaviour — scaling
across CPU counts, GPUs, and problem sizes — so the runtime needs a
first-class observability layer, the way Taskflow pairs its executor
with the tfprof profiler and StarPU ships performance-feedback
counters.  This package provides both halves:

- :mod:`repro.metrics.registry` — a lock-cheap counter / gauge /
  histogram registry.  The executor owns one (``Executor.metrics``)
  and the worker loops, the simulated GPU layer, and the buddy pools
  feed it; ``registry.snapshot()`` returns a flat, JSON-ready dict.
- :mod:`repro.metrics.profiler` — post-processes the
  :class:`~repro.core.observer.TraceObserver` records of a real run
  into a :class:`RunReport`: per-lane utilization, the critical path
  through the *executed* DAG with per-task slack, and steal /
  placement summaries.  Reports serialize to a stable JSON schema
  (``repro.run-report/1``) and render as text.

Entry points:

- ``Executor.run(graph, metrics=True)`` returns a future carrying a
  :class:`RunReport` (``future.run_report`` after completion);
- ``python -m repro profile <workload>`` profiles a shipped workload
  and emits text, schema-v1 JSON, or a chrome-trace file.

Every exported counter and report field is documented in
``docs/observability.md``.
"""

from repro.metrics.profiler import (
    RUN_REPORT_SCHEMA,
    CriticalPathEntry,
    LaneUtilization,
    RunReport,
    build_run_report,
    render_report_text,
)
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    LaneCounter,
    MaxGauge,
    MetricsRegistry,
)

__all__ = [
    "RUN_REPORT_SCHEMA",
    "Counter",
    "CriticalPathEntry",
    "Gauge",
    "Histogram",
    "LaneCounter",
    "LaneUtilization",
    "MaxGauge",
    "MetricsRegistry",
    "RunReport",
    "build_run_report",
    "render_report_text",
]
