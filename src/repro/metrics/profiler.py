"""Post-process a traced run into a :class:`RunReport`.

The :class:`~repro.core.observer.TraceObserver` leaves behind one
:class:`~repro.core.observer.TaskRecord` per executed task instance.
This module turns that raw evidence into the analysis the paper's
evaluation reasons about:

- **per-lane utilization** — busy seconds and busy fraction for each
  worker lane (host tasks) and GPU lane (pull/push/kernel completion),
  the same lanes the chrome-trace export draws;
- **critical path** — the longest path through the *executed* DAG,
  weighted by each task's measured duration (summed across passes).
  Because the executor fires ``on_task_end`` before releasing
  successors and passes are time-separated, the total duration along
  any structural path is bounded by the wall time — so the reported
  ``critical_path.length`` is a sound lower bound on the run and can
  never exceed ``wall_time``;
- **per-task slack** — how much a task's measured duration could grow
  without lengthening the critical path (zero for tasks on it); the
  optimization targets are the zero-slack tasks;
- **steal and placement summaries** — per-worker executed/stolen task
  counts from the executor's metric counters, and tasks-per-device
  from the records.

``RunReport.to_dict()`` is a **stable schema** (:data:`RUN_REPORT_SCHEMA`,
currently ``repro.run-report/1``): field renames or removals require a
version bump, and ``tests/test_metrics.py`` pins a golden instance.
Field-by-field documentation lives in ``docs/observability.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - break metrics <-> core cycle
    from repro.core.heteroflow import Heteroflow
    from repro.core.observer import TaskRecord

#: schema identifier embedded in every serialized report; bump on any
#: backwards-incompatible field change
RUN_REPORT_SCHEMA = "repro.run-report/1"


@dataclass
class LaneUtilization:
    """Busy accounting for one execution lane (worker or GPU)."""

    lane: str  #: ``worker<N>`` or ``gpu<N>``
    tasks: int  #: records attributed to the lane
    busy: float  #: summed record durations (seconds)
    utilization: float  #: ``busy / wall_time`` (0 when wall is 0)


@dataclass
class CriticalPathEntry:
    """One task on the critical path, in execution order."""

    name: str
    nid: int
    type: str
    duration: float  #: measured seconds, summed across passes


@dataclass
class RunReport:
    """Profiling summary of one traced executor run (schema v1)."""

    workload: str
    wall_time: float  #: seconds, submission to completion
    num_workers: int
    num_gpus: int
    passes: int
    num_records: int  #: trace records consumed (validator's count)
    tasks_by_type: Dict[str, int] = field(default_factory=dict)
    lanes: List[LaneUtilization] = field(default_factory=list)
    critical_path_length: float = 0.0
    critical_path: List[CriticalPathEntry] = field(default_factory=list)
    #: nid -> slack seconds (tasks with records only)
    slack: Dict[int, float] = field(default_factory=dict)
    #: tasks executed per worker (from ``executor.tasks_executed``)
    tasks_per_worker: List[int] = field(default_factory=list)
    #: steal attempts / successes per worker
    steals_attempted: List[int] = field(default_factory=list)
    steals_succeeded: List[int] = field(default_factory=list)
    #: GPU-task records per device ordinal
    tasks_per_device: Dict[int, int] = field(default_factory=dict)
    #: raw ``MetricsRegistry.snapshot()`` of the owning executor
    counters: Dict[str, object] = field(default_factory=dict)
    #: structured failure/recovery events (retries, timeouts, device
    #: deaths, degradation) in occurrence order; empty for clean runs
    events: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Stable JSON-ready form (see :data:`RUN_REPORT_SCHEMA`)."""
        return {
            "schema": RUN_REPORT_SCHEMA,
            "workload": self.workload,
            "wall_time": self.wall_time,
            "num_workers": self.num_workers,
            "num_gpus": self.num_gpus,
            "passes": self.passes,
            "num_records": self.num_records,
            "tasks_by_type": dict(sorted(self.tasks_by_type.items())),
            "lanes": [
                {
                    "lane": l.lane,
                    "tasks": l.tasks,
                    "busy": l.busy,
                    "utilization": l.utilization,
                }
                for l in self.lanes
            ],
            "critical_path": {
                "length": self.critical_path_length,
                "tasks": [
                    {
                        "name": e.name,
                        "nid": e.nid,
                        "type": e.type,
                        "duration": e.duration,
                    }
                    for e in self.critical_path
                ],
            },
            "slack": {str(nid): s for nid, s in sorted(self.slack.items())},
            "steals": {
                "tasks_per_worker": self.tasks_per_worker,
                "attempted": self.steals_attempted,
                "succeeded": self.steals_succeeded,
            },
            "placement": {
                "tasks_per_device": {
                    str(d): n for d, n in sorted(self.tasks_per_device.items())
                },
            },
            "counters": self.counters,
            "events": self.events,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)


def _lane_of(r: TaskRecord) -> str:
    # same lane mapping as repro.core.tracing.chrome_trace_events:
    # GPU tasks are charged to their device, host tasks to their worker
    return f"gpu{r.device}" if r.device is not None else f"worker{r.worker_id}"


def build_run_report(
    graph: Heteroflow,
    records: Sequence[TaskRecord],
    *,
    wall_time: float,
    num_workers: int,
    num_gpus: int,
    passes: int = 1,
    workload: str = "",
    counters: Optional[Dict[str, object]] = None,
    events: Optional[List[dict]] = None,
) -> RunReport:
    """Analyze *records* of a run of *graph* into a :class:`RunReport`.

    *records* may contain entries for other graphs (an executor-wide
    observer on a busy executor); only records whose ``nid`` belongs to
    *graph* are analyzed.  *wall_time* is the caller's submission-to-
    completion measurement on the same ``time.perf_counter`` clock the
    records use.  *counters* is an optional
    :meth:`~repro.metrics.registry.MetricsRegistry.snapshot` dict; the
    per-worker steal summary is extracted from the ``executor.*`` keys
    when present.  *events* is the topology's structured
    failure/recovery event list (docs/resilience.md), copied verbatim.
    """
    nodes = graph.nodes
    known = {n.nid for n in nodes}
    recs = [r for r in records if r.nid in known]

    report = RunReport(
        workload=workload or graph.name,
        wall_time=wall_time,
        num_workers=num_workers,
        num_gpus=num_gpus,
        passes=passes,
        num_records=len(recs),
        counters=dict(counters or {}),
        events=list(events or []),
    )

    # task counts by type + per-device placement summary
    for r in recs:
        report.tasks_by_type[r.type] = report.tasks_by_type.get(r.type, 0) + 1
        if r.device is not None:
            report.tasks_per_device[r.device] = (
                report.tasks_per_device.get(r.device, 0) + 1
            )

    # per-lane utilization
    busy: Dict[str, float] = {}
    count: Dict[str, int] = {}
    for r in recs:
        lane = _lane_of(r)
        busy[lane] = busy.get(lane, 0.0) + r.duration
        count[lane] = count.get(lane, 0) + 1
    report.lanes = [
        LaneUtilization(
            lane=lane,
            tasks=count[lane],
            busy=busy[lane],
            utilization=(busy[lane] / wall_time) if wall_time > 0 else 0.0,
        )
        for lane in sorted(busy, key=lambda l: (l.startswith("gpu"), l))
    ]

    # critical path + slack over the executed DAG, weighted by each
    # node's total measured duration across passes
    weight: Dict[int, float] = {}
    for r in recs:
        weight[r.nid] = weight.get(r.nid, 0.0) + r.duration
    executed = [n for n in nodes if n.nid in weight]
    if executed:
        order = [n for n in graph.topological_order() if n.nid in weight]
        down: Dict[int, float] = {}  # longest path ending at n (inclusive)
        pred: Dict[int, Optional[object]] = {}
        for n in order:
            best, best_pred = 0.0, None
            for d in n.dependents:
                if d.nid in down and down[d.nid] > best:
                    best, best_pred = down[d.nid], d
            down[n.nid] = best + weight[n.nid]
            pred[n.nid] = best_pred
        up: Dict[int, float] = {}  # longest path starting at n (inclusive)
        for n in reversed(order):
            best = 0.0
            for s in n.successors:
                if s.nid in up and up[s.nid] > best:
                    best = up[s.nid]
            up[n.nid] = best + weight[n.nid]
        end = max(order, key=lambda n: down[n.nid])
        length = down[end.nid]
        path = [end]
        while pred[path[-1].nid] is not None:
            path.append(pred[path[-1].nid])  # type: ignore[arg-type]
        path.reverse()
        report.critical_path_length = length
        report.critical_path = [
            CriticalPathEntry(n.name, n.nid, n.type.value, weight[n.nid])
            for n in path
        ]
        for n in order:
            through = down[n.nid] + up[n.nid] - weight[n.nid]
            report.slack[n.nid] = max(length - through, 0.0)

    # steal summary from the executor counters, when provided
    c = report.counters
    report.tasks_per_worker = list(c.get("executor.tasks_executed", []))  # type: ignore[arg-type]
    report.steals_attempted = list(c.get("executor.steals_attempted", []))  # type: ignore[arg-type]
    report.steals_succeeded = list(c.get("executor.steals_succeeded", []))  # type: ignore[arg-type]
    return report


def render_report_text(report: RunReport) -> str:
    """Human-readable rendering (the ``profile`` CLI's default)."""
    lines = [
        f"== RunReport: {report.workload} ==",
        f"wall time     {report.wall_time * 1e3:9.3f} ms   "
        f"({report.num_workers} worker(s), {report.num_gpus} GPU(s), "
        f"{report.passes} pass(es))",
        f"records       {report.num_records}   "
        + "  ".join(f"{t}={n}" for t, n in sorted(report.tasks_by_type.items())),
    ]
    if report.lanes:
        lines.append("lanes:")
        for l in report.lanes:
            bar = "#" * int(round(l.utilization * 30))
            lines.append(
                f"  {l.lane:<10} {l.tasks:4d} tasks  "
                f"{l.busy * 1e3:9.3f} ms busy  "
                f"{l.utilization * 100:5.1f}% |{bar:<30}|"
            )
    cp = report.critical_path
    lines.append(
        f"critical path {report.critical_path_length * 1e3:9.3f} ms over "
        f"{len(cp)} task(s) "
        f"({report.critical_path_length / report.wall_time * 100:.1f}% of wall)"
        if report.wall_time > 0
        else f"critical path {report.critical_path_length * 1e3:9.3f} ms"
    )
    for e in cp[:12]:
        lines.append(f"  {e.name:<24} {e.type:<7} {e.duration * 1e6:9.1f} us")
    if len(cp) > 12:
        lines.append(f"  ... and {len(cp) - 12} more")
    if report.tasks_per_worker:
        lines.append(f"tasks/worker  {report.tasks_per_worker}")
    if report.steals_attempted:
        lines.append(
            f"steals        attempted={report.steals_attempted} "
            f"succeeded={report.steals_succeeded}"
        )
    if report.tasks_per_device:
        lines.append(
            "gpu tasks     "
            + "  ".join(
                f"gpu{d}={n}" for d, n in sorted(report.tasks_per_device.items())
            )
        )
    if report.events:
        kinds: Dict[str, int] = {}
        for ev in report.events:
            k = str(ev.get("kind", "?"))
            kinds[k] = kinds.get(k, 0) + 1
        lines.append(
            "events        "
            + "  ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
        )
    return "\n".join(lines)
