"""Programmatic regeneration of the paper's evaluation series.

The benchmark suite (``pytest benchmarks/``) wraps these sweeps with
assertions and timing; this module exposes them as plain functions for
library users and the ``python -m repro`` CLI.  Each function returns
``(headers, rows, notes)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.apps.placement import build_placement_flow
from repro.apps.timing import build_timing_flow
from repro.apps.timing.views import FIG4_NODES, views_for_node
from repro.sim import SimExecutor, paper_testbed

Table = Tuple[Sequence[str], List[Sequence], str]

#: paper-quoted anchors, minutes (Fig. 6) and seconds (Fig. 9)
FIG6_PAPER = {
    (1, 1): 99, (1, 4): 51, (8, 4): 23, (16, 4): 18, (24, 4): 15,
    (32, 4): 14, (40, 4): 13, (40, 1): 36, (40, 2): 21, (40, 3): 15,
}
FIG9_PAPER = {(1, 1): 58.41, (40, 1): 14.02, (40, 4): 13.61}


def fig4_table() -> Table:
    """Views vs technology node (paper Fig. 4)."""
    rows = []
    for node in sorted(FIG4_NODES, reverse=True):
        spec = FIG4_NODES[node]
        rows.append((f"{node}nm", spec["corners"], spec["modes"], views_for_node(node)))
    return (
        ("node", "corners", "modes", "views"),
        rows,
        "views grow ~2x per node toward advanced technologies",
    )


def fig6a_table(num_views: int = 1024, seed: int = 0) -> Table:
    """Timing runtime (minutes) vs cores x GPUs (paper Fig. 6 upper)."""
    flow = build_timing_flow(num_views=num_views, num_gates=60, paths_per_view=8, seed=seed)
    scale = 1024 / num_views
    rows = []
    for cores in (1, 8, 16, 24, 32, 40):
        for gpus in (1, 2, 3, 4):
            rep = SimExecutor(paper_testbed(cores, gpus), flow.cost_model).run(flow.graph)
            paper = FIG6_PAPER.get((cores, gpus), "")
            rows.append((cores, gpus, round(rep.makespan_minutes * scale, 1), paper))
    return (
        ("cores", "gpus", "sim_min", "paper_min"),
        rows,
        f"netcard-calibrated costs, {num_views} views (scaled to 1024)",
    )


def fig6b_table(seed: int = 0) -> Table:
    """Timing runtime (minutes) vs number of views (paper Fig. 6 lower)."""
    rows = []
    for views in (32, 64, 128, 256, 512, 1024):
        flow = build_timing_flow(num_views=views, num_gates=60, paths_per_view=8, seed=seed)
        for cores, gpus in ((8, 1), (8, 4), (40, 1), (40, 4)):
            rep = SimExecutor(paper_testbed(cores, gpus), flow.cost_model).run(flow.graph)
            rows.append((views, cores, gpus, round(rep.makespan_minutes, 2)))
    return (("views", "cores", "gpus", "sim_min"), rows, "")


def fig9a_table(iterations: int = 50, seed: int = 0) -> Table:
    """Placement runtime (seconds) vs cores x GPUs (paper Fig. 9 upper)."""
    flow = build_placement_flow(
        num_cells=40, iterations=iterations, num_matchers=32, window_size=1, seed=seed
    )
    rows = []
    for cores in (1, 8, 16, 20, 24, 32, 40):
        for gpus in (1, 4):
            rep = SimExecutor(paper_testbed(cores, gpus), flow.cost_model).run(flow.graph)
            paper = FIG9_PAPER.get((cores, gpus), "")
            rows.append((cores, gpus, round(rep.makespan, 2), paper))
    return (
        ("cores", "gpus", "sim_s", "paper_s"),
        rows,
        f"bigblue4-calibrated costs, {iterations} iterations",
    )


def fig9b_table(seed: int = 0) -> Table:
    """Placement runtime (seconds) vs iterations (paper Fig. 9 lower)."""
    rows = []
    for iters in (5, 10, 20, 30, 40, 50):
        flow = build_placement_flow(
            num_cells=40, iterations=iters, num_matchers=32, window_size=1, seed=seed
        )
        for cores, gpus in ((1, 4), (8, 4), (40, 4)):
            rep = SimExecutor(paper_testbed(cores, gpus), flow.cost_model).run(flow.graph)
            rows.append((iters, cores, gpus, round(rep.makespan, 2)))
    return (("iters", "cores", "gpus", "sim_s"), rows, "")


ALL_FIGURES = {
    "fig4": fig4_table,
    "fig6a": fig6a_table,
    "fig6b": fig6b_table,
    "fig9a": fig9a_table,
    "fig9b": fig9b_table,
}


def format_table(title: str, table: Table) -> str:
    """Render one table as aligned text."""
    headers, rows, notes = table
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(v).rjust(w) for v, w in zip(r, widths)))
    if notes:
        lines.append(notes)
    return "\n".join(lines)
