"""Deterministic RNG plumbing.

Workload generators (netlists, placement databases, regression data)
must be reproducible run to run so that benchmark series are comparable;
every generator takes a seed and derives child seeds through
:func:`derive_seed` instead of sharing one global generator.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def seeded_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a numpy Generator for *seed* (pass-through if already one)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(seed: int, *labels: Union[str, int]) -> int:
    """Derive a stable 63-bit child seed from *seed* and label path.

    Hash-based so that adding a new consumer never perturbs the streams
    of existing consumers (unlike ``seed + i`` schemes).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(seed)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest(), "little") & (2**63 - 1)
