"""Disjoint-set (union-find) with union by rank and path compression.

Used by the device-placement pass (Algorithm 1 in the paper) to group
each kernel task with its source pull tasks so that the whole group is
packed onto a single GPU bin.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List


class UnionFind:
    """Disjoint-set forest over arbitrary hashable elements.

    Elements are added lazily on first use; ``find`` on an unseen
    element creates a singleton set for it.
    """

    __slots__ = ("_parent", "_rank", "_size")

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._size: Dict[Hashable, int] = {}
        for e in elements:
            self.add(e)

    def add(self, x: Hashable) -> None:
        """Ensure *x* is present as (at least) a singleton set."""
        if x not in self._parent:
            self._parent[x] = x
            self._rank[x] = 0
            self._size[x] = 1

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    def find(self, x: Hashable) -> Hashable:
        """Return the canonical representative of the set containing *x*.

        Applies two-pass path compression.
        """
        self.add(x)
        root = x
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing *a* and *b*; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True iff *a* and *b* are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, x: Hashable) -> int:
        """Number of elements in the set containing *x*."""
        return self._size[self.find(x)]

    def roots(self) -> List[Hashable]:
        """All canonical representatives (one per set)."""
        return [x for x in self._parent if self.find(x) == x]

    def groups(self) -> Dict[Hashable, List[Hashable]]:
        """Mapping root -> members, covering every element."""
        out: Dict[Hashable, List[Hashable]] = {}
        for x in self._parent:
            out.setdefault(self.find(x), []).append(x)
        return out
