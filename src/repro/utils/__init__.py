"""Shared utilities: union-find, spans, DOT serialization, RNG helpers."""

from repro.utils.union_find import UnionFind
from repro.utils.span import Span, make_span
from repro.utils.dot import DotWriter
from repro.utils.rng import seeded_rng, derive_seed

__all__ = [
    "UnionFind",
    "Span",
    "make_span",
    "DotWriter",
    "seeded_rng",
    "derive_seed",
]
