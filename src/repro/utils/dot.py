"""Minimal GraphViz DOT serializer used by ``Heteroflow.dump``.

The paper advertises task-graph inspection through the standard DOT
format (Listing 11); this writer produces output consumable by
``graphviz``/``viz.js`` without requiring either to be installed.
"""

from __future__ import annotations

import io
from typing import Dict, Hashable, List, Optional, Tuple


def _quote(s: str) -> str:
    return '"' + s.replace("\\", "\\\\").replace('"', '\\"') + '"'


class DotWriter:
    """Accumulates nodes and edges and renders a ``digraph``."""

    def __init__(self, name: str = "Heteroflow") -> None:
        self.name = name
        self._nodes: List[Tuple[str, Dict[str, str]]] = []
        self._edges: List[Tuple[str, str, Dict[str, str]]] = []
        self._ids: Dict[Hashable, str] = {}

    def node_id(self, key: Hashable) -> str:
        """Stable identifier for an arbitrary hashable node key."""
        if key not in self._ids:
            self._ids[key] = f"n{len(self._ids)}"
        return self._ids[key]

    def add_node(self, key: Hashable, label: str, **attrs: str) -> str:
        nid = self.node_id(key)
        a = {"label": label}
        a.update(attrs)
        self._nodes.append((nid, a))
        return nid

    def add_edge(self, src: Hashable, dst: Hashable, **attrs: str) -> None:
        self._edges.append((self.node_id(src), self.node_id(dst), attrs))

    def render(self, stream: Optional[io.TextIOBase] = None) -> str:
        """Render to *stream* if given; always return the DOT text."""
        out = io.StringIO()
        out.write(f"digraph {_quote(self.name)} {{\n")
        for nid, attrs in self._nodes:
            body = " ".join(f"{k}={_quote(v)}" for k, v in attrs.items())
            out.write(f"  {nid} [{body}];\n")
        for s, d, attrs in self._edges:
            if attrs:
                body = " ".join(f"{k}={_quote(v)}" for k, v in attrs.items())
                out.write(f"  {s} -> {d} [{body}];\n")
            else:
                out.write(f"  {s} -> {d};\n")
        out.write("}\n")
        text = out.getvalue()
        if stream is not None:
            stream.write(text)
        return text
