"""Stateful span: the Python analogue of Heteroflow's ``std::span`` use.

Heteroflow's pull/push tasks capture their arguments in a *stateful
tuple*: the span over the host data is constructed when the task
**executes**, not when it is created, so mutations made by upstream host
tasks (e.g. ``vector::resize``) are visible (paper, Listing 4).

:class:`Span` reproduces that late binding.  It stores the constructor
arguments and materializes a concrete numpy view only when
:meth:`host_array` is called.  Accepted argument forms::

    Span(ndarray)            # contiguous numpy array (zero copy)
    Span(ndarray, count)     # leading `count` elements
    Span(list_of_numbers)    # copied in, written back element-wise
    Span(list, count)
    Span(bytearray)          # raw byte block, viewed as uint8
    Span(callable)           # zero-arg factory resolved at execution
                             # time; may return any of the above

The ``callable`` form is the most faithful match for C++ lambdas that
capture by reference; the container forms are stateful because Python
containers are reference types.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.errors import HeteroflowError


class SpanError(HeteroflowError):
    """Arguments do not describe a contiguous data block."""


def _as_array(obj: Any, count: Optional[int]) -> Tuple[np.ndarray, bool]:
    """Return ``(array, writeback_needed)`` for a host object.

    ``writeback_needed`` is True when the array is a *copy* of the host
    object (lists), so D2H pushes must copy element-wise back into the
    original container.
    """
    if isinstance(obj, np.ndarray):
        if not obj.flags["C_CONTIGUOUS"]:
            raise SpanError("span requires a C-contiguous array")
        arr = obj if count is None else obj.reshape(-1)[:count]
        return arr, False
    if isinstance(obj, (bytearray, memoryview)):
        arr = np.frombuffer(obj, dtype=np.uint8)
        if count is not None:
            arr = arr[:count]
        return arr, False
    if isinstance(obj, (list, tuple)):
        seq: Sequence = obj if count is None else obj[:count]
        if len(seq) == 0:
            return np.empty(0, dtype=np.float64), True
        if all(isinstance(v, (int, np.integer)) for v in seq):
            return np.asarray(seq, dtype=np.int64), True
        return np.asarray(seq, dtype=np.float64), True
    raise SpanError(f"cannot form a span over {type(obj).__name__}")


class Late:
    """A deferred scalar/array argument, resolved at task execution.

    Kernel tasks capture their arguments when the graph is *built*, but
    stateful flows often compute argument values (sample counts, sizes)
    in upstream host tasks.  Wrapping a zero-arg callable in ``Late``
    tells the kernel launcher to call it at launch time — the same
    late-binding the paper's stateful tuple provides for spans.
    """

    __slots__ = ("fn",)

    def __init__(self, fn) -> None:
        if not callable(fn):
            raise SpanError("Late requires a zero-argument callable")
        self.fn = fn

    def resolve(self) -> Any:
        return self.fn()


class Span:
    """Late-bound view over a contiguous block of host data."""

    __slots__ = ("_args",)

    def __init__(self, *args: Any) -> None:
        if not args:
            raise SpanError("span requires at least one argument")
        if len(args) > 2:
            raise SpanError("span takes (object) or (object, count)")
        if len(args) == 2 and not isinstance(args[1], (int, np.integer)):
            raise SpanError("span count must be an integer")
        if len(args) == 2 and args[1] < 0:
            raise SpanError("span count must be non-negative")
        self._args = args

    # -- resolution -------------------------------------------------
    def _resolve(self) -> Tuple[Any, Optional[int]]:
        obj = self._args[0]
        count = self._args[1] if len(self._args) == 2 else None
        if callable(obj) and not isinstance(obj, np.ndarray):
            obj = obj()
            if isinstance(obj, tuple) and len(obj) == 2:
                obj, count = obj
        return obj, count

    def host_array(self) -> np.ndarray:
        """Materialize the current host view as a 1-D numpy array."""
        obj, count = self._resolve()
        arr, _ = _as_array(obj, None if count is None else int(count))
        return arr.reshape(-1)

    def size_bytes(self) -> int:
        """Size of the span in bytes, evaluated against current state."""
        return int(self.host_array().nbytes)

    def __len__(self) -> int:
        return int(self.host_array().size)

    @property
    def dtype(self) -> np.dtype:
        return self.host_array().dtype

    def write_back(self, data: np.ndarray) -> None:
        """Copy *data* (a device-side result) back into the host object.

        For numpy/buffer targets this is an in-place ``copyto``; for
        list targets the elements are written back one by one so the
        caller's container object keeps its identity (matching the
        stateful semantics of push tasks in the paper, Listing 6).
        """
        obj, count = self._resolve()
        arr, needs_copy = _as_array(obj, None if count is None else int(count))
        flat = arr.reshape(-1)
        n = min(flat.size, data.size)
        if needs_copy:
            # list/tuple target: mutate the original container
            if isinstance(obj, tuple):
                raise SpanError("cannot write back into an immutable tuple")
            src = data.reshape(-1)[:n]
            py = src.tolist()
            for i in range(n):
                obj[i] = py[i]
        else:
            np.copyto(flat[:n], data.reshape(-1)[:n].astype(flat.dtype, copy=False))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span(args={self._args!r})"


def make_span(*args: Any) -> Span:
    """Construct a :class:`Span`; mirrors ``make_span_from_tuple``."""
    if len(args) == 1 and isinstance(args[0], Span):
        return args[0]
    return Span(*args)
