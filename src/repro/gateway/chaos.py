"""Protocol-level chaos for the gateway pipe (docs/gateway.md).

The PR 8 soak kills workers with SIGKILL — a *black* failure.  Gray
failures live in the protocol itself: messages that arrive late, pongs
that vanish, a worker whose control loop freezes for a second, a
submission that burns CPU before admission.  :class:`ChaosProfile` is
a small picklable recipe for exactly those, applied **worker-side**
(shipped inside :class:`~repro.gateway.worker.WorkerConfig`), so every
gray-failure path in the gateway — stall detection, circuit breakers,
hedged submissions, retry budgets — is testable in-process with no
external proxy.

Design constraints, deliberately conservative:

- **Seeded and deterministic**: every decision comes from a
  ``random.Random`` derived from ``(seed, wid)`` via
  :func:`repro.utils.rng.derive_seed` — two runs with the same seed
  inject the same chaos;
- **Reorder-safe**: outbound delays are *sleeps inside the send lock*,
  so they pause the whole frame stream rather than reordering it — the
  per-worker FIFO the protocol guarantees survives chaos;
- **Drops never break totality**: only messages whose loss the
  protocol already tolerates may drop — ``Pong`` (a missed heartbeat)
  and ``EventMsg`` (a progress stream, not a guarantee).  ``Settled``,
  ``Ready``, ``Drained`` and the other acked replies always go out.

The gateway can also inject one-shot chaos into a live worker with the
:class:`~repro.gateway.messages.ChaosInject` message
(``Gateway.inject_chaos``): the worker sleeps (or spins) *in its recv
loop*, which is precisely a gray stall — heartbeats stop being
answered while the process stays alive.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.utils.rng import derive_seed

#: message type names whose loss the protocol tolerates (heartbeats
#: and progress streams); everything else always ships
DROPPABLE = ("Pong", "EventMsg")


@dataclass(frozen=True)
class ChaosProfile:
    """Seeded protocol-chaos recipe, applied inside each worker.

    All probabilities are per-message (inbound for ``stall``/``spin``,
    outbound for ``delay``/``drop``); durations are maxima — the
    actual value is drawn uniformly from (0, max].  The defaults are a
    no-op profile; :meth:`mild` is the ``repro serve --chaos`` preset.
    """

    seed: int = 0
    #: outbound: sleep before sending (inside the send lock — pauses
    #: the stream, never reorders it)
    delay_prob: float = 0.0
    delay_max_s: float = 0.0
    #: outbound: drop the message entirely (DROPPABLE kinds only)
    drop_prob: float = 0.0
    #: inbound: freeze the recv loop (a gray stall — heartbeats stop)
    stall_prob: float = 0.0
    stall_max_s: float = 0.0
    #: inbound, Submit only: burn CPU before handling (a slow worker)
    spin_prob: float = 0.0
    spin_max_s: float = 0.0

    @classmethod
    def mild(cls, seed: int = 0) -> "ChaosProfile":
        """The ``serve --chaos`` preset: enough protocol misbehavior to
        exercise stall detection and breaker probes without making a
        short session degenerate."""
        return cls(
            seed=seed,
            delay_prob=0.05,
            delay_max_s=0.05,
            drop_prob=0.10,
            stall_prob=0.01,
            stall_max_s=0.8,
            spin_prob=0.05,
            spin_max_s=0.02,
        )

    @property
    def active(self) -> bool:
        return any(
            p > 0
            for p in (
                self.delay_prob,
                self.drop_prob,
                self.stall_prob,
                self.spin_prob,
            )
        )

    def state(self, wid: int) -> "ChaosState":
        return ChaosState(self, wid)


class ChaosState:
    """Worker-side runtime for one :class:`ChaosProfile` (one RNG per
    worker slot, derived from the profile seed and the wid)."""

    __slots__ = ("profile", "wid", "_rng", "injected")

    def __init__(self, profile: ChaosProfile, wid: int) -> None:
        self.profile = profile
        self.wid = wid
        self._rng = random.Random(derive_seed(profile.seed, "chaos", wid))
        #: counters for the worker's metrics snapshot
        self.injected = {"delay": 0, "drop": 0, "stall": 0, "spin": 0}

    # -- inbound (recv loop thread; blocking here IS the chaos) --------
    def before_handle(self, msg) -> None:
        """Maybe stall the recv loop / spin before a Submit."""
        p = self.profile
        if p.stall_prob > 0 and self._rng.random() < p.stall_prob:
            self.injected["stall"] += 1
            time.sleep(self._rng.uniform(0.0, p.stall_max_s))
        if (
            p.spin_prob > 0
            and type(msg).__name__ == "Submit"
            and self._rng.random() < p.spin_prob
        ):
            self.injected["spin"] += 1
            t0 = time.perf_counter()
            budget = self._rng.uniform(0.0, p.spin_max_s)
            while time.perf_counter() - t0 < budget:
                pass

    # -- outbound (under the worker's send lock) -----------------------
    def allow_send(self, msg) -> bool:
        """False = drop the message; may sleep first (reorder-safe)."""
        p = self.profile
        kind = type(msg).__name__
        if (
            p.drop_prob > 0
            and kind in DROPPABLE
            and self._rng.random() < p.drop_prob
        ):
            self.injected["drop"] += 1
            return False
        if p.delay_prob > 0 and self._rng.random() < p.delay_prob:
            self.injected["delay"] += 1
            time.sleep(self._rng.uniform(0.0, p.delay_max_s))
        return True


__all__ = ["DROPPABLE", "ChaosProfile", "ChaosState"]
