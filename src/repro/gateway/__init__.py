"""Async multiprocess service gateway (docs/gateway.md).

Public surface:

- :class:`~repro.gateway.gateway.Gateway` — the asyncio front-end over
  a pool of spawned executor worker processes, with submission
  handles, streaming events, worker monitoring, and drain/shutdown
  guarantees;
- :class:`~repro.gateway.worker.WorkerConfig` — per-worker executor
  shape (threads, simulated GPUs, admission policy);
- the :class:`~repro.gateway.spec.WorkSpec` family
  (:class:`~repro.gateway.spec.GeneratedSpec`,
  :class:`~repro.gateway.spec.BuiltinSpec`,
  :class:`~repro.gateway.spec.BurstSpec`) — picklable workload recipes
  workers materialize locally;
- :func:`~repro.gateway.soak.run_gateway_soak` — the multiprocess soak
  harness behind ``python -m repro soak --gateway`` (imported lazily;
  it pulls in the whole service stack).
"""

from __future__ import annotations

from repro.gateway.gateway import (
    FrozenHandle,
    Gateway,
    GraphHandle,
    Result,
    Submission,
)
from repro.gateway.messages import OUTCOMES, PROTOCOL_VERSION
from repro.gateway.spec import BuiltinSpec, BurstSpec, GeneratedSpec, WorkSpec
from repro.gateway.worker import WorkerConfig

__all__ = [
    "Gateway",
    "GraphHandle",
    "FrozenHandle",
    "Result",
    "Submission",
    "WorkerConfig",
    "WorkSpec",
    "GeneratedSpec",
    "BuiltinSpec",
    "BurstSpec",
    "OUTCOMES",
    "PROTOCOL_VERSION",
    "run_gateway_soak",
]


def __getattr__(name: str):
    if name == "run_gateway_soak":
        from repro.gateway.soak import run_gateway_soak

        return run_gateway_soak
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
