"""Async multiprocess service gateway (docs/gateway.md).

Public surface:

- :class:`~repro.gateway.gateway.Gateway` — the asyncio front-end over
  a pool of spawned executor worker processes, with submission
  handles, streaming events, worker monitoring, hedged submissions,
  and drain/shutdown guarantees;
- :class:`~repro.gateway.worker.WorkerConfig` — per-worker executor
  shape (threads, simulated GPUs, admission policy, optional chaos);
- the :class:`~repro.gateway.spec.WorkSpec` family
  (:class:`~repro.gateway.spec.GeneratedSpec`,
  :class:`~repro.gateway.spec.BuiltinSpec`,
  :class:`~repro.gateway.spec.BurstSpec`) — picklable workload recipes
  workers materialize locally;
- :class:`~repro.gateway.health.WorkerHealth` /
  :class:`~repro.gateway.health.HealthConfig` — per-worker gray-failure
  scoring (heartbeat EWMA, settle-latency quantiles, the
  healthy/stalled/dead state axis);
- :class:`~repro.gateway.chaos.ChaosProfile` — seeded protocol-level
  chaos (delay / drop / stall / spin), applied worker-side;
- :class:`~repro.gateway.gateway.RecoveryReport` — what
  :meth:`Gateway.recover` replayed out of a durable journal
  (docs/durability.md; the journal itself lives in
  :mod:`repro.durability`);
- :func:`~repro.gateway.soak.run_gateway_soak` and
  :func:`~repro.gateway.soak.run_gateway_gray_soak` — the multiprocess
  soak harnesses behind ``python -m repro soak --gateway [--gray]``
  (imported lazily; they pull in the whole service stack).
"""

from __future__ import annotations

from repro.gateway.chaos import ChaosProfile
from repro.gateway.gateway import (
    FrozenHandle,
    Gateway,
    GraphHandle,
    RecoveryReport,
    Result,
    Submission,
)
from repro.gateway.health import HEALTH_STATES, HealthConfig, WorkerHealth
from repro.gateway.messages import OUTCOMES, PROTOCOL_VERSION
from repro.gateway.spec import BuiltinSpec, BurstSpec, GeneratedSpec, WorkSpec
from repro.gateway.worker import WorkerConfig

__all__ = [
    "Gateway",
    "GraphHandle",
    "FrozenHandle",
    "RecoveryReport",
    "Result",
    "Submission",
    "WorkerConfig",
    "WorkSpec",
    "GeneratedSpec",
    "BuiltinSpec",
    "BurstSpec",
    "ChaosProfile",
    "HealthConfig",
    "WorkerHealth",
    "HEALTH_STATES",
    "OUTCOMES",
    "PROTOCOL_VERSION",
    "run_gateway_soak",
    "run_gateway_gray_soak",
]


def __getattr__(name: str):
    if name in ("run_gateway_soak", "run_gateway_gray_soak"):
        from repro.gateway import soak

        return getattr(soak, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
