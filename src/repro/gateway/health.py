"""Per-worker health scoring for the gateway (docs/gateway.md).

The PR 8 monitor knows two worker states: alive and dead.  Gray
failures — a worker that is alive but stalled, slow, or flaky — need a
third axis, and this module provides it: a :class:`WorkerHealth`
record per worker slot that folds two existing signal streams into one
score and a discrete state:

- **heartbeat round-trip latency** — the monitor stamps every Ping it
  sends; the matching Pong's round trip feeds an EWMA plus a bounded
  sample window (for quantiles);
- **per-submission settle latency** — every Settled's submit-to-settle
  wall time lands in a second quantile window, which is what hedged
  submissions quote when ``hedge_after="p95"``.

The discrete state is one of :data:`HEALTH_STATES`:

- ``healthy`` — pongs flowing, latency near baseline;
- ``stalled`` — the process is *alive* but heartbeat-silent past the
  stall window (``stall_after_s``), i.e. its control loop is wedged or
  starved.  Distinct from dead: the gateway must stop routing to it
  (circuit breaker) but must NOT kill it — its in-flight work may
  still settle when it recovers;
- ``dead`` — the monitor's existing verdict (process exit, heartbeat
  silence past the much larger death budget, broken pipe).

The continuous ``score()`` in [0, 1] ranks *routable* workers (hedge
target choice, degraded routing): silence decays it linearly across
the stall window, and an EWMA round trip above ``baseline_rtt_s``
scales it down proportionally.  A dead worker scores 0.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

#: discrete worker health states (docs/gateway.md, "Failure semantics")
HEALTH_STATES = ("healthy", "stalled", "dead")


@dataclass(frozen=True)
class HealthConfig:
    """Shape of the per-worker health estimator.

    ``ewma_alpha`` weights the newest round-trip sample; ``window``
    bounds both sample deques; ``baseline_rtt_s`` is the round trip
    considered "healthy" (scores degrade proportionally above it);
    ``default_hedge_s`` is what ``hedge_after="p95"`` quotes before any
    settle samples exist.
    """

    ewma_alpha: float = 0.3
    window: int = 64
    baseline_rtt_s: float = 0.05
    default_hedge_s: float = 0.25


class WorkerHealth:
    """Health estimate for one worker slot occupant.

    Fed by the gateway monitor (`on_pong`, `on_settle`, `mark_*`);
    read by routing, hedging, and the ``gateway.health.*`` metrics.
    A respawn replaces the slot's instance wholesale — a fresh process
    starts with a clean history.
    """

    __slots__ = (
        "wid",
        "config",
        "stall_after_s",
        "_clock",
        "ewma_rtt",
        "last_pong",
        "born",
        "dead",
        "_stalled",
        "rtt_window",
        "settle_window",
        "pongs",
        "settles",
    )

    def __init__(
        self,
        wid: int,
        *,
        config: Optional[HealthConfig] = None,
        stall_after_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.wid = wid
        self.config = config or HealthConfig()
        self.stall_after_s = stall_after_s
        self._clock = clock
        self.ewma_rtt = 0.0
        now = clock()
        self.last_pong = now
        self.born = now
        self.dead = False
        self._stalled = False
        self.rtt_window: Deque[float] = deque(maxlen=self.config.window)
        self.settle_window: Deque[float] = deque(maxlen=self.config.window)
        self.pongs = 0
        self.settles = 0

    # -- signal ingestion ---------------------------------------------
    def on_pong(self, rtt_s: float, now: Optional[float] = None) -> None:
        """One heartbeat round trip completed in *rtt_s* seconds."""
        self.last_pong = self._clock() if now is None else now
        a = self.config.ewma_alpha
        self.ewma_rtt = rtt_s if self.pongs == 0 else a * rtt_s + (1 - a) * self.ewma_rtt
        self.rtt_window.append(rtt_s)
        self.pongs += 1

    def on_settle(self, wall_s: float) -> None:
        """One submission settled after *wall_s* seconds."""
        if wall_s > 0:
            self.settle_window.append(wall_s)
            self.settles += 1

    def mark_dead(self) -> None:
        self.dead = True

    def mark_stalled(self, stalled: bool) -> bool:
        """Set the stalled flag; True when this call *changed* it."""
        changed = stalled != self._stalled
        self._stalled = stalled
        return changed

    # -- derived views -------------------------------------------------
    def silence(self, now: Optional[float] = None) -> float:
        """Seconds since the last pong (or since birth)."""
        t = self._clock() if now is None else now
        return max(0.0, t - self.last_pong)

    @property
    def state(self) -> str:
        """One of :data:`HEALTH_STATES`."""
        if self.dead:
            return "dead"
        if self._stalled:
            return "stalled"
        return "healthy"

    def score(self, now: Optional[float] = None) -> float:
        """Continuous health in [0, 1]; 1 = fresh and fast, 0 = dead."""
        if self.dead:
            return 0.0
        s = 1.0
        if self.stall_after_s > 0:
            s *= max(0.0, 1.0 - self.silence(now) / self.stall_after_s)
        base = self.config.baseline_rtt_s
        if self.ewma_rtt > base > 0:
            s *= base / self.ewma_rtt
        return s

    def settle_quantile(self, q: float = 0.95) -> float:
        """The *q*-quantile of recent settle latencies (what
        ``hedge_after="p95"`` arms with); the configured default before
        any samples exist."""
        if not self.settle_window:
            return self.config.default_hedge_s
        samples = sorted(self.settle_window)
        idx = min(len(samples) - 1, int(q * len(samples)))
        return samples[idx]

    def snapshot(self, now: Optional[float] = None) -> dict:
        """JSON-ready view for operator surfaces and the soak report."""
        return {
            "wid": self.wid,
            "state": self.state,
            "score": round(self.score(now), 4),
            "ewma_rtt_s": self.ewma_rtt,
            "silence_s": self.silence(now),
            "settle_p95_s": self.settle_quantile(0.95),
            "pongs": self.pongs,
            "settles": self.settles,
        }


__all__ = ["HEALTH_STATES", "HealthConfig", "WorkerHealth"]
