"""Picklable workload specifications for the multiprocess gateway.

Heteroflow graphs capture arbitrary host closures and live numpy
arrays, so a graph object itself cannot cross a process boundary.  The
gateway therefore ships *specs* — small, picklable descriptions from
which a worker process materializes the graph locally, exactly once
per instance (docs/gateway.md, "Work specs").  Three kinds cover the
serving story:

- :class:`GeneratedSpec` — a seeded random graph from
  :func:`repro.check.generator.generate_graph`.  Deterministic from
  its parameters, and it carries a host-side oracle, so the gateway
  soak can verify results end to end across the process boundary;
- :class:`BuiltinSpec` — one of the shipped corpus flows
  (`repro.analysis.corpus.BUILTIN_CORPUS`): ``saxpy``, ``timing``,
  ``placement``, ``sparsenn``;
- :class:`BurstSpec` — ``width`` independent trivial host tasks, the
  freeze-and-replay throughput shape of ``benchmarks/bench_replay.py``
  (host-only, so frozen submissions take the slot fast path inside
  every worker).

A spec must be **idempotent to rebuild**: the worker monitor replays
in-flight submissions of a dead worker onto a replacement, which
re-materializes the spec from scratch.  Anything a spec builds must
therefore derive from the spec's own fields, never from parent-process
state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import GatewayError


@dataclass(frozen=True)
class WorkSpec:
    """Base class: a picklable recipe for one Heteroflow graph."""

    def build(self):
        """Materialize the graph in the calling process.

        Returns ``(graph, generated)`` where *generated* is the
        :class:`repro.check.generator.GeneratedGraph` carrying the
        verification oracle, or ``None`` when the spec has no oracle.
        """
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class GeneratedSpec(WorkSpec):
    """A seeded random graph with a host-replay oracle."""

    seed: int
    num_gpus: int = 0
    max_hosts: int = 4
    max_chains: int = 2
    max_kernels: int = 2
    max_len: int = 64

    def build(self):
        from repro.check.generator import generate_graph

        gen = generate_graph(
            self.seed,
            num_gpus=self.num_gpus,
            max_hosts=self.max_hosts,
            max_chains=self.max_chains,
            max_kernels=self.max_kernels,
            max_len=self.max_len,
        )
        return gen.graph, gen

    def describe(self) -> str:
        return f"generated(seed={self.seed}, gpus={self.num_gpus})"


@dataclass(frozen=True)
class BuiltinSpec(WorkSpec):
    """One of the shipped corpus flows, by name."""

    name: str

    def build(self):
        from repro.analysis.corpus import BUILTIN_CORPUS

        factory = BUILTIN_CORPUS.get(self.name)
        if factory is None:
            raise GatewayError(
                f"unknown builtin workload {self.name!r}; "
                f"available: {', '.join(BUILTIN_CORPUS)}"
            )
        return factory(), None

    def describe(self) -> str:
        return f"builtin({self.name})"


@dataclass(frozen=True)
class BurstSpec(WorkSpec):
    """``width`` independent host tasks: empty, sleeping, or spinning.

    With neither duration set this is the replay-throughput shape
    (empty host tasks, frozen fast path); a small ``sleep_s`` makes a
    controllable-duration workload for drain-under-load and
    worker-death tests; a small ``spin_s`` busy-loops instead —
    CPU-bound Python that the GIL serializes inside one process but
    worker *processes* run truly in parallel, which is exactly the
    claim the gateway throughput comparison measures.
    """

    width: int = 64
    sleep_s: float = 0.0
    spin_s: float = 0.0

    def build(self):
        from repro.core.heteroflow import Heteroflow

        hf = Heteroflow(f"burst-{self.width}")
        if self.spin_s > 0:
            spin = self.spin_s

            def work(_spin=spin) -> None:
                t0 = time.perf_counter()
                while time.perf_counter() - t0 < _spin:
                    pass

        elif self.sleep_s > 0:
            delay = self.sleep_s

            def work(_delay=delay) -> None:
                time.sleep(_delay)

        else:

            def work() -> None:
                return None

        for i in range(self.width):
            hf.host(work, name=f"burst{i}")
        return hf, None

    def describe(self) -> str:
        return (
            f"burst(width={self.width}, sleep={self.sleep_s}, "
            f"spin={self.spin_s})"
        )


def spec_key(spec: WorkSpec) -> Tuple:
    """Stable identity of a spec (frozen dataclasses hash by value)."""
    return (type(spec).__name__, spec)


__all__ = [
    "WorkSpec",
    "GeneratedSpec",
    "BuiltinSpec",
    "BurstSpec",
    "spec_key",
]
